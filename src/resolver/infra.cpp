#include "resolver/infra.h"

namespace httpsrr::resolver {

AuthoritativeServer& DnsInfra::add_server(std::string operator_name,
                                          net::IpAddr address) {
  auto server =
      std::make_unique<AuthoritativeServer>(std::move(operator_name), address);
  AuthoritativeServer* raw = server.get();
  servers_.push_back(std::move(server));
  by_address_[address] = raw;
  return *raw;
}

void DnsInfra::adopt_server(AuthoritativeServer* server) {
  by_address_[server->address()] = server;
}

AuthoritativeServer* DnsInfra::server_at(const net::IpAddr& address) const {
  auto it = by_address_.find(address);
  return it == by_address_.end() ? nullptr : it->second;
}

void DnsInfra::register_zone(const dns::Name& apex,
                             std::vector<AuthoritativeServer*> servers) {
  zones_[apex] = std::move(servers);
}

void DnsInfra::unregister_zone(const dns::Name& apex) { zones_.erase(apex); }

const std::vector<AuthoritativeServer*>* DnsInfra::zone_servers(
    const dns::Name& apex) const {
  auto it = zones_.find(apex);
  if (it != zones_.end()) return &it->second;
  if (directory_ != nullptr) return directory_->servers_for(apex);
  return nullptr;
}

std::optional<dns::Name> DnsInfra::zone_apex(const dns::Name& name) const {
  // Walk from the name towards the root; the first registered apex wins.
  // The flyweight directory is probed at each step so per-domain apexes
  // that are no longer eagerly registered still resolve.
  dns::Name candidate = name;
  while (true) {
    if (zones_.contains(candidate)) return candidate;
    if (directory_ != nullptr &&
        directory_->servers_for(candidate) != nullptr) {
      return candidate;
    }
    if (candidate.is_root()) return std::nullopt;
    candidate = candidate.parent();
  }
}

void DnsInfra::enable_response_caching() {
  for (auto& [addr, server] : by_address_) {
    (void)addr;
    server->set_response_caching(true);
  }
}

void DnsInfra::set_response_cache_limit(std::size_t limit) {
  for (auto& [addr, server] : by_address_) {
    (void)addr;
    server->set_response_cache_limit(limit);
  }
}

void DnsInfra::bump_epoch() {
  for (auto& [addr, server] : by_address_) {
    (void)addr;
    server->invalidate_caches();
  }
}

HotPathStats DnsInfra::hot_path_stats() const {
  HotPathStats total;
  for (const auto& [addr, server] : by_address_) {
    (void)addr;
    total += server->hot_path_stats();
  }
  return total;
}

AuthoritativeServer* InfraChainSource::first_online(const dns::Name& apex) const {
  const auto* servers = infra_.zone_servers(apex);
  if (servers == nullptr) return nullptr;
  for (auto* server : *servers) {
    if (!server->offline()) return server;
  }
  return nullptr;
}

std::optional<dns::Name> InfraChainSource::zone_apex(const dns::Name& name) const {
  return infra_.zone_apex(name);
}

std::vector<dns::Rr> InfraChainSource::dnskey_with_sigs(
    const dns::Name& zone) const {
  auto* server = first_online(zone);
  if (server == nullptr) return {};
  auto resp = server->handle_shared(zone, dns::RrType::DNSKEY, clock_.now());
  return resp->message.answers;
}

std::vector<dns::Rr> InfraChainSource::ds_with_sigs(const dns::Name& zone) const {
  if (zone.is_root()) return {};
  auto parent_apex = infra_.zone_apex(zone.parent());
  if (!parent_apex) return {};
  auto* server = first_online(*parent_apex);
  if (server == nullptr) return {};
  auto resp = server->handle_shared(zone, dns::RrType::DS, clock_.now());
  return resp->message.answers;
}

}  // namespace httpsrr::resolver
