#include "resolver/authoritative.h"

#include <algorithm>

#include "dns/view.h"

namespace httpsrr::resolver {

using dns::LookupStatus;
using dns::Message;
using dns::Name;
using dns::Rr;
using dns::RrType;

dns::Zone& AuthoritativeServer::add_zone(dns::Zone zone) {
  invalidate_caches();
  Name apex = zone.origin();
  auto [it, inserted] = zones_.insert_or_assign(apex, HostedZone{std::move(zone), {}, {}});
  (void)inserted;
  return it->second.zone;
}

dns::Zone* AuthoritativeServer::find_zone(const Name& apex) {
  // Non-const access hands out a mutable Zone*; assume the caller edits it.
  invalidate_caches();
  auto it = zones_.find(apex);
  return it == zones_.end() ? nullptr : &it->second.zone;
}

const dns::Zone* AuthoritativeServer::find_zone(const Name& apex) const {
  auto it = zones_.find(apex);
  return it == zones_.end() ? nullptr : &it->second.zone;
}

void AuthoritativeServer::remove_zone(const Name& apex) {
  invalidate_caches();
  zones_.erase(apex);
}

void AuthoritativeServer::enable_dnssec(const Name& apex, dnssec::KeyPair key,
                                        net::Duration validity) {
  invalidate_caches();
  auto it = zones_.find(apex);
  if (it == zones_.end()) return;
  it->second.key = std::move(key);
  it->second.sig_validity = validity;
}

void AuthoritativeServer::disable_dnssec(const Name& apex) {
  invalidate_caches();
  auto it = zones_.find(apex);
  if (it != zones_.end()) it->second.key.reset();
}

void AuthoritativeServer::set_supports_https_rr(bool supported) {
  invalidate_caches();
  supports_https_rr_ = supported;
}

void AuthoritativeServer::set_offline(bool offline) {
  invalidate_caches();
  offline_ = offline;
}

void AuthoritativeServer::set_svcb_hook(SvcbHook hook) {
  invalidate_caches();
  svcb_hook_ = std::move(hook);
}

void AuthoritativeServer::set_response_caching(bool enabled) {
  invalidate_caches();
  caching_enabled_ = enabled;
}

void AuthoritativeServer::set_zone_source(const ZoneSource* source) {
  invalidate_caches();
  zone_source_ = source;
}

void AuthoritativeServer::set_response_cache_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  response_cache_limit_ = limit;
}

void AuthoritativeServer::invalidate_caches() {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    response_cache_.clear();
  }
  sig_cache_.invalidate();
}

HotPathStats AuthoritativeServer::hot_path_stats() const {
  HotPathStats out;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    out = stats_;
  }
  auto sig = sig_cache_.stats();
  out.signature_hits = sig.hits;
  out.signature_misses = sig.misses;
  return out;
}

const dnssec::KeyPair* AuthoritativeServer::zone_key(const Name& apex) const {
  auto it = zones_.find(apex);
  if (it == zones_.end() || !it->second.key) return nullptr;
  return &*it->second.key;
}

const HostedZone* AuthoritativeServer::best_zone_for(
    const Name& qname) const {
  // Longest-suffix match among hosted zones: walk qname towards the root,
  // probing the zone map at each ancestor (O(labels · log zones)).
  Name candidate = qname;
  while (true) {
    auto it = zones_.find(candidate);
    if (it != zones_.end()) return &it->second;
    if (candidate.is_root()) return nullptr;
    candidate = candidate.parent();
  }
}

void AuthoritativeServer::append_signed(const HostedZone& hz,
                                        std::vector<Rr> rrset,
                                        std::vector<Rr>& out, net::SimTime now,
                                        bool want_dnssec) const {
  if (rrset.empty()) return;
  // Separate pre-existing RRSIGs (zone-stored signatures) from data.
  std::vector<Rr> data;
  for (auto& rr : rrset) {
    if (rr.type == RrType::RRSIG) {
      if (want_dnssec) out.push_back(std::move(rr));
    } else {
      data.push_back(std::move(rr));
    }
  }
  if (data.empty()) return;
  if (svcb_hook_) {
    for (auto& rr : data) {
      if (rr.type == RrType::HTTPS || rr.type == RrType::SVCB) {
        svcb_hook_(rr.owner, std::get<dns::SvcbRdata>(rr.rdata), now);
      }
    }
  }
  for (const auto& rr : data) out.push_back(rr);

  if (hz.key && want_dnssec) {
    dns::RrSet set;
    for (const auto& rr : data) set.add(rr);
    auto sig = dnssec::sign_rrset(hz.zone.origin(), *hz.key, set,
                                  now - net::Duration::hours(1),
                                  now + hz.sig_validity, &sig_cache_);
    out.push_back(Rr{set.owner(), RrType::RRSIG, dns::RrClass::IN, set.ttl(),
                     std::move(sig)});
  }
}

Message AuthoritativeServer::compute_response(const Message& query,
                                              net::SimTime now) const {
  Message resp = Message::make_response(query);
  resp.header.ra = false;  // authoritative, not recursive
  const bool want_dnssec = query.edns.has_value() && query.edns->dnssec_ok;

  if (query.questions.size() != 1) {
    resp.header.rcode = dns::Rcode::FORMERR;
    return resp;
  }
  const auto& q = query.questions.front();
  // The zone source (on-demand materialization) wins over the eager zone
  // table; the shared_ptr pins the materialized zone for this response.
  std::shared_ptr<const HostedZone> lazy;
  const HostedZone* hz = nullptr;
  if (zone_source_ != nullptr) {
    lazy = zone_source_->zone_for(q.qname);
    hz = lazy.get();
  }
  if (hz == nullptr) hz = best_zone_for(q.qname);
  if (hz == nullptr) {
    resp.header.rcode = dns::Rcode::REFUSED;
    return resp;
  }

  const dns::Zone& zone = hz->zone;
  resp.header.aa = true;

  // Provider capability gate (§4.2.3): HTTPS/SVCB answered as NODATA.
  if (!supports_https_rr_ &&
      (q.qtype == RrType::HTTPS || q.qtype == RrType::SVCB)) {
    return resp;  // NOERROR, empty answer
  }

  // Delegation check: walk from the apex towards qname looking for a zone
  // cut (NS records owned below the apex).  DS queries are answered from
  // the parent side of the cut instead of being referred.
  {
    const std::size_t apex_labels = zone.origin().label_count();
    for (std::size_t take = apex_labels + 1; take <= q.qname.label_count();
         ++take) {
      Name cut = q.qname.suffix(take);
      auto ns = zone.records_at(cut, RrType::NS);
      if (ns.empty()) continue;

      bool ds_at_cut = q.qname == cut && q.qtype == RrType::DS;
      if (ds_at_cut) break;  // answer DS from this (parent) zone below

      // Referral: NS in authority, glue A/AAAA in additional when hosted.
      for (const auto& rr : ns) {
        resp.authorities.push_back(rr);
        const auto& nsdname = std::get<dns::NsRdata>(rr.rdata).nsdname;
        for (const auto& glue : zone.records_at(nsdname, RrType::A)) {
          resp.additionals.push_back(glue);
        }
        for (const auto& glue : zone.records_at(nsdname, RrType::AAAA)) {
          resp.additionals.push_back(glue);
        }
      }
      resp.header.aa = false;
      return resp;
    }
  }

  auto result = zone.lookup(q.qname, q.qtype);
  switch (result.status) {
    case LookupStatus::success:
      append_signed(*hz, std::move(result.records), resp.answers, now,
                    want_dnssec);
      break;
    case LookupStatus::cname:
      append_signed(*hz, std::move(result.records), resp.answers, now,
                    want_dnssec);
      // If the CNAME target is in-bailiwick, chase it locally.
      if (!resp.answers.empty()) {
        const auto* cname = std::get_if<dns::CnameRdata>(&resp.answers.front().rdata);
        if (cname != nullptr && cname->target.is_subdomain_of(zone.origin())) {
          auto chased = zone.lookup(cname->target, q.qtype);
          if (chased.status == LookupStatus::success) {
            append_signed(*hz, std::move(chased.records), resp.answers, now,
                          want_dnssec);
          }
        }
      }
      break;
    case LookupStatus::dname:
      append_signed(*hz, std::move(result.records), resp.answers, now,
                    want_dnssec);
      for (auto& rr : result.synthesized) resp.answers.push_back(std::move(rr));
      break;
    case LookupStatus::nodata:
      // NOERROR with empty answer; signed zones prove the denial.
      if (hz->key && want_dnssec) {
        attach_denial(*hz, q.qname, resp, now);
      }
      break;
    case LookupStatus::nxdomain:
      resp.header.rcode = dns::Rcode::NXDOMAIN;
      if (hz->key && want_dnssec) {
        attach_denial(*hz, q.qname, resp, now);
      }
      break;
    case LookupStatus::not_in_zone:
      resp.header.rcode = dns::Rcode::REFUSED;
      resp.header.aa = false;
      break;
  }

  // DNSKEY queries synthesize the RRset from the provisioned key.
  if (q.qtype == RrType::DNSKEY && hz->key && q.qname == zone.origin() &&
      resp.answers.empty() && resp.header.rcode == dns::Rcode::NOERROR) {
    dns::RrSet set;
    set.add(Rr{zone.origin(), RrType::DNSKEY, dns::RrClass::IN, 3600,
               hz->key->dnskey});
    auto sig = dnssec::sign_rrset(zone.origin(), *hz->key, set,
                                  now - net::Duration::hours(1),
                                  now + hz->sig_validity, &sig_cache_);
    resp.answers = set.records();
    if (want_dnssec) {
      resp.answers.push_back(Rr{zone.origin(), RrType::RRSIG, dns::RrClass::IN,
                                3600, std::move(sig)});
    }
    resp.header.rcode = dns::Rcode::NOERROR;
  }
  return resp;
}

void AuthoritativeServer::attach_denial(const HostedZone& hz,
                                        const Name& qname, Message& resp,
                                        net::SimTime now) const {
  const dns::Zone& zone = hz.zone;
  std::uint32_t negative_ttl = 300;
  auto soa_records = zone.records_at(zone.origin(), RrType::SOA);
  if (!soa_records.empty()) {
    negative_ttl = std::min(
        soa_records.front().ttl,
        std::get<dns::SoaRdata>(soa_records.front().rdata).minimum);
    append_signed(hz, soa_records, resp.authorities, now, true);
  }
  if (auto nsec = zone.nsec_for(qname, negative_ttl)) {
    append_signed(hz, {*nsec}, resp.authorities, now, true);
  }
}

SharedResponse AuthoritativeServer::render_response(const Message& query,
                                                    net::SimTime now) const {
  auto served = std::make_shared<ServedResponse>();
  served->message = compute_response(query, now);
  // One scratch writer per thread: its buffer and compression table are
  // reused across renders, so encoding only allocates the wire copy below.
  static thread_local dns::WireWriter scratch;
  served->message.encode_into(scratch);
  served->wire = scratch.data();
  return served;
}

SharedResponse AuthoritativeServer::handle_shared(const Message& query,
                                                  net::SimTime now) const {
  if (!caching_enabled_ || query.questions.size() != 1) {
    SharedResponse served = render_response(query, now);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    stats_.bytes_encoded += served->wire.size();
    return served;
  }

  const auto& q = query.questions.front();
  ResponseKey key{q.qname, q.qtype,
                  static_cast<std::uint8_t>(
                      query.edns ? (query.edns->dnssec_ok ? 2 : 1) : 0),
                  now.unix_seconds};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = response_cache_.find(key);
    if (it != response_cache_.end()) {
      ++stats_.response_hits;
      return it->second;
    }
  }

  // Render outside the lock (signing can be expensive) and publish.  With
  // shared entries the render is cached eagerly on first occurrence: the
  // sections are moved, not copied, so unlike the earlier section-copying
  // design there is no reason to wait for a second reference.
  SharedResponse served = render_response(query, now);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++stats_.response_misses;
  if (response_cache_limit_ != 0 &&
      response_cache_.size() >= response_cache_limit_) {
    // At the cap: serve the fresh render without publishing it.  A racing
    // shard may have published this key meanwhile — adopt that if so.
    auto it = response_cache_.find(key);
    if (it != response_cache_.end()) return it->second;
    stats_.bytes_encoded += served->wire.size();
    return served;
  }
  auto [it, inserted] = response_cache_.try_emplace(std::move(key), served);
  if (!inserted) {
    // Lost a render race with another shard; adopt the published entry so
    // every caller shares one object (and the encode stays counted once).
    return it->second;
  }
  stats_.bytes_encoded += served->wire.size();
  return served;
}

SharedResponse AuthoritativeServer::handle_shared(const Name& qname,
                                                  RrType qtype,
                                                  net::SimTime now) const {
  return handle_shared(Message::make_query(0, qname, qtype), now);
}

namespace {

// Structural scan of the one query shape resolvers emit: QDCOUNT = 1,
// empty answer/authority sections, uncompressed qname, at most one
// additional record which must be an OPT.  Succeeding means the probe key
// below sees exactly what a full parse + materialization would have seen;
// anything irregular falls back to the MessageView path in serve_wire.
struct ScannedQuery {
  std::string_view qname_flat;  // views into the query buffer
  dns::RrType qtype;
  std::uint8_t edns_state;
};

std::optional<ScannedQuery> fast_scan_query(
    std::span<const std::uint8_t> q) {
  if (q.size() < 12) return std::nullopt;
  const std::uint16_t qdcount = static_cast<std::uint16_t>((q[4] << 8) | q[5]);
  const std::uint16_t ancount = static_cast<std::uint16_t>((q[6] << 8) | q[7]);
  const std::uint16_t nscount = static_cast<std::uint16_t>((q[8] << 8) | q[9]);
  const std::uint16_t arcount =
      static_cast<std::uint16_t>((q[10] << 8) | q[11]);
  if (qdcount != 1 || ancount != 0 || nscount != 0 || arcount > 1) {
    return std::nullopt;
  }
  // Uncompressed qname: the label bytes (sans root octet) are Name's flat
  // form verbatim, so they can key the response cache without a decode.
  std::size_t pos = 12;
  while (true) {
    if (pos >= q.size()) return std::nullopt;
    const std::uint8_t len = q[pos];
    if (len == 0) break;
    if ((len & 0xc0) != 0) return std::nullopt;  // compressed or reserved
    pos += 1 + len;
    if (pos - 12 > 255) return std::nullopt;  // name over wire limit
  }
  ScannedQuery out;
  out.qname_flat = std::string_view(
      reinterpret_cast<const char*>(q.data()) + 12, pos - 12);
  pos += 1;  // root octet
  if (pos + 4 > q.size()) return std::nullopt;
  out.qtype = static_cast<dns::RrType>((q[pos] << 8) | q[pos + 1]);
  pos += 4;  // qtype + qclass
  out.edns_state = 0;
  if (arcount == 1) {
    // The only additional must be the OPT trailer: root owner, TYPE = OPT,
    // CLASS = payload size, TTL bit 15 = DO, empty RDATA.
    if (pos + 11 > q.size() || q[pos] != 0) return std::nullopt;
    const auto type =
        static_cast<dns::RrType>((q[pos + 1] << 8) | q[pos + 2]);
    if (type != dns::RrType::OPT) return std::nullopt;
    const bool dnssec_ok = (q[pos + 7] & 0x80) != 0;
    out.edns_state = dnssec_ok ? 2 : 1;
  }
  return out;
}

}  // namespace

SharedResponse AuthoritativeServer::serve_wire(
    std::span<const std::uint8_t> query, net::SimTime now) const {
  // Hot path: most exchanges repeat a question the server has already
  // rendered this virtual second, so probe the response cache straight
  // from the wire bytes — no parse, no Name, no allocation.
  if (caching_enabled_) {
    if (auto scanned = fast_scan_query(query)) {
      WireResponseKey key{scanned->qname_flat, scanned->qtype,
                          scanned->edns_state, now.unix_seconds};
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = response_cache_.find(key);
      if (it != response_cache_.end()) {
        ++stats_.response_hits;
        return it->second;
      }
    }
  }
  // Render miss (or caching off / irregular query): materialize the query
  // once and run the shared path, which also publishes the new cache entry.
  auto view = dns::MessageView::parse(query);
  if (!view) return nullptr;
  auto q = view->to_message();
  if (!q) return nullptr;
  return handle_shared(*q, now);
}

namespace {

// Legacy-copy fallback for personalize(): full Message copy with the
// query-echo fields rewritten, as the pre-wire implementation did.
Message personalize_copy(const ServedResponse& served, Message&& query) {
  Message out = served.message;
  out.header.id = query.header.id;
  out.header.opcode = query.header.opcode;
  out.header.rd = query.header.rd;
  out.header.cd = query.header.cd;
  out.header.ad = query.header.ad;
  out.header.tc = query.header.tc;
  out.edns = std::move(query.edns);
  out.questions = std::move(query.questions);
  return out;
}

// Rebuilds the per-query Message a legacy caller expects by decoding the
// cached wire image in place — no scratch copy.  The view decode carries
// the response bits (QR, AA, RA, rcode) and the record sections; the
// query-echo fields (id, opcode, TC, RD, CD, AD, EDNS, question spelling)
// are patched onto the decoded Message afterwards, which is where the old
// 12-byte wire patch routed them anyway.  UDP truncation clears the
// record sections and sets TC — the question survives, per RFC 6891.
//
// The query arrives by value: the convenience handle(qname, qtype)
// overload hands over a temporary whose question and EDNS move straight
// into the response; Message-borrowing callers pay one query copy, the
// same fields the old signature copied one at a time.
Message personalize(const ServedResponse& served, Message query,
                    bool truncate) {
  if (served.wire.size() >= 12) {
    if (auto view = dns::MessageView::parse(served.wire)) {
      if (auto out = view->to_message(/*include_questions=*/false)) {
        out->header.id = query.header.id;
        out->header.opcode = query.header.opcode;
        out->header.tc = query.header.tc;
        out->header.rd = query.header.rd;
        out->header.cd = query.header.cd;
        out->header.ad = query.header.ad;
        if (truncate) {
          out->answers.clear();
          out->authorities.clear();
          out->additionals.clear();
          out->header.tc = true;
        }
        out->edns = std::move(query.edns);
        out->questions = std::move(query.questions);
        return std::move(*out);
      }
    }
  }
  Message out = personalize_copy(served, std::move(query));
  if (truncate) {
    out.answers.clear();
    out.authorities.clear();
    out.additionals.clear();
    out.header.tc = true;
  }
  return out;
}

}  // namespace

Message AuthoritativeServer::handle(const Message& query, net::SimTime now) const {
  return personalize(*handle_shared(query, now), query, /*truncate=*/false);
}

Message AuthoritativeServer::handle(const Name& qname, RrType qtype,
                                    net::SimTime now) const {
  // Build the query once and let personalize() move its question + EDNS
  // into the response instead of copying them (the hot scan path).
  Message query = Message::make_query(0, qname, qtype);
  SharedResponse served = handle_shared(query, now);
  return personalize(*served, std::move(query), /*truncate=*/false);
}

Message AuthoritativeServer::handle_udp(const Message& query,
                                        net::SimTime now) const {
  SharedResponse served = handle_shared(query, now);
  // RFC 6891 clamp: an advertised 511 truncates exactly like 512, an
  // advertised 65535 exactly like 4096 (no EDNS at all means plain 512).
  std::size_t limit = query.edns
                          ? dns::clamp_edns_payload(query.edns->udp_payload_size)
                          : dns::kEdnsPayloadFloor;
  return personalize(*served, query, served->wire.size() > limit);
}

}  // namespace httpsrr::resolver
