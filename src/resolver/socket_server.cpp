#include "resolver/socket_server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "dns/view.h"

namespace httpsrr::resolver {

namespace {

constexpr std::size_t kMaxDatagram = 65535;

void patch_id(std::span<std::uint8_t> reply,
              std::span<const std::uint8_t> query) {
  if (reply.size() >= 2 && query.size() >= 2) {
    reply[0] = query[0];
    reply[1] = query[1];
  }
}

// The query's advertised EDNS payload, clamped to the RFC 6891 bounds; a
// query with no OPT (or unparseable) gets the plain-DNS 512.
std::size_t advertised_payload(std::span<const std::uint8_t> query) {
  auto view = dns::MessageView::parse(query);
  if (!view || !view->edns()) return dns::kEdnsPayloadFloor;
  return dns::clamp_edns_payload(view->edns()->udp_payload_size);
}

// Minimal FORMERR: header echoing the query id, QR set, everything empty.
std::shared_ptr<const net::WireBytes> formerr_reply(
    std::span<const std::uint8_t> query) {
  auto out = std::make_shared<net::WireBytes>(12, std::uint8_t{0});
  if (query.size() >= 2) {
    (*out)[0] = query[0];
    (*out)[1] = query[1];
  }
  (*out)[2] = 0x80;  // QR
  (*out)[3] = 0x01;  // FORMERR
  return out;
}

}  // namespace

std::shared_ptr<const net::WireBytes> RecursiveResponder::respond(
    std::span<const std::uint8_t> query) {
  auto view = dns::MessageView::parse(query);
  if (!view || view->question_count() != 1) return formerr_reply(query);
  auto qname = view->question(0).qname();
  if (!qname.ok()) return formerr_reply(query);
  const auto bytes =
      resolver_.resolve_wire(*qname, view->question(0).qtype(), writer_);
  return std::make_shared<net::WireBytes>(bytes.begin(), bytes.end());
}

SocketServer::SocketServer(WireResponder& responder,
                           SocketServerOptions options)
    : responder_(responder),
      options_(std::move(options)),
      scratch_(kMaxDatagram) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start() {
  // UDP and TCP must share one port number.  With an ephemeral bind the
  // kernel picks the TCP port first and the matching UDP bind can lose the
  // race to another process — retry with a fresh ephemeral pick.
  const int attempts = options_.bind.port == 0 ? 16 : 1;
  for (int i = 0; i < attempts; ++i) {
    listener_ = net::tcp_listener(options_.bind, options_.tcp_backlog);
    if (!listener_.valid()) return false;
    auto udp_endpoint = options_.bind;
    if (udp_endpoint.port == 0) {
      udp_endpoint.port = net::local_port(listener_.get());
    }
    udp_ = net::udp_socket_bound(udp_endpoint);
    if (udp_.valid()) {
      port_ = udp_endpoint.port;
      break;
    }
    listener_.reset();
  }
  if (!udp_.valid()) return false;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  wake_read_ = net::Fd(pipe_fds[0]);
  wake_write_ = net::Fd(pipe_fds[1]);
  return true;
}

void SocketServer::serve_in_background() {
  loop_thread_ = std::thread([this] { run(); });
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_write_.valid()) {
    const std::uint8_t byte = 0;
    (void)!::write(wake_write_.get(), &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

SocketServerStats SocketServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SocketServer::run() {
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_read_.get(), POLLIN, 0});
    fds.push_back({udp_.get(), POLLIN, 0});
    fds.push_back({listener_.get(), POLLIN, 0});
    for (const TcpConn& conn : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd.get(), events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable: exit the loop rather than spin
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // stop() woke us
    if ((fds[1].revents & POLLIN) != 0) handle_udp_readable();
    if ((fds[2].revents & POLLIN) != 0) handle_accept();
    // Walk only the connections that were polled this round — handle_accept
    // may have appended to conns_ just now, and those have no pollfd yet.
    // Back to front so erasure keeps lower indices stable.
    for (std::size_t i = fds.size() - 3; i-- > 0;) {
      const pollfd& pfd = fds[3 + i];
      bool alive = true;
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        alive = handle_tcp_readable(conns_[i]);
      }
      if (alive && (pfd.revents & POLLOUT) != 0) {
        alive = handle_tcp_writable(conns_[i]);
      }
      if (alive && conns_[i].closing && conns_[i].out.empty()) alive = false;
      if (!alive) {
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
}

void SocketServer::handle_udp_readable() {
  while (true) {
    sockaddr_storage peer{};
    socklen_t peer_len = sizeof(peer);
    const ssize_t n =
        ::recvfrom(udp_.get(), scratch_.data(), kMaxDatagram, 0,
                   reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n <= 0) return;  // EAGAIN — drained
    const std::span<const std::uint8_t> query(scratch_.data(),
                                              static_cast<std::size_t>(n));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.udp_queries;
    }
    auto full = responder_.respond(query);
    if (!full) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.dropped_queries;
      continue;
    }
    net::WireBytes reply;
    if (full->size() > advertised_payload(query)) {
      reply = net::make_truncated_datagram(*full);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.truncated_replies;
    } else {
      reply = *full;
    }
    patch_id(reply, query);
    (void)::sendto(udp_.get(), reply.data(), reply.size(), MSG_NOSIGNAL,
                   reinterpret_cast<const sockaddr*>(&peer), peer_len);
  }
}

void SocketServer::handle_accept() {
  while (true) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN — drained
    // The listener is nonblocking; accepted fds inherit blocking mode on
    // Linux, so flip them explicitly via the listener's helper semantics.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    TcpConn conn;
    conn.fd = net::Fd(fd);
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.tcp_connections;
  }
}

bool SocketServer::handle_tcp_readable(TcpConn& conn) {
  while (true) {
    const ssize_t n =
        ::recv(conn.fd.get(), scratch_.data(), kMaxDatagram, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) {
      // Peer finished sending: answer what's buffered, flush, then close.
      conn.closing = true;
      break;
    }
    conn.in.insert(conn.in.end(), scratch_.data(), scratch_.data() + n);
  }
  // Drain complete 2-byte-length frames.
  std::size_t consumed = 0;
  while (conn.in.size() - consumed >= 2) {
    const std::size_t len =
        (static_cast<std::size_t>(conn.in[consumed]) << 8) |
        conn.in[consumed + 1];
    if (conn.in.size() - consumed - 2 < len) break;
    answer_tcp(conn, std::span<const std::uint8_t>(
                         conn.in.data() + consumed + 2, len));
    consumed += 2 + len;
  }
  if (consumed > 0) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return handle_tcp_writable(conn);
}

void SocketServer::answer_tcp(TcpConn& conn,
                              std::span<const std::uint8_t> query) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.tcp_queries;
  }
  auto full = responder_.respond(query);
  if (!full || full->size() > 0xffff) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.dropped_queries;
    return;
  }
  // Frame: length prefix, then the full image with the id patched in situ
  // (appended first, patched in the out buffer — the shared image itself
  // stays immutable).
  conn.out.push_back(static_cast<std::uint8_t>(full->size() >> 8));
  conn.out.push_back(static_cast<std::uint8_t>(full->size() & 0xff));
  const std::size_t payload_at = conn.out.size();
  conn.out.insert(conn.out.end(), full->begin(), full->end());
  patch_id(std::span<std::uint8_t>(conn.out.data() + payload_at,
                                   full->size()),
           query);
}

bool SocketServer::handle_tcp_writable(TcpConn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::send(conn.fd.get(), conn.out.data(),
                             conn.out.size(), MSG_NOSIGNAL);
    if (n < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    conn.out.erase(conn.out.begin(), conn.out.begin() + n);
  }
  return true;
}

}  // namespace httpsrr::resolver
