#pragma once

// AuthoritativeServer — an authoritative DNS name server instance.
//
// Each server is run by an operator (e.g. "cloudflare", "godaddy"), owns
// copies of the zones it serves, and answers queries per RFC 1034 §4.3.2:
// answers from zone data, referrals at delegation points (NS + glue), DS
// answers from the parent side of a cut, NXDOMAIN/NODATA otherwise.
//
// Two study-relevant switches:
//   * supports_https_rr — providers that have not implemented SVCB/HTTPS
//     answer NODATA for type 64/65 even when the registrant configured the
//     records elsewhere (drives the intermittent-activation findings §4.2.3);
//   * DNSSEC online signing — when a zone is provisioned with a key, every
//     positive answer is signed on the fly (Cloudflare-style live signing),
//     and the DNSKEY RRset is synthesised and self-signed on demand.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "dnssec/signer.h"
#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::resolver {

class AuthoritativeServer {
 public:
  AuthoritativeServer(std::string operator_name, net::IpAddr address)
      : operator_name_(std::move(operator_name)), address_(address) {}

  [[nodiscard]] const std::string& operator_name() const { return operator_name_; }
  [[nodiscard]] const net::IpAddr& address() const { return address_; }

  // Zone management. The server keeps its own copy (distinct providers can
  // serve different content for the same apex — the §4.2.3 scenario).
  dns::Zone& add_zone(dns::Zone zone);
  [[nodiscard]] dns::Zone* find_zone(const dns::Name& apex);
  [[nodiscard]] const dns::Zone* find_zone(const dns::Name& apex) const;
  void remove_zone(const dns::Name& apex);
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

  // Provider capability: answer SVCB/HTTPS queries with NODATA when false.
  void set_supports_https_rr(bool supported) { supports_https_rr_ = supported; }
  [[nodiscard]] bool supports_https_rr() const { return supports_https_rr_; }

  // Failure injection: an offline server never answers (resolver treats it
  // as timeout and tries the next NS).
  void set_offline(bool offline) { offline_ = offline; }
  [[nodiscard]] bool offline() const { return offline_; }

  // DNSSEC provisioning: serve `zone` signed with `key`. Signatures are
  // produced per answer with the given validity window around query time.
  void enable_dnssec(const dns::Name& apex, dnssec::KeyPair key,
                     net::Duration validity = net::Duration::days(14));
  void disable_dnssec(const dns::Name& apex);
  [[nodiscard]] const dnssec::KeyPair* zone_key(const dns::Name& apex) const;

  // Answer-time SVCB/HTTPS rewrite hook. Called for every HTTPS/SVCB
  // record about to be served (before online signing).  The ecosystem uses
  // this for Cloudflare-style dynamic ECH configuration: zones carry an
  // `ech` placeholder and the hook injects the key manager's current
  // ECHConfigList, so hourly key rotation is visible to scanners without
  // rewriting tens of thousands of zones.
  using SvcbHook =
      std::function<void(const dns::Name& owner, dns::SvcbRdata&, net::SimTime)>;
  void set_svcb_hook(SvcbHook hook) { svcb_hook_ = std::move(hook); }

  // Handles one query at virtual time `now`. Never fails: malformed or
  // out-of-bailiwick questions yield REFUSED. Signatures are attached only
  // when the query sets the EDNS DO bit (RFC 4035 §3.1).
  [[nodiscard]] dns::Message handle(const dns::Message& query,
                                    net::SimTime now) const;

  // UDP-transport variant: when the encoded response exceeds the client's
  // advertised EDNS payload size (512 without EDNS), the answer sections
  // are emptied and TC is set so the client retries over TCP (RFC 6891).
  [[nodiscard]] dns::Message handle_udp(const dns::Message& query,
                                        net::SimTime now) const;

  // Convenience single-question wrapper (TCP semantics, DO set).
  [[nodiscard]] dns::Message handle(const dns::Name& qname, dns::RrType qtype,
                                    net::SimTime now) const;

 private:
  struct HostedZone {
    dns::Zone zone;
    std::optional<dnssec::KeyPair> key;
    net::Duration sig_validity = net::Duration::days(14);
  };

  [[nodiscard]] const HostedZone* best_zone_for(const dns::Name& qname) const;
  void append_signed(const HostedZone& hz, std::vector<dns::Rr> rrset,
                     std::vector<dns::Rr>& out, net::SimTime now,
                     bool want_dnssec) const;
  // Adds SOA + covering NSEC (with RRSIGs) to the authority section of a
  // negative answer from a signed zone (RFC 4035 §3.1.3).
  void attach_denial(const HostedZone& hz, const dns::Name& qname,
                     dns::Message& resp, net::SimTime now) const;

  std::string operator_name_;
  net::IpAddr address_;
  bool supports_https_rr_ = true;
  bool offline_ = false;
  SvcbHook svcb_hook_;
  std::map<dns::Name, HostedZone> zones_;
};

}  // namespace httpsrr::resolver
