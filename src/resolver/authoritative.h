#pragma once

// AuthoritativeServer — an authoritative DNS name server instance.
//
// Each server is run by an operator (e.g. "cloudflare", "godaddy"), owns
// copies of the zones it serves, and answers queries per RFC 1034 §4.3.2:
// answers from zone data, referrals at delegation points (NS + glue), DS
// answers from the parent side of a cut, NXDOMAIN/NODATA otherwise.
//
// Two study-relevant switches:
//   * supports_https_rr — providers that have not implemented SVCB/HTTPS
//     answer NODATA for type 64/65 even when the registrant configured the
//     records elsewhere (drives the intermittent-activation findings §4.2.3);
//   * DNSSEC online signing — when a zone is provisioned with a key, every
//     positive answer is signed on the fly (Cloudflare-style live signing),
//     and the DNSKEY RRset is synthesised and self-signed on demand.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "util/strings.h"
#include "dnssec/signer.h"
#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::resolver {

// One hosted zone plus its signing configuration.  AuthoritativeServer
// stores these for eagerly added zones; a ZoneSource materializes them on
// demand at the lookup boundary (the flyweight ecosystem build).
struct HostedZone {
  dns::Zone zone;
  std::optional<dnssec::KeyPair> key;
  net::Duration sig_validity = net::Duration::days(14);
};

// ZoneSource — on-demand zone materialization at the lookup boundary.
//
// A server with a source probes it *before* its own zone table: the source
// either returns the hosted zone that should answer `qname` (typically
// stamped from a shared provider template plus per-domain deltas) or
// nullptr to fall through to the eagerly added zones.  The returned
// shared_ptr pins the materialized zone for the duration of one response
// computation, so a concurrent cache eviction inside the source can never
// pull the zone out from under an in-flight answer.
//
// Contract: for a fixed virtual instant the source must be a pure function
// of qname — repeated calls return content-identical zones — and any state
// change that would alter a returned zone must be accompanied by a response
// -cache invalidation on the servers it feeds (the ecosystem routes every
// mutation through Internet::advance_to, which bumps the epoch first).
class ZoneSource {
 public:
  virtual ~ZoneSource() = default;
  [[nodiscard]] virtual std::shared_ptr<const HostedZone> zone_for(
      const dns::Name& qname) const = 0;
};

// Hot-path counters for the read-side memo layers (response cache,
// signature cache) and the server-side encoder. Aggregated across servers
// by DnsInfra::hot_path_stats() and surfaced through ResolverStats.
struct HotPathStats {
  std::uint64_t response_hits = 0;
  std::uint64_t response_misses = 0;
  std::uint64_t signature_hits = 0;
  std::uint64_t signature_misses = 0;
  std::uint64_t bytes_encoded = 0;

  HotPathStats& operator+=(const HotPathStats& other) {
    response_hits += other.response_hits;
    response_misses += other.response_misses;
    signature_hits += other.signature_hits;
    signature_misses += other.signature_misses;
    bytes_encoded += other.bytes_encoded;
    return *this;
  }
};

// A fully rendered response plus its encoded wire image, produced once and
// then shared: the server's response cache, every resolver shard hitting
// that cache, and any observer that kept the pointer all reference the same
// immutable object.  Invalidation (Internet::advance_to, server mutators)
// only drops the cache's reference — a SharedResponse held across an epoch
// stays valid until its last holder lets go.
//
// The message's query-echo fields (id, RD/CD, EDNS payload, question
// spelling) are those of the query that first rendered the entry; callers
// on the shared path never read them.  The legacy Message-returning
// handle()/handle_udp() wrappers rewrite them per query.
struct ServedResponse {
  dns::Message message;
  dns::Bytes wire;  // full TCP-size encoding (handle_udp derives TC from it)
};
using SharedResponse = std::shared_ptr<const ServedResponse>;

class AuthoritativeServer {
 public:
  AuthoritativeServer(std::string operator_name, net::IpAddr address)
      : operator_name_(std::move(operator_name)), address_(address) {}

  [[nodiscard]] const std::string& operator_name() const { return operator_name_; }
  [[nodiscard]] const net::IpAddr& address() const { return address_; }

  // Zone management. The server keeps its own copy (distinct providers can
  // serve different content for the same apex — the §4.2.3 scenario).
  dns::Zone& add_zone(dns::Zone zone);
  [[nodiscard]] dns::Zone* find_zone(const dns::Name& apex);
  [[nodiscard]] const dns::Zone* find_zone(const dns::Name& apex) const;
  void remove_zone(const dns::Name& apex);
  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

  // Provider capability: answer SVCB/HTTPS queries with NODATA when false.
  void set_supports_https_rr(bool supported);
  [[nodiscard]] bool supports_https_rr() const { return supports_https_rr_; }

  // Failure injection: an offline server never answers (resolver treats it
  // as timeout and tries the next NS).
  void set_offline(bool offline);
  [[nodiscard]] bool offline() const { return offline_; }

  // DNSSEC provisioning: serve `zone` signed with `key`. Signatures are
  // produced per answer with the given validity window around query time.
  void enable_dnssec(const dns::Name& apex, dnssec::KeyPair key,
                     net::Duration validity = net::Duration::days(14));
  void disable_dnssec(const dns::Name& apex);
  [[nodiscard]] const dnssec::KeyPair* zone_key(const dns::Name& apex) const;

  // Answer-time SVCB/HTTPS rewrite hook. Called for every HTTPS/SVCB
  // record about to be served (before online signing).  The ecosystem uses
  // this for Cloudflare-style dynamic ECH configuration: zones carry an
  // `ech` placeholder and the hook injects the key manager's current
  // ECHConfigList, so hourly key rotation is visible to scanners without
  // rewriting tens of thousands of zones.
  using SvcbHook =
      std::function<void(const dns::Name& owner, dns::SvcbRdata&, net::SimTime)>;
  void set_svcb_hook(SvcbHook hook);

  // Handles one query at virtual time `now`. Never fails: malformed or
  // out-of-bailiwick questions yield REFUSED. Signatures are attached only
  // when the query sets the EDNS DO bit (RFC 4035 §3.1).
  [[nodiscard]] dns::Message handle(const dns::Message& query,
                                    net::SimTime now) const;

  // UDP-transport variant: when the encoded response exceeds the client's
  // advertised EDNS payload size (512 without EDNS), the answer sections
  // are emptied and TC is set so the client retries over TCP (RFC 6891).
  [[nodiscard]] dns::Message handle_udp(const dns::Message& query,
                                        net::SimTime now) const;

  // Convenience single-question wrapper (TCP semantics, DO set).
  [[nodiscard]] dns::Message handle(const dns::Name& qname, dns::RrType qtype,
                                    net::SimTime now) const;

  // Shared-response path: returns the immutable rendered response without
  // copying any section — a cache hit is one shared_ptr bump.  The wire is
  // encoded exactly once per rendered entry; clients decide UDP truncation
  // themselves by comparing wire.size() against their payload limit.
  [[nodiscard]] SharedResponse handle_shared(const dns::Message& query,
                                             net::SimTime now) const;
  [[nodiscard]] SharedResponse handle_shared(const dns::Name& qname,
                                             dns::RrType qtype,
                                             net::SimTime now) const;

  // Wire-entry serve path (the transport layer's server side): reads
  // qname/qtype/EDNS state straight off the query bytes to probe the
  // shared-response cache — a warm hit materializes nothing but the SSO
  // qname.  Only a render miss decodes the full query.  Returns nullptr
  // for bytes that do not parse as a DNS message (a real server drops
  // those silently; the client sees a timeout).
  [[nodiscard]] SharedResponse serve_wire(std::span<const std::uint8_t> query,
                                          net::SimTime now) const;

  // Pre-rendered response memoization.  Off by default: standalone fixtures
  // mutate zones directly between queries.  The ecosystem turns it on (via
  // DnsInfra::enable_response_caching) because there the "Internet frozen
  // between advance_to calls" contract holds, and Internet::advance_to
  // invalidates every cache before anything changes.  Entries are keyed on
  // (qname, qtype, EDNS/DO state, virtual second), so even without an
  // explicit invalidation a cached answer can never leak across a clock
  // move.  Every zone/key/capability mutator below also invalidates, which
  // keeps direct-mutation call sites safe when caching is on.
  void set_response_caching(bool enabled);
  void invalidate_caches();
  [[nodiscard]] HotPathStats hot_path_stats() const;

  // On-demand zone materialization: when set, compute_response consults the
  // source ahead of the server's own zone table (longest-match inside the
  // source).  The source must outlive the server; pass nullptr to detach.
  void set_zone_source(const ZoneSource* source);
  [[nodiscard]] const ZoneSource* zone_source() const { return zone_source_; }

  // Bounds the pre-rendered response cache (0 = unlimited).  At the cap a
  // render miss returns its freshly rendered response without publishing it
  // — output-invariant, only the hit rate moves.  This is what keeps the
  // million-domain day inside a fixed memory budget.
  void set_response_cache_limit(std::size_t limit);

 private:
  // Response-cache key: EDNS state folds presence and the DO bit into one
  // discriminant (content depends on DO; wire size also on OPT presence).
  struct ResponseKey {
    dns::Name qname;
    dns::RrType qtype = dns::RrType::A;
    std::uint8_t edns_state = 0;  // 0 = no EDNS, 1 = EDNS, 2 = EDNS + DO
    std::int64_t at = 0;          // virtual second of the query

    friend bool operator==(const ResponseKey&, const ResponseKey&) = default;
  };
  // Allocation-free probe key for serve_wire(): the qname is a view of the
  // query's label bytes (length-prefixed, no root octet — exactly Name's
  // flat form), so a cache hit never materializes a Name.  Heterogeneous
  // lookup hinges on hash/equality agreeing with the owning key's, which
  // both functors guarantee by case-folding the same byte sequence.
  struct WireResponseKey {
    std::string_view qname_flat;
    dns::RrType qtype = dns::RrType::A;
    std::uint8_t edns_state = 0;
    std::int64_t at = 0;
  };
  struct ResponseKeyHash {
    using is_transparent = void;
    static std::size_t mix(std::size_t name_hash, const auto& k) {
      return name_hash ^ (static_cast<std::size_t>(k.qtype) << 2) ^
             (static_cast<std::size_t>(k.edns_state) << 18) ^
             (static_cast<std::size_t>(k.at) * 0x9e3779b97f4a7c15ULL);
    }
    std::size_t operator()(const ResponseKey& k) const {
      return mix(k.qname.hash(), k);
    }
    std::size_t operator()(const WireResponseKey& k) const {
      // Same FNV-1a-over-case-folded-flat as Name::hash() — length octets
      // are ≤ 63 and pass through ascii_lower untouched.
      std::size_t h = 1469598103934665603ULL;
      for (char c : k.qname_flat) {
        h ^= static_cast<unsigned char>(util::ascii_lower(c));
        h *= 1099511628211ULL;
      }
      return mix(h, k);
    }
  };
  struct ResponseKeyEq {
    using is_transparent = void;
    bool operator()(const ResponseKey& a, const ResponseKey& b) const {
      return a == b;
    }
    bool operator()(const WireResponseKey& a, const ResponseKey& b) const {
      return a.qtype == b.qtype && a.edns_state == b.edns_state &&
             a.at == b.at && util::iequals(a.qname_flat, b.qname.flat());
    }
    bool operator()(const ResponseKey& a, const WireResponseKey& b) const {
      return (*this)(b, a);
    }
  };
  [[nodiscard]] const HostedZone* best_zone_for(const dns::Name& qname) const;
  // The uncached RFC 1034 §4.3.2 answer path.
  [[nodiscard]] dns::Message compute_response(const dns::Message& query,
                                              net::SimTime now) const;
  // Computes and encodes one response (the only place the encoder runs).
  [[nodiscard]] SharedResponse render_response(const dns::Message& query,
                                               net::SimTime now) const;
  void append_signed(const HostedZone& hz, std::vector<dns::Rr> rrset,
                     std::vector<dns::Rr>& out, net::SimTime now,
                     bool want_dnssec) const;
  // Adds SOA + covering NSEC (with RRSIGs) to the authority section of a
  // negative answer from a signed zone (RFC 4035 §3.1.3).
  void attach_denial(const HostedZone& hz, const dns::Name& qname,
                     dns::Message& resp, net::SimTime now) const;

  std::string operator_name_;
  net::IpAddr address_;
  bool supports_https_rr_ = true;
  bool offline_ = false;
  const ZoneSource* zone_source_ = nullptr;
  SvcbHook svcb_hook_;
  // Hashed: best_zone_for() probes one ancestor per label of the qname on
  // every uncached render, and a provider hosting thousands of zones would
  // pay O(log n) full Name comparisons per probe in an ordered map.
  std::unordered_map<dns::Name, HostedZone, dns::NameHash> zones_;

  // Read-side memo state: logically const (handle() is a pure read of the
  // frozen Internet), hence mutable; mutex-guarded because the sharded scan
  // queries one server from many threads.
  bool caching_enabled_ = false;
  std::size_t response_cache_limit_ = 0;  // 0 = unlimited
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<ResponseKey, SharedResponse, ResponseKeyHash,
                             ResponseKeyEq>
      response_cache_;
  mutable HotPathStats stats_;  // response hits/misses + bytes (cache_mutex_)
  mutable dnssec::SignatureCache sig_cache_;  // own lock; pure memo
};

}  // namespace httpsrr::resolver
