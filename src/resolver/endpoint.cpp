#include "resolver/endpoint.h"

#include <algorithm>
#include <utility>

#include "dns/view.h"

namespace httpsrr::resolver {

using dns::MessageView;
using dns::Rcode;
using dns::RrType;
using dns::ScanMeta;
using dns::ScanMetaStatus;
using util::Error;

namespace {

// Advertised payload on every endpoint query — and therefore the socket
// server's UDP truncation limit for the reply (clamped through RFC 6891
// bounds on both ends).  Replies wider than this ride the TC=1 → TCP leg.
const std::size_t kUdpLimit =
    dns::clamp_edns_payload(dns::Edns{}.udp_payload_size);

ResolvedAnswer servfail_answer() {
  return ResolvedAnswer::from_parts(Rcode::SERVFAIL, false, {}, {});
}

// Minimal FORMERR: header echoing the query id, QR set, everything empty.
std::shared_ptr<const net::WireBytes> formerr_reply(
    std::span<const std::uint8_t> query) {
  auto out = std::make_shared<net::WireBytes>(12, std::uint8_t{0});
  if (query.size() >= 2) {
    (*out)[0] = query[0];
    (*out)[1] = query[1];
  }
  (*out)[2] = 0x80;  // QR
  (*out)[3] = 0x01;  // FORMERR
  return out;
}

bool materialize_section(const MessageView& view, bool authority,
                         std::vector<dns::Rr>& out) {
  const std::size_t n =
      authority ? view.authority_count() : view.answer_count();
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto rr = (authority ? view.authority(i) : view.answer(i)).materialize();
    if (!rr) return false;
    out.push_back(std::move(*rr));
  }
  return true;
}

}  // namespace

// ---- Wire codec ----------------------------------------------------------

void encode_endpoint_query(dns::WireWriter& w, std::uint16_t id,
                           const dns::Name& qname, dns::RrType qtype,
                           const ScanMeta& meta) {
  dns::Header h;  // rd=true by default; everything else clear
  h.id = id;
  w.clear();
  w.u16(h.id);
  w.u16(dns::pack_flags(h));
  w.u16(1);  // QDCOUNT
  w.u16(0);
  w.u16(0);
  w.u16(1);  // ARCOUNT: the OPT pseudo-RR
  w.name_compressed(qname);
  w.u16(static_cast<std::uint16_t>(qtype));
  w.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  // OPT with DO set and the scan-meta option as its only RDATA content.
  w.u8(0);  // root owner
  w.u16(static_cast<std::uint16_t>(dns::RrType::OPT));
  w.u16(static_cast<std::uint16_t>(kUdpLimit));
  w.u32(0x00008000u);  // DO
  w.u16(static_cast<std::uint16_t>(dns::scan_meta_wire_size(meta)));
  dns::append_scan_meta(w, meta);
}

void encode_endpoint_reply(dns::WireWriter& w, std::uint16_t id,
                           const dns::Name& qname, dns::RrType qtype,
                           const ResolvedAnswer& answer, bool dnssec_ok,
                           bool from_backup) {
  const auto answers = answer.answers();
  const auto authorities = answer.authorities();

  dns::Header h;
  h.id = id;
  h.qr = true;
  h.rd = true;
  h.ra = true;
  h.ad = answer.ad;
  h.rcode = answer.rcode;  // low nibble; the high byte rides the OPT TTL
  const auto extended =
      static_cast<std::uint8_t>(static_cast<std::uint16_t>(answer.rcode) >> 4);

  w.clear();
  w.u16(h.id);
  w.u16(dns::pack_flags(h));
  w.u16(1);  // QDCOUNT
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(1);  // ARCOUNT: the OPT pseudo-RR
  w.name_compressed(qname);
  w.u16(static_cast<std::uint16_t>(qtype));
  w.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  for (const auto& rr : answers) dns::encode_rr(rr, w);
  for (const auto& rr : authorities) dns::encode_rr(rr, w);
  // OPT: TTL = [extended-rcode:8][version:8][DO:1][Z:15]; RDATA carries
  // the scan-meta option only when there is something to say.
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(RrType::OPT));
  w.u16(static_cast<std::uint16_t>(kUdpLimit));
  w.u32((static_cast<std::uint32_t>(extended) << 24) |
        (dnssec_ok ? 0x00008000u : 0u));
  if (from_backup) {
    ScanMeta meta;
    meta.backup = true;
    w.u16(static_cast<std::uint16_t>(dns::scan_meta_wire_size(meta)));
    dns::append_scan_meta(w, meta);
  } else {
    w.u16(0);
  }
}

util::Result<DecodedReply> decode_endpoint_reply(
    std::span<const std::uint8_t> wire) {
  auto view = MessageView::parse(wire);
  if (!view) return Error{view.error()};
  if (view->trailing_bytes() != 0) return Error{"trailing bytes"};
  if (!view->header().qr) return Error{"not a response"};

  ScanMeta meta;
  const ScanMetaStatus status = dns::parse_scan_meta(view->opt_rdata(), meta);
  if (status == ScanMetaStatus::kMalformed) {
    return Error{"malformed scan-meta option"};
  }

  std::vector<dns::Rr> answers;
  std::vector<dns::Rr> authorities;
  if (!materialize_section(*view, false, answers) ||
      !materialize_section(*view, true, authorities)) {
    return Error{"malformed record"};
  }

  DecodedReply out;
  out.answer = ResolvedAnswer::from_parts(
      static_cast<Rcode>(view->extended_rcode() & 0xff), view->header().ad,
      std::move(answers), std::move(authorities));
  out.from_backup = status == ScanMetaStatus::kOk && meta.backup;
  return out;
}

// ---- EngineEndpoint ------------------------------------------------------

EngineEndpoint::EngineEndpoint(std::unique_ptr<RecursiveResolver> primary,
                               std::unique_ptr<RecursiveResolver> backup)
    : owned_primary_(std::move(primary)),
      owned_backup_(std::move(backup)),
      primary_(owned_primary_.get()),
      backup_(owned_backup_.get()) {}

EngineEndpoint::EngineEndpoint(RecursiveResolver& primary,
                               RecursiveResolver* backup)
    : primary_(&primary), backup_(backup) {}

std::vector<ResolvedAnswer> EngineEndpoint::run_wave(
    std::span<const QueryEngine::Request> requests,
    std::vector<bool>* fell_back) {
  // One engine wave with the stub's fallback policy, batched: every
  // request runs on the primary's engine, and any SERVFAIL answer is
  // re-run on the backup in the same request order.
  QueryEngine engine(*primary_);
  auto answers = engine.run(requests);
  if (fell_back != nullptr) fell_back->assign(requests.size(), false);
  if (backup_ != nullptr) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (answers[i].rcode == Rcode::SERVFAIL) failed.push_back(i);
    }
    if (!failed.empty()) {
      fallbacks_ += failed.size();
      std::vector<QueryEngine::Request> retry;
      retry.reserve(failed.size());
      for (std::size_t i : failed) retry.push_back(requests[i]);
      QueryEngine backup_engine(*backup_);
      auto retried = backup_engine.run(retry);
      for (std::size_t j = 0; j < failed.size(); ++j) {
        answers[failed[j]] = std::move(retried[j]);
        if (fell_back != nullptr) (*fell_back)[failed[j]] = true;
      }
    }
  }
  return answers;
}

std::vector<ResolvedAnswer> EngineEndpoint::run(
    std::span<const QueryEngine::Request> requests) {
  return run_wave(requests, nullptr);
}

std::uint64_t EngineEndpoint::collect_expired() {
  // One virtual day of grace: entries the scan refreshed yesterday stay in
  // place for in-place overwrite today; only keys no longer asked about
  // (churned-out domains) are evicted.  Mirrors the study's 2-deep
  // retention ring.
  const net::Duration grace = net::Duration::days(1);
  std::uint64_t dropped = primary_->sweep_expired(grace);
  if (backup_ != nullptr) dropped += backup_->sweep_expired(grace);
  return dropped;
}

ResolverStats EngineEndpoint::stats() const {
  ResolverStats total = primary_->stats();
  if (backup_ != nullptr) total += backup_->stats();
  return total;
}

// ---- LocalEndpoint -------------------------------------------------------

std::vector<ResolvedAnswer> LocalEndpoint::run(
    std::span<const QueryEngine::Request> requests) {
  std::vector<bool> fell_back;
  auto answers = run_wave(requests, &fell_back);
  const bool dnssec_ok = primary().options().validate_dnssec;
  for (std::size_t i = 0; i < answers.size(); ++i) {
    encode_endpoint_reply(writer_, /*id=*/0, requests[i].qname,
                          requests[i].qtype, answers[i], dnssec_ok,
                          fell_back[i]);
    auto decoded = decode_endpoint_reply(writer_.data());
    // A round-trip failure would mean the codec cannot carry one of our
    // own answers; surface it like a lost reply rather than crashing.
    answers[i] = decoded ? std::move(decoded->answer) : servfail_answer();
  }
  return answers;
}

// ---- SocketEndpoint ------------------------------------------------------

namespace {

net::SocketTransportOptions transport_options(
    const SocketEndpointOptions& options) {
  net::SocketTransportOptions t;
  t.server = options.server;
  t.timeout_ms = options.timeout_ms;
  t.retransmits = options.retransmits;
  return t;
}

}  // namespace

SocketEndpoint::SocketEndpoint(SocketEndpointOptions options)
    : options_(options), transport_(transport_options(options)) {}

void SocketEndpoint::pass(std::span<const QueryEngine::Request> requests,
                          const std::vector<std::size_t>* indices,
                          bool to_backup, std::vector<ResolvedAnswer>& answers,
                          std::vector<bool>* servfailed) {
  const std::size_t total =
      indices != nullptr ? indices->size() : requests.size();
  const std::size_t window = std::max<std::size_t>(1, options_.max_in_flight);
  // The per-call server address is ignored by SocketTransport (it is
  // constructed with the one endpoint it talks to).
  const net::IpAddr addr{};

  ScanMeta meta;
  meta.backup = to_backup;
  meta.virtual_time = virtual_time_;
  meta.shard = options_.shard;

  std::unordered_map<net::SendToken, std::size_t> in_flight;
  std::size_t sent = 0;
  while (sent < total || !in_flight.empty()) {
    while (sent < total && in_flight.size() < window) {
      const std::size_t slot =
          indices != nullptr ? (*indices)[sent] : sent;
      // Ids only need to be unique among in-flight queries; a 16-bit
      // counter with a window far below 65536 guarantees that.
      encode_endpoint_query(writer_, next_id_++, requests[slot].qname,
                            requests[slot].qtype, meta);
      in_flight.emplace(transport_.send(addr, writer_.data(), kUdpLimit),
                        slot);
      ++sent;
    }
    auto completed = transport_.poll();
    if (!completed) break;  // transport drained (should not outrun us)
    auto it = in_flight.find(completed->token);
    if (it == in_flight.end()) continue;
    const std::size_t slot = it->second;
    in_flight.erase(it);

    ResolvedAnswer out = servfail_answer();
    if (completed->reply.ok()) {
      if (auto decoded = decode_endpoint_reply(completed->reply.bytes())) {
        out = std::move(decoded->answer);
      }
    }
    if (servfailed != nullptr) {
      (*servfailed)[slot] = out.rcode == Rcode::SERVFAIL;
    }
    answers[slot] = std::move(out);
  }
}

std::vector<ResolvedAnswer> SocketEndpoint::run(
    std::span<const QueryEngine::Request> requests) {
  stats_.queries += requests.size();
  std::vector<ResolvedAnswer> answers(requests.size());
  std::vector<bool> servfailed(requests.size(), false);
  pass(requests, nullptr, /*to_backup=*/false, answers, &servfailed);
  if (options_.backup) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < servfailed.size(); ++i) {
      if (servfailed[i]) failed.push_back(i);
    }
    if (!failed.empty()) {
      fallbacks_ += failed.size();
      pass(requests, &failed, /*to_backup=*/true, answers, nullptr);
    }
  }
  for (const auto& answer : answers) {
    if (answer.rcode == Rcode::SERVFAIL) ++stats_.servfails;
  }
  return answers;
}

ResolverStats SocketEndpoint::stats() const {
  ResolverStats s = stats_;
  const net::SocketStats& t = transport_.stats();
  s.upstream_queries = t.udp_queries + t.tcp_queries;
  s.tcp_fallbacks = t.tcp_fallbacks;
  s.timeouts = t.timeouts;
  return s;
}

// ---- ScanResponder -------------------------------------------------------

RecursiveResolver& ScanResponder::resolver_for(std::uint16_t shard,
                                               bool backup) {
  Pair& pair = pool_[shard];
  if (!pair.primary) pair.primary = factory_(shard, false);
  if (backup) {
    if (!pair.backup) pair.backup = factory_(shard, true);
    if (pair.backup) return *pair.backup;  // else: no backup configured
  }
  return *pair.primary;
}

std::shared_ptr<const net::WireBytes> ScanResponder::respond(
    std::span<const std::uint8_t> query) {
  auto view = MessageView::parse(query);
  if (!view || view->question_count() != 1 || view->trailing_bytes() != 0) {
    return formerr_reply(query);
  }
  ScanMeta meta;
  const ScanMetaStatus status = dns::parse_scan_meta(view->opt_rdata(), meta);
  if (status == ScanMetaStatus::kMalformed) return formerr_reply(query);
  auto qname = view->question(0).qname();
  if (!qname.ok()) return formerr_reply(query);

  // Advance the hosting process's virtual clock before resolving, so the
  // cache and the zone epochs are at the client's scan instant.  A forward
  // move is the server-side day boundary: expire-sweep the resolver pool
  // exactly like the in-process endpoints do (behavior-neutral — the
  // digest must not depend on which process hosts the resolvers).
  if (meta.virtual_time && advance_) {
    advance_(*meta.virtual_time);
    if (last_virtual_time_ && *meta.virtual_time > *last_virtual_time_) {
      for (auto& [shard, pair] : pool_) {
        (void)shard;
        const net::Duration grace = net::Duration::days(1);
        if (pair.primary) swept_ += pair.primary->sweep_expired(grace);
        if (pair.backup) swept_ += pair.backup->sweep_expired(grace);
      }
    }
    if (!last_virtual_time_ || *meta.virtual_time > *last_virtual_time_) {
      last_virtual_time_ = *meta.virtual_time;
    }
  }

  RecursiveResolver& resolver =
      resolver_for(meta.shard.value_or(0), meta.backup);
  const ResolvedAnswer answer =
      resolver.resolve_shared(*qname, view->question(0).qtype());
  encode_endpoint_reply(writer_, /*id=*/0, *qname, view->question(0).qtype(),
                        answer, resolver.options().validate_dnssec,
                        meta.backup);
  const auto bytes = writer_.data();
  return std::make_shared<net::WireBytes>(bytes.begin(), bytes.end());
}

}  // namespace httpsrr::resolver
