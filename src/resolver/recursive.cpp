#include "resolver/recursive.h"

#include <algorithm>
#include <cassert>

#include "dns/view.h"
#include "resolver/engine.h"

namespace httpsrr::resolver {

using dns::Message;
using dns::MessageView;
using dns::Name;
using dns::Rcode;
using dns::Rr;
using dns::RrType;

namespace {

std::unique_ptr<net::Transport> make_transport(const net::WireService& service,
                                               const ResolverOptions& options) {
  if (options.transport == TransportKind::datagram) {
    auto t = std::make_unique<net::DatagramTransport>(
        service, options.transport_faults, options.transport_latency);
    t->set_tcp_only(options.transport_tcp_only);
    return t;
  }
  return std::make_unique<net::LoopbackTransport>(service);
}

// The client's advertised EDNS payload size — also the UDP truncation
// limit every upstream exchange travels under.  Clamped through the RFC
// 6891 bounds at the point of emission so an out-of-range default could
// never leak onto the wire.
const std::size_t kUdpLimit =
    dns::clamp_edns_payload(dns::Edns{}.udp_payload_size);

// Materializes one view section into an owned vector.  False means some
// record failed to decode — the reply is treated as malformed and the
// caller moves on to another server.
bool materialize_section(const MessageView& view, bool authority,
                         std::vector<Rr>& out) {
  const std::size_t n =
      authority ? view.authority_count() : view.answer_count();
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto rr = (authority ? view.authority(i) : view.answer(i)).materialize();
    if (!rr) return false;
    out.push_back(std::move(*rr));
  }
  return true;
}

}  // namespace

RecursiveResolver::RecursiveResolver(const DnsInfra& infra,
                                     const net::SimClock& clock,
                                     dns::DnskeyRdata root_anchor,
                                     Options options)
    : infra_(infra),
      clock_(clock),
      chain_source_(infra, clock),
      validator_(chain_source_, std::move(root_anchor)),
      options_(options),
      wire_service_(infra, clock),
      transport_(make_transport(wire_service_, options)),
      rng_(options.seed),
      selection_seed_(options.selection_seed != 0 ? options.selection_seed
                                                  : options.seed) {}

std::shared_ptr<const std::vector<Rr>> ResolvedAnswer::answers_snapshot()
    const {
  if (shared_answers_) return shared_answers_;
  if (owned_answers_.empty()) {
    static const auto kEmpty = std::make_shared<const std::vector<Rr>>();
    return kEmpty;
  }
  return std::make_shared<const std::vector<Rr>>(owned_answers_);
}

std::uint64_t RecursiveResolver::selection_stream(const Name& qname,
                                                  RrType qtype) {
  IterateSeq& seq = iterate_seq_[CacheKey{qname, qtype}];
  if (seq.at != clock_.now()) {
    seq.at = clock_.now();
    seq.count = 0;
  }
  std::uint64_t stream = util::mix64(
      selection_seed_ ^ util::mix64(dns::NameHash{}(qname)) ^
      (static_cast<std::uint64_t>(qtype) << 48) ^
      (static_cast<std::uint64_t>(clock_.now().unix_seconds) *
       0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(seq.count) << 32));
  ++seq.count;
  return stream;
}

std::uint64_t RecursiveResolver::sweep_expired(net::Duration grace) {
  const net::SimTime now = clock_.now();
  std::uint64_t dropped = 0;
  dropped += std::erase_if(cache_, [now, grace](const auto& kv) {
    return !(kv.second.expires + grace > now);
  });
  // Sequence counters are only live at one instant; the composite test
  // keeps recently-stale nodes (reset in place on the next touch) while
  // still dropping keys the scan stopped asking about.  grace == 0
  // reproduces the original drop-everything-stale behavior exactly.
  dropped += std::erase_if(iterate_seq_, [now, grace](const auto& kv) {
    return kv.second.at != now && now > kv.second.at + grace;
  });
  dropped += chain_cache_.sweep(now, grace);
  return dropped;
}

dns::Message RecursiveResolver::resolve(const Name& qname, RrType qtype) {
  // Query/response skeletons exist for API parity (id draw included — the
  // rng_ stream is unobservable state, but tests may rely on the echoed
  // question); the resolution itself runs on the shared path.
  Message query = Message::make_query(
      static_cast<std::uint16_t>(rng_.next_u32()), qname, qtype);
  Message resp = Message::make_response(query);

  ResolvedAnswer shared = resolve_shared(qname, qtype);
  auto answers = shared.answers();
  resp.answers.assign(answers.begin(), answers.end());
  auto authorities = shared.authorities();
  resp.authorities.assign(authorities.begin(), authorities.end());
  resp.header.rcode = shared.rcode;
  resp.header.ad = shared.ad;
  return resp;
}

ResolvedAnswer RecursiveResolver::resolve_shared(const Name& qname,
                                                 RrType qtype) {
  // Drive one machine instance synchronously: every suspension is answered
  // with a blocking exchange on the spot.  This is the same state machine
  // the QueryEngine multiplexes — depth 1 equals serial because there is
  // only one implementation to agree with.
  if (!blocking_task_) blocking_task_ = std::make_unique<ResolutionTask>();
  ResolutionTask& t = *blocking_task_;
  task_start(t, qname, qtype);
  task_advance(t, nullptr);
  while (t.status == TaskStatus::need_exchange) {
    net::TransportReply reply =
        transport_->exchange(t.pending_server, pending_query(t), kUdpLimit);
    task_deliver(t, reply, nullptr);
    task_advance(t, nullptr);
  }
  assert(t.status == TaskStatus::done);
  return std::move(t.out);
}

// ---- Resolution state machine ------------------------------------------

void RecursiveResolver::task_start(ResolutionTask& t, const Name& qname,
                                   RrType qtype) {
  ++stats_.queries;
  t.qname = qname;
  t.qtype = qtype;
  t.current = qname;
  t.hop = 0;
  t.all_validated = true;
  t.rcode = Rcode::NOERROR;
  t.out = ResolvedAnswer{};
  t.frame_top = 0;
  t.token = 0;
  t.solo = false;
  t.status = TaskStatus::running;
  push_frame(t, qname, qtype, /*depth=*/0);
}

void RecursiveResolver::push_frame(ResolutionTask& t, const Name& qname,
                                   RrType qtype, int depth) {
  if (t.frames.size() == t.frame_top) t.frames.emplace_back();
  Frame& f = t.frames[t.frame_top++];
  f.qname = qname;
  f.qtype = qtype;
  f.depth = depth;
  f.stage = FrameStage::probe;
  f.registered = false;
  f.hop = 0;
  f.candidates.clear();
  f.result.records.clear();
  f.result.authorities.clear();
  f.result.rcode = Rcode::NOERROR;
  f.result.validated = false;
  f.next.clear();
  f.unglued.clear();
  f.unglued_idx = 0;
}

std::span<const std::uint8_t> RecursiveResolver::pending_query(
    const ResolutionTask& t) const {
  assert(t.status == TaskStatus::need_exchange && t.frame_top > 0);
  return std::span<const std::uint8_t>(
      t.frames[t.frame_top - 1].writer->data());
}

void RecursiveResolver::task_advance(ResolutionTask& t, QueryEngine* engine) {
  while (t.status == TaskStatus::running) {
    assert(t.frame_top > 0);
    switch (t.frames[t.frame_top - 1].stage) {
      case FrameStage::probe:
        frame_probe(t, engine);
        break;
      case FrameStage::pick:
        frame_pick(t, engine);
        break;
      case FrameStage::unglued:
        frame_unglued(t);
        break;
    }
  }
}

void RecursiveResolver::frame_probe(ResolutionTask& t, QueryEngine* engine) {
  Frame& f = t.frames[t.frame_top - 1];
  const CacheKey key{f.qname, f.qtype};
  if (options_.cache_enabled) {
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > clock_.now()) {
      ++stats_.cache_hits;
      const CacheEntry& entry = it->second;
      RrsetResult out{entry.records, entry.authorities, entry.rcode,
                      entry.validated};
      // Serve the decayed TTL remainder, not the stored original: a client
      // caching our answer must expire it no later than we do (RFC 1035
      // §3.2.1 — the mechanism behind the §4.3.5 staleness windows).  The
      // scan's steady state queries within the insertion second, so the
      // zero-elapsed branch (no copy at all) dominates.
      auto elapsed = static_cast<std::uint64_t>(
          (clock_.now() - entry.inserted).seconds);
      if (elapsed > 0) {
        for (auto* section : {&out.records, &out.authorities}) {
          if ((*section)->empty()) continue;
          auto decayed = std::make_shared<std::vector<Rr>>(**section);
          for (Rr& rr : *decayed) {
            rr.ttl = rr.ttl > elapsed
                         ? static_cast<std::uint32_t>(rr.ttl - elapsed)
                         : 0;
          }
          *section = std::move(decayed);
        }
      }
      frame_finish(t, std::move(out), engine);
      return;
    }
  }

  // Join check before the miss is recorded: a parked twin contributes a
  // cache *hit* once the owner's answer lands, exactly like the serial
  // schedule where the second identical query runs after the first.
  if (engine != nullptr) {
    switch (engine->try_join(t, key)) {
      case QueryEngine::Join::parked:
        t.status = TaskStatus::parked;
        return;
      case QueryEngine::Join::owner:
        f.registered = true;
        break;
      case QueryEngine::Join::bypass:
        break;
    }
  }
  if (options_.cache_enabled) ++stats_.cache_misses;

  if (f.depth > 4) {  // NS-address resolution recursion guard
    f.result.rcode = Rcode::SERVFAIL;
    finish_iterate(t, engine);
    return;
  }

  // Random NS selection — the resolver behaviour §4.2.3 attributes
  // inconsistent HTTPS activation to.  The stream is keyed on the question
  // and the virtual instant (not on a shared sequential RNG), so the pick
  // is independent of whatever else this resolver has resolved — the
  // shard-count-invariance property documented in the header.
  f.selection = util::Pcg32(selection_stream(f.qname, f.qtype));

  // One reusable upstream query, encoded once into this frame's writer;
  // only the id bytes are re-patched per attempt (ids are unobservable —
  // the server keys its response cache on the question, not the envelope).
  // The bytes are emitted directly — same layout Message::make_query()
  // + encode_into() produces (RD set, one question, one OPT trailer) —
  // because a Message temporary per lookup costs three allocations the
  // cold path feels.
  if (!f.writer) f.writer = std::make_unique<dns::WireWriter>();
  dns::WireWriter& qw = *f.writer;
  qw.clear();
  qw.reserve(12 + f.qname.wire_length() + 4 + 11);
  qw.u16(0);       // id, re-patched per attempt
  qw.u16(0x0100);  // flags: QUERY, RD
  qw.u16(1);       // QDCOUNT
  qw.u16(0);       // ANCOUNT
  qw.u16(0);       // NSCOUNT
  qw.u16(1);       // ARCOUNT (the OPT pseudo-RR)
  qw.name(f.qname);
  qw.u16(static_cast<std::uint16_t>(f.qtype));
  qw.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  qw.u8(0);  // OPT: root owner
  qw.u16(static_cast<std::uint16_t>(RrType::OPT));
  qw.u16(static_cast<std::uint16_t>(kUdpLimit));
  qw.u32(options_.validate_dnssec ? 0x00008000u : 0u);  // DO bit
  qw.u16(0);  // empty OPT RDATA

  f.candidates = infra_.root_servers();
  f.hop = 0;
  f.stage = FrameStage::pick;
}

void RecursiveResolver::frame_pick(ResolutionTask& t, QueryEngine* engine) {
  Frame& f = t.frames[t.frame_top - 1];
  if (f.hop >= options_.max_referrals || f.candidates.empty()) {
    f.result.records.clear();
    f.result.authorities.clear();
    f.result.rcode = Rcode::SERVFAIL;
    finish_iterate(t, engine);
    return;
  }
  f.target = f.candidates[f.selection.uniform(
      static_cast<std::uint32_t>(f.candidates.size()))];
  f.writer->patch_u16(0, static_cast<std::uint16_t>(rng_.next_u32()));
  t.pending_server = f.target;
  t.status = TaskStatus::need_exchange;
}

void RecursiveResolver::task_deliver(ResolutionTask& t,
                                     const net::TransportReply& reply,
                                     QueryEngine* engine) {
  assert(t.status == TaskStatus::need_exchange && t.frame_top > 0);
  Frame& f = t.frames[t.frame_top - 1];
  t.status = TaskStatus::running;

  // Each attempt consumed one referral hop in the old loop, whatever its
  // outcome — keep that accounting bit-exact.
  const auto retry = [&](Frame& frame) {
    std::erase(frame.candidates, frame.target);
    ++frame.hop;
    frame.stage = FrameStage::pick;
  };

  if (!reply.ok()) {
    // Timeout (offline server, dropped datagram, exhausted retransmits):
    // drop this candidate and retry with the rest.
    ++stats_.timeouts;
    retry(f);
    return;
  }
  ++stats_.upstream_queries;
  if (reply.tcp_retried) ++stats_.tcp_fallbacks;

  auto parsed = MessageView::parse(reply.bytes());
  if (!parsed || parsed->trailing_bytes() != 0) {
    // Unparseable or garbage-trailed reply: as good as no reply.
    retry(f);
    return;
  }
  const MessageView& view = *parsed;
  const Rcode rcode = view.header().rcode;

  if (rcode == Rcode::REFUSED) {
    retry(f);
    return;
  }
  if (rcode != Rcode::NOERROR) {
    if (!materialize_section(view, /*authority=*/true, f.result.authorities)) {
      f.result.authorities.clear();
      retry(f);
      return;
    }
    f.result.rcode = rcode;
    finish_iterate(t, engine);
    return;
  }
  if (view.answer_count() > 0 || view.header().aa) {
    // Authoritative answer (possibly NODATA, with its denial proof).
    if (!materialize_section(view, /*authority=*/false, f.result.records) ||
        !materialize_section(view, /*authority=*/true, f.result.authorities)) {
      f.result.records.clear();
      f.result.authorities.clear();
      retry(f);
      return;
    }
    f.result.rcode = Rcode::NOERROR;
    finish_iterate(t, engine);
    return;
  }

  // Referral: gather NS targets from the authority section and glue
  // addresses from the additional section — all read straight off the
  // wire.  Only an unglued (out-of-bailiwick) NS host materializes a
  // name, to recurse on its address.
  std::size_t ns_count = 0;
  for (std::size_t i = 0; i < view.authority_count(); ++i) {
    if (view.authority(i).type() == RrType::NS) ++ns_count;
  }
  if (ns_count == 0) {
    f.result.rcode = Rcode::SERVFAIL;
    finish_iterate(t, engine);
    return;
  }
  f.next.clear();
  for (std::size_t i = 0; i < view.additional_count(); ++i) {
    auto rr = view.additional(i);
    if (auto a = rr.a_addr()) {
      f.next.push_back(net::IpAddr(*a));
    } else if (auto aaaa = rr.aaaa_addr()) {
      f.next.push_back(net::IpAddr(*aaaa));
    }
  }
  // Collect NS hosts the referral did not glue (matching owner names on
  // the wire, case-folded).  Materialize them *before* suspending: the
  // next exchange on this transport invalidates this reply's buffer — no
  // view access is legal once the machine moves on.
  f.unglued.clear();
  bool malformed = false;
  for (std::size_t i = 0; i < view.authority_count() && !malformed; ++i) {
    auto ns = view.authority(i);
    if (ns.type() != RrType::NS) continue;
    bool glued = false;
    for (std::size_t j = 0; j < view.additional_count() && !glued; ++j) {
      auto add = view.additional(j);
      if (add.type() != RrType::A && add.type() != RrType::AAAA) continue;
      glued = add.owner_equals_target_of(ns);
    }
    if (glued) continue;
    auto host = ns.name_target();
    if (!host) {
      malformed = true;
      break;
    }
    f.unglued.push_back(std::move(*host));
  }
  if (malformed) {
    retry(f);
    return;
  }
  if (f.unglued.empty()) {
    f.candidates.swap(f.next);
    ++f.hop;
    f.stage = FrameStage::pick;
    return;
  }
  // Resolve the unglued hosts (out-of-bailiwick NS): with partial glue a
  // resolver must still consider every listed server, or it would
  // systematically miss providers — and the §4.2.3 mixed-provider
  // inconsistencies with them.
  f.unglued_idx = 0;
  f.stage = FrameStage::unglued;
}

void RecursiveResolver::frame_unglued(ResolutionTask& t) {
  Frame& f = t.frames[t.frame_top - 1];
  if (f.unglued_idx == f.unglued.size()) {
    f.candidates.swap(f.next);
    ++f.hop;
    f.stage = FrameStage::pick;
    return;
  }
  // One child lookup at a time, in listed order — the serial schedule.
  // (Pushing may reseat t.frames; take what we need by value first.)
  const Name host = f.unglued[f.unglued_idx];
  const int child_depth = f.depth + 1;
  push_frame(t, host, RrType::A, child_depth);
}

void RecursiveResolver::finish_iterate(ResolutionTask& t,
                                       QueryEngine* engine) {
  Frame& f = t.frames[t.frame_top - 1];
  IterativeResult& result = f.result;

  // DNSSEC validation of positive answers. Answers may contain several
  // RRsets (a CNAME plus the chased target); each one is validated on its
  // own, and AD requires every RRset to be secure (RFC 4035 §4.9.3).
  // Validation stays synchronous inside the machine: the chain source
  // reads the infra in-process (the documented cold-path exception to the
  // wire-true transport rule).
  if (options_.validate_dnssec && result.rcode == Rcode::NOERROR &&
      !result.records.empty()) {
    ++stats_.validations;
    std::vector<std::pair<Name, RrType>> groups;
    for (const auto& rr : result.records) {
      if (rr.type == RrType::RRSIG) continue;
      std::pair<Name, RrType> key_pair{rr.owner, rr.type};
      if (std::find(groups.begin(), groups.end(), key_pair) == groups.end()) {
        groups.push_back(std::move(key_pair));
      }
    }
    bool all_secure = !groups.empty();
    bool bogus = false;
    for (const auto& [owner, type] : groups) {
      std::vector<Rr> subset;
      for (const auto& rr : result.records) {
        bool covers = false;
        if (rr.type == RrType::RRSIG) {
          const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
          covers = sig != nullptr && sig->type_covered == type;
        }
        if ((rr.owner == owner && rr.type == type) ||
            (rr.owner == owner && covers)) {
          subset.push_back(rr);
        }
      }
      switch (validator_.validate(owner, subset, clock_.now(), &chain_cache_)) {
        case dnssec::Validation::secure:
          break;
        case dnssec::Validation::insecure:
          all_secure = false;
          break;
        case dnssec::Validation::bogus:
          bogus = true;
          break;
      }
    }
    if (bogus) {
      result.records.clear();
      result.rcode = Rcode::SERVFAIL;
      result.validated = false;
    } else {
      result.validated = all_secure;
    }
  } else if (options_.validate_dnssec &&
             std::any_of(result.authorities.begin(), result.authorities.end(),
                         [](const Rr& rr) { return rr.type == RrType::NSEC; }) &&
             (result.rcode == Rcode::NXDOMAIN ||
              (result.rcode == Rcode::NOERROR && result.records.empty()))) {
    // Negative answers carrying an NSEC proof: authenticate the denial
    // (RFC 4035 §5.4). Without a proof the answer simply stays
    // unvalidated — in this simulation signed zones always attach their
    // denials, so walking the chain for proof-less negatives would only
    // reclassify unsigned zones as insecure at real cost (the daily scan
    // issues tens of thousands of such negatives).
    ++stats_.validations;
    switch (validator_.validate_denial(f.qname, f.qtype, result.authorities,
                                       clock_.now(), &chain_cache_)) {
      case dnssec::Validation::secure:
        result.validated = true;
        break;
      case dnssec::Validation::insecure:
        result.validated = false;
        break;
      case dnssec::Validation::bogus:
        // A secure zone that cannot prove its denial is lying somewhere.
        result.records.clear();
        result.authorities.clear();
        result.rcode = Rcode::SERVFAIL;
        result.validated = false;
        break;
    }
  }

  // Freeze the iterated sections into shared immutable vectors: the cache
  // entry and the caller reference the same snapshots from here on.
  RrsetResult shared;
  shared.records =
      std::make_shared<std::vector<Rr>>(std::move(result.records));
  shared.authorities =
      std::make_shared<std::vector<Rr>>(std::move(result.authorities));
  shared.rcode = result.rcode;
  shared.validated = result.validated;

  if (options_.cache_enabled && shared.rcode != Rcode::SERVFAIL) {
    std::uint32_t ttl;
    if (!shared.records->empty()) {
      ttl = options_.max_ttl;
      for (const auto& rr : *shared.records) ttl = std::min(ttl, rr.ttl);
    } else {
      // RFC 2308 §5: negative answers live for min(SOA TTL, SOA minimum)
      // as carried in the authority section, capped by our own ceiling.
      // Without a SOA (unsigned zones here omit the denial material) the
      // flat ceiling applies.
      ttl = options_.negative_ttl;
      for (const auto& rr : *shared.authorities) {
        if (rr.type != RrType::SOA) continue;
        if (const auto* soa = std::get_if<dns::SoaRdata>(&rr.rdata)) {
          ttl = std::min({ttl, rr.ttl, soa->minimum});
        }
      }
    }
    CacheEntry entry;
    entry.records = shared.records;
    // Honour the max_ttl clamp in what we store: hits must never serve a
    // TTL larger than the ablation knob allows.  The miss reply keeps the
    // authoritative TTLs, as before — only clamping forces a copy.
    if (std::any_of(
            shared.records->begin(), shared.records->end(),
            [&](const Rr& rr) { return rr.ttl > options_.max_ttl; })) {
      auto clamped = std::make_shared<std::vector<Rr>>(*shared.records);
      for (Rr& rr : *clamped) rr.ttl = std::min(rr.ttl, options_.max_ttl);
      entry.records = std::move(clamped);
    }
    entry.authorities = shared.authorities;
    entry.rcode = shared.rcode;
    entry.validated = shared.validated;
    entry.inserted = clock_.now();
    entry.expires = clock_.now() + net::Duration::secs(ttl);
    cache_[CacheKey{f.qname, f.qtype}] = std::move(entry);
  }
  frame_finish(t, std::move(shared), engine);
}

void RecursiveResolver::frame_finish(ResolutionTask& t, RrsetResult result,
                                     QueryEngine* engine) {
  assert(t.frame_top > 0);
  Frame& finished = t.frames[t.frame_top - 1];
  const bool registered = finished.registered;
  const CacheKey key{finished.qname, finished.qtype};
  --t.frame_top;

  if (t.frame_top > 0) {
    // Parent is resolving this frame as an unglued NS host: extract the
    // A addresses (the old resolve_ns_addr) and move to the next host.
    Frame& parent = t.frames[t.frame_top - 1];
    assert(parent.stage == FrameStage::unglued);
    for (const auto& rr : *result.records) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        parent.next.push_back(net::IpAddr(a->address));
      }
    }
    ++parent.unglued_idx;
    t.status = TaskStatus::running;
  } else {
    // Task-level lookup complete: run one hop of the CNAME-chase loop.
    t.rcode = result.rcode;
    if (result.rcode != Rcode::NOERROR || result.records->empty()) {
      // Negative terminal (NXDOMAIN or NODATA): the denial proof decides
      // AD.
      t.out.shared_authorities_ = result.authorities;
      t.all_validated = t.all_validated && result.validated;
      task_done(t);
    } else {
      if (t.out.owned_answers_.empty() && !t.out.shared_answers_) {
        // First positive RRset: keep it shared — a chain that ends here
        // (the common case) never copies a record.
        t.out.shared_answers_ = result.records;
      } else {
        if (t.out.shared_answers_) {
          // Chain grew past one hop: degrade to an owned accumulation.
          t.out.owned_answers_ = *t.out.shared_answers_;
          t.out.shared_answers_.reset();
        }
        t.out.owned_answers_.insert(t.out.owned_answers_.end(),
                                    result.records->begin(),
                                    result.records->end());
      }
      t.all_validated = t.all_validated && result.validated;

      // CNAME chasing: if we asked for something else and only got a
      // CNAME, continue with the target.
      bool chase = false;
      Name target;
      if (t.qtype != RrType::CNAME) {
        bool has_final = false;
        const dns::CnameRdata* cname = nullptr;
        for (const auto& rr : *result.records) {
          if (rr.type == t.qtype) has_final = true;
          if (rr.type == RrType::CNAME && rr.owner == t.current) {
            cname = std::get_if<dns::CnameRdata>(&rr.rdata);
          }
        }
        if (!has_final && cname != nullptr) {
          chase = true;
          target = cname->target;
        }
      }
      if (chase && t.hop < options_.max_cname_chain) {
        ++t.hop;
        t.current = std::move(target);
        t.status = TaskStatus::running;
        push_frame(t, t.current, t.qtype, /*depth=*/0);
      } else {
        task_done(t);
      }
    }
  }

  // Releasing wakes parked twins (possibly completing their frames in
  // place), so it runs after this task's own state is consistent.
  if (registered && engine != nullptr) engine->release(key, result);
}

void RecursiveResolver::complete_parked(ResolutionTask& t,
                                        const RrsetResult& owner_result,
                                        QueryEngine* engine) {
  assert(t.status == TaskStatus::parked);
  // The owner's answer is in the cache by now; handing the shared result
  // straight over is the cache hit the serial schedule would have scored,
  // minus the probe.
  ++stats_.cache_hits;
  ++stats_.coalesced_queries;
  t.status = TaskStatus::running;
  frame_finish(t, owner_result, engine);
}

void RecursiveResolver::resume_parked(ResolutionTask& t) {
  assert(t.status == TaskStatus::parked);
  // Re-enter at probe: either the owner's answer is cached (plain hit) or
  // it SERVFAILed uncached and this task runs the lookup itself, exactly
  // like the serial schedule's second attempt.
  t.status = TaskStatus::running;
}

void RecursiveResolver::task_done(ResolutionTask& t) {
  t.out.rcode = t.rcode;
  t.out.ad = options_.validate_dnssec && t.all_validated &&
             (!t.out.answers().empty() || !t.out.authorities().empty());
  if (t.rcode == Rcode::SERVFAIL) ++stats_.servfails;
  t.status = TaskStatus::done;
}

std::span<const std::uint8_t> RecursiveResolver::resolve_wire(
    const Name& qname, RrType qtype, dns::WireWriter& w) {
  ResolvedAnswer answer = resolve_shared(qname, qtype);
  const auto answers = answer.answers();
  const auto authorities = answer.authorities();

  // Assemble the client-visible response directly on the wire: header,
  // question, then the shared sections encoded in place (no Message
  // round-trip), OPT last — the same layout Message::encode_into emits.
  dns::Header h;
  h.id = static_cast<std::uint16_t>(rng_.next_u32());
  h.qr = true;
  h.rd = true;
  h.ra = true;
  h.ad = answer.ad;
  h.rcode = answer.rcode;

  w.clear();
  w.u16(h.id);
  w.u16(dns::pack_flags(h));
  w.u16(1);  // QDCOUNT
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(1);  // ARCOUNT: the OPT pseudo-RR
  w.name_compressed(qname);
  w.u16(static_cast<std::uint16_t>(qtype));
  w.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  for (const auto& rr : answers) dns::encode_rr(rr, w);
  for (const auto& rr : authorities) dns::encode_rr(rr, w);
  // OPT (RFC 6891 §6.1): root owner, CLASS = payload size, TTL bit 15 = DO.
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(RrType::OPT));
  w.u16(dns::clamp_edns_payload(dns::Edns{}.udp_payload_size));
  w.u32(options_.validate_dnssec ? 0x00008000u : 0u);
  w.u16(0);
  return std::span<const std::uint8_t>(w.data());
}

}  // namespace httpsrr::resolver
