#include "resolver/recursive.h"

#include <algorithm>

namespace httpsrr::resolver {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::Rr;
using dns::RrType;

RecursiveResolver::RecursiveResolver(const DnsInfra& infra,
                                     const net::SimClock& clock,
                                     dns::DnskeyRdata root_anchor,
                                     Options options)
    : infra_(infra),
      clock_(clock),
      chain_source_(infra, clock),
      validator_(chain_source_, std::move(root_anchor)),
      options_(options),
      rng_(options.seed),
      selection_seed_(options.selection_seed != 0 ? options.selection_seed
                                                  : options.seed) {}

std::uint64_t RecursiveResolver::selection_stream(const Name& qname,
                                                  RrType qtype) {
  IterateSeq& seq = iterate_seq_[CacheKey{qname, qtype}];
  if (seq.at != clock_.now()) {
    seq.at = clock_.now();
    seq.count = 0;
  }
  std::uint64_t stream = util::mix64(
      selection_seed_ ^ util::mix64(dns::NameHash{}(qname)) ^
      (static_cast<std::uint64_t>(qtype) << 48) ^
      (static_cast<std::uint64_t>(clock_.now().unix_seconds) *
       0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(seq.count) << 32));
  ++seq.count;
  return stream;
}

dns::Message RecursiveResolver::resolve(const Name& qname, RrType qtype) {
  // Query/response skeletons exist for API parity (id draw included — the
  // rng_ stream is unobservable state, but tests may rely on the echoed
  // question); the resolution itself runs on the shared path.
  Message query = Message::make_query(
      static_cast<std::uint16_t>(rng_.next_u32()), qname, qtype);
  Message resp = Message::make_response(query);

  ResolvedAnswer shared = resolve_shared(qname, qtype);
  auto answers = shared.answers();
  resp.answers.assign(answers.begin(), answers.end());
  auto authorities = shared.authorities();
  resp.authorities.assign(authorities.begin(), authorities.end());
  resp.header.rcode = shared.rcode;
  resp.header.ad = shared.ad;
  return resp;
}

ResolvedAnswer RecursiveResolver::resolve_shared(const Name& qname,
                                                 RrType qtype) {
  ++stats_.queries;
  ResolvedAnswer out;

  bool all_validated = true;
  Name current = qname;
  Rcode rcode = Rcode::NOERROR;

  for (int hop = 0; hop <= options_.max_cname_chain; ++hop) {
    auto result = lookup_rrset(current, qtype, 0);
    rcode = result.rcode;
    if (rcode != Rcode::NOERROR || result.records->empty()) {
      // Negative terminal (NXDOMAIN or NODATA): the denial proof decides AD.
      out.shared_authorities_ = std::move(result.authorities);
      all_validated = all_validated && result.validated;
      break;
    }
    if (out.owned_answers_.empty() && !out.shared_answers_) {
      // First positive RRset: keep it shared — a chain that ends here (the
      // common case) never copies a record.
      out.shared_answers_ = result.records;
    } else {
      if (out.shared_answers_) {
        // Chain grew past one hop: degrade to an owned accumulation.
        out.owned_answers_ = *out.shared_answers_;
        out.shared_answers_.reset();
      }
      out.owned_answers_.insert(out.owned_answers_.end(),
                                result.records->begin(),
                                result.records->end());
    }
    all_validated = all_validated && result.validated;

    // CNAME chasing: if we asked for something else and only got a CNAME,
    // continue with the target.
    if (qtype == RrType::CNAME) break;
    bool has_final = false;
    const dns::CnameRdata* cname = nullptr;
    for (const auto& rr : *result.records) {
      if (rr.type == qtype) has_final = true;
      if (rr.type == RrType::CNAME && rr.owner == current) {
        cname = std::get_if<dns::CnameRdata>(&rr.rdata);
      }
    }
    if (has_final || cname == nullptr) break;
    current = cname->target;
  }

  out.rcode = rcode;
  out.ad = options_.validate_dnssec && all_validated &&
           (!out.answers().empty() || !out.authorities().empty());
  if (rcode == Rcode::SERVFAIL) ++stats_.servfails;
  return out;
}

RecursiveResolver::RrsetResult RecursiveResolver::lookup_rrset(
    const Name& qname, RrType qtype, int depth) {
  CacheKey key{qname, qtype};
  if (options_.cache_enabled) {
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > clock_.now()) {
      ++stats_.cache_hits;
      const CacheEntry& entry = it->second;
      RrsetResult out{entry.records, entry.authorities, entry.rcode,
                      entry.validated};
      // Serve the decayed TTL remainder, not the stored original: a client
      // caching our answer must expire it no later than we do (RFC 1035
      // §3.2.1 — the mechanism behind the §4.3.5 staleness windows).  The
      // scan's steady state queries within the insertion second, so the
      // zero-elapsed branch (no copy at all) dominates.
      auto elapsed = static_cast<std::uint64_t>(
          (clock_.now() - entry.inserted).seconds);
      if (elapsed > 0) {
        for (auto* section : {&out.records, &out.authorities}) {
          if ((*section)->empty()) continue;
          auto decayed = std::make_shared<std::vector<Rr>>(**section);
          for (Rr& rr : *decayed) {
            rr.ttl = rr.ttl > elapsed
                         ? static_cast<std::uint32_t>(rr.ttl - elapsed)
                         : 0;
          }
          *section = std::move(decayed);
        }
      }
      return out;
    }
    ++stats_.cache_misses;
  }

  IterativeResult result = iterate(qname, qtype, depth);

  // DNSSEC validation of positive answers. Answers may contain several
  // RRsets (a CNAME plus the chased target); each one is validated on its
  // own, and AD requires every RRset to be secure (RFC 4035 §4.9.3).
  if (options_.validate_dnssec && result.rcode == Rcode::NOERROR &&
      !result.records.empty()) {
    ++stats_.validations;
    std::vector<std::pair<Name, RrType>> groups;
    for (const auto& rr : result.records) {
      if (rr.type == RrType::RRSIG) continue;
      std::pair<Name, RrType> key_pair{rr.owner, rr.type};
      if (std::find(groups.begin(), groups.end(), key_pair) == groups.end()) {
        groups.push_back(std::move(key_pair));
      }
    }
    bool all_secure = !groups.empty();
    bool bogus = false;
    for (const auto& [owner, type] : groups) {
      std::vector<Rr> subset;
      for (const auto& rr : result.records) {
        bool covers = false;
        if (rr.type == RrType::RRSIG) {
          const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
          covers = sig != nullptr && sig->type_covered == type;
        }
        if ((rr.owner == owner && rr.type == type) ||
            (rr.owner == owner && covers)) {
          subset.push_back(rr);
        }
      }
      switch (validator_.validate(owner, subset, clock_.now(), &chain_cache_)) {
        case dnssec::Validation::secure:
          break;
        case dnssec::Validation::insecure:
          all_secure = false;
          break;
        case dnssec::Validation::bogus:
          bogus = true;
          break;
      }
    }
    if (bogus) {
      result.records.clear();
      result.rcode = Rcode::SERVFAIL;
      result.validated = false;
    } else {
      result.validated = all_secure;
    }
  } else if (options_.validate_dnssec &&
             std::any_of(result.authorities.begin(), result.authorities.end(),
                         [](const Rr& rr) { return rr.type == RrType::NSEC; }) &&
             (result.rcode == Rcode::NXDOMAIN ||
              (result.rcode == Rcode::NOERROR && result.records.empty()))) {
    // Negative answers carrying an NSEC proof: authenticate the denial
    // (RFC 4035 §5.4). Without a proof the answer simply stays
    // unvalidated — in this simulation signed zones always attach their
    // denials, so walking the chain for proof-less negatives would only
    // reclassify unsigned zones as insecure at real cost (the daily scan
    // issues tens of thousands of such negatives).
    ++stats_.validations;
    switch (validator_.validate_denial(qname, qtype, result.authorities,
                                       clock_.now(), &chain_cache_)) {
      case dnssec::Validation::secure:
        result.validated = true;
        break;
      case dnssec::Validation::insecure:
        result.validated = false;
        break;
      case dnssec::Validation::bogus:
        // A secure zone that cannot prove its denial is lying somewhere.
        result.records.clear();
        result.authorities.clear();
        result.rcode = Rcode::SERVFAIL;
        result.validated = false;
        break;
    }
  }

  // Freeze the iterated sections into shared immutable vectors: the cache
  // entry and the caller reference the same snapshots from here on.
  RrsetResult shared;
  shared.records =
      std::make_shared<std::vector<Rr>>(std::move(result.records));
  shared.authorities =
      std::make_shared<std::vector<Rr>>(std::move(result.authorities));
  shared.rcode = result.rcode;
  shared.validated = result.validated;

  if (options_.cache_enabled && shared.rcode != Rcode::SERVFAIL) {
    std::uint32_t ttl;
    if (!shared.records->empty()) {
      ttl = options_.max_ttl;
      for (const auto& rr : *shared.records) ttl = std::min(ttl, rr.ttl);
    } else {
      // RFC 2308 §5: negative answers live for min(SOA TTL, SOA minimum)
      // as carried in the authority section, capped by our own ceiling.
      // Without a SOA (unsigned zones here omit the denial material) the
      // flat ceiling applies.
      ttl = options_.negative_ttl;
      for (const auto& rr : *shared.authorities) {
        if (rr.type != RrType::SOA) continue;
        if (const auto* soa = std::get_if<dns::SoaRdata>(&rr.rdata)) {
          ttl = std::min({ttl, rr.ttl, soa->minimum});
        }
      }
    }
    CacheEntry entry;
    entry.records = shared.records;
    // Honour the max_ttl clamp in what we store: hits must never serve a
    // TTL larger than the ablation knob allows.  The miss reply keeps the
    // authoritative TTLs, as before — only clamping forces a copy.
    if (std::any_of(
            shared.records->begin(), shared.records->end(),
            [&](const Rr& rr) { return rr.ttl > options_.max_ttl; })) {
      auto clamped = std::make_shared<std::vector<Rr>>(*shared.records);
      for (Rr& rr : *clamped) rr.ttl = std::min(rr.ttl, options_.max_ttl);
      entry.records = std::move(clamped);
    }
    entry.authorities = shared.authorities;
    entry.rcode = shared.rcode;
    entry.validated = shared.validated;
    entry.inserted = clock_.now();
    entry.expires = clock_.now() + net::Duration::secs(ttl);
    cache_[key] = std::move(entry);
  }
  return shared;
}

RecursiveResolver::IterativeResult RecursiveResolver::iterate(const Name& qname,
                                                              RrType qtype,
                                                              int depth) {
  IterativeResult out;
  if (depth > 4) {  // NS-address resolution recursion guard
    out.rcode = Rcode::SERVFAIL;
    return out;
  }

  // Random NS selection — the resolver behaviour §4.2.3 attributes
  // inconsistent HTTPS activation to.  The stream is keyed on the question
  // and the virtual instant (not on a shared sequential RNG), so the pick
  // is independent of whatever else this resolver has resolved — the
  // shard-count-invariance property documented in the header.
  util::Pcg32 selection(selection_stream(qname, qtype));

  // One reusable upstream query; only the id changes per attempt (ids are
  // unobservable — the shared-response cache keys on the question, not the
  // envelope).
  Message upstream_query =
      Message::make_query(0, qname, qtype, options_.validate_dnssec);
  const std::size_t udp_limit =
      upstream_query.edns ? upstream_query.edns->udp_payload_size : 512;

  std::vector<net::IpAddr> candidates = infra_.root_servers();
  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    if (candidates.empty()) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    net::IpAddr target =
        candidates[selection.uniform(static_cast<std::uint32_t>(candidates.size()))];
    const AuthoritativeServer* server = infra_.server_at(target);
    if (server == nullptr || server->offline()) {
      // Drop this candidate and retry with the rest.
      std::erase(candidates, target);
      continue;
    }
    ++stats_.upstream_queries;
    upstream_query.header.id = static_cast<std::uint16_t>(rng_.next_u32());
    SharedResponse served = server->handle_shared(upstream_query, clock_.now());
    const Message& resp = served->message;
    // The shared wire image is the full TCP-size encoding, so UDP
    // truncation is a size check, not a second query: over the limit means
    // the UDP attempt would have come back TC and forced a TCP retry.
    if (served->wire.size() > udp_limit) ++stats_.tcp_fallbacks;

    if (resp.header.rcode == Rcode::REFUSED) {
      std::erase(candidates, target);
      continue;
    }
    if (resp.header.rcode != Rcode::NOERROR) {
      out.rcode = resp.header.rcode;
      out.authorities = resp.authorities;
      return out;
    }
    if (!resp.answers.empty() || resp.header.aa) {
      // Authoritative answer (possibly NODATA, with its denial proof).
      out.records = resp.answers;
      out.authorities = resp.authorities;
      out.rcode = Rcode::NOERROR;
      return out;
    }

    // Referral: gather NS targets, prefer glue.
    std::vector<net::IpAddr> next;
    std::vector<Name> ns_hosts;
    for (const auto& rr : resp.authorities) {
      if (rr.type == RrType::NS) {
        ns_hosts.push_back(std::get<dns::NsRdata>(rr.rdata).nsdname);
      }
    }
    if (ns_hosts.empty()) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    std::vector<Name> glued;
    for (const auto& rr : resp.additionals) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        next.push_back(net::IpAddr(a->address));
        glued.push_back(rr.owner);
      } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
        next.push_back(net::IpAddr(aaaa->address));
        glued.push_back(rr.owner);
      }
    }
    // Resolve any NS host the referral did not glue (out-of-bailiwick NS):
    // with partial glue a resolver must still consider every listed server,
    // or it would systematically miss providers — and the §4.2.3 mixed-
    // provider inconsistencies with them.
    for (const auto& host : ns_hosts) {
      if (std::find(glued.begin(), glued.end(), host) != glued.end()) continue;
      auto addrs = resolve_ns_addr(host, depth + 1);
      next.insert(next.end(), addrs.begin(), addrs.end());
    }
    candidates = std::move(next);
  }
  out.rcode = Rcode::SERVFAIL;
  return out;
}

std::vector<net::IpAddr> RecursiveResolver::resolve_ns_addr(const Name& host,
                                                            int depth) {
  std::vector<net::IpAddr> out;
  auto result = lookup_rrset(host, RrType::A, depth);
  for (const auto& rr : *result.records) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      out.push_back(net::IpAddr(a->address));
    }
  }
  return out;
}

}  // namespace httpsrr::resolver
