#include "resolver/recursive.h"

#include <algorithm>

namespace httpsrr::resolver {

using dns::Message;
using dns::Name;
using dns::Rcode;
using dns::Rr;
using dns::RrType;

RecursiveResolver::RecursiveResolver(const DnsInfra& infra,
                                     const net::SimClock& clock,
                                     dns::DnskeyRdata root_anchor,
                                     Options options)
    : infra_(infra),
      clock_(clock),
      chain_source_(infra, clock),
      validator_(chain_source_, std::move(root_anchor)),
      options_(options),
      rng_(options.seed),
      selection_seed_(options.selection_seed != 0 ? options.selection_seed
                                                  : options.seed) {}

std::uint64_t RecursiveResolver::selection_stream(const Name& qname,
                                                  RrType qtype) {
  IterateSeq& seq = iterate_seq_[CacheKey{qname, qtype}];
  if (seq.at != clock_.now()) {
    seq.at = clock_.now();
    seq.count = 0;
  }
  std::uint64_t stream = util::mix64(
      selection_seed_ ^ util::mix64(dns::NameHash{}(qname)) ^
      (static_cast<std::uint64_t>(qtype) << 48) ^
      (static_cast<std::uint64_t>(clock_.now().unix_seconds) *
       0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(seq.count) << 32));
  ++seq.count;
  return stream;
}

dns::Message RecursiveResolver::resolve(const Name& qname, RrType qtype) {
  ++stats_.queries;
  Message query = Message::make_query(
      static_cast<std::uint16_t>(rng_.next_u32()), qname, qtype);
  Message resp = Message::make_response(query);

  bool all_validated = true;
  Name current = qname;
  Rcode rcode = Rcode::NOERROR;

  for (int hop = 0; hop <= options_.max_cname_chain; ++hop) {
    auto result = lookup_rrset(current, qtype, 0);
    rcode = result.rcode;
    if (rcode != Rcode::NOERROR || result.records.empty()) {
      // Negative terminal (NXDOMAIN or NODATA): the denial proof decides AD.
      resp.authorities = std::move(result.authorities);
      all_validated = all_validated && result.validated;
      break;
    }
    for (const auto& rr : result.records) resp.answers.push_back(rr);
    all_validated = all_validated && result.validated;

    // CNAME chasing: if we asked for something else and only got a CNAME,
    // continue with the target.
    if (qtype == RrType::CNAME) break;
    bool has_final = false;
    const dns::CnameRdata* cname = nullptr;
    for (const auto& rr : result.records) {
      if (rr.type == qtype) has_final = true;
      if (rr.type == RrType::CNAME && rr.owner == current) {
        cname = std::get_if<dns::CnameRdata>(&rr.rdata);
      }
    }
    if (has_final || cname == nullptr) break;
    current = cname->target;
  }

  resp.header.rcode = rcode;
  resp.header.ad = options_.validate_dnssec && all_validated &&
                   (!resp.answers.empty() || !resp.authorities.empty());
  if (rcode == Rcode::SERVFAIL) ++stats_.servfails;
  return resp;
}

RecursiveResolver::IterativeResult RecursiveResolver::lookup_rrset(
    const Name& qname, RrType qtype, int depth) {
  CacheKey key{qname, qtype};
  if (options_.cache_enabled) {
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > clock_.now()) {
      ++stats_.cache_hits;
      const CacheEntry& entry = it->second;
      IterativeResult out;
      out.records = entry.records;
      out.authorities = entry.authorities;
      out.rcode = entry.rcode;
      out.validated = entry.validated;
      // Serve the decayed TTL remainder, not the stored original: a client
      // caching our answer must expire it no later than we do (RFC 1035
      // §3.2.1 — the mechanism behind the §4.3.5 staleness windows).
      auto elapsed = static_cast<std::uint64_t>(
          (clock_.now() - entry.inserted).seconds);
      if (elapsed > 0) {
        for (auto* section : {&out.records, &out.authorities}) {
          for (Rr& rr : *section) {
            rr.ttl = rr.ttl > elapsed
                         ? static_cast<std::uint32_t>(rr.ttl - elapsed)
                         : 0;
          }
        }
      }
      return out;
    }
    ++stats_.cache_misses;
  }

  IterativeResult result = iterate(qname, qtype, depth);

  // DNSSEC validation of positive answers. Answers may contain several
  // RRsets (a CNAME plus the chased target); each one is validated on its
  // own, and AD requires every RRset to be secure (RFC 4035 §4.9.3).
  if (options_.validate_dnssec && result.rcode == Rcode::NOERROR &&
      !result.records.empty()) {
    ++stats_.validations;
    std::vector<std::pair<Name, RrType>> groups;
    for (const auto& rr : result.records) {
      if (rr.type == RrType::RRSIG) continue;
      std::pair<Name, RrType> key_pair{rr.owner, rr.type};
      if (std::find(groups.begin(), groups.end(), key_pair) == groups.end()) {
        groups.push_back(std::move(key_pair));
      }
    }
    bool all_secure = !groups.empty();
    bool bogus = false;
    for (const auto& [owner, type] : groups) {
      std::vector<Rr> subset;
      for (const auto& rr : result.records) {
        bool covers = false;
        if (rr.type == RrType::RRSIG) {
          const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
          covers = sig != nullptr && sig->type_covered == type;
        }
        if ((rr.owner == owner && rr.type == type) ||
            (rr.owner == owner && covers)) {
          subset.push_back(rr);
        }
      }
      switch (validator_.validate(owner, subset, clock_.now(), &chain_cache_)) {
        case dnssec::Validation::secure:
          break;
        case dnssec::Validation::insecure:
          all_secure = false;
          break;
        case dnssec::Validation::bogus:
          bogus = true;
          break;
      }
    }
    if (bogus) {
      result.records.clear();
      result.rcode = Rcode::SERVFAIL;
      result.validated = false;
    } else {
      result.validated = all_secure;
    }
  } else if (options_.validate_dnssec &&
             std::any_of(result.authorities.begin(), result.authorities.end(),
                         [](const Rr& rr) { return rr.type == RrType::NSEC; }) &&
             (result.rcode == Rcode::NXDOMAIN ||
              (result.rcode == Rcode::NOERROR && result.records.empty()))) {
    // Negative answers carrying an NSEC proof: authenticate the denial
    // (RFC 4035 §5.4). Without a proof the answer simply stays
    // unvalidated — in this simulation signed zones always attach their
    // denials, so walking the chain for proof-less negatives would only
    // reclassify unsigned zones as insecure at real cost (the daily scan
    // issues tens of thousands of such negatives).
    ++stats_.validations;
    switch (validator_.validate_denial(qname, qtype, result.authorities,
                                       clock_.now(), &chain_cache_)) {
      case dnssec::Validation::secure:
        result.validated = true;
        break;
      case dnssec::Validation::insecure:
        result.validated = false;
        break;
      case dnssec::Validation::bogus:
        // A secure zone that cannot prove its denial is lying somewhere.
        result.records.clear();
        result.authorities.clear();
        result.rcode = Rcode::SERVFAIL;
        result.validated = false;
        break;
    }
  }

  if (options_.cache_enabled && result.rcode != Rcode::SERVFAIL) {
    std::uint32_t ttl;
    if (!result.records.empty()) {
      ttl = options_.max_ttl;
      for (const auto& rr : result.records) ttl = std::min(ttl, rr.ttl);
    } else {
      // RFC 2308 §5: negative answers live for min(SOA TTL, SOA minimum)
      // as carried in the authority section, capped by our own ceiling.
      // Without a SOA (unsigned zones here omit the denial material) the
      // flat ceiling applies.
      ttl = options_.negative_ttl;
      for (const auto& rr : result.authorities) {
        if (rr.type != RrType::SOA) continue;
        if (const auto* soa = std::get_if<dns::SoaRdata>(&rr.rdata)) {
          ttl = std::min({ttl, rr.ttl, soa->minimum});
        }
      }
    }
    CacheEntry entry;
    entry.records = result.records;
    entry.authorities = result.authorities;
    // Honour the max_ttl clamp in what we store: hits must never serve a
    // TTL larger than the ablation knob allows.
    for (Rr& rr : entry.records) rr.ttl = std::min(rr.ttl, options_.max_ttl);
    entry.rcode = result.rcode;
    entry.validated = result.validated;
    entry.inserted = clock_.now();
    entry.expires = clock_.now() + net::Duration::secs(ttl);
    cache_[key] = std::move(entry);
  }
  return result;
}

RecursiveResolver::IterativeResult RecursiveResolver::iterate(const Name& qname,
                                                              RrType qtype,
                                                              int depth) {
  IterativeResult out;
  if (depth > 4) {  // NS-address resolution recursion guard
    out.rcode = Rcode::SERVFAIL;
    return out;
  }

  // Random NS selection — the resolver behaviour §4.2.3 attributes
  // inconsistent HTTPS activation to.  The stream is keyed on the question
  // and the virtual instant (not on a shared sequential RNG), so the pick
  // is independent of whatever else this resolver has resolved — the
  // shard-count-invariance property documented in the header.
  util::Pcg32 selection(selection_stream(qname, qtype));

  std::vector<net::IpAddr> candidates = infra_.root_servers();
  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    if (candidates.empty()) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    net::IpAddr target =
        candidates[selection.uniform(static_cast<std::uint32_t>(candidates.size()))];
    const AuthoritativeServer* server = infra_.server_at(target);
    if (server == nullptr || server->offline()) {
      // Drop this candidate and retry with the rest.
      std::erase(candidates, target);
      continue;
    }
    ++stats_.upstream_queries;
    // UDP first with our EDNS payload size; retry over TCP on truncation.
    Message upstream_query = Message::make_query(
        static_cast<std::uint16_t>(rng_.next_u32()), qname, qtype,
        options_.validate_dnssec);
    Message resp = server->handle_udp(upstream_query, clock_.now());
    if (resp.header.tc) {
      ++stats_.tcp_fallbacks;
      resp = server->handle(upstream_query, clock_.now());
    }

    if (resp.header.rcode == Rcode::REFUSED) {
      std::erase(candidates, target);
      continue;
    }
    if (resp.header.rcode != Rcode::NOERROR) {
      out.rcode = resp.header.rcode;
      out.authorities = std::move(resp.authorities);
      return out;
    }
    if (!resp.answers.empty() || resp.header.aa) {
      // Authoritative answer (possibly NODATA, with its denial proof).
      out.records = std::move(resp.answers);
      out.authorities = std::move(resp.authorities);
      out.rcode = Rcode::NOERROR;
      return out;
    }

    // Referral: gather NS targets, prefer glue.
    std::vector<net::IpAddr> next;
    std::vector<Name> ns_hosts;
    for (const auto& rr : resp.authorities) {
      if (rr.type == RrType::NS) {
        ns_hosts.push_back(std::get<dns::NsRdata>(rr.rdata).nsdname);
      }
    }
    if (ns_hosts.empty()) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    std::vector<Name> glued;
    for (const auto& rr : resp.additionals) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
        next.push_back(net::IpAddr(a->address));
        glued.push_back(rr.owner);
      } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
        next.push_back(net::IpAddr(aaaa->address));
        glued.push_back(rr.owner);
      }
    }
    // Resolve any NS host the referral did not glue (out-of-bailiwick NS):
    // with partial glue a resolver must still consider every listed server,
    // or it would systematically miss providers — and the §4.2.3 mixed-
    // provider inconsistencies with them.
    for (const auto& host : ns_hosts) {
      if (std::find(glued.begin(), glued.end(), host) != glued.end()) continue;
      auto addrs = resolve_ns_addr(host, depth + 1);
      next.insert(next.end(), addrs.begin(), addrs.end());
    }
    candidates = std::move(next);
  }
  out.rcode = Rcode::SERVFAIL;
  return out;
}

std::vector<net::IpAddr> RecursiveResolver::resolve_ns_addr(const Name& host,
                                                            int depth) {
  std::vector<net::IpAddr> out;
  auto result = lookup_rrset(host, RrType::A, depth);
  for (const auto& rr : result.records) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      out.push_back(net::IpAddr(a->address));
    }
  }
  return out;
}

}  // namespace httpsrr::resolver
