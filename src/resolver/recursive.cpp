#include "resolver/recursive.h"

#include <algorithm>

#include "dns/view.h"

namespace httpsrr::resolver {

using dns::Message;
using dns::MessageView;
using dns::Name;
using dns::Rcode;
using dns::Rr;
using dns::RrType;

namespace {

std::unique_ptr<net::Transport> make_transport(const net::WireService& service,
                                               const ResolverOptions& options) {
  if (options.transport == TransportKind::datagram) {
    auto t = std::make_unique<net::DatagramTransport>(service,
                                                      options.transport_faults);
    t->set_tcp_only(options.transport_tcp_only);
    return t;
  }
  return std::make_unique<net::LoopbackTransport>(service);
}

// Materializes one view section into an owned vector.  False means some
// record failed to decode — the reply is treated as malformed and the
// caller moves on to another server.
bool materialize_section(const MessageView& view, bool authority,
                         std::vector<Rr>& out) {
  const std::size_t n =
      authority ? view.authority_count() : view.answer_count();
  out.clear();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto rr = (authority ? view.authority(i) : view.answer(i)).materialize();
    if (!rr) return false;
    out.push_back(std::move(*rr));
  }
  return true;
}

}  // namespace

RecursiveResolver::RecursiveResolver(const DnsInfra& infra,
                                     const net::SimClock& clock,
                                     dns::DnskeyRdata root_anchor,
                                     Options options)
    : infra_(infra),
      clock_(clock),
      chain_source_(infra, clock),
      validator_(chain_source_, std::move(root_anchor)),
      options_(options),
      wire_service_(infra, clock),
      transport_(make_transport(wire_service_, options)),
      rng_(options.seed),
      selection_seed_(options.selection_seed != 0 ? options.selection_seed
                                                  : options.seed) {}

dns::WireWriter& RecursiveResolver::query_writer(int depth) {
  while (query_writers_.size() <= static_cast<std::size_t>(depth)) {
    query_writers_.push_back(std::make_unique<dns::WireWriter>());
  }
  return *query_writers_[static_cast<std::size_t>(depth)];
}

std::shared_ptr<const std::vector<Rr>> ResolvedAnswer::answers_snapshot()
    const {
  if (shared_answers_) return shared_answers_;
  if (owned_answers_.empty()) {
    static const auto kEmpty = std::make_shared<const std::vector<Rr>>();
    return kEmpty;
  }
  return std::make_shared<const std::vector<Rr>>(owned_answers_);
}

std::uint64_t RecursiveResolver::selection_stream(const Name& qname,
                                                  RrType qtype) {
  IterateSeq& seq = iterate_seq_[CacheKey{qname, qtype}];
  if (seq.at != clock_.now()) {
    seq.at = clock_.now();
    seq.count = 0;
  }
  std::uint64_t stream = util::mix64(
      selection_seed_ ^ util::mix64(dns::NameHash{}(qname)) ^
      (static_cast<std::uint64_t>(qtype) << 48) ^
      (static_cast<std::uint64_t>(clock_.now().unix_seconds) *
       0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(seq.count) << 32));
  ++seq.count;
  return stream;
}

dns::Message RecursiveResolver::resolve(const Name& qname, RrType qtype) {
  // Query/response skeletons exist for API parity (id draw included — the
  // rng_ stream is unobservable state, but tests may rely on the echoed
  // question); the resolution itself runs on the shared path.
  Message query = Message::make_query(
      static_cast<std::uint16_t>(rng_.next_u32()), qname, qtype);
  Message resp = Message::make_response(query);

  ResolvedAnswer shared = resolve_shared(qname, qtype);
  auto answers = shared.answers();
  resp.answers.assign(answers.begin(), answers.end());
  auto authorities = shared.authorities();
  resp.authorities.assign(authorities.begin(), authorities.end());
  resp.header.rcode = shared.rcode;
  resp.header.ad = shared.ad;
  return resp;
}

ResolvedAnswer RecursiveResolver::resolve_shared(const Name& qname,
                                                 RrType qtype) {
  ++stats_.queries;
  ResolvedAnswer out;

  bool all_validated = true;
  Name current = qname;
  Rcode rcode = Rcode::NOERROR;

  for (int hop = 0; hop <= options_.max_cname_chain; ++hop) {
    auto result = lookup_rrset(current, qtype, 0);
    rcode = result.rcode;
    if (rcode != Rcode::NOERROR || result.records->empty()) {
      // Negative terminal (NXDOMAIN or NODATA): the denial proof decides AD.
      out.shared_authorities_ = std::move(result.authorities);
      all_validated = all_validated && result.validated;
      break;
    }
    if (out.owned_answers_.empty() && !out.shared_answers_) {
      // First positive RRset: keep it shared — a chain that ends here (the
      // common case) never copies a record.
      out.shared_answers_ = result.records;
    } else {
      if (out.shared_answers_) {
        // Chain grew past one hop: degrade to an owned accumulation.
        out.owned_answers_ = *out.shared_answers_;
        out.shared_answers_.reset();
      }
      out.owned_answers_.insert(out.owned_answers_.end(),
                                result.records->begin(),
                                result.records->end());
    }
    all_validated = all_validated && result.validated;

    // CNAME chasing: if we asked for something else and only got a CNAME,
    // continue with the target.
    if (qtype == RrType::CNAME) break;
    bool has_final = false;
    const dns::CnameRdata* cname = nullptr;
    for (const auto& rr : *result.records) {
      if (rr.type == qtype) has_final = true;
      if (rr.type == RrType::CNAME && rr.owner == current) {
        cname = std::get_if<dns::CnameRdata>(&rr.rdata);
      }
    }
    if (has_final || cname == nullptr) break;
    current = cname->target;
  }

  out.rcode = rcode;
  out.ad = options_.validate_dnssec && all_validated &&
           (!out.answers().empty() || !out.authorities().empty());
  if (rcode == Rcode::SERVFAIL) ++stats_.servfails;
  return out;
}

RecursiveResolver::RrsetResult RecursiveResolver::lookup_rrset(
    const Name& qname, RrType qtype, int depth) {
  CacheKey key{qname, qtype};
  if (options_.cache_enabled) {
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.expires > clock_.now()) {
      ++stats_.cache_hits;
      const CacheEntry& entry = it->second;
      RrsetResult out{entry.records, entry.authorities, entry.rcode,
                      entry.validated};
      // Serve the decayed TTL remainder, not the stored original: a client
      // caching our answer must expire it no later than we do (RFC 1035
      // §3.2.1 — the mechanism behind the §4.3.5 staleness windows).  The
      // scan's steady state queries within the insertion second, so the
      // zero-elapsed branch (no copy at all) dominates.
      auto elapsed = static_cast<std::uint64_t>(
          (clock_.now() - entry.inserted).seconds);
      if (elapsed > 0) {
        for (auto* section : {&out.records, &out.authorities}) {
          if ((*section)->empty()) continue;
          auto decayed = std::make_shared<std::vector<Rr>>(**section);
          for (Rr& rr : *decayed) {
            rr.ttl = rr.ttl > elapsed
                         ? static_cast<std::uint32_t>(rr.ttl - elapsed)
                         : 0;
          }
          *section = std::move(decayed);
        }
      }
      return out;
    }
    ++stats_.cache_misses;
  }

  IterativeResult result = iterate(qname, qtype, depth);

  // DNSSEC validation of positive answers. Answers may contain several
  // RRsets (a CNAME plus the chased target); each one is validated on its
  // own, and AD requires every RRset to be secure (RFC 4035 §4.9.3).
  if (options_.validate_dnssec && result.rcode == Rcode::NOERROR &&
      !result.records.empty()) {
    ++stats_.validations;
    std::vector<std::pair<Name, RrType>> groups;
    for (const auto& rr : result.records) {
      if (rr.type == RrType::RRSIG) continue;
      std::pair<Name, RrType> key_pair{rr.owner, rr.type};
      if (std::find(groups.begin(), groups.end(), key_pair) == groups.end()) {
        groups.push_back(std::move(key_pair));
      }
    }
    bool all_secure = !groups.empty();
    bool bogus = false;
    for (const auto& [owner, type] : groups) {
      std::vector<Rr> subset;
      for (const auto& rr : result.records) {
        bool covers = false;
        if (rr.type == RrType::RRSIG) {
          const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
          covers = sig != nullptr && sig->type_covered == type;
        }
        if ((rr.owner == owner && rr.type == type) ||
            (rr.owner == owner && covers)) {
          subset.push_back(rr);
        }
      }
      switch (validator_.validate(owner, subset, clock_.now(), &chain_cache_)) {
        case dnssec::Validation::secure:
          break;
        case dnssec::Validation::insecure:
          all_secure = false;
          break;
        case dnssec::Validation::bogus:
          bogus = true;
          break;
      }
    }
    if (bogus) {
      result.records.clear();
      result.rcode = Rcode::SERVFAIL;
      result.validated = false;
    } else {
      result.validated = all_secure;
    }
  } else if (options_.validate_dnssec &&
             std::any_of(result.authorities.begin(), result.authorities.end(),
                         [](const Rr& rr) { return rr.type == RrType::NSEC; }) &&
             (result.rcode == Rcode::NXDOMAIN ||
              (result.rcode == Rcode::NOERROR && result.records.empty()))) {
    // Negative answers carrying an NSEC proof: authenticate the denial
    // (RFC 4035 §5.4). Without a proof the answer simply stays
    // unvalidated — in this simulation signed zones always attach their
    // denials, so walking the chain for proof-less negatives would only
    // reclassify unsigned zones as insecure at real cost (the daily scan
    // issues tens of thousands of such negatives).
    ++stats_.validations;
    switch (validator_.validate_denial(qname, qtype, result.authorities,
                                       clock_.now(), &chain_cache_)) {
      case dnssec::Validation::secure:
        result.validated = true;
        break;
      case dnssec::Validation::insecure:
        result.validated = false;
        break;
      case dnssec::Validation::bogus:
        // A secure zone that cannot prove its denial is lying somewhere.
        result.records.clear();
        result.authorities.clear();
        result.rcode = Rcode::SERVFAIL;
        result.validated = false;
        break;
    }
  }

  // Freeze the iterated sections into shared immutable vectors: the cache
  // entry and the caller reference the same snapshots from here on.
  RrsetResult shared;
  shared.records =
      std::make_shared<std::vector<Rr>>(std::move(result.records));
  shared.authorities =
      std::make_shared<std::vector<Rr>>(std::move(result.authorities));
  shared.rcode = result.rcode;
  shared.validated = result.validated;

  if (options_.cache_enabled && shared.rcode != Rcode::SERVFAIL) {
    std::uint32_t ttl;
    if (!shared.records->empty()) {
      ttl = options_.max_ttl;
      for (const auto& rr : *shared.records) ttl = std::min(ttl, rr.ttl);
    } else {
      // RFC 2308 §5: negative answers live for min(SOA TTL, SOA minimum)
      // as carried in the authority section, capped by our own ceiling.
      // Without a SOA (unsigned zones here omit the denial material) the
      // flat ceiling applies.
      ttl = options_.negative_ttl;
      for (const auto& rr : *shared.authorities) {
        if (rr.type != RrType::SOA) continue;
        if (const auto* soa = std::get_if<dns::SoaRdata>(&rr.rdata)) {
          ttl = std::min({ttl, rr.ttl, soa->minimum});
        }
      }
    }
    CacheEntry entry;
    entry.records = shared.records;
    // Honour the max_ttl clamp in what we store: hits must never serve a
    // TTL larger than the ablation knob allows.  The miss reply keeps the
    // authoritative TTLs, as before — only clamping forces a copy.
    if (std::any_of(
            shared.records->begin(), shared.records->end(),
            [&](const Rr& rr) { return rr.ttl > options_.max_ttl; })) {
      auto clamped = std::make_shared<std::vector<Rr>>(*shared.records);
      for (Rr& rr : *clamped) rr.ttl = std::min(rr.ttl, options_.max_ttl);
      entry.records = std::move(clamped);
    }
    entry.authorities = shared.authorities;
    entry.rcode = shared.rcode;
    entry.validated = shared.validated;
    entry.inserted = clock_.now();
    entry.expires = clock_.now() + net::Duration::secs(ttl);
    cache_[key] = std::move(entry);
  }
  return shared;
}

RecursiveResolver::IterativeResult RecursiveResolver::iterate(const Name& qname,
                                                              RrType qtype,
                                                              int depth) {
  IterativeResult out;
  if (depth > 4) {  // NS-address resolution recursion guard
    out.rcode = Rcode::SERVFAIL;
    return out;
  }

  // Random NS selection — the resolver behaviour §4.2.3 attributes
  // inconsistent HTTPS activation to.  The stream is keyed on the question
  // and the virtual instant (not on a shared sequential RNG), so the pick
  // is independent of whatever else this resolver has resolved — the
  // shard-count-invariance property documented in the header.
  util::Pcg32 selection(selection_stream(qname, qtype));

  // One reusable upstream query, encoded once into this depth's writer;
  // only the id bytes are re-patched per attempt (ids are unobservable —
  // the server keys its response cache on the question, not the envelope).
  // The bytes are emitted directly — same layout Message::make_query()
  // + encode_into() produces (RD set, one question, one OPT trailer) —
  // because a Message temporary per iterate() costs three allocations the
  // cold path feels.
  const std::uint16_t udp_payload = dns::Edns{}.udp_payload_size;
  dns::WireWriter& qw = query_writer(depth);
  qw.clear();
  qw.reserve(12 + qname.wire_length() + 4 + 11);
  qw.u16(0);       // id, re-patched per attempt below
  qw.u16(0x0100);  // flags: QUERY, RD
  qw.u16(1);       // QDCOUNT
  qw.u16(0);       // ANCOUNT
  qw.u16(0);       // NSCOUNT
  qw.u16(1);       // ARCOUNT (the OPT pseudo-RR)
  qw.name(qname);
  qw.u16(static_cast<std::uint16_t>(qtype));
  qw.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  qw.u8(0);  // OPT: root owner
  qw.u16(static_cast<std::uint16_t>(RrType::OPT));
  qw.u16(udp_payload);
  qw.u32(options_.validate_dnssec ? 0x00008000u : 0u);  // DO bit
  qw.u16(0);  // empty OPT RDATA
  const std::span<const std::uint8_t> query_wire(qw.data());
  const std::size_t udp_limit = udp_payload;

  std::vector<net::IpAddr> candidates = infra_.root_servers();
  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    if (candidates.empty()) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    net::IpAddr target =
        candidates[selection.uniform(static_cast<std::uint32_t>(candidates.size()))];
    qw.patch_u16(0, static_cast<std::uint16_t>(rng_.next_u32()));
    // The exchange travels as wire bytes both ways; the reply is read
    // through a view over the transport-owned buffer.  `reply` must stay
    // in scope for as long as `view` is used (see net/transport.h).
    net::TransportReply reply =
        transport_->exchange(target, query_wire, udp_limit);
    if (!reply.ok()) {
      // Timeout (offline server, dropped datagram): drop this candidate
      // and retry with the rest.
      std::erase(candidates, target);
      continue;
    }
    ++stats_.upstream_queries;
    if (reply.tcp_retried) ++stats_.tcp_fallbacks;

    auto parsed = MessageView::parse(reply.bytes());
    if (!parsed || parsed->trailing_bytes() != 0) {
      // Unparseable or garbage-trailed reply: as good as no reply.
      std::erase(candidates, target);
      continue;
    }
    const MessageView& view = *parsed;
    const Rcode rcode = view.header().rcode;

    if (rcode == Rcode::REFUSED) {
      std::erase(candidates, target);
      continue;
    }
    if (rcode != Rcode::NOERROR) {
      if (!materialize_section(view, /*authority=*/true, out.authorities)) {
        out.authorities.clear();
        std::erase(candidates, target);
        continue;
      }
      out.rcode = rcode;
      return out;
    }
    if (view.answer_count() > 0 || view.header().aa) {
      // Authoritative answer (possibly NODATA, with its denial proof).
      if (!materialize_section(view, /*authority=*/false, out.records) ||
          !materialize_section(view, /*authority=*/true, out.authorities)) {
        out.records.clear();
        out.authorities.clear();
        std::erase(candidates, target);
        continue;
      }
      out.rcode = Rcode::NOERROR;
      return out;
    }

    // Referral: gather NS targets from the authority section and glue
    // addresses from the additional section — all read straight off the
    // wire.  Only an unglued (out-of-bailiwick) NS host materializes a
    // name, to recurse on its address.
    std::size_t ns_count = 0;
    for (std::size_t i = 0; i < view.authority_count(); ++i) {
      if (view.authority(i).type() == RrType::NS) ++ns_count;
    }
    if (ns_count == 0) {
      out.rcode = Rcode::SERVFAIL;
      return out;
    }
    std::vector<net::IpAddr> next;
    for (std::size_t i = 0; i < view.additional_count(); ++i) {
      auto rr = view.additional(i);
      if (auto a = rr.a_addr()) {
        next.push_back(net::IpAddr(*a));
      } else if (auto aaaa = rr.aaaa_addr()) {
        next.push_back(net::IpAddr(*aaaa));
      }
    }
    // Collect NS hosts the referral did not glue (matching owner names on
    // the wire, case-folded).  Materialize them *before* recursing: the
    // nested iterate reuses the transport, which invalidates this reply's
    // buffer — no view access is legal past the first resolve_ns_addr.
    std::vector<Name> unglued;
    bool malformed = false;
    for (std::size_t i = 0; i < view.authority_count() && !malformed; ++i) {
      auto ns = view.authority(i);
      if (ns.type() != RrType::NS) continue;
      bool glued = false;
      for (std::size_t j = 0; j < view.additional_count() && !glued; ++j) {
        auto add = view.additional(j);
        if (add.type() != RrType::A && add.type() != RrType::AAAA) continue;
        glued = add.owner_equals_target_of(ns);
      }
      if (glued) continue;
      auto host = ns.name_target();
      if (!host) {
        malformed = true;
        break;
      }
      unglued.push_back(std::move(*host));
    }
    if (malformed) {
      std::erase(candidates, target);
      continue;
    }
    // Resolve the unglued hosts (out-of-bailiwick NS): with partial glue a
    // resolver must still consider every listed server, or it would
    // systematically miss providers — and the §4.2.3 mixed-provider
    // inconsistencies with them.
    for (const auto& host : unglued) {
      auto addrs = resolve_ns_addr(host, depth + 1);
      next.insert(next.end(), addrs.begin(), addrs.end());
    }
    candidates = std::move(next);
  }
  out.rcode = Rcode::SERVFAIL;
  return out;
}

std::span<const std::uint8_t> RecursiveResolver::resolve_wire(
    const Name& qname, RrType qtype, dns::WireWriter& w) {
  ResolvedAnswer answer = resolve_shared(qname, qtype);
  const auto answers = answer.answers();
  const auto authorities = answer.authorities();

  // Assemble the client-visible response directly on the wire: header,
  // question, then the shared sections encoded in place (no Message
  // round-trip), OPT last — the same layout Message::encode_into emits.
  dns::Header h;
  h.id = static_cast<std::uint16_t>(rng_.next_u32());
  h.qr = true;
  h.rd = true;
  h.ra = true;
  h.ad = answer.ad;
  h.rcode = answer.rcode;

  w.clear();
  w.u16(h.id);
  w.u16(dns::pack_flags(h));
  w.u16(1);  // QDCOUNT
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(1);  // ARCOUNT: the OPT pseudo-RR
  w.name_compressed(qname);
  w.u16(static_cast<std::uint16_t>(qtype));
  w.u16(static_cast<std::uint16_t>(dns::RrClass::IN));
  for (const auto& rr : answers) dns::encode_rr(rr, w);
  for (const auto& rr : authorities) dns::encode_rr(rr, w);
  // OPT (RFC 6891 §6.1): root owner, CLASS = payload size, TTL bit 15 = DO.
  w.u8(0);
  w.u16(static_cast<std::uint16_t>(RrType::OPT));
  w.u16(dns::Edns{}.udp_payload_size);
  w.u32(options_.validate_dnssec ? 0x00008000u : 0u);
  w.u16(0);
  return std::span<const std::uint8_t>(w.data());
}

std::vector<net::IpAddr> RecursiveResolver::resolve_ns_addr(const Name& host,
                                                            int depth) {
  std::vector<net::IpAddr> out;
  auto result = lookup_rrset(host, RrType::A, depth);
  for (const auto& rr : *result.records) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      out.push_back(net::IpAddr(a->address));
    }
  }
  return out;
}

}  // namespace httpsrr::resolver
