#pragma once

// resolver::Endpoint — the wire-true stub↔scanner boundary.
//
// The scanner used to consume in-process ResolvedAnswer objects straight
// from a RecursiveResolver pair: the last seam in the pipeline where no
// DNS bytes flowed.  An Endpoint closes that gap.  The scanner hands a
// wave of questions to exactly one interface; under it, queries travel as
// encoded DNS messages and replies come back as wire bytes that the client
// reads through dns::MessageView — ResolvedAnswer is reconstructed *from
// bytes* (ResolvedAnswer::from_parts), with everything the scan needs
// carried in the reply itself:
//
//   * AD bit            — the standard header flag;
//   * rcode             — header low nibble + the OPT TTL's extended byte;
//   * per-RRset TTLs    — each record's TTL field at resolution time
//                         (cache decay included: the server encodes the
//                         decayed remainder, not the zone TTL);
//   * fallback metadata — the scan-meta EDNS option (dns/edns.h): the
//                         reply says whether the backup resolver answered,
//                         the query says which resolver to ask and at what
//                         virtual instant.
//
// Three interchangeable endpoints:
//
//   EngineEndpoint — the existing engine path, unchanged underneath: waves
//     run through resolver::QueryEngine on an in-process resolver pair and
//     the answers are handed across directly.  The scan-default (the bench
//     gate holds this path to the historical allocation/time budget).
//   LocalEndpoint  — the determinism baseline for the wire format: same
//     resolver pair, but every answer makes the full byte round-trip
//     (encode_endpoint_reply → MessageView → decode_endpoint_reply)
//     before the scanner sees it.  The 5k digest must not move.
//   SocketEndpoint — real sockets: queries go to an httpsrr_serve
//     recursive process over net::SocketTransport (per-shard transport,
//     own fds), replies are the server's enriched wire images.  A K-shard
//     Study multiplexes K SocketEndpoints against one server process.
//
// Determinism rules (DESIGN.md "Wire-true stub boundary" has the full
// argument): a shard's question stream is issued in request order; the
// scan-meta shard index keys a dedicated resolver pair inside the server,
// so the K-shard socket scan runs the very resolver instances the
// in-process Study would have built, fed the same per-shard streams in the
// same order — and the snapshot digest is invariant across {engine, local,
// socket} × shard count.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/edns.h"
#include "net/socket_transport.h"
#include "resolver/engine.h"
#include "resolver/recursive.h"
#include "resolver/socket_server.h"
#include "util/result.h"

namespace httpsrr::resolver {

// ---- Wire codec shared by clients (endpoints) and the server -------------

// Encodes a stub query: standard recursive-desired question with EDNS
// (DO=1, default payload size) whose OPT RDATA carries `meta`.
void encode_endpoint_query(dns::WireWriter& w, std::uint16_t id,
                           const dns::Name& qname, dns::RrType qtype,
                           const dns::ScanMeta& meta);

// Encodes the enriched client-visible response: resolve_wire's layout
// (header, question, answer/authority sections, OPT last) plus the
// extended-rcode byte in the OPT TTL and — when `from_backup` — the
// scan-meta option in the OPT RDATA.  `id` is echoed in the header (the
// socket server patches the client's id over it anyway).
void encode_endpoint_reply(dns::WireWriter& w, std::uint16_t id,
                           const dns::Name& qname, dns::RrType qtype,
                           const ResolvedAnswer& answer, bool dnssec_ok,
                           bool from_backup);

struct DecodedReply {
  ResolvedAnswer answer;
  bool from_backup = false;
};

// Parses an enriched reply back into a ResolvedAnswer: sections
// materialized from the bytes, AD from the header, rcode from the
// extended-rcode accessor, fallback metadata from the scan-meta option.
// Any malformation — unparseable message, trailing bytes, a record that
// fails to materialize, a hostile scan-meta option — is an error; callers
// treat it like a lost reply (SERVFAIL).
[[nodiscard]] util::Result<DecodedReply> decode_endpoint_reply(
    std::span<const std::uint8_t> wire);

// ---- The seam ------------------------------------------------------------

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Resolves every request with the stub fallback policy (primary first,
  // SERVFAILs retried on the backup when one exists) and returns answers
  // in request order.
  [[nodiscard]] virtual std::vector<ResolvedAnswer> run(
      std::span<const QueryEngine::Request> requests) = 0;

  // The scan's virtual clock (unix seconds).  In-process endpoints ignore
  // it — they share the client's SimClock; SocketEndpoint forwards it in
  // every query so the server process advances its own Internet.
  virtual void set_virtual_time(std::uint64_t unix_seconds) {
    (void)unix_seconds;
  }

  // Day-boundary maintenance: drops resolver state that expiry has made
  // unobservable (RecursiveResolver::sweep_expired).  In-process endpoints
  // sweep their pair right here and return the evicted-entry count; the
  // socket endpoint returns 0 — its serve process runs the same sweep when
  // a query's scan-meta virtual time advances past the previous instant.
  // Behavior-neutral on every endpoint, which is what keeps the snapshot
  // digest invariant across {engine, local, socket} with GC on.
  virtual std::uint64_t collect_expired() { return 0; }

  // Client-observed resolver counters for this endpoint (Study aggregates
  // them across shards).
  [[nodiscard]] virtual ResolverStats stats() const = 0;

  // Requests that SERVFAILed on the primary and were retried on the
  // backup.
  [[nodiscard]] virtual std::uint64_t fallbacks() const = 0;
};

// ---- In-process endpoints ------------------------------------------------

// The engine path: QueryEngine waves over an owned or borrowed resolver
// pair, answers handed across in process.  This is byte-for-byte the
// pre-endpoint Study wave (and the StubResolver policy at wave size 1).
class EngineEndpoint : public Endpoint {
 public:
  EngineEndpoint(std::unique_ptr<RecursiveResolver> primary,
                 std::unique_ptr<RecursiveResolver> backup);
  // Borrowing form for callers that keep ownership (StubResolver's legacy
  // constructor, tools that flush the resolver cache between rounds).
  EngineEndpoint(RecursiveResolver& primary, RecursiveResolver* backup);

  [[nodiscard]] std::vector<ResolvedAnswer> run(
      std::span<const QueryEngine::Request> requests) override;
  std::uint64_t collect_expired() override;
  [[nodiscard]] ResolverStats stats() const override;
  [[nodiscard]] std::uint64_t fallbacks() const override { return fallbacks_; }

  [[nodiscard]] RecursiveResolver& primary() { return *primary_; }
  [[nodiscard]] RecursiveResolver* backup() { return backup_; }

 protected:
  // The wave with per-request fallback provenance: fell_back (when non
  // null) is resized to the request count, true where the backup answered.
  [[nodiscard]] std::vector<ResolvedAnswer> run_wave(
      std::span<const QueryEngine::Request> requests,
      std::vector<bool>* fell_back);

 private:
  std::unique_ptr<RecursiveResolver> owned_primary_;
  std::unique_ptr<RecursiveResolver> owned_backup_;
  RecursiveResolver* primary_;
  RecursiveResolver* backup_;
  std::uint64_t fallbacks_ = 0;
};

// The determinism baseline for the wire format: the same engine waves,
// but every answer is encoded into an enriched reply and decoded back
// before the scanner sees it — byte round-trip without a socket.
class LocalEndpoint final : public EngineEndpoint {
 public:
  using EngineEndpoint::EngineEndpoint;

  [[nodiscard]] std::vector<ResolvedAnswer> run(
      std::span<const QueryEngine::Request> requests) override;

 private:
  dns::WireWriter writer_;
};

// ---- The socket endpoint -------------------------------------------------

struct SocketEndpointOptions {
  net::SocketEndpoint server;      // the httpsrr_serve process
  std::uint16_t shard = 0;         // scan-meta shard index
  bool backup = true;              // server hosts a backup: retry SERVFAILs
  std::size_t max_in_flight = 32;  // pipelined queries per pass
  std::uint32_t timeout_ms = 5000;
  int retransmits = 2;
};

// One shard's client leg: an owned SocketTransport (independent sockets
// and fds per shard), pipelined up to max_in_flight, queries carrying the
// scan-meta option (virtual time + shard + backup routing), replies decoded
// from the wire.  A transport-level timeout or a malformed reply becomes a
// SERVFAIL answer — the same surface an unreachable upstream has on the
// in-process path.
class SocketEndpoint final : public Endpoint {
 public:
  explicit SocketEndpoint(SocketEndpointOptions options);

  [[nodiscard]] bool ok() const { return transport_.ok(); }

  [[nodiscard]] std::vector<ResolvedAnswer> run(
      std::span<const QueryEngine::Request> requests) override;
  void set_virtual_time(std::uint64_t unix_seconds) override {
    virtual_time_ = unix_seconds;
  }
  [[nodiscard]] ResolverStats stats() const override;
  [[nodiscard]] std::uint64_t fallbacks() const override { return fallbacks_; }

  [[nodiscard]] const net::SocketStats& socket_stats() const {
    return transport_.stats();
  }

 private:
  // Sends requests[indices] (all of them when `indices` is null) with the
  // given backup flag and stores decoded answers at their request slots.
  void pass(std::span<const QueryEngine::Request> requests,
            const std::vector<std::size_t>* indices, bool to_backup,
            std::vector<ResolvedAnswer>& answers,
            std::vector<bool>* servfailed);

  SocketEndpointOptions options_;
  net::SocketTransport transport_;
  dns::WireWriter writer_;
  std::optional<std::uint64_t> virtual_time_;
  std::uint16_t next_id_ = 1;
  std::uint64_t fallbacks_ = 0;
  ResolverStats stats_;
};

// ---- The server side -----------------------------------------------------

// WireResponder for httpsrr_serve's recursive scan mode: parses the
// scan-meta option off each query, advances the hosting process's virtual
// clock, routes to the (shard, primary/backup) resolver — pairs built
// lazily through the factory, so the server materializes exactly the
// resolver instances the client shards address — and answers with the
// enriched reply encoding.  Malformed queries (including hostile scan-meta
// options) earn FORMERR.  Single-threaded like every WireResponder: called
// only from the SocketServer event loop.
class ScanResponder final : public WireResponder {
 public:
  // factory(shard, backup) builds the resolver for one pool slot.
  using ResolverFactory = std::function<std::unique_ptr<RecursiveResolver>(
      std::uint16_t shard, bool backup)>;
  // advance(unix_seconds) moves the hosting process's simulated Internet
  // forward (never backward — implementations must ignore the past).
  using AdvanceFn = std::function<void(std::uint64_t unix_seconds)>;

  ScanResponder(ResolverFactory factory, AdvanceFn advance)
      : factory_(std::move(factory)), advance_(std::move(advance)) {}

  // Cumulative entries dropped by the server-side day-boundary sweeps.
  [[nodiscard]] std::uint64_t swept_entries() const { return swept_; }

  [[nodiscard]] std::shared_ptr<const net::WireBytes> respond(
      std::span<const std::uint8_t> query) override;

  [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }

 private:
  struct Pair {
    std::unique_ptr<RecursiveResolver> primary;
    std::unique_ptr<RecursiveResolver> backup;
  };
  [[nodiscard]] RecursiveResolver& resolver_for(std::uint16_t shard,
                                                bool backup);

  ResolverFactory factory_;
  AdvanceFn advance_;
  std::unordered_map<std::uint16_t, Pair> pool_;
  dns::WireWriter writer_;
  // Server-side mirror of the client's day boundary: when a query carries a
  // later scan-meta instant than every query before it, the pool's resolver
  // caches just crossed their TTL horizon — sweep them.
  std::optional<std::uint64_t> last_virtual_time_;
  std::uint64_t swept_ = 0;
};

}  // namespace httpsrr::resolver
