#include "resolver/engine.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace httpsrr::resolver {

QueryEngine::Join QueryEngine::try_join(ResolutionTask& t,
                                        const CacheKey& key) {
  if (t.solo) return Join::bypass;
  auto [it, fresh] = joins_.try_emplace(key);
  if (fresh) {
    it->second.owner = &t;
    return Join::owner;
  }
  if (it->second.owner == &t) {
    // Re-entrant probe from the owner's own frame stack (the serial
    // schedule's bounded recursion): let it run, as serial would.
    return Join::bypass;
  }
  it->second.waiters.push_back(&t);
  return Join::parked;
}

void QueryEngine::release(const CacheKey& key, const RrsetResult& result) {
  auto it = joins_.find(key);
  if (it == joins_.end()) return;
  // Detach before waking: a resumed waiter's re-probe must be free to
  // register itself as the next owner of this key.
  std::vector<ResolutionTask*> waiters = std::move(it->second.waiters);
  joins_.erase(it);
  std::sort(waiters.begin(), waiters.end(),
            [](const auto* a, const auto* b) { return a->seq < b->seq; });
  const auto& opts = resolver_.options();
  const bool fan_out = opts.coalesce_queries && opts.cache_enabled &&
                       result.rcode != dns::Rcode::SERVFAIL;
  for (ResolutionTask* w : waiters) {
    if (fan_out) {
      resolver_.complete_parked(*w, result, this);
    } else {
      resolver_.resume_parked(*w);
    }
    ready_.push_back(w);
  }
}

QueryEngine::ResolutionTask* QueryEngine::break_stall() {
  ResolutionTask* victim = nullptr;
  const CacheKey* victim_key = nullptr;
  for (const auto& [key, entry] : joins_) {
    for (ResolutionTask* w : entry.waiters) {
      if (victim == nullptr || w->seq < victim->seq) {
        victim = w;
        victim_key = &key;
      }
    }
  }
  assert(victim != nullptr && "stalled with no parked waiter");
  auto& waiters = joins_.find(*victim_key)->second.waiters;
  std::erase(waiters, victim);
  victim->solo = true;
  resolver_.resume_parked(*victim);
  return victim;
}

std::vector<ResolvedAnswer> QueryEngine::run(
    std::span<const Request> requests) {
  std::vector<ResolvedAnswer> results(requests.size());
  const std::size_t width =
      std::max<std::size_t>(1, resolver_.options().max_in_flight);
  const std::size_t udp_limit = dns::Edns{}.udp_payload_size;

  // Task slots are pooled and pointer-stable (the join table and token map
  // hold raw pointers across suspensions).
  std::vector<std::unique_ptr<ResolutionTask>> pool;
  std::vector<ResolutionTask*> free_slots;
  std::unordered_map<net::SendToken, ResolutionTask*> pending;
  std::size_t next_request = 0;
  std::uint64_t next_seq = 1;
  std::size_t active = 0;
  std::uint64_t peak = 0;

  const auto admit = [&] {
    while (active < width && next_request < requests.size()) {
      ResolutionTask* t = nullptr;
      if (!free_slots.empty()) {
        t = free_slots.back();
        free_slots.pop_back();
      } else {
        pool.push_back(std::make_unique<ResolutionTask>());
        t = pool.back().get();
      }
      const Request& req = requests[next_request];
      resolver_.task_start(*t, req.qname, req.qtype);
      t->seq = next_seq++;
      t->index = next_request++;
      ++active;
      peak = std::max<std::uint64_t>(peak, active);
      ready_.push_back(t);
    }
  };

  admit();
  while (active > 0) {
    if (!ready_.empty()) {
      // Drain lowest admission seq first — the deterministic order.  The
      // vector never exceeds max_in_flight entries, so a linear min-scan
      // beats maintaining a heap.
      auto min_it = std::min_element(
          ready_.begin(), ready_.end(),
          [](const auto* a, const auto* b) { return a->seq < b->seq; });
      ResolutionTask* t = *min_it;
      ready_.erase(min_it);
      if (t->status == TaskStatus::running) resolver_.task_advance(*t, this);
      switch (t->status) {
        case TaskStatus::need_exchange:
          t->token = resolver_.transport().send(
              t->pending_server, resolver_.pending_query(*t), udp_limit);
          pending.emplace(t->token, t);
          break;
        case TaskStatus::done:
          results[t->index] = std::move(t->out);
          free_slots.push_back(t);
          --active;
          admit();
          break;
        case TaskStatus::parked:
          // Registered as a waiter; release() re-queues it.
          break;
        case TaskStatus::running:
          assert(false && "task_advance returned while still runnable");
          break;
      }
      continue;
    }
    if (pending.empty()) {
      // Everything runnable is parked and nothing is on the wire: a
      // waits-for cycle.  Open the valve and keep going.
      ready_.push_back(break_stall());
      continue;
    }
    auto reply = resolver_.transport().poll();
    assert(reply.has_value() && "in-flight sends must complete");
    auto it = pending.find(reply->token);
    assert(it != pending.end());
    ResolutionTask* t = it->second;
    pending.erase(it);
    resolver_.task_deliver(*t, reply->reply, this);
    ready_.push_back(t);
  }

  assert(joins_.empty() && "join table must drain with the tasks");
  ready_.clear();
  resolver_.stats_.in_flight_peak =
      std::max(resolver_.stats_.in_flight_peak, peak);
  return results;
}

}  // namespace httpsrr::resolver
