#pragma once

// resolver::QueryEngine — multiplexes many resumable resolutions over one
// RecursiveResolver's async transport.
//
// The engine owns no resolution logic: every task runs the exact state
// machine resolve_shared() drives serially.  What the engine adds is the
// schedule — up to ResolverOptions::max_in_flight tasks are admitted in
// request order, each one advanced until it suspends on a wire exchange,
// the encoded query handed to Transport::send(), and the task resumed when
// Transport::poll() delivers the reply.  With max_in_flight = 1 the
// schedule collapses to admit → advance → exchange → deliver → … — the
// serial order, byte for byte.
//
// Coalescing and the join table: two in-flight tasks probing the same
// (qname, qtype) must not both iterate, or they would consume same-instant
// selection repeats {0, 1} where the serial schedule gives the second task
// a cache hit — and the answer stream would depend on scheduling.  The
// join table therefore *always* parks the duplicate behind the in-flight
// owner (the determinism contract needs it); ResolverOptions::
// coalesce_queries only decides how the waiter wakes up.  Coalescing on,
// the owner's freshly-cached answer is fanned out directly (counted as a
// cache hit plus a coalesced_queries tick).  Coalescing off — or when the
// owner SERVFAILed, which the serial schedule would retry — the waiter
// re-enters at the cache probe and reads (or redoes) the lookup itself.
//
// Scheduling invariants that keep the engine deterministic:
//   * tasks are admitted and advanced in ascending admission seq;
//   * released waiters wake in ascending seq;
//   * replies are consumed in the transport's arrival order (virtual time,
//     then send order — itself deterministic under the latency model).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "resolver/recursive.h"

namespace httpsrr::resolver {

class QueryEngine {
 public:
  struct Request {
    dns::Name qname;
    dns::RrType qtype = dns::RrType::HTTPS;
  };

  explicit QueryEngine(RecursiveResolver& resolver) : resolver_(resolver) {}

  // Resolves every request and returns the answers in request order.
  // Width and coalescing come from the resolver's options; depth 1
  // reproduces sequential resolve_shared() calls exactly.
  [[nodiscard]] std::vector<ResolvedAnswer> run(
      std::span<const Request> requests);

 private:
  friend class RecursiveResolver;

  using CacheKey = RecursiveResolver::CacheKey;
  using RrsetResult = RecursiveResolver::RrsetResult;
  using ResolutionTask = RecursiveResolver::ResolutionTask;
  using TaskStatus = RecursiveResolver::TaskStatus;

  enum class Join : std::uint8_t {
    owner,   // first in flight for this key: iterate, then release()
    parked,  // an owner exists: suspend until its answer lands
    bypass,  // re-entrant probe from the owner's own stack: proceed
  };

  // Called from the cache-probe stage on a miss.  Registers the frame as
  // owner, parks the task behind an existing owner, or lets the probe
  // through (own-stack re-entrancy, or a solo task after a cycle break).
  Join try_join(ResolutionTask& t, const CacheKey& key);
  // Called when the owning frame finishes: wakes every waiter in seq
  // order, fanning out `result` (coalescing) or resuming their probes.
  void release(const CacheKey& key, const RrsetResult& result);

  struct InFlight {
    ResolutionTask* owner = nullptr;
    std::vector<ResolutionTask*> waiters;
  };

  // Deadlock valve: with every runnable task parked and nothing on the
  // wire (a waits-for cycle through circular unglued-NS glue), detaches
  // the lowest-seq waiter and reruns it solo.  Deterministic (global seq
  // minimum) and unreachable on well-formed delegation graphs.
  ResolutionTask* break_stall();

  RecursiveResolver& resolver_;
  std::unordered_map<CacheKey, InFlight, RecursiveResolver::CacheKeyHash>
      joins_;
  std::vector<ResolutionTask*> ready_;  // runnable; drained in seq order
};

}  // namespace httpsrr::resolver
