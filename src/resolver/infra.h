#pragma once

// DnsInfra — the directory of the simulated DNS infrastructure.
//
// Maps server IPs to AuthoritativeServer instances, tracks which zone
// apexes exist (for zone-cut discovery), and exposes the root server set
// that iterative resolution starts from.  Also provides the ChainSource
// adapter the DNSSEC validator uses to pull DNSKEY/DS material.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "dnssec/chain.h"
#include "net/ip.h"
#include "net/time.h"
#include "net/transport.h"
#include "resolver/authoritative.h"

namespace httpsrr::resolver {

// Directory extension for flyweight zone hosting: when the ecosystem stops
// registering one zone entry per domain (a million-entry map), it installs a
// ZoneDirectory instead, which answers "who serves this apex?" from compact
// per-domain state.  The returned pointer may reference thread-local scratch
// and is only valid until the next servers_for() call on the same thread —
// callers must consume it immediately (every current caller does).
class ZoneDirectory {
 public:
  virtual ~ZoneDirectory() = default;

  // Servers authoritative for `apex`, or nullptr when the directory does not
  // know the name as a zone apex.
  [[nodiscard]] virtual const std::vector<AuthoritativeServer*>* servers_for(
      const dns::Name& apex) const = 0;
};

class DnsInfra {
 public:
  DnsInfra() = default;

  // Creates a server run by `operator_name` at `address`.
  AuthoritativeServer& add_server(std::string operator_name, net::IpAddr address);

  // Registers an externally-owned server so queries to its address reach
  // it. The caller keeps ownership and must outlive the infra.
  void adopt_server(AuthoritativeServer* server);

  [[nodiscard]] AuthoritativeServer* server_at(const net::IpAddr& address) const;

  // Registers a zone apex (for apex discovery) and the servers that host it.
  void register_zone(const dns::Name& apex,
                     std::vector<AuthoritativeServer*> servers);
  void unregister_zone(const dns::Name& apex);
  [[nodiscard]] const std::vector<AuthoritativeServer*>* zone_servers(
      const dns::Name& apex) const;

  // Closest enclosing registered zone apex for a name.
  [[nodiscard]] std::optional<dns::Name> zone_apex(const dns::Name& name) const;

  // Installs a fallback directory consulted by zone_servers()/zone_apex()
  // whenever the eager registry misses. Explicitly registered zones (root,
  // TLDs) keep priority. The directory must outlive the infra's use of it.
  void set_zone_directory(const ZoneDirectory* directory) {
    directory_ = directory;
  }

  void set_root_servers(std::vector<net::IpAddr> addrs) { roots_ = std::move(addrs); }
  [[nodiscard]] const std::vector<net::IpAddr>& root_servers() const { return roots_; }

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }

  // Turns on response memoization for every registered server (owned and
  // adopted). Only safe under the frozen-epoch contract: the owner must
  // call bump_epoch() before any state change — ecosystem::Internet does
  // both (enable at construction, bump inside advance_to).
  void enable_response_caching();

  // Caps every server's rendered-response memo at `limit` entries (0 =
  // unlimited). At the cap a server serves fresh renders without publishing
  // them; the next bump_epoch() clears the memo and admission restarts.
  void set_response_cache_limit(std::size_t limit);

  // Epoch edge: drops every memoized response and signature across the
  // directory. Cheap when nothing is cached.
  void bump_epoch();

  // Aggregated memo/encoder counters across all registered servers.
  [[nodiscard]] HotPathStats hot_path_stats() const;

 private:
  std::vector<std::unique_ptr<AuthoritativeServer>> servers_;
  std::map<net::IpAddr, AuthoritativeServer*> by_address_;
  // Hashed on purpose: zone_apex() probes one candidate per label on the
  // walk towards the root, and with thousands of registered zones an
  // ordered map would pay O(log n) full Name comparisons per probe.
  std::unordered_map<dns::Name, std::vector<AuthoritativeServer*>,
                     dns::NameHash>
      zones_;
  const ZoneDirectory* directory_ = nullptr;
  std::vector<net::IpAddr> roots_;
};

// WireService over the infra directory: routes query bytes to the
// authoritative server at the destination IP and returns its shared wire
// image (aliased into the server's SharedResponse — no copy, no extra
// control block).  Offline or unassigned addresses answer nothing, which
// the transport surfaces as a timeout.
class InfraWireService final : public net::WireService {
 public:
  InfraWireService(const DnsInfra& infra, const net::SimClock& clock)
      : infra_(infra), clock_(clock) {}

  [[nodiscard]] std::shared_ptr<const net::WireBytes> serve(
      const net::IpAddr& server,
      std::span<const std::uint8_t> query) const override {
    const AuthoritativeServer* s = infra_.server_at(server);
    if (s == nullptr || s->offline()) return nullptr;
    SharedResponse served = s->serve_wire(query, clock_.now());
    if (!served) return nullptr;
    // Aliasing share: the returned buffer keeps the whole ServedResponse
    // alive, so holders obey the same epoch-survival contract.
    const net::WireBytes* wire = &served->wire;
    return std::shared_ptr<const net::WireBytes>(std::move(served), wire);
  }

 private:
  const DnsInfra& infra_;
  const net::SimClock& clock_;
};

// ChainSource backed by the infra: pulls DNSKEY from a zone's own servers
// and DS from the parent zone's servers, exactly like a validating
// resolver would (but without caching — the resolver caches above this).
class InfraChainSource final : public dnssec::ChainSource {
 public:
  InfraChainSource(const DnsInfra& infra, const net::SimClock& clock)
      : infra_(infra), clock_(clock) {}

  [[nodiscard]] std::optional<dns::Name> zone_apex(
      const dns::Name& name) const override;
  [[nodiscard]] std::vector<dns::Rr> dnskey_with_sigs(
      const dns::Name& zone) const override;
  [[nodiscard]] std::vector<dns::Rr> ds_with_sigs(
      const dns::Name& zone) const override;

 private:
  [[nodiscard]] AuthoritativeServer* first_online(const dns::Name& apex) const;

  const DnsInfra& infra_;
  const net::SimClock& clock_;
};

}  // namespace httpsrr::resolver
