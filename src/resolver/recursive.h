#pragma once

// RecursiveResolver — a caching, validating recursive resolver on the
// virtual clock, standing in for the Google (8.8.8.8) / Cloudflare
// (1.1.1.1) public resolvers the paper queries.
//
// Behaviour modelled:
//   * iterative resolution from the root, following referrals with glue;
//   * per-query random NS selection at each zone cut — the "resolver
//     selection mechanisms" that surface inconsistent HTTPS answers when a
//     domain mixes providers with and without HTTPS support (§4.2.3);
//   * RRset caching with TTL expiry on the virtual clock — the mechanism
//     behind IP-hint/A mismatches and stale ECH keys (§4.3.5, §4.4.2);
//   * CNAME chasing with the full chain in the answer section;
//   * DNSSEC validation via ChainValidator, surfacing the AD bit, and
//     SERVFAIL on bogus data.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dnssec/chain.h"
#include "net/time.h"
#include "resolver/infra.h"
#include "util/rng.h"

namespace httpsrr::resolver {

struct ResolverStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
  std::uint64_t servfails = 0;
  std::uint64_t validations = 0;
};

struct ResolverOptions {
  bool validate_dnssec = true;
  bool cache_enabled = true;          // ablation: disable caching entirely
  std::uint32_t max_ttl = 86400;      // TTL clamp (ablation knob)
  std::uint32_t negative_ttl = 300;
  std::uint64_t seed = 0x5eed;
  int max_referrals = 32;
  int max_cname_chain = 8;
};

class RecursiveResolver {
 public:
  using Options = ResolverOptions;

  RecursiveResolver(const DnsInfra& infra, const net::SimClock& clock,
                    dns::DnskeyRdata root_anchor,
                    Options options = ResolverOptions());

  // Resolves (qname, qtype) and returns a full response message: answers
  // include any CNAME chain; header.ad reflects DNSSEC validation.
  [[nodiscard]] dns::Message resolve(const dns::Name& qname, dns::RrType qtype);

  void flush_cache() {
    cache_.clear();
    chain_cache_.clear();
  }
  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct CacheEntry {
    std::vector<dns::Rr> records;      // data + covering RRSIGs
    std::vector<dns::Rr> authorities;  // SOA/NSEC proof for negatives
    dns::Rcode rcode = dns::Rcode::NOERROR;
    net::SimTime expires;
    bool validated = false;  // AD state at insertion time
  };
  using CacheKey = std::pair<dns::Name, dns::RrType>;

  // One iterative lookup (no CNAME chasing); returns records + rcode.
  struct IterativeResult {
    std::vector<dns::Rr> records;
    std::vector<dns::Rr> authorities;  // negative-answer proof material
    dns::Rcode rcode = dns::Rcode::NOERROR;
    bool validated = false;
  };
  [[nodiscard]] IterativeResult lookup_rrset(const dns::Name& qname,
                                             dns::RrType qtype, int depth);
  [[nodiscard]] IterativeResult iterate(const dns::Name& qname,
                                        dns::RrType qtype, int depth);

  // Resolves an NS host to candidate addresses (glue-free path).
  [[nodiscard]] std::vector<net::IpAddr> resolve_ns_addr(const dns::Name& host,
                                                         int depth);

  const DnsInfra& infra_;
  const net::SimClock& clock_;
  InfraChainSource chain_source_;
  dnssec::ChainValidator validator_;
  Options options_;
  util::Pcg32 rng_;
  mutable dnssec::ChainStatusCache chain_cache_;
  std::map<CacheKey, CacheEntry> cache_;
  ResolverStats stats_;
};

}  // namespace httpsrr::resolver
