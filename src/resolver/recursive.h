#pragma once

// RecursiveResolver — a caching, validating recursive resolver on the
// virtual clock, standing in for the Google (8.8.8.8) / Cloudflare
// (1.1.1.1) public resolvers the paper queries.
//
// Behaviour modelled:
//   * iterative resolution from the root, following referrals with glue;
//   * per-query random NS selection at each zone cut — the "resolver
//     selection mechanisms" that surface inconsistent HTTPS answers when a
//     domain mixes providers with and without HTTPS support (§4.2.3);
//   * RRset caching with TTL expiry on the virtual clock — the mechanism
//     behind IP-hint/A mismatches and stale ECH keys (§4.3.5, §4.4.2);
//   * CNAME chasing with the full chain in the answer section;
//   * DNSSEC validation via ChainValidator, surfacing the AD bit, and
//     SERVFAIL on bogus data.
//
// Thread-safety contract: a RecursiveResolver instance is NOT safe for
// concurrent use — resolve() mutates the cache, stats, and RNG streams.
// The sharded Study gives every worker thread its own resolver pair; the
// shared substrate underneath (DnsInfra, AuthoritativeServer::handle,
// SimClock reads) is const and safe for concurrent readers as long as
// nothing mutates the simulated Internet during the fan-out.
//
// Determinism contract: the observable answer stream (which NS a query
// lands on, and therefore which of several inconsistent zone copies it
// sees) is a pure function of (selection_seed, qname, qtype, virtual
// time, same-instant repeat count).  It does NOT depend on the order in
// which *other* names were resolved, so scans partitioned across K
// resolvers produce exactly the answers a single resolver would — the
// property the Study's shard-count-invariance test pins.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dns/message.h"
#include "dnssec/chain.h"
#include "net/time.h"
#include "net/transport.h"
#include "resolver/infra.h"
#include "util/rng.h"

namespace httpsrr::resolver {

struct ResolverStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
  std::uint64_t timeouts = 0;       // exchanges that never produced a reply
  std::uint64_t servfails = 0;
  std::uint64_t validations = 0;
  // Server-side hot-path counters (filled in by aggregators with access to
  // the DnsInfra, e.g. Study::resolver_stats — a resolver instance can't
  // see them): pre-rendered response-cache hits, RRSIG memo hits, and the
  // bytes the authoritative encoders produced.
  std::uint64_t auth_cache_hits = 0;
  std::uint64_t sig_cache_hits = 0;
  std::uint64_t bytes_encoded = 0;
  // Async engine / transport surface: the most resolutions ever in flight
  // at once, lookups answered by joining an in-flight twin instead of
  // re-asking the wire, and the transport's virtual-latency picture
  // (its own µs clock — the SimClock never moves for RTTs).
  std::uint64_t in_flight_peak = 0;      // merges as max, not sum
  std::uint64_t coalesced_queries = 0;
  std::uint64_t virtual_us = 0;
  std::uint64_t reordered_replies = 0;
  std::array<std::uint64_t, net::kRttBuckets> rtt_hist{};

  // Merge helper: the sharded Study aggregates per-shard resolver stats.
  ResolverStats& operator+=(const ResolverStats& other) {
    queries += other.queries;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    upstream_queries += other.upstream_queries;
    tcp_fallbacks += other.tcp_fallbacks;
    timeouts += other.timeouts;
    servfails += other.servfails;
    validations += other.validations;
    auth_cache_hits += other.auth_cache_hits;
    sig_cache_hits += other.sig_cache_hits;
    bytes_encoded += other.bytes_encoded;
    // Shards run side by side: the fleet's peak is the widest shard, the
    // waits and RTT distribution accumulate.
    if (other.in_flight_peak > in_flight_peak) {
      in_flight_peak = other.in_flight_peak;
    }
    coalesced_queries += other.coalesced_queries;
    virtual_us += other.virtual_us;
    reordered_replies += other.reordered_replies;
    for (std::size_t i = 0; i < rtt_hist.size(); ++i) {
      rtt_hist[i] += other.rtt_hist[i];
    }
    return *this;
  }
};

// Which net::Transport carries the resolver's upstream exchanges.
enum class TransportKind : std::uint8_t {
  loopback,  // zero-copy shared wire images (default; the scan hot path)
  datagram,  // modelled UDP/TCP channel with real truncation + faults
};

struct ResolverOptions {
  bool validate_dnssec = true;
  bool cache_enabled = true;          // ablation: disable caching entirely
  std::uint32_t max_ttl = 86400;      // TTL clamp (ablation knob)
  std::uint32_t negative_ttl = 300;   // ceiling on RFC 2308 negative caching
  std::uint64_t seed = 0x5eed;
  // Seed for the observable NS-selection stream (see the determinism
  // contract above).  0 means "use `seed`".  A sharded Study gives every
  // shard the same selection_seed but a distinct seed, so shard count
  // never changes which authoritative server answers a given question.
  std::uint64_t selection_seed = 0;
  int max_referrals = 32;
  int max_cname_chain = 8;
  // Upstream channel selection + opt-in datagram faults (drop/duplicate/
  // garbage — only meaningful with TransportKind::datagram).
  TransportKind transport = TransportKind::loopback;
  net::TransportFaults transport_faults{};
  bool transport_tcp_only = false;  // datagram only: skip the UDP leg
  // Deterministic virtual RTTs on the datagram channel (timing only —
  // answers never change; see net::LatencyModel).
  net::LatencyModel transport_latency{};
  // QueryEngine defaults: how many resolutions it multiplexes over the
  // transport at once (1 = serial, byte-identical to resolve_shared), and
  // whether an in-flight twin's answer is fanned out to waiters
  // (coalescing off still parks duplicates — the determinism contract
  // requires it — but each waiter then reads the cache itself).
  std::size_t max_in_flight = 1;
  bool coalesce_queries = true;
};

// Allocation-lean resolve result for the scan hot path.  Sections are
// either *shared* with the resolver's cache (the steady-state case: a warm
// single-RRset answer is handed out without copying a record) or *owned*
// (assembled CNAME chains, TTL-decayed hits).  The shared vectors are
// immutable snapshots guarded by shared_ptr — safe to hold across further
// resolves and across cache expiry, but never mutate them through the
// spans.
class ResolvedAnswer {
 public:
  dns::Rcode rcode = dns::Rcode::NOERROR;
  bool ad = false;  // DNSSEC-validated (the AD bit of the Message API)

  [[nodiscard]] std::span<const dns::Rr> answers() const {
    return shared_answers_ ? std::span<const dns::Rr>(*shared_answers_)
                           : std::span<const dns::Rr>(owned_answers_);
  }
  [[nodiscard]] std::span<const dns::Rr> authorities() const {
    return shared_authorities_ ? std::span<const dns::Rr>(*shared_authorities_)
                               : std::span<const dns::Rr>(owned_authorities_);
  }
  [[nodiscard]] bool has_answer_of_type(dns::RrType t) const {
    for (const auto& rr : answers()) {
      if (rr.type == t) return true;
    }
    return false;
  }

  // Shared handle to the answer section for observers that outlive this
  // answer (scanner observations): the cache's own immutable vector when
  // the answer is shared (the steady state — no record copies), a freshly
  // frozen copy for owned sections.  Never null; empty answers share one
  // static empty vector.
  [[nodiscard]] std::shared_ptr<const std::vector<dns::Rr>> answers_snapshot()
      const;

  // Reassembles an answer from owned sections — the wire-true endpoint
  // path, where the sections were just materialized out of a reply's
  // bytes (resolver/endpoint.h) rather than handed over in process.
  [[nodiscard]] static ResolvedAnswer from_parts(
      dns::Rcode rcode, bool ad, std::vector<dns::Rr> answers,
      std::vector<dns::Rr> authorities) {
    ResolvedAnswer out;
    out.rcode = rcode;
    out.ad = ad;
    out.owned_answers_ = std::move(answers);
    out.owned_authorities_ = std::move(authorities);
    return out;
  }

 private:
  friend class RecursiveResolver;
  std::shared_ptr<const std::vector<dns::Rr>> shared_answers_;
  std::shared_ptr<const std::vector<dns::Rr>> shared_authorities_;
  std::vector<dns::Rr> owned_answers_;
  std::vector<dns::Rr> owned_authorities_;
};

class QueryEngine;

class RecursiveResolver {
 public:
  using Options = ResolverOptions;

  RecursiveResolver(const DnsInfra& infra, const net::SimClock& clock,
                    dns::DnskeyRdata root_anchor,
                    Options options = ResolverOptions());

  // Resolves (qname, qtype) and returns a full response message: answers
  // include any CNAME chain; header.ad reflects DNSSEC validation.
  [[nodiscard]] dns::Message resolve(const dns::Name& qname, dns::RrType qtype);

  // Same resolution, without building a Message: the scanner's hot path.
  // Warm single-RRset answers are returned as cache-shared sections with
  // zero record copies; answer content, rcode and AD state are identical
  // to resolve()'s.
  [[nodiscard]] ResolvedAnswer resolve_shared(const dns::Name& qname,
                                              dns::RrType qtype);

  // Wire-true client surface: resolves and encodes the full response into
  // `w` (reused across calls — steady state allocates only what the answer
  // sections need), returning a span over the writer's buffer.  Callers
  // read it back through dns::MessageView; httpsrr_dig prints from this.
  [[nodiscard]] std::span<const std::uint8_t> resolve_wire(
      const dns::Name& qname, dns::RrType qtype, dns::WireWriter& w);

  // The transport carrying upstream exchanges.  Constructed from
  // Options::transport; tests may swap in an instrumented one (it must
  // wrap this resolver's wire_service(), or an equivalent route to the
  // same infra).
  [[nodiscard]] net::Transport& transport() { return *transport_; }
  void set_transport(std::unique_ptr<net::Transport> transport) {
    transport_ = std::move(transport);
  }
  [[nodiscard]] const net::WireService& wire_service() const {
    return wire_service_;
  }

  void flush_cache() {
    cache_.clear();
    chain_cache_.clear();
  }
  // Day-boundary GC: erases state that expiry has made unobservable — cache
  // entries whose TTL horizon passed (the hit check requires expires > now,
  // so they can only be overwritten, never served), same-instant selection
  // counters from an earlier instant (the next touch resets them anyway),
  // and expired chain statuses.  Answers, query accounting, and the scan
  // digest are bit-identical with or without the sweep; what changes is
  // that a longitudinal run stops accreting entries for churned-away
  // questions.  Returns the number of entries dropped.
  //
  // `grace` widens the eviction horizon: only entries expired for longer
  // than the grace window are dropped.  A recently-expired entry is
  // unreachable for reads either way (get paths require expires > now),
  // but leaving it in place lets the next refresh overwrite the node
  // in-place instead of paying an erase + re-insert cycle — with a daily
  // full-list scan, grace of one day turns millions of node frees and
  // re-allocations per day into assignments, and only keys the scan never
  // touched again (churned-out domains) are actually evicted.
  std::uint64_t sweep_expired(net::Duration grace = net::Duration::secs(0));
  // Resolver-side counters merged with the transport's timing block, so
  // virtual waits and the RTT histogram ride along wherever stats travel.
  [[nodiscard]] ResolverStats stats() const {
    ResolverStats s = stats_;
    const net::TransportTiming& t = transport_->timing();
    s.virtual_us = t.virtual_us;
    s.reordered_replies = t.reordered;
    s.rtt_hist = t.rtt_hist;
    return s;
  }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  friend class QueryEngine;
  // Cached RRsets are immutable shared vectors: a zero-elapsed hit (every
  // query of a scan day — the clock only moves between days) hands the
  // stored vector out by reference.  Decay and clamping paths copy.
  struct CacheEntry {
    std::shared_ptr<const std::vector<dns::Rr>> records;  // data + RRSIGs
    std::shared_ptr<const std::vector<dns::Rr>> authorities;  // negatives
    dns::Rcode rcode = dns::Rcode::NOERROR;
    net::SimTime inserted;  // cache hits serve the decayed TTL remainder
    net::SimTime expires;
    bool validated = false;  // AD state at insertion time
  };
  using CacheKey = std::pair<dns::Name, dns::RrType>;
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return k.first.hash() ^
             (static_cast<std::size_t>(k.second) * 0x9e3779b97f4a7c15ULL);
    }
  };

  // Same-instant repeat counter per question, so back-to-back uncached
  // queries at one virtual instant still spread over the NS set (§4.2.3)
  // while the per-day scan keeps a pure, order-independent selection.
  struct IterateSeq {
    net::SimTime at;
    std::uint32_t count = 0;
  };

  // One iterative lookup (no CNAME chasing); owned sections, pre-caching.
  struct IterativeResult {
    std::vector<dns::Rr> records;
    std::vector<dns::Rr> authorities;  // negative-answer proof material
    dns::Rcode rcode = dns::Rcode::NOERROR;
    bool validated = false;
  };
  // Cache-aware RRset lookup: shares the cached vectors on a hit.
  struct RrsetResult {
    std::shared_ptr<const std::vector<dns::Rr>> records;
    std::shared_ptr<const std::vector<dns::Rr>> authorities;
    dns::Rcode rcode = dns::Rcode::NOERROR;
    bool validated = false;
  };
  // ---- Resumable resolution state machine ------------------------------
  //
  // One resolution is a ResolutionTask: a stack of Frames (one per
  // lookup_rrset activation — the root question, CNAME-chase hops, and
  // nested NS-address lookups) plus the task-level CNAME continuation.
  // The machine runs until it needs a transport exchange, then suspends
  // with the encoded query ready; delivering the reply bytes resumes it.
  // resolve_shared() drives one task with blocking exchange() — the
  // single-implementation rule that makes engine depth 1 equal serial by
  // construction — and QueryEngine multiplexes many over send()/poll().

  enum class TaskStatus : std::uint8_t {
    running,        // advance() has work to do
    need_exchange,  // suspended: pending_query() must travel to pending_server
    parked,         // engine only: waiting on an in-flight twin's answer
    done,           // `out` is final
  };
  enum class FrameStage : std::uint8_t {
    probe,    // cache lookup / join check, then iterate setup
    pick,     // choose the next candidate server and suspend on the wire
    unglued,  // referral with unglued NS hosts: resolving their addresses
  };

  // One lookup_rrset activation.  Frame slots (and their vectors/writer)
  // are pooled per task: the stack index moves, capacity stays.
  struct Frame {
    dns::Name qname;
    dns::RrType qtype = dns::RrType::A;
    int depth = 0;
    FrameStage stage = FrameStage::probe;
    bool registered = false;  // owns the engine join-table entry for its key
    // iterate state — exactly the locals of the old blocking loop
    util::Pcg32 selection{0};
    int hop = 0;
    std::vector<net::IpAddr> candidates;
    net::IpAddr target;                       // current attempt's server
    std::unique_ptr<dns::WireWriter> writer;  // this frame's encoded query
    IterativeResult result;
    // referral-in-progress state
    std::vector<net::IpAddr> next;
    std::vector<dns::Name> unglued;
    std::size_t unglued_idx = 0;
  };

  struct ResolutionTask {
    std::uint64_t seq = 0;    // engine admission order (waiter wake order)
    std::size_t index = 0;    // engine request slot
    dns::Name qname;
    dns::RrType qtype = dns::RrType::A;
    TaskStatus status = TaskStatus::done;
    // CNAME-chase continuation (the old resolve_shared loop locals)
    dns::Name current;
    int hop = 0;
    bool all_validated = true;
    dns::Rcode rcode = dns::Rcode::NOERROR;
    ResolvedAnswer out;
    // frame stack: frames[0..frame_top) live, slots above keep capacity
    std::vector<Frame> frames;
    std::size_t frame_top = 0;
    net::IpAddr pending_server;
    net::SendToken token = 0;  // engine bookkeeping
    // Set by the engine's stall valve: this task no longer joins in-flight
    // twins (it broke out of a waits-for cycle and must make progress).
    bool solo = false;
  };

  void task_start(ResolutionTask& t, const dns::Name& qname,
                  dns::RrType qtype);
  // Runs the machine until the task suspends (need_exchange/parked) or
  // completes.  `engine` is null on the blocking path: no join table, no
  // parking — single-task execution is serial by definition.
  void task_advance(ResolutionTask& t, QueryEngine* engine);
  // Feeds the reply for the suspended exchange; caller re-advances.
  void task_deliver(ResolutionTask& t, const net::TransportReply& reply,
                    QueryEngine* engine);
  [[nodiscard]] std::span<const std::uint8_t> pending_query(
      const ResolutionTask& t) const;

  void push_frame(ResolutionTask& t, const dns::Name& qname,
                  dns::RrType qtype, int depth);
  void frame_probe(ResolutionTask& t, QueryEngine* engine);
  void frame_pick(ResolutionTask& t, QueryEngine* engine);
  void frame_unglued(ResolutionTask& t);
  // Validation + freeze + cache insert of the top frame's IterativeResult,
  // then frame_finish — the tail of the old lookup_rrset.
  void finish_iterate(ResolutionTask& t, QueryEngine* engine);
  // Pops the top frame and routes `result` to the parent frame (NS-address
  // extraction) or the task-level CNAME loop.
  void frame_finish(ResolutionTask& t, RrsetResult result,
                    QueryEngine* engine);
  // Engine wake paths for a parked frame: fan out the owner's (cacheable)
  // answer, or resume at probe to re-read the cache / re-run the lookup.
  void complete_parked(ResolutionTask& t, const RrsetResult& owner_result,
                       QueryEngine* engine);
  void resume_parked(ResolutionTask& t);
  void task_done(ResolutionTask& t);

  // Seeds the per-iterate selection stream for one question.
  [[nodiscard]] std::uint64_t selection_stream(const dns::Name& qname,
                                               dns::RrType qtype);

  const DnsInfra& infra_;
  const net::SimClock& clock_;
  InfraChainSource chain_source_;
  dnssec::ChainValidator validator_;
  Options options_;
  InfraWireService wire_service_;
  std::unique_ptr<net::Transport> transport_;
  // The blocking path's pooled task: resolve_shared reuses one machine
  // instance, so warm resolves allocate exactly what the old loop did.
  std::unique_ptr<ResolutionTask> blocking_task_;
  util::Pcg32 rng_;            // unobservable state only (message ids)
  std::uint64_t selection_seed_;
  mutable dnssec::ChainStatusCache chain_cache_;
  // Hash maps, not ordered maps: nothing iterates these, so only lookup
  // speed matters, and NameHash is already case-folded.
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::unordered_map<CacheKey, IterateSeq, CacheKeyHash> iterate_seq_;
  ResolverStats stats_;
};

}  // namespace httpsrr::resolver
