#pragma once

// RecursiveResolver — a caching, validating recursive resolver on the
// virtual clock, standing in for the Google (8.8.8.8) / Cloudflare
// (1.1.1.1) public resolvers the paper queries.
//
// Behaviour modelled:
//   * iterative resolution from the root, following referrals with glue;
//   * per-query random NS selection at each zone cut — the "resolver
//     selection mechanisms" that surface inconsistent HTTPS answers when a
//     domain mixes providers with and without HTTPS support (§4.2.3);
//   * RRset caching with TTL expiry on the virtual clock — the mechanism
//     behind IP-hint/A mismatches and stale ECH keys (§4.3.5, §4.4.2);
//   * CNAME chasing with the full chain in the answer section;
//   * DNSSEC validation via ChainValidator, surfacing the AD bit, and
//     SERVFAIL on bogus data.
//
// Thread-safety contract: a RecursiveResolver instance is NOT safe for
// concurrent use — resolve() mutates the cache, stats, and RNG streams.
// The sharded Study gives every worker thread its own resolver pair; the
// shared substrate underneath (DnsInfra, AuthoritativeServer::handle,
// SimClock reads) is const and safe for concurrent readers as long as
// nothing mutates the simulated Internet during the fan-out.
//
// Determinism contract: the observable answer stream (which NS a query
// lands on, and therefore which of several inconsistent zone copies it
// sees) is a pure function of (selection_seed, qname, qtype, virtual
// time, same-instant repeat count).  It does NOT depend on the order in
// which *other* names were resolved, so scans partitioned across K
// resolvers produce exactly the answers a single resolver would — the
// property the Study's shard-count-invariance test pins.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dns/message.h"
#include "dnssec/chain.h"
#include "net/time.h"
#include "net/transport.h"
#include "resolver/infra.h"
#include "util/rng.h"

namespace httpsrr::resolver {

struct ResolverStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t upstream_queries = 0;
  std::uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
  std::uint64_t servfails = 0;
  std::uint64_t validations = 0;
  // Server-side hot-path counters (filled in by aggregators with access to
  // the DnsInfra, e.g. Study::resolver_stats — a resolver instance can't
  // see them): pre-rendered response-cache hits, RRSIG memo hits, and the
  // bytes the authoritative encoders produced.
  std::uint64_t auth_cache_hits = 0;
  std::uint64_t sig_cache_hits = 0;
  std::uint64_t bytes_encoded = 0;

  // Merge helper: the sharded Study aggregates per-shard resolver stats.
  ResolverStats& operator+=(const ResolverStats& other) {
    queries += other.queries;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    upstream_queries += other.upstream_queries;
    tcp_fallbacks += other.tcp_fallbacks;
    servfails += other.servfails;
    validations += other.validations;
    auth_cache_hits += other.auth_cache_hits;
    sig_cache_hits += other.sig_cache_hits;
    bytes_encoded += other.bytes_encoded;
    return *this;
  }
};

// Which net::Transport carries the resolver's upstream exchanges.
enum class TransportKind : std::uint8_t {
  loopback,  // zero-copy shared wire images (default; the scan hot path)
  datagram,  // modelled UDP/TCP channel with real truncation + faults
};

struct ResolverOptions {
  bool validate_dnssec = true;
  bool cache_enabled = true;          // ablation: disable caching entirely
  std::uint32_t max_ttl = 86400;      // TTL clamp (ablation knob)
  std::uint32_t negative_ttl = 300;   // ceiling on RFC 2308 negative caching
  std::uint64_t seed = 0x5eed;
  // Seed for the observable NS-selection stream (see the determinism
  // contract above).  0 means "use `seed`".  A sharded Study gives every
  // shard the same selection_seed but a distinct seed, so shard count
  // never changes which authoritative server answers a given question.
  std::uint64_t selection_seed = 0;
  int max_referrals = 32;
  int max_cname_chain = 8;
  // Upstream channel selection + opt-in datagram faults (drop/duplicate/
  // garbage — only meaningful with TransportKind::datagram).
  TransportKind transport = TransportKind::loopback;
  net::TransportFaults transport_faults{};
  bool transport_tcp_only = false;  // datagram only: skip the UDP leg
};

// Allocation-lean resolve result for the scan hot path.  Sections are
// either *shared* with the resolver's cache (the steady-state case: a warm
// single-RRset answer is handed out without copying a record) or *owned*
// (assembled CNAME chains, TTL-decayed hits).  The shared vectors are
// immutable snapshots guarded by shared_ptr — safe to hold across further
// resolves and across cache expiry, but never mutate them through the
// spans.
class ResolvedAnswer {
 public:
  dns::Rcode rcode = dns::Rcode::NOERROR;
  bool ad = false;  // DNSSEC-validated (the AD bit of the Message API)

  [[nodiscard]] std::span<const dns::Rr> answers() const {
    return shared_answers_ ? std::span<const dns::Rr>(*shared_answers_)
                           : std::span<const dns::Rr>(owned_answers_);
  }
  [[nodiscard]] std::span<const dns::Rr> authorities() const {
    return shared_authorities_ ? std::span<const dns::Rr>(*shared_authorities_)
                               : std::span<const dns::Rr>(owned_authorities_);
  }
  [[nodiscard]] bool has_answer_of_type(dns::RrType t) const {
    for (const auto& rr : answers()) {
      if (rr.type == t) return true;
    }
    return false;
  }

  // Shared handle to the answer section for observers that outlive this
  // answer (scanner observations): the cache's own immutable vector when
  // the answer is shared (the steady state — no record copies), a freshly
  // frozen copy for owned sections.  Never null; empty answers share one
  // static empty vector.
  [[nodiscard]] std::shared_ptr<const std::vector<dns::Rr>> answers_snapshot()
      const;

 private:
  friend class RecursiveResolver;
  std::shared_ptr<const std::vector<dns::Rr>> shared_answers_;
  std::shared_ptr<const std::vector<dns::Rr>> shared_authorities_;
  std::vector<dns::Rr> owned_answers_;
  std::vector<dns::Rr> owned_authorities_;
};

class RecursiveResolver {
 public:
  using Options = ResolverOptions;

  RecursiveResolver(const DnsInfra& infra, const net::SimClock& clock,
                    dns::DnskeyRdata root_anchor,
                    Options options = ResolverOptions());

  // Resolves (qname, qtype) and returns a full response message: answers
  // include any CNAME chain; header.ad reflects DNSSEC validation.
  [[nodiscard]] dns::Message resolve(const dns::Name& qname, dns::RrType qtype);

  // Same resolution, without building a Message: the scanner's hot path.
  // Warm single-RRset answers are returned as cache-shared sections with
  // zero record copies; answer content, rcode and AD state are identical
  // to resolve()'s.
  [[nodiscard]] ResolvedAnswer resolve_shared(const dns::Name& qname,
                                              dns::RrType qtype);

  // Wire-true client surface: resolves and encodes the full response into
  // `w` (reused across calls — steady state allocates only what the answer
  // sections need), returning a span over the writer's buffer.  Callers
  // read it back through dns::MessageView; httpsrr_dig prints from this.
  [[nodiscard]] std::span<const std::uint8_t> resolve_wire(
      const dns::Name& qname, dns::RrType qtype, dns::WireWriter& w);

  // The transport carrying upstream exchanges.  Constructed from
  // Options::transport; tests may swap in an instrumented one (it must
  // wrap this resolver's wire_service(), or an equivalent route to the
  // same infra).
  [[nodiscard]] net::Transport& transport() { return *transport_; }
  void set_transport(std::unique_ptr<net::Transport> transport) {
    transport_ = std::move(transport);
  }
  [[nodiscard]] const net::WireService& wire_service() const {
    return wire_service_;
  }

  void flush_cache() {
    cache_.clear();
    chain_cache_.clear();
  }
  [[nodiscard]] const ResolverStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  // Cached RRsets are immutable shared vectors: a zero-elapsed hit (every
  // query of a scan day — the clock only moves between days) hands the
  // stored vector out by reference.  Decay and clamping paths copy.
  struct CacheEntry {
    std::shared_ptr<const std::vector<dns::Rr>> records;  // data + RRSIGs
    std::shared_ptr<const std::vector<dns::Rr>> authorities;  // negatives
    dns::Rcode rcode = dns::Rcode::NOERROR;
    net::SimTime inserted;  // cache hits serve the decayed TTL remainder
    net::SimTime expires;
    bool validated = false;  // AD state at insertion time
  };
  using CacheKey = std::pair<dns::Name, dns::RrType>;
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return k.first.hash() ^
             (static_cast<std::size_t>(k.second) * 0x9e3779b97f4a7c15ULL);
    }
  };

  // Same-instant repeat counter per question, so back-to-back uncached
  // queries at one virtual instant still spread over the NS set (§4.2.3)
  // while the per-day scan keeps a pure, order-independent selection.
  struct IterateSeq {
    net::SimTime at;
    std::uint32_t count = 0;
  };

  // One iterative lookup (no CNAME chasing); owned sections, pre-caching.
  struct IterativeResult {
    std::vector<dns::Rr> records;
    std::vector<dns::Rr> authorities;  // negative-answer proof material
    dns::Rcode rcode = dns::Rcode::NOERROR;
    bool validated = false;
  };
  // Cache-aware RRset lookup: shares the cached vectors on a hit.
  struct RrsetResult {
    std::shared_ptr<const std::vector<dns::Rr>> records;
    std::shared_ptr<const std::vector<dns::Rr>> authorities;
    dns::Rcode rcode = dns::Rcode::NOERROR;
    bool validated = false;
  };
  [[nodiscard]] RrsetResult lookup_rrset(const dns::Name& qname,
                                         dns::RrType qtype, int depth);
  [[nodiscard]] IterativeResult iterate(const dns::Name& qname,
                                        dns::RrType qtype, int depth);

  // Resolves an NS host to candidate addresses (glue-free path).
  [[nodiscard]] std::vector<net::IpAddr> resolve_ns_addr(const dns::Name& host,
                                                         int depth);

  // Seeds the per-iterate selection stream for one question.
  [[nodiscard]] std::uint64_t selection_stream(const dns::Name& qname,
                                               dns::RrType qtype);

  // Reusable query encoder for one iterate() nesting level.  iterate
  // re-enters itself through resolve_ns_addr, so each depth owns a writer
  // (stable addresses — the pool holds pointers) and steady-state query
  // encoding allocates nothing.
  [[nodiscard]] dns::WireWriter& query_writer(int depth);

  const DnsInfra& infra_;
  const net::SimClock& clock_;
  InfraChainSource chain_source_;
  dnssec::ChainValidator validator_;
  Options options_;
  InfraWireService wire_service_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<dns::WireWriter>> query_writers_;
  util::Pcg32 rng_;            // unobservable state only (message ids)
  std::uint64_t selection_seed_;
  mutable dnssec::ChainStatusCache chain_cache_;
  // Hash maps, not ordered maps: nothing iterates these, so only lookup
  // speed matters, and NameHash is already case-folded.
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::unordered_map<CacheKey, IterateSeq, CacheKeyHash> iterate_seq_;
  ResolverStats stats_;
};

}  // namespace httpsrr::resolver
