#pragma once

// StubResolver — the client-side stub used by the scanner and the browser
// models: queries a primary public resolver and falls back to a backup on
// failure, mirroring the paper's Google-primary / Cloudflare-backup setup.

#include "dns/message.h"
#include "resolver/recursive.h"

namespace httpsrr::resolver {

class StubResolver {
 public:
  explicit StubResolver(RecursiveResolver& primary,
                        RecursiveResolver* backup = nullptr)
      : primary_(primary), backup_(backup) {}

  [[nodiscard]] dns::Message query(const dns::Name& qname, dns::RrType qtype) {
    dns::Message resp = primary_.resolve(qname, qtype);
    if (resp.header.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve(qname, qtype);
    }
    return resp;
  }

  // Allocation-lean variant for the scan hot path: same primary/backup
  // policy, but the answer sections stay shared with the resolver cache
  // instead of being copied into a Message.
  [[nodiscard]] ResolvedAnswer query_shared(const dns::Name& qname,
                                            dns::RrType qtype) {
    ResolvedAnswer resp = primary_.resolve_shared(qname, qtype);
    if (resp.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve_shared(qname, qtype);
    }
    return resp;
  }

  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  RecursiveResolver& primary_;
  RecursiveResolver* backup_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace httpsrr::resolver
