#pragma once

// StubResolver — the client-side stub used by the scanner and the browser
// models: queries a primary public resolver and falls back to a backup on
// failure, mirroring the paper's Google-primary / Cloudflare-backup setup.

#include "dns/message.h"
#include "resolver/recursive.h"

namespace httpsrr::resolver {

class StubResolver {
 public:
  explicit StubResolver(RecursiveResolver& primary,
                        RecursiveResolver* backup = nullptr)
      : primary_(primary), backup_(backup) {}

  [[nodiscard]] dns::Message query(const dns::Name& qname, dns::RrType qtype) {
    dns::Message resp = primary_.resolve(qname, qtype);
    if (resp.header.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve(qname, qtype);
    }
    return resp;
  }

  // Allocation-lean variant for the scan hot path: same primary/backup
  // policy, but the answer sections stay shared with the resolver cache
  // instead of being copied into a Message.
  [[nodiscard]] ResolvedAnswer query_shared(const dns::Name& qname,
                                            dns::RrType qtype) {
    ResolvedAnswer resp = primary_.resolve_shared(qname, qtype);
    if (resp.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve_shared(qname, qtype);
    }
    return resp;
  }

  // Wire-true variant: the response arrives as DNS bytes in `w` and the
  // caller reads it through dns::MessageView (httpsrr_dig's print path).
  // Same primary/backup policy — the rcode is checked in the low nibble of
  // flags byte 3, straight off the wire.
  [[nodiscard]] std::span<const std::uint8_t> query_wire(const dns::Name& qname,
                                                         dns::RrType qtype,
                                                         dns::WireWriter& w) {
    auto bytes = primary_.resolve_wire(qname, qtype, w);
    const bool servfail =
        bytes.size() >= 4 &&
        (bytes[3] & 0x0f) == static_cast<std::uint8_t>(dns::Rcode::SERVFAIL);
    if (servfail && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve_wire(qname, qtype, w);
    }
    return bytes;
  }

  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  RecursiveResolver& primary_;
  RecursiveResolver* backup_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace httpsrr::resolver
