#pragma once

// StubResolver — the client-side stub used by the scanner and the browser
// models: queries a primary public resolver and falls back to a backup on
// failure, mirroring the paper's Google-primary / Cloudflare-backup setup.

#include "dns/message.h"
#include "resolver/recursive.h"

namespace httpsrr::resolver {

class StubResolver {
 public:
  explicit StubResolver(RecursiveResolver& primary,
                        RecursiveResolver* backup = nullptr)
      : primary_(primary), backup_(backup) {}

  [[nodiscard]] dns::Message query(const dns::Name& qname, dns::RrType qtype) {
    dns::Message resp = primary_.resolve(qname, qtype);
    if (resp.header.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
      ++fallbacks_;
      return backup_->resolve(qname, qtype);
    }
    return resp;
  }

  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  RecursiveResolver& primary_;
  RecursiveResolver* backup_;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace httpsrr::resolver
