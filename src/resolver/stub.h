#pragma once

// StubResolver — the client-side stub used by the scanner and the browser
// models, mirroring the paper's Google-primary / Cloudflare-backup setup.
//
// The stub is an Endpoint client: query_shared() runs a one-question wave
// through resolver::Endpoint, so the fallback policy (primary first,
// SERVFAIL retried on the backup) lives in exactly one place and the stub
// works over any endpoint — the in-process engine, the local byte
// round-trip, or a socket to another process.  The legacy constructor
// keeps the old surface alive by wrapping a borrowed resolver pair in an
// EngineEndpoint; it also retains direct resolver access for the two
// Message-shaped conveniences (query / query_wire) that predate the seam.

#include <memory>

#include "dns/message.h"
#include "resolver/endpoint.h"
#include "resolver/recursive.h"

namespace httpsrr::resolver {

class StubResolver {
 public:
  // Endpoint-backed stub: every query_shared travels through `endpoint`.
  explicit StubResolver(Endpoint& endpoint) : endpoint_(&endpoint) {}

  // Legacy form: borrow a resolver pair and wrap it in an EngineEndpoint.
  explicit StubResolver(RecursiveResolver& primary,
                        RecursiveResolver* backup = nullptr)
      : owned_(std::make_unique<EngineEndpoint>(primary, backup)),
        endpoint_(owned_.get()),
        primary_(&primary),
        backup_(backup) {}

  [[nodiscard]] dns::Message query(const dns::Name& qname, dns::RrType qtype) {
    if (primary_ != nullptr) {
      dns::Message resp = primary_->resolve(qname, qtype);
      if (resp.header.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
        ++direct_fallbacks_;
        return backup_->resolve(qname, qtype);
      }
      return resp;
    }
    // Endpoint-backed: assemble the response message from the decoded
    // answer (id 0 — there is no client-side rng stream to draw from).
    const QueryEngine::Request request{qname, qtype};
    auto answers = endpoint_->run({&request, 1});
    dns::Message resp =
        dns::Message::make_response(dns::Message::make_query(0, qname, qtype));
    const auto& answer = answers.front();
    auto section = answer.answers();
    resp.answers.assign(section.begin(), section.end());
    auto authorities = answer.authorities();
    resp.authorities.assign(authorities.begin(), authorities.end());
    resp.header.rcode = answer.rcode;
    resp.header.ad = answer.ad;
    return resp;
  }

  // Allocation-lean variant for the scan hot path: same primary/backup
  // policy (applied inside the endpoint), answer sections shared with the
  // resolver cache on the in-process engine path.  The legacy-constructed
  // stub takes the direct resolve_shared route — byte-identical to a
  // one-request engine wave (the engine's own depth-1 contract) without
  // the per-call wave bookkeeping, which keeps the warm-scan allocs/op
  // pins intact.
  [[nodiscard]] ResolvedAnswer query_shared(const dns::Name& qname,
                                            dns::RrType qtype) {
    if (primary_ != nullptr) {
      ResolvedAnswer resp = primary_->resolve_shared(qname, qtype);
      if (resp.rcode == dns::Rcode::SERVFAIL && backup_ != nullptr) {
        ++direct_fallbacks_;
        return backup_->resolve_shared(qname, qtype);
      }
      return resp;
    }
    const QueryEngine::Request request{qname, qtype};
    auto answers = endpoint_->run({&request, 1});
    return std::move(answers.front());
  }

  // Wire-true variant: the response arrives as DNS bytes in `w` and the
  // caller reads it through dns::MessageView (httpsrr_dig's print path).
  // Same primary/backup policy — the rcode is checked in the low nibble of
  // flags byte 3, straight off the wire.
  [[nodiscard]] std::span<const std::uint8_t> query_wire(const dns::Name& qname,
                                                         dns::RrType qtype,
                                                         dns::WireWriter& w) {
    if (primary_ != nullptr) {
      auto bytes = primary_->resolve_wire(qname, qtype, w);
      const bool servfail =
          bytes.size() >= 4 &&
          (bytes[3] & 0x0f) == static_cast<std::uint8_t>(dns::Rcode::SERVFAIL);
      if (servfail && backup_ != nullptr) {
        ++direct_fallbacks_;
        return backup_->resolve_wire(qname, qtype, w);
      }
      return bytes;
    }
    // Endpoint-backed: re-encode the decoded answer in the enriched reply
    // layout (the bytes the endpoint itself read, minus the transport).
    const QueryEngine::Request request{qname, qtype};
    auto answers = endpoint_->run({&request, 1});
    encode_endpoint_reply(w, 0, qname, qtype, answers.front(),
                          /*dnssec_ok=*/true, /*from_backup=*/false);
    return std::span<const std::uint8_t>(w.data());
  }

  [[nodiscard]] std::uint64_t fallbacks() const {
    return direct_fallbacks_ + endpoint_->fallbacks();
  }

  [[nodiscard]] Endpoint& endpoint() { return *endpoint_; }

 private:
  std::unique_ptr<EngineEndpoint> owned_;  // legacy-ctor wrapper
  Endpoint* endpoint_;
  // Legacy direct access for query()/query_wire(); null when endpoint-
  // constructed.
  RecursiveResolver* primary_ = nullptr;
  RecursiveResolver* backup_ = nullptr;
  std::uint64_t direct_fallbacks_ = 0;
};

}  // namespace httpsrr::resolver
