#pragma once

// resolver::SocketServer — a poll(2)-driven event loop that serves the
// simulated DNS ecosystem over real UDP and TCP sockets, so a second
// process (httpsrr_dig --server, ZDNS-style scanners, plain `dig`) can
// query it over 127.0.0.1.
//
// The server binds ONE endpoint (UDP + TCP on the same port; port 0 picks
// an ephemeral one) and answers through a WireResponder:
//   * AuthoritativeResponder — one simulated server's serve_wire view:
//     every query is answered exactly as the in-process LoopbackTransport
//     would answer it at that server's address (byte-identical full wire
//     images; the socket layer only adds id echo and UDP truncation);
//   * RecursiveResponder — a full validating RecursiveResolver front: the
//     recursion runs in-process over the fast loopback path, clients act
//     as stubs and get final answers in one hop.
//
// Wire behaviour:
//   * UDP replies are truncated (TC=1, sections dropped) when the full
//     image exceeds the query's advertised EDNS payload, clamped through
//     the RFC 6891 bounds [512, 4096] — no OPT means plain 512;
//   * TCP uses the standard 2-byte length prefix, supports multiple
//     queries per connection, and always carries the full image;
//   * graceful shutdown via a self-pipe: stop() is safe from any thread
//     and wakes the loop immediately.
//
// Determinism note: WHAT is answered stays a pure function of (ecosystem
// seed, virtual date, query) — same bytes as the in-process path.  WHEN it
// is answered is wall-clock and scheduling-dependent; only timing-free
// facts cross this boundary.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/time.h"
#include "net/transport.h"
#include "resolver/recursive.h"

namespace httpsrr::resolver {

// One query in, one full (TCP-size) wire image out.  Called only from the
// server's event-loop thread.  nullptr = drop the query (client times out).
class WireResponder {
 public:
  virtual ~WireResponder() = default;
  [[nodiscard]] virtual std::shared_ptr<const net::WireBytes> respond(
      std::span<const std::uint8_t> query) = 0;
};

// The serve_wire view of one simulated server address — byte-identical to
// what LoopbackTransport delivers for the same query at `front`.
class AuthoritativeResponder final : public WireResponder {
 public:
  AuthoritativeResponder(const net::WireService& service, net::IpAddr front)
      : service_(service), front_(front) {}
  [[nodiscard]] std::shared_ptr<const net::WireBytes> respond(
      std::span<const std::uint8_t> query) override {
    return service_.serve(front_, query);
  }

 private:
  const net::WireService& service_;
  net::IpAddr front_;
};

// A recursive front: parses the question, resolves it in-process, and
// returns the client-visible response (same layout as resolve_wire).
// Malformed or non-single-question queries are answered FORMERR.
class RecursiveResponder final : public WireResponder {
 public:
  explicit RecursiveResponder(RecursiveResolver& resolver)
      : resolver_(resolver) {}
  [[nodiscard]] std::shared_ptr<const net::WireBytes> respond(
      std::span<const std::uint8_t> query) override;

 private:
  RecursiveResolver& resolver_;
  dns::WireWriter writer_;
};

struct SocketServerOptions {
  net::SocketEndpoint bind;  // default: 127.0.0.1, ephemeral port
  int tcp_backlog = 16;
};

struct SocketServerStats {
  std::uint64_t udp_queries = 0;
  std::uint64_t tcp_queries = 0;
  std::uint64_t truncated_replies = 0;  // UDP answers sent TC=1
  std::uint64_t dropped_queries = 0;    // responder returned nullptr
  std::uint64_t tcp_connections = 0;
};

class SocketServer {
 public:
  SocketServer(WireResponder& responder, SocketServerOptions options = {});
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds UDP and TCP to the same port.  False (with sockets closed) if no
  // port could be claimed.  Must be called before run()/serve_in_background.
  [[nodiscard]] bool start();
  // The bound port (resolves an ephemeral bind); 0 before start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] net::SocketEndpoint endpoint() const {
    auto ep = options_.bind;
    ep.port = port_;
    return ep;
  }

  // Runs the event loop on the calling thread until stop().
  void run();
  // Runs the event loop on an internal thread; stop() joins it.
  void serve_in_background();
  // Signals the loop to exit (safe from any thread, idempotent) and joins
  // the background thread if one was started.
  void stop();

  [[nodiscard]] SocketServerStats stats() const;

 private:
  struct TcpConn {
    net::Fd fd;
    std::vector<std::uint8_t> in;   // accumulated unparsed input
    std::vector<std::uint8_t> out;  // pending framed output
    bool closing = false;           // peer EOF seen, flush then close
  };

  void handle_udp_readable();
  void handle_accept();
  // False = close the connection.
  bool handle_tcp_readable(TcpConn& conn);
  bool handle_tcp_writable(TcpConn& conn);
  void answer_tcp(TcpConn& conn, std::span<const std::uint8_t> query);

  WireResponder& responder_;
  SocketServerOptions options_;
  net::Fd udp_;
  net::Fd listener_;
  net::Fd wake_read_;
  net::Fd wake_write_;
  std::uint16_t port_ = 0;
  std::vector<TcpConn> conns_;
  std::vector<std::uint8_t> scratch_;  // UDP recv + reply assembly
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;

  // Counters live on the loop thread; stats() snapshots under the mutex so
  // tests and the bench harness can read them while the loop runs.
  mutable std::mutex stats_mutex_;
  SocketServerStats stats_;
};

}  // namespace httpsrr::resolver
