#pragma once

// Name-server analyses (§4.2.2 / §4.2.3):
//   * NsCategoryAnalysis  — Table 2: Full/Partial/None-Cloudflare shares.
//   * ProviderAnalysis    — Fig. 3 (daily distinct non-CF providers with
//                           HTTPS publishers), Fig. 10 (domain counts),
//                           Table 3 (top providers by distinct domains).
//   * IntermittentUse     — §4.2.3: domains whose HTTPS record comes and
//                           goes, attributed to same-NS toggling, NS
//                           migration, vanished NS, or mixed providers.
//
// All three are delta-aware: on churn-valid days they update their running
// figures from ChurnDiff's left/changed/entered partitions instead of
// rescanning the full list, falling back to a full pass per the DeltaGate
// equivalence rule (common.h).  Construct with force_full = true to pin
// the historical full-rescan path (the tests compare both bit-for-bit).

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

class NsCategoryAnalysis final : public scanner::DailyObserver {
 public:
  // Observation is restricted to the paper's NS window.
  NsCategoryAnalysis(net::SimTime from, net::SimTime to, bool force_full = false)
      : from_(from), to_(to), gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Shares {
    double full_mean = 0, full_std = 0;
    double none_mean = 0, none_std = 0;
    double partial_mean = 0, partial_std = 0;
  };
  [[nodiscard]] Shares dynamic_shares() const;
  [[nodiscard]] Shares overlapping_shares() const;

  [[nodiscard]] const TimeSeries& dynamic_full_series() const { return dyn_full_; }
  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  struct Counts {
    std::size_t full = 0, partial = 0, none = 0, total = 0;
  };

  void apply(std::uint8_t code, bool overlapping, std::size_t delta);
  void emit(net::SimTime day);

  net::SimTime from_, to_;
  OverlapSets overlap_;
  DeltaGate gate_;
  Counts dyn_, ovl_;
  std::vector<std::uint8_t> coded_;  // per-domain cached classification
  TimeSeries dyn_full_, dyn_none_, dyn_partial_;
  TimeSeries ovl_full_, ovl_none_, ovl_partial_;
};

class ProviderAnalysis final : public scanner::DailyObserver {
 public:
  ProviderAnalysis(net::SimTime from, net::SimTime to, bool force_full = false)
      : from_(from), to_(to), gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Fig. 3: daily count of distinct non-CF providers serving HTTPS
  // publishers (dynamic list).
  [[nodiscard]] const TimeSeries& daily_provider_count() const {
    return provider_count_;
  }
  // Fig. 10: daily count of domains with HTTPS on non-CF NS.
  [[nodiscard]] const TimeSeries& daily_domain_count() const {
    return domain_count_;
  }
  // Total distinct providers seen over the window.
  [[nodiscard]] std::size_t distinct_providers_dynamic() const {
    return providers_dynamic_.size();
  }
  [[nodiscard]] std::size_t distinct_providers_overlapping() const {
    return providers_overlapping_.size();
  }
  // Table 3: provider -> distinct HTTPS-publishing domains over the window.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> top_dynamic(
      std::size_t k) const;
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> top_overlapping(
      std::size_t k) const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  static std::vector<std::pair<std::string, std::size_t>> top_of(
      const std::map<std::string, std::set<ecosystem::DomainId>>& table,
      std::size_t k);

  void add(ecosystem::DomainId id, const std::vector<std::string>& ops,
           net::SimTime day);
  void remove(ecosystem::DomainId id, const std::vector<std::string>& ops);

  net::SimTime from_, to_;
  OverlapSets overlap_;
  DeltaGate gate_;
  TimeSeries provider_count_;
  TimeSeries domain_count_;
  // Running per-day state: refcounted non-CF operators and the count of
  // domains contributing any — live_ops_.size() is the eager loop's
  // `today.size()` because keys are erased when their refcount hits zero.
  std::map<std::string, std::size_t> live_ops_;
  std::size_t live_domains_ = 0;
  // Per-domain cached contribution (sorted non-CF operators; absent =
  // nothing contributed).
  std::unordered_map<ecosystem::DomainId, std::vector<std::string>> ops_;
  std::set<std::string> providers_dynamic_;
  std::set<std::string> providers_overlapping_;
  std::map<std::string, std::set<ecosystem::DomainId>> domains_dynamic_;
  std::map<std::string, std::set<ecosystem::DomainId>> domains_overlapping_;
};

class IntermittentUse final : public scanner::DailyObserver {
 public:
  IntermittentUse(net::SimTime from, net::SimTime to, bool force_full = false)
      : from_(from), to_(to), gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Result {
    std::size_t intermittent_domains = 0;   // >=1 off-gap between on-periods
    std::size_t same_ns_throughout = 0;     // NS set never changed
    std::size_t same_ns_cloudflare_only = 0;
    std::size_t same_ns_other = 0;
    std::size_t changed_ns = 0;
    std::size_t lost_https_after_ns_change = 0;  // CF -> non-CF migrations
    std::size_t no_ns_while_inactive = 0;
  };
  [[nodiscard]] Result result() const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  struct Track {
    bool ever_on = false;
    bool currently_on = false;
    bool reactivated_after_gap = false;
    bool saw_gap = false;
    std::set<std::string> operator_sets_seen;  // canonical "a+b" strings
    bool ns_absent_while_off = false;
    bool was_cf_before_loss = false;
    bool lost_https_on_migration = false;
    std::set<std::string> last_operators;
  };

  void track_row(const scanner::DailySnapshot& snapshot, std::size_t i);

  net::SimTime from_, to_;
  DeltaGate gate_;
  std::map<ecosystem::DomainId, Track> tracks_;
};

}  // namespace httpsrr::analysis
