#pragma once

// IP-hint analyses (§4.3.5, Fig. 11, Fig. 12):
//   * daily utilisation of ipv4hint/ipv6hint among HTTPS publishers;
//   * daily match ratio between hints and A records;
//   * per-domain mismatch episode durations (histogram).

#include <map>
#include <vector>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

class IpHintConsistency final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Fig. 11 series (overlapping apex domains).
  [[nodiscard]] const TimeSeries& hint_utilisation_apex() const { return use_apex_; }
  [[nodiscard]] const TimeSeries& hint_utilisation_www() const { return use_www_; }
  [[nodiscard]] const TimeSeries& match_ratio_apex() const { return match_apex_; }
  [[nodiscard]] const TimeSeries& match_ratio_www() const { return match_www_; }

  // Fig. 12: closed mismatch-episode durations in days.
  [[nodiscard]] std::map<int, int> mismatch_duration_histogram() const;
  [[nodiscard]] double mean_mismatch_days() const;
  // Domains mismatched on every day they were observed.
  [[nodiscard]] std::size_t chronic_mismatchers() const;

 private:
  struct Episode {
    int open_days = 0;
    std::vector<int> closed;
    int observed_days = 0;
    int mismatch_days = 0;
  };

  OverlapSets overlap_;
  TimeSeries use_apex_, use_www_, match_apex_, match_www_;
  std::map<ecosystem::DomainId, Episode> episodes_;
};

}  // namespace httpsrr::analysis
