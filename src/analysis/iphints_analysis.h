#pragma once

// IP-hint analyses (§4.3.5, Fig. 11, Fig. 12):
//   * daily utilisation of ipv4hint/ipv6hint among HTTPS publishers;
//   * daily match ratio between hints and A records;
//   * per-domain mismatch episode durations (histogram).
//
// Delta-aware (DeltaGate, common.h).  The daily counters update off
// ChurnDiff from per-row cached bits; the episode tracker stores each
// domain's current state (unobserved / match / mismatch) as a run and
// settles elapsed days on state transitions, which only changed / entered
// / left rows can cause — runs partition a domain's observed days, so the
// settled totals equal the historical per-day increments exactly.
// force_full = true pins the full-rescan counter path (episodes share the
// run-length machinery; transitions fire identically either way).

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

class IpHintConsistency final : public scanner::DailyObserver {
 public:
  explicit IpHintConsistency(bool force_full = false) : gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Fig. 11 series (overlapping apex domains).
  [[nodiscard]] const TimeSeries& hint_utilisation_apex() const { return use_apex_; }
  [[nodiscard]] const TimeSeries& hint_utilisation_www() const { return use_www_; }
  [[nodiscard]] const TimeSeries& match_ratio_apex() const { return match_apex_; }
  [[nodiscard]] const TimeSeries& match_ratio_www() const { return match_www_; }

  // Fig. 12: closed mismatch-episode durations in days.
  [[nodiscard]] std::map<int, int> mismatch_duration_histogram() const;
  [[nodiscard]] double mean_mismatch_days() const;
  // Domains mismatched on every day they were observed.
  [[nodiscard]] std::size_t chronic_mismatchers() const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  struct Episode {
    int open_days = 0;
    std::vector<int> closed;
    int observed_days = 0;
    int mismatch_days = 0;
  };
  // Episode state machine: which run the domain is currently in.
  enum : std::uint8_t { kUnobserved = 0, kMatchRun = 1, kMismatchRun = 2 };
  struct EpState {
    std::uint8_t state = kUnobserved;
    int since = 0;  // day index the current run started
  };
  // Daily-counter bits cached per row (overlap membership is re-derived,
  // stable inside a phase).
  enum : std::uint8_t {
    kApexHttps = 1u << 0,
    kApexHints = 1u << 1,
    kApexMatch = 1u << 2,
    kWwwHttps = 1u << 3,
    kWwwHints = 1u << 4,
    kWwwMatch = 1u << 5,
  };

  struct RowFacts {
    std::uint8_t bits = 0;
    std::uint8_t ep_state = kUnobserved;
  };
  [[nodiscard]] static RowFacts classify_row(
      const scanner::DailySnapshot& snapshot, std::size_t i);

  void apply(std::uint8_t bits, bool overlapping, std::size_t delta);
  // Folds the current run's elapsed days into the domain's episode.
  void settle(ecosystem::DomainId id, EpState& st, int today);
  void transition(ecosystem::DomainId id, std::uint8_t new_state, int today);
  [[nodiscard]] std::map<ecosystem::DomainId, Episode> settled_episodes() const;

  OverlapSets overlap_;
  DeltaGate gate_;
  // Running per-day counters.
  std::size_t apex_https_run_ = 0, apex_hints_run_ = 0, apex_match_run_ = 0;
  std::size_t www_https_run_ = 0, www_hints_run_ = 0, www_match_run_ = 0;
  std::vector<std::uint8_t> bits_;  // per-domain cached counter bits
  int day_index_ = 0;               // processed-day counter for run lengths
  std::unordered_map<ecosystem::DomainId, EpState> ep_state_;
  TimeSeries use_apex_, use_www_, match_apex_, match_www_;
  std::map<ecosystem::DomainId, Episode> episodes_;
};

}  // namespace httpsrr::analysis
