#pragma once

// Shared analysis utilities: daily time series, summary statistics, the
// Cloudflare-NS classification of Table 2, and the overlapping-domain
// membership sets of §4.1.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ecosystem/internet.h"
#include "scanner/observation.h"

namespace httpsrr::analysis {

// A date-indexed series of doubles.
class TimeSeries {
 public:
  void add(net::SimTime day, double value) { points_[day.unix_seconds] = value; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double front() const { return points_.begin()->second; }
  [[nodiscard]] double back() const { return points_.rbegin()->second; }
  [[nodiscard]] std::optional<double> at(net::SimTime day) const;

  // Mean over the sub-range [from, to].
  [[nodiscard]] double mean_between(net::SimTime from, net::SimTime to) const;

  [[nodiscard]] const std::map<std::int64_t, double>& points() const {
    return points_;
  }

 private:
  std::map<std::int64_t, double> points_;  // unix seconds -> value
};

// NS-provider mix of one domain (Table 2 categories).
enum class NsMix : std::uint8_t {
  full_cloudflare,
  partial_cloudflare,
  none_cloudflare,
  unknown,  // NS records absent or unattributable
};

// Resolves NS host names to operator names through the snapshot's WHOIS-
// attributed NS table.  Takes the zero-copy columnar view — observers read
// rows through ObservationColumn::view(i), not materialized rows.
[[nodiscard]] std::set<std::string> ns_operators(
    const scanner::ObservationView& obs,
    const scanner::DailySnapshot& snapshot);

[[nodiscard]] NsMix classify_ns_mix(const scanner::ObservationView& obs,
                                    const scanner::DailySnapshot& snapshot);

// Membership bitmaps for the paper's two overlapping windows (§4.1).
class OverlapSets {
 public:
  // Lazily built from the feed on first use.
  void ensure(const ecosystem::Internet& net);

  [[nodiscard]] bool in_phase1(ecosystem::DomainId id) const { return phase1_[id]; }
  [[nodiscard]] bool in_phase2(ecosystem::DomainId id) const { return phase2_[id]; }
  // Overlapping w.r.t. the phase a given day belongs to.
  [[nodiscard]] bool overlapping_on(ecosystem::DomainId id, net::SimTime day) const {
    return day < source_change_ ? in_phase1(id) : in_phase2(id);
  }
  [[nodiscard]] std::size_t phase1_count() const { return phase1_count_; }
  [[nodiscard]] std::size_t phase2_count() const { return phase2_count_; }

 private:
  bool built_ = false;
  net::SimTime source_change_;
  std::vector<bool> phase1_;
  std::vector<bool> phase2_;
  std::size_t phase1_count_ = 0;
  std::size_t phase2_count_ = 0;
};

}  // namespace httpsrr::analysis
