#pragma once

// Shared analysis utilities: daily time series, summary statistics, the
// Cloudflare-NS classification of Table 2, and the overlapping-domain
// membership sets of §4.1.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ecosystem/internet.h"
#include "scanner/observation.h"

namespace httpsrr::analysis {

// A date-indexed series of doubles.
class TimeSeries {
 public:
  void add(net::SimTime day, double value) { points_[day.unix_seconds] = value; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double front() const { return points_.begin()->second; }
  [[nodiscard]] double back() const { return points_.rbegin()->second; }
  [[nodiscard]] std::optional<double> at(net::SimTime day) const;

  // Mean over the sub-range [from, to].
  [[nodiscard]] double mean_between(net::SimTime from, net::SimTime to) const;

  [[nodiscard]] const std::map<std::int64_t, double>& points() const {
    return points_;
  }

 private:
  std::map<std::int64_t, double> points_;  // unix seconds -> value
};

// NS-provider mix of one domain (Table 2 categories).
enum class NsMix : std::uint8_t {
  full_cloudflare,
  partial_cloudflare,
  none_cloudflare,
  unknown,  // NS records absent or unattributable
};

// Resolves NS host names to operator names through the snapshot's WHOIS-
// attributed NS table.  Takes the zero-copy columnar view — observers read
// rows through ObservationColumn::view(i), not materialized rows.
[[nodiscard]] std::set<std::string> ns_operators(
    const scanner::ObservationView& obs,
    const scanner::DailySnapshot& snapshot);

[[nodiscard]] NsMix classify_ns_mix(const scanner::ObservationView& obs,
                                    const scanner::DailySnapshot& snapshot);

// Membership bitmaps for the paper's two overlapping windows (§4.1).
class OverlapSets {
 public:
  // Lazily built from the feed on first use.
  void ensure(const ecosystem::Internet& net);

  [[nodiscard]] bool in_phase1(ecosystem::DomainId id) const { return phase1_[id]; }
  [[nodiscard]] bool in_phase2(ecosystem::DomainId id) const { return phase2_[id]; }
  // Overlapping w.r.t. the phase a given day belongs to.
  [[nodiscard]] bool overlapping_on(ecosystem::DomainId id, net::SimTime day) const {
    return day < source_change_ ? in_phase1(id) : in_phase2(id);
  }
  // Which overlap phase a day falls in — day-context input for the delta
  // observers: the phase edge changes overlapping_on() for every row at
  // once, so crossing it must trigger a full recompute.
  [[nodiscard]] bool phase2_on(net::SimTime day) const {
    return !(day < source_change_);
  }
  [[nodiscard]] std::size_t phase1_count() const { return phase1_count_; }
  [[nodiscard]] std::size_t phase2_count() const { return phase2_count_; }

 private:
  bool built_ = false;
  net::SimTime source_change_;
  std::vector<bool> phase1_;
  std::vector<bool> phase2_;
  std::size_t phase1_count_ = 0;
  std::size_t phase2_count_ = 0;
};

// Shared bookkeeping for delta-aware observers (the DeltaAdoptionCounter
// pattern generalized): decides per day whether the O(churn) incremental
// path is safe or the day must run as a full pass, and accounts how much
// work each path did.  The equivalence rule:
//
//   * first processed day (or first day back inside a windowed observer's
//     [from, to], or after any skipped day) — full pass, because the
//     observer's running state does not describe the previous snapshot;
//   * !churn.valid — full pass, the Study had no baseline;
//   * churn.ns_info_refreshed and the observer reads the NS side-channel —
//     full pass, because attribution can move under unchanged fingerprints;
//   * any day-context input changed (overlap phase, h3-29 retirement side)
//     — full pass, because per-row classifications shift in bulk;
//   * otherwise the day's figures update from churn.left/changed/entered
//     alone, bit-for-bit equal to the full rescan.
class DeltaGate {
 public:
  explicit DeltaGate(bool force_full) : force_full_(force_full) {}

  // Call once per processed day *before* needs_full: reports whether the
  // packed day-context differs from the last processed day's, and stores
  // it.  Always false on an unprimed day (where a full pass runs anyway).
  [[nodiscard]] bool context_changed(std::uint32_t context) {
    const bool changed = primed_ && context != last_context_;
    last_context_ = context;
    return changed;
  }

  [[nodiscard]] bool needs_full(const scanner::ChurnDiff& churn,
                                bool ns_dependent, bool context_flip) const {
    return force_full_ || !churn.valid || !primed_ ||
           (ns_dependent && churn.ns_info_refreshed) || context_flip;
  }

  void account_full(std::size_t rows) {
    primed_ = true;
    ++full_recomputes_;
    rows_touched_ += rows;
  }
  void account_delta(const scanner::ChurnDiff& churn) {
    primed_ = true;
    rows_touched_ +=
        churn.left.size() + churn.changed.size() + churn.entered.size();
  }
  // Out-of-window day: the delta chain is broken until the next full pass.
  void skip() { primed_ = false; }

  [[nodiscard]] std::size_t rows_touched() const { return rows_touched_; }
  [[nodiscard]] std::size_t full_recomputes() const { return full_recomputes_; }

 private:
  bool force_full_;
  bool primed_ = false;
  std::uint32_t last_context_ = 0;
  std::size_t rows_touched_ = 0;
  std::size_t full_recomputes_ = 0;
};

}  // namespace httpsrr::analysis
