#pragma once

// ChainAudit — the Table 9 experiment: on one day (the paper used
// Jan 2 2024), fetch and validate the DNSSEC chain of every listed apex
// domain, split by HTTPS-RR presence and by Cloudflare vs non-Cloudflare
// name servers.  "Signed" means the zone serves a DNSKEY RRset; secure /
// insecure / bogus follow RFC 4035 chain semantics.

#include "analysis/common.h"
#include "dnssec/chain.h"
#include "ecosystem/internet.h"

namespace httpsrr::analysis {

struct ChainAuditResult {
  struct Row {
    std::size_t total = 0;      // domains in the category
    std::size_t signed_ = 0;    // zones serving DNSKEY
    std::size_t secure = 0;     // signed with an intact chain
    std::size_t insecure = 0;   // signed but no DS at the parent
    std::size_t bogus = 0;

    [[nodiscard]] double secure_pct() const {
      return signed_ == 0 ? 0.0
                          : 100.0 * static_cast<double>(secure) /
                                static_cast<double>(signed_);
    }
    [[nodiscard]] double insecure_pct() const {
      return signed_ == 0 ? 0.0
                          : 100.0 * static_cast<double>(insecure) /
                                static_cast<double>(signed_);
    }
  };

  Row without_https;
  Row with_https;
  Row with_https_cloudflare;
  Row with_https_non_cloudflare;
};

// Runs the audit at `day` (advances the Internet there).
[[nodiscard]] ChainAuditResult run_chain_audit(ecosystem::Internet& net,
                                               net::SimTime day);

}  // namespace httpsrr::analysis
