#include "analysis/delta_observers.h"

namespace httpsrr::analysis {

using scanner::ChurnDiff;

// Counts are size_t; subtraction is ±1 folded through unsigned wraparound,
// which is exact as long as a counter never goes negative — guaranteed
// because every subtraction removes bits previously added for that row.
namespace {
inline void bump(std::size_t& counter, bool on, std::size_t delta) {
  if (on) counter += delta;
}
}  // namespace

DeltaAdoptionCounter::Counts DeltaAdoptionCounter::recompute(
    const scanner::DailySnapshot& snapshot) {
  Counts out;
  out.listed = snapshot.size();
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const std::uint8_t bits = snapshot.summary_bits(i);
    bump(out.apex_https, bits & ChurnDiff::kApexHttps, 1);
    bump(out.www_https, bits & ChurnDiff::kWwwHttps, 1);
    bump(out.apex_ech, bits & ChurnDiff::kApexEch, 1);
    bump(out.apex_signed, bits & ChurnDiff::kApexSigned, 1);
    bump(out.apex_validated, bits & ChurnDiff::kApexValidated, 1);
  }
  return out;
}

void DeltaAdoptionCounter::on_day(const scanner::DailySnapshot& snapshot,
                                  const ecosystem::Internet& net) {
  (void)net;
  const ChurnDiff& churn = snapshot.churn;
  if (!churn.valid) {
    counts_ = recompute(snapshot);
    ++full_recomputes_;
    rows_touched_ += snapshot.size();
  } else {
    const auto remove = [this](std::uint8_t bits) {
      const std::size_t minus = static_cast<std::size_t>(-1);  // wraps exact
      bump(counts_.apex_https, bits & ChurnDiff::kApexHttps, minus);
      bump(counts_.www_https, bits & ChurnDiff::kWwwHttps, minus);
      bump(counts_.apex_ech, bits & ChurnDiff::kApexEch, minus);
      bump(counts_.apex_signed, bits & ChurnDiff::kApexSigned, minus);
      bump(counts_.apex_validated, bits & ChurnDiff::kApexValidated, minus);
    };
    const auto add = [this](std::uint8_t bits) {
      bump(counts_.apex_https, bits & ChurnDiff::kApexHttps, 1);
      bump(counts_.www_https, bits & ChurnDiff::kWwwHttps, 1);
      bump(counts_.apex_ech, bits & ChurnDiff::kApexEch, 1);
      bump(counts_.apex_signed, bits & ChurnDiff::kApexSigned, 1);
      bump(counts_.apex_validated, bits & ChurnDiff::kApexValidated, 1);
    };
    for (std::uint8_t bits : churn.left_prev_bits) remove(bits);
    for (std::uint8_t bits : churn.changed_prev_bits) remove(bits);
    for (std::uint32_t i : churn.changed) add(snapshot.summary_bits(i));
    for (std::uint32_t i : churn.entered) add(snapshot.summary_bits(i));
    counts_.listed = snapshot.size();
    rows_touched_ +=
        churn.left.size() + churn.changed.size() + churn.entered.size();
  }

  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
  };
  apex_pct_.add(snapshot.day, pct(counts_.apex_https, counts_.listed));
  www_pct_.add(snapshot.day, pct(counts_.www_https, counts_.listed));
}

}  // namespace httpsrr::analysis
