#pragma once

// Parameter analyses:
//   * CfConfigClassifier   — Table 4: Cloudflare default vs customised.
//   * ProviderParamProfile — Table 5: per-provider configuration shapes.
//   * ParamAudit           — §4.3.3: SvcPriority/TargetName oddities.
//   * AlpnDistribution     — §4.3.4 + Table 8: protocol shares over time.
//
// All four are delta-aware (DeltaGate, common.h): churn-valid days update
// running state off ChurnDiff in O(churn); full passes run on baseline /
// NS-refresh / day-context-flip days (for CfConfigClassifier the h3-29
// retirement date is a context input: crossing it re-classifies every
// unchanged Cloudflare row).  force_full = true pins the full-rescan path.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

// Decides whether an observed record matches Cloudflare's auto-generated
// default: ServiceMode priority 1, TargetName ".", alpn exactly the default
// set for the date, and both address hints present.
[[nodiscard]] bool is_cloudflare_default_config(const dns::SvcbRdata& record,
                                                net::SimTime day,
                                                net::SimTime h3_29_retirement);

class CfConfigClassifier final : public scanner::DailyObserver {
 public:
  explicit CfConfigClassifier(bool force_full = false) : gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Average % of CF-hosted HTTPS publishers with the default configuration.
  [[nodiscard]] double default_pct_dynamic() const { return dyn_default_.mean(); }
  [[nodiscard]] double default_pct_overlapping() const { return ovl_default_.mean(); }

  [[nodiscard]] const TimeSeries& dynamic_series() const { return dyn_default_; }
  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  void apply(std::uint8_t code, bool overlapping, std::size_t delta);

  OverlapSets overlap_;
  DeltaGate gate_;
  // Running per-day counters and the per-domain cached classification:
  // 0 = not a full-Cloudflare HTTPS publisher, 1 = counted (customised),
  // 2 = counted (default config).
  std::size_t dyn_total_ = 0, dyn_defaults_ = 0;
  std::size_t ovl_total_ = 0, ovl_defaults_ = 0;
  std::vector<std::uint8_t> coded_;
  TimeSeries dyn_default_, ovl_default_;
};

class ProviderParamProfile final : public scanner::DailyObserver {
 public:
  explicit ProviderParamProfile(std::string provider, bool force_full = false)
      : provider_(std::move(provider)), gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Profile {
    std::size_t domains = 0;
    std::size_t service_mode = 0;       // SvcPriority > 0
    std::size_t alias_mode = 0;
    std::size_t target_self = 0;        // TargetName "."
    std::size_t target_other = 0;
    std::size_t with_alpn = 0;
    std::size_t with_ipv4hint = 0;
    std::size_t with_ipv6hint = 0;

    [[nodiscard]] double pct(std::size_t part) const {
      return domains == 0 ? 0.0
                          : 100.0 * static_cast<double>(part) /
                                static_cast<double>(domains);
    }
  };
  // Aggregated over distinct domains across the whole run.
  [[nodiscard]] Profile profile() const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  void profile_row(const scanner::DailySnapshot& snapshot, std::size_t i);

  std::string provider_;
  DeltaGate gate_;
  std::map<ecosystem::DomainId, Profile> per_domain_;  // domains==1 rows
};

class ParamAudit final : public scanner::DailyObserver {
 public:
  explicit ParamAudit(bool force_full = false) : gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Result {
    std::size_t service_mode_domains = 0;
    std::size_t alias_mode_domains = 0;
    std::size_t service_without_params = 0;  // the 202/232-domain cohort
    std::size_t alias_target_self = 0;       // AliasMode with "." target
    std::size_t priority_one = 0;
  };
  [[nodiscard]] Result result() const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  void audit_row(const scanner::DailySnapshot& snapshot, std::size_t i);

  DeltaGate gate_;
  std::map<ecosystem::DomainId, Result> per_domain_;
};

class AlpnDistribution final : public scanner::DailyObserver {
 public:
  explicit AlpnDistribution(bool force_full = false) : gate_(force_full) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // % of overlapping HTTPS publishers advertising a protocol, daily mean
  // over the given window (Table 8 splits h3-29 at May 31).
  [[nodiscard]] double protocol_pct(const std::string& protocol,
                                    net::SimTime from, net::SimTime to,
                                    bool www = false) const;
  // Among non-Cloudflare-NS publishers: protocol share + no-alpn share.
  [[nodiscard]] double non_cf_protocol_pct(const std::string& protocol) const;
  [[nodiscard]] double non_cf_no_alpn_pct() const;

  [[nodiscard]] std::size_t rows_touched() const { return gate_.rows_touched(); }
  [[nodiscard]] std::size_t full_recomputes() const {
    return gate_.full_recomputes();
  }

 private:
  // One row's cached contribution to the running counters.
  struct RowAlpn {
    std::vector<std::string> apex_protocols;
    std::vector<std::string> www_protocols;
    bool apex_https = false;
    bool www_https = false;
    bool non_cf = false;  // ServiceMode publisher on none-Cloudflare NS
    bool h2 = false, h3 = false, no_alpn = false;
  };

  [[nodiscard]] RowAlpn classify_row(const scanner::DailySnapshot& snapshot,
                                     std::size_t i) const;
  void add(const RowAlpn& row, bool overlapping);
  void remove(const RowAlpn& row, bool overlapping);

  OverlapSets overlap_;
  DeltaGate gate_;
  // Running per-day state; protocol keys are erased at refcount zero so
  // the emitted key set matches the eager loop's per-day maps.
  std::map<std::string, std::size_t> apex_counts_run_, www_counts_run_;
  std::size_t apex_https_run_ = 0, www_https_run_ = 0;
  std::size_t non_cf_run_ = 0, non_cf_h2_run_ = 0, non_cf_h3_run_ = 0,
              non_cf_none_run_ = 0;
  std::unordered_map<ecosystem::DomainId, RowAlpn> cache_;
  std::map<std::string, TimeSeries> apex_series_;
  std::map<std::string, TimeSeries> www_series_;
  TimeSeries non_cf_h2_, non_cf_h3_, non_cf_none_;
};

}  // namespace httpsrr::analysis
