#pragma once

// Parameter analyses:
//   * CfConfigClassifier   — Table 4: Cloudflare default vs customised.
//   * ProviderParamProfile — Table 5: per-provider configuration shapes.
//   * ParamAudit           — §4.3.3: SvcPriority/TargetName oddities.
//   * AlpnDistribution     — §4.3.4 + Table 8: protocol shares over time.

#include <map>
#include <set>
#include <string>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

// Decides whether an observed record matches Cloudflare's auto-generated
// default: ServiceMode priority 1, TargetName ".", alpn exactly the default
// set for the date, and both address hints present.
[[nodiscard]] bool is_cloudflare_default_config(const dns::SvcbRdata& record,
                                                net::SimTime day,
                                                net::SimTime h3_29_retirement);

class CfConfigClassifier final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Average % of CF-hosted HTTPS publishers with the default configuration.
  [[nodiscard]] double default_pct_dynamic() const { return dyn_default_.mean(); }
  [[nodiscard]] double default_pct_overlapping() const { return ovl_default_.mean(); }

 private:
  OverlapSets overlap_;
  TimeSeries dyn_default_, ovl_default_;
};

class ProviderParamProfile final : public scanner::DailyObserver {
 public:
  explicit ProviderParamProfile(std::string provider) : provider_(std::move(provider)) {}

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Profile {
    std::size_t domains = 0;
    std::size_t service_mode = 0;       // SvcPriority > 0
    std::size_t alias_mode = 0;
    std::size_t target_self = 0;        // TargetName "."
    std::size_t target_other = 0;
    std::size_t with_alpn = 0;
    std::size_t with_ipv4hint = 0;
    std::size_t with_ipv6hint = 0;

    [[nodiscard]] double pct(std::size_t part) const {
      return domains == 0 ? 0.0
                          : 100.0 * static_cast<double>(part) /
                                static_cast<double>(domains);
    }
  };
  // Aggregated over distinct domains across the whole run.
  [[nodiscard]] Profile profile() const;

 private:
  std::string provider_;
  std::map<ecosystem::DomainId, Profile> per_domain_;  // domains==1 rows
};

class ParamAudit final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  struct Result {
    std::size_t service_mode_domains = 0;
    std::size_t alias_mode_domains = 0;
    std::size_t service_without_params = 0;  // the 202/232-domain cohort
    std::size_t alias_target_self = 0;       // AliasMode with "." target
    std::size_t priority_one = 0;
  };
  [[nodiscard]] Result result() const;

 private:
  std::map<ecosystem::DomainId, Result> per_domain_;
};

class AlpnDistribution final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // % of overlapping HTTPS publishers advertising a protocol, daily mean
  // over the given window (Table 8 splits h3-29 at May 31).
  [[nodiscard]] double protocol_pct(const std::string& protocol,
                                    net::SimTime from, net::SimTime to,
                                    bool www = false) const;
  // Among non-Cloudflare-NS publishers: protocol share + no-alpn share.
  [[nodiscard]] double non_cf_protocol_pct(const std::string& protocol) const;
  [[nodiscard]] double non_cf_no_alpn_pct() const;

 private:
  OverlapSets overlap_;
  std::map<std::string, TimeSeries> apex_series_;
  std::map<std::string, TimeSeries> www_series_;
  TimeSeries non_cf_h2_, non_cf_h3_, non_cf_none_;
};

}  // namespace httpsrr::analysis
