#include "analysis/series_observers.h"

namespace httpsrr::analysis {

namespace {

double pct(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

void AdoptionSeries::on_day(const scanner::DailySnapshot& snapshot,
                            const ecosystem::Internet& net) {
  overlap_.ensure(net);
  std::size_t dyn_apex = 0, dyn_www = 0;
  std::size_t ovl_total = 0, ovl_apex = 0, ovl_www = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    bool apex_https = snapshot.apex.view(i).has_https();
    bool www_https = snapshot.www.view(i).has_https();
    if (apex_https) ++dyn_apex;
    if (www_https) ++dyn_www;
    if (overlap_.overlapping_on(snapshot.list[i], snapshot.day)) {
      ++ovl_total;
      if (apex_https) ++ovl_apex;
      if (www_https) ++ovl_www;
    }
  }
  dynamic_apex_.add(snapshot.day, pct(dyn_apex, snapshot.size()));
  dynamic_www_.add(snapshot.day, pct(dyn_www, snapshot.size()));
  overlapping_apex_.add(snapshot.day, pct(ovl_apex, ovl_total));
  overlapping_www_.add(snapshot.day, pct(ovl_www, ovl_total));
}

void DnssecSeries::on_day(const scanner::DailySnapshot& snapshot,
                          const ecosystem::Internet& net) {
  overlap_.ensure(net);
  struct Bucket {
    std::size_t https = 0, signed_ = 0, ad = 0;
  };
  Bucket dyn_apex, dyn_www, ovl_apex, ovl_www;

  auto account = [](Bucket& bucket, const scanner::ObservationView& obs) {
    if (!obs.has_https()) return;
    ++bucket.https;
    if (obs.rrsig_present()) ++bucket.signed_;
    if (obs.rrsig_present() && obs.ad()) ++bucket.ad;
  };

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto apex_obs = snapshot.apex.view(i);
    const auto www_obs = snapshot.www.view(i);
    account(dyn_apex, apex_obs);
    account(dyn_www, www_obs);
    if (overlap_.overlapping_on(snapshot.list[i], snapshot.day)) {
      account(ovl_apex, apex_obs);
      account(ovl_www, www_obs);
    }
  }

  sig_dyn_apex_.add(snapshot.day, pct(dyn_apex.signed_, dyn_apex.https));
  sig_dyn_www_.add(snapshot.day, pct(dyn_www.signed_, dyn_www.https));
  sig_ovl_apex_.add(snapshot.day, pct(ovl_apex.signed_, ovl_apex.https));
  sig_ovl_www_.add(snapshot.day, pct(ovl_www.signed_, ovl_www.https));
  ad_dyn_apex_.add(snapshot.day, pct(dyn_apex.ad, dyn_apex.https));
  ad_ovl_apex_.add(snapshot.day, pct(ovl_apex.ad, ovl_apex.https));
}

void EchSeries::on_day(const scanner::DailySnapshot& snapshot,
                       const ecosystem::Internet& net) {
  overlap_.ensure(net);
  std::size_t apex_https = 0, apex_ech = 0;
  std::size_t www_https = 0, www_ech = 0;
  std::size_t non_cf = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (!overlap_.overlapping_on(snapshot.list[i], snapshot.day)) continue;
    const auto apex_obs = snapshot.apex.view(i);
    const auto www_obs = snapshot.www.view(i);
    if (apex_obs.has_https()) {
      ++apex_https;
      if (apex_obs.has_ech()) {
        ++apex_ech;
        if (classify_ns_mix(apex_obs, snapshot) == NsMix::none_cloudflare) {
          ++non_cf;
        }
      }
    }
    if (www_obs.has_https()) {
      ++www_https;
      if (www_obs.has_ech()) ++www_ech;
    }
  }
  double apex_pct = pct(apex_ech, apex_https);
  apex_.add(snapshot.day, apex_pct);
  www_.add(snapshot.day, pct(www_ech, www_https));
  non_cf_.add(snapshot.day, static_cast<double>(non_cf));

  if (apex_pct > 0.0) seen_nonzero_ = true;
  if (seen_nonzero_ && apex_pct == 0.0 && !shutdown_) {
    shutdown_ = snapshot.day;
  }
}

void EchDnssecSeries::on_day(const scanner::DailySnapshot& snapshot,
                             const ecosystem::Internet& net) {
  overlap_.ensure(net);
  std::size_t ech = 0, signed_count = 0, validated = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (!overlap_.overlapping_on(snapshot.list[i], snapshot.day)) continue;
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https() || !obs.has_ech()) continue;
    ++ech;
    if (obs.rrsig_present()) ++signed_count;
    if (obs.rrsig_present() && obs.ad()) ++validated;
  }
  if (ech > 0) {
    signed_.add(snapshot.day, pct(signed_count, ech));
    validated_.add(snapshot.day, pct(validated, ech));
  }
}

}  // namespace httpsrr::analysis
