#include "analysis/iphints_analysis.h"

namespace httpsrr::analysis {

namespace {

double pct_of(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

constexpr std::size_t kMinus = static_cast<std::size_t>(-1);

}  // namespace

IpHintConsistency::RowFacts IpHintConsistency::classify_row(
    const scanner::DailySnapshot& snapshot, std::size_t i) {
  RowFacts facts;
  const auto apex_obs = snapshot.apex.view(i);
  // Extract each host's hints once; presence, the overlapping-set match
  // rate, and the episode state all reuse the same walk.
  const auto apex_hint_list = apex_obs.has_https()
                                  ? apex_obs.ipv4_hints()
                                  : std::vector<net::Ipv4Addr>{};
  const bool apex_matches =
      !apex_hint_list.empty() && apex_obs.hints_match_a(apex_hint_list);
  if (apex_obs.has_https()) {
    facts.bits |= kApexHttps;
    if (!apex_hint_list.empty()) {
      facts.bits |= kApexHints;
      if (apex_matches) facts.bits |= kApexMatch;
    }
  }
  const auto www_obs = snapshot.www.view(i);
  if (www_obs.has_https()) {
    facts.bits |= kWwwHttps;
    const auto www_hint_list = www_obs.ipv4_hints();
    if (!www_hint_list.empty()) {
      facts.bits |= kWwwHints;
      if (www_obs.hints_match_a(www_hint_list)) facts.bits |= kWwwMatch;
    }
  }
  // Episode tracking runs over the dynamic list (all mismatches count):
  // a row is observed when it carries hints alongside an A answer.
  if (!apex_hint_list.empty() && apex_obs.a_record_count() != 0) {
    facts.ep_state = apex_matches ? kMatchRun : kMismatchRun;
  }
  return facts;
}

void IpHintConsistency::apply(std::uint8_t bits, bool overlapping,
                              std::size_t delta) {
  if (!overlapping || bits == 0) return;
  if (bits & kApexHttps) {
    apex_https_run_ += delta;
    if (bits & kApexHints) {
      apex_hints_run_ += delta;
      if (bits & kApexMatch) apex_match_run_ += delta;
    }
  }
  if (bits & kWwwHttps) {
    www_https_run_ += delta;
    if (bits & kWwwHints) {
      www_hints_run_ += delta;
      if (bits & kWwwMatch) www_match_run_ += delta;
    }
  }
}

void IpHintConsistency::settle(ecosystem::DomainId id, EpState& st,
                               int today) {
  const int elapsed = today - st.since;
  st.since = today;
  if (st.state == kUnobserved || elapsed <= 0) return;
  Episode& episode = episodes_[id];
  episode.observed_days += elapsed;
  if (st.state == kMismatchRun) {
    episode.mismatch_days += elapsed;
    episode.open_days += elapsed;
  }
}

void IpHintConsistency::transition(ecosystem::DomainId id,
                                   std::uint8_t new_state, int today) {
  if (new_state == kUnobserved && !ep_state_.contains(id)) return;
  EpState& st = ep_state_[id];
  if (st.state == new_state) return;
  settle(id, st, today);
  // An open mismatch stretch survives unobserved gaps; only an observed
  // match day closes it — the same rule as the per-day tracker.
  if (new_state == kMatchRun) {
    Episode& episode = episodes_[id];
    if (episode.open_days > 0) {
      episode.closed.push_back(episode.open_days);
      episode.open_days = 0;
    }
  }
  st.state = new_state;
}

void IpHintConsistency::on_day(const scanner::DailySnapshot& snapshot,
                               const ecosystem::Internet& net) {
  overlap_.ensure(net);
  if (bits_.size() < net.domain_count()) bits_.resize(net.domain_count(), 0);

  const scanner::ChurnDiff& churn = snapshot.churn;
  const bool flip =
      gate_.context_changed(overlap_.phase2_on(snapshot.day) ? 1 : 0);
  const int today = day_index_++;
  if (gate_.needs_full(churn, /*ns_dependent=*/false, flip)) {
    apex_https_run_ = apex_hints_run_ = apex_match_run_ = 0;
    www_https_run_ = www_hints_run_ = www_match_run_ = 0;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      const ecosystem::DomainId id = snapshot.list[i];
      const RowFacts facts = classify_row(snapshot, i);
      bits_[id] = facts.bits;
      apply(facts.bits, overlap_.overlapping_on(id, snapshot.day), 1);
      transition(id, facts.ep_state, today);
    }
    // Domains that dropped off the list still end their episode runs; the
    // counters were rebuilt from scratch, so only the state machine cares.
    if (churn.valid) {
      for (const ecosystem::DomainId id : churn.left) {
        transition(id, kUnobserved, today);
      }
    }
    gate_.account_full(snapshot.size());
  } else {
    for (const ecosystem::DomainId id : churn.left) {
      apply(bits_[id], overlap_.overlapping_on(id, snapshot.day), kMinus);
      bits_[id] = 0;
      transition(id, kUnobserved, today);
    }
    for (const std::uint32_t i : churn.changed) {
      const ecosystem::DomainId id = snapshot.list[i];
      const bool overlapping = overlap_.overlapping_on(id, snapshot.day);
      apply(bits_[id], overlapping, kMinus);
      const RowFacts facts = classify_row(snapshot, i);
      bits_[id] = facts.bits;
      apply(facts.bits, overlapping, 1);
      transition(id, facts.ep_state, today);
    }
    for (const std::uint32_t i : churn.entered) {
      const ecosystem::DomainId id = snapshot.list[i];
      const RowFacts facts = classify_row(snapshot, i);
      bits_[id] = facts.bits;
      apply(facts.bits, overlap_.overlapping_on(id, snapshot.day), 1);
      transition(id, facts.ep_state, today);
    }
    gate_.account_delta(churn);
  }

  use_apex_.add(snapshot.day, pct_of(apex_hints_run_, apex_https_run_));
  use_www_.add(snapshot.day, pct_of(www_hints_run_, www_https_run_));
  match_apex_.add(snapshot.day, pct_of(apex_match_run_, apex_hints_run_));
  match_www_.add(snapshot.day, pct_of(www_match_run_, www_hints_run_));
}

std::map<ecosystem::DomainId, IpHintConsistency::Episode>
IpHintConsistency::settled_episodes() const {
  auto out = episodes_;
  for (const auto& [id, st] : ep_state_) {
    if (st.state == kUnobserved) continue;
    const int elapsed = day_index_ - st.since;
    if (elapsed <= 0) continue;
    Episode& episode = out[id];
    episode.observed_days += elapsed;
    if (st.state == kMismatchRun) {
      episode.mismatch_days += elapsed;
      episode.open_days += elapsed;
    }
  }
  return out;
}

std::map<int, int> IpHintConsistency::mismatch_duration_histogram() const {
  std::map<int, int> histogram;
  for (const auto& [id, episode] : settled_episodes()) {
    (void)id;
    for (int days : episode.closed) ++histogram[days];
    if (episode.open_days > 0) ++histogram[episode.open_days];
  }
  return histogram;
}

double IpHintConsistency::mean_mismatch_days() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& [id, episode] : settled_episodes()) {
    (void)id;
    for (int days : episode.closed) {
      sum += days;
      ++count;
    }
    if (episode.open_days > 0) {
      sum += episode.open_days;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t IpHintConsistency::chronic_mismatchers() const {
  std::size_t out = 0;
  for (const auto& [id, episode] : settled_episodes()) {
    (void)id;
    if (episode.observed_days >= 30 &&
        episode.mismatch_days == episode.observed_days) {
      ++out;
    }
  }
  return out;
}

}  // namespace httpsrr::analysis
