#include "analysis/iphints_analysis.h"

namespace httpsrr::analysis {

void IpHintConsistency::on_day(const scanner::DailySnapshot& snapshot,
                               const ecosystem::Internet& net) {
  overlap_.ensure(net);

  std::size_t apex_https = 0, apex_hints = 0, apex_match = 0;
  std::size_t www_https = 0, www_hints = 0, www_match = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto apex_obs = snapshot.apex.view(i);
    const auto www_obs = snapshot.www.view(i);
    bool overlapping = overlap_.overlapping_on(snapshot.list[i], snapshot.day);

    // Extract each host's hints once; presence, the overlapping-set match
    // rate, and the episode tracker all reuse the same walk.
    const auto apex_hint_list =
        apex_obs.has_https() ? apex_obs.ipv4_hints()
                             : std::vector<net::Ipv4Addr>{};
    const bool apex_matches = !apex_hint_list.empty() &&
                              apex_obs.hints_match_a(apex_hint_list);
    if (overlapping && apex_obs.has_https()) {
      ++apex_https;
      if (!apex_hint_list.empty()) {
        ++apex_hints;
        if (apex_matches) ++apex_match;
      }
    }
    if (overlapping && www_obs.has_https()) {
      ++www_https;
      const auto www_hint_list = www_obs.ipv4_hints();
      if (!www_hint_list.empty()) {
        ++www_hints;
        if (www_obs.hints_match_a(www_hint_list)) ++www_match;
      }
    }

    // Episode tracking runs over the dynamic list (all mismatches count).
    if (!apex_hint_list.empty() && apex_obs.a_record_count() != 0) {
      auto& episode = episodes_[snapshot.list[i]];
      ++episode.observed_days;
      if (!apex_matches) {
        ++episode.mismatch_days;
        ++episode.open_days;
      } else if (episode.open_days > 0) {
        episode.closed.push_back(episode.open_days);
        episode.open_days = 0;
      }
    }
  }

  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
  };
  use_apex_.add(snapshot.day, pct(apex_hints, apex_https));
  use_www_.add(snapshot.day, pct(www_hints, www_https));
  match_apex_.add(snapshot.day, pct(apex_match, apex_hints));
  match_www_.add(snapshot.day, pct(www_match, www_hints));
}

std::map<int, int> IpHintConsistency::mismatch_duration_histogram() const {
  std::map<int, int> histogram;
  for (const auto& [id, episode] : episodes_) {
    (void)id;
    for (int days : episode.closed) ++histogram[days];
    if (episode.open_days > 0) ++histogram[episode.open_days];
  }
  return histogram;
}

double IpHintConsistency::mean_mismatch_days() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& [id, episode] : episodes_) {
    (void)id;
    for (int days : episode.closed) {
      sum += days;
      ++count;
    }
    if (episode.open_days > 0) {
      sum += episode.open_days;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t IpHintConsistency::chronic_mismatchers() const {
  std::size_t out = 0;
  for (const auto& [id, episode] : episodes_) {
    (void)id;
    if (episode.observed_days >= 30 &&
        episode.mismatch_days == episode.observed_days) {
      ++out;
    }
  }
  return out;
}

}  // namespace httpsrr::analysis
