#include "analysis/rank_stats.h"

#include <algorithm>
#include <cmath>

namespace httpsrr::analysis {

double RankDistribution::percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(idx));
  auto hi = static_cast<std::size_t>(std::ceil(idx));
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

RankDistribution rank_distribution(ecosystem::Internet& net, net::SimTime from,
                                   net::SimTime to, int sample_days) {
  std::map<ecosystem::DomainId, std::pair<double, int>> acc;
  std::int64_t span_days = (to - from).seconds / 86400;
  int samples = std::max(1, sample_days);

  for (int s = 0; s < samples; ++s) {
    net::SimTime day =
        from + net::Duration::days(span_days * s / std::max(1, samples - 1));
    auto list = net.tranco().list_for(day);
    for (std::size_t rank = 0; rank < list.size(); ++rank) {
      auto& entry = acc[list[rank]];
      entry.first += static_cast<double>(rank + 1);
      entry.second += 1;
    }
  }

  OverlapSets overlap;
  overlap.ensure(net);
  RankDistribution out;
  bool phase1 = from < net.config().source_change;
  for (const auto& [id, sums] : acc) {
    double mean_rank = sums.first / static_cast<double>(sums.second);
    bool overlapping = phase1 ? overlap.in_phase1(id) : overlap.in_phase2(id);
    (overlapping ? out.overlapping : out.non_overlapping).push_back(mean_rank);
  }
  std::sort(out.overlapping.begin(), out.overlapping.end());
  std::sort(out.non_overlapping.begin(), out.non_overlapping.end());
  return out;
}

void NonCfRankStats::on_day(const scanner::DailySnapshot& snapshot,
                            const ecosystem::Internet& net) {
  (void)net;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    if (classify_ns_mix(obs, snapshot) != NsMix::none_cloudflare) continue;
    auto& acc = ranks_[snapshot.list[i]];
    acc.sum += static_cast<double>(i + 1);
    acc.n += 1;
  }
}

std::vector<double> NonCfRankStats::mean_ranks() const {
  std::vector<double> out;
  out.reserve(ranks_.size());
  for (const auto& [id, acc] : ranks_) {
    (void)id;
    out.push_back(acc.sum / static_cast<double>(acc.n));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace httpsrr::analysis
