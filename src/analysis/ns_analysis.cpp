#include "analysis/ns_analysis.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::analysis {

void NsCategoryAnalysis::on_day(const scanner::DailySnapshot& snapshot,
                                const ecosystem::Internet& net) {
  if (snapshot.day < from_ || snapshot.day > to_) return;
  overlap_.ensure(net);

  struct Counts {
    std::size_t full = 0, partial = 0, none = 0, total = 0;
  };
  Counts dyn, ovl;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    NsMix mix = classify_ns_mix(obs, snapshot);
    if (mix == NsMix::unknown) continue;

    auto count_in = [mix](Counts& c) {
      ++c.total;
      switch (mix) {
        case NsMix::full_cloudflare: ++c.full; break;
        case NsMix::partial_cloudflare: ++c.partial; break;
        case NsMix::none_cloudflare: ++c.none; break;
        case NsMix::unknown: break;
      }
    };
    count_in(dyn);
    if (overlap_.overlapping_on(snapshot.list[i], snapshot.day)) count_in(ovl);
  }

  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
  };
  dyn_full_.add(snapshot.day, pct(dyn.full, dyn.total));
  dyn_partial_.add(snapshot.day, pct(dyn.partial, dyn.total));
  dyn_none_.add(snapshot.day, pct(dyn.none, dyn.total));
  ovl_full_.add(snapshot.day, pct(ovl.full, ovl.total));
  ovl_partial_.add(snapshot.day, pct(ovl.partial, ovl.total));
  ovl_none_.add(snapshot.day, pct(ovl.none, ovl.total));
}

NsCategoryAnalysis::Shares NsCategoryAnalysis::dynamic_shares() const {
  return Shares{dyn_full_.mean(),    dyn_full_.stddev(), dyn_none_.mean(),
                dyn_none_.stddev(),  dyn_partial_.mean(),
                dyn_partial_.stddev()};
}

NsCategoryAnalysis::Shares NsCategoryAnalysis::overlapping_shares() const {
  return Shares{ovl_full_.mean(),    ovl_full_.stddev(), ovl_none_.mean(),
                ovl_none_.stddev(),  ovl_partial_.mean(),
                ovl_partial_.stddev()};
}

void ProviderAnalysis::on_day(const scanner::DailySnapshot& snapshot,
                              const ecosystem::Internet& net) {
  if (snapshot.day < from_ || snapshot.day > to_) return;
  overlap_.ensure(net);

  std::set<std::string> today;
  std::size_t domain_count = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    auto operators = ns_operators(obs, snapshot);
    bool any_non_cf = false;
    for (const auto& op : operators) {
      if (op == "cloudflare") continue;
      any_non_cf = true;
      today.insert(op);
      providers_dynamic_.insert(op);
      domains_dynamic_[op].insert(snapshot.list[i]);
      if (overlap_.overlapping_on(snapshot.list[i], snapshot.day)) {
        providers_overlapping_.insert(op);
        domains_overlapping_[op].insert(snapshot.list[i]);
      }
    }
    if (any_non_cf) ++domain_count;
  }
  provider_count_.add(snapshot.day, static_cast<double>(today.size()));
  domain_count_.add(snapshot.day, static_cast<double>(domain_count));
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_of(
    const std::map<std::string, std::set<ecosystem::DomainId>>& table,
    std::size_t k) {
  std::vector<std::pair<std::string, std::size_t>> rows;
  rows.reserve(table.size());
  for (const auto& [name, domains] : table) {
    rows.emplace_back(name, domains.size());
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_dynamic(
    std::size_t k) const {
  return top_of(domains_dynamic_, k);
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_overlapping(
    std::size_t k) const {
  return top_of(domains_overlapping_, k);
}

void IntermittentUse::on_day(const scanner::DailySnapshot& snapshot,
                             const ecosystem::Internet& net) {
  (void)net;
  if (snapshot.day < from_ || snapshot.day > to_) return;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    bool on = obs.has_https();
    auto& track = tracks_[snapshot.list[i]];

    auto operators = ns_operators(obs, snapshot);
    if (!operators.empty()) {
      std::vector<std::string> sorted(operators.begin(), operators.end());
      track.operator_sets_seen.insert(util::join(sorted, "+"));
    }

    if (on) {
      if (track.saw_gap) track.reactivated_after_gap = true;
      track.ever_on = true;
      track.currently_on = true;
      track.was_cf_before_loss = operators.contains("cloudflare");
      track.last_operators = operators;
    } else {
      if (track.ever_on) {
        track.saw_gap = true;
        // The Study keeps issuing NS lookups for the cohort, so an empty
        // NS set while deactivated is a real observation (the paper's 20
        // no-NS domains), as is an NXDOMAIN for the apex.
        if (obs.nxdomain() || (obs.answered() && obs.ns_records().empty())) {
          track.ns_absent_while_off = true;
        }
        if (track.was_cf_before_loss && !operators.empty() &&
            !operators.contains("cloudflare")) {
          track.lost_https_on_migration = true;
        }
      }
      track.currently_on = false;
    }
  }
}

IntermittentUse::Result IntermittentUse::result() const {
  Result out;
  for (const auto& [id, track] : tracks_) {
    (void)id;
    bool intermittent =
        track.reactivated_after_gap || (track.ever_on && track.saw_gap);
    if (!intermittent) continue;
    ++out.intermittent_domains;
    if (track.lost_https_on_migration) ++out.lost_https_after_ns_change;
    if (track.ns_absent_while_off) ++out.no_ns_while_inactive;
    if (track.operator_sets_seen.size() <= 1) {
      ++out.same_ns_throughout;
      if (track.operator_sets_seen.contains("cloudflare")) {
        ++out.same_ns_cloudflare_only;
      } else {
        ++out.same_ns_other;
      }
    } else {
      ++out.changed_ns;
    }
  }
  return out;
}

}  // namespace httpsrr::analysis
