#include "analysis/ns_analysis.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::analysis {

namespace {

// The per-row classification the running counters cache: 0 = contributes
// nothing (no HTTPS record, or unattributable NS), else the NsMix bucket.
constexpr std::uint8_t kNone = 0;
constexpr std::uint8_t kFullCf = 1;
constexpr std::uint8_t kPartialCf = 2;
constexpr std::uint8_t kNonCf = 3;

std::uint8_t mix_code(const scanner::ObservationView& obs,
                      const scanner::DailySnapshot& snapshot) {
  if (!obs.has_https()) return kNone;
  switch (classify_ns_mix(obs, snapshot)) {
    case NsMix::full_cloudflare: return kFullCf;
    case NsMix::partial_cloudflare: return kPartialCf;
    case NsMix::none_cloudflare: return kNonCf;
    case NsMix::unknown: return kNone;
  }
  return kNone;
}

double pct_of(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

// Unsigned ±1: removal passes size_t(-1), exact through wraparound because
// every removal undoes an addition previously made for the same row.
constexpr std::size_t kMinus = static_cast<std::size_t>(-1);

}  // namespace

void NsCategoryAnalysis::apply(std::uint8_t code, bool overlapping,
                               std::size_t delta) {
  if (code == kNone) return;
  const auto bump_in = [code, delta](Counts& c) {
    c.total += delta;
    switch (code) {
      case kFullCf: c.full += delta; break;
      case kPartialCf: c.partial += delta; break;
      case kNonCf: c.none += delta; break;
      default: break;
    }
  };
  bump_in(dyn_);
  if (overlapping) bump_in(ovl_);
}

void NsCategoryAnalysis::emit(net::SimTime day) {
  dyn_full_.add(day, pct_of(dyn_.full, dyn_.total));
  dyn_partial_.add(day, pct_of(dyn_.partial, dyn_.total));
  dyn_none_.add(day, pct_of(dyn_.none, dyn_.total));
  ovl_full_.add(day, pct_of(ovl_.full, ovl_.total));
  ovl_partial_.add(day, pct_of(ovl_.partial, ovl_.total));
  ovl_none_.add(day, pct_of(ovl_.none, ovl_.total));
}

void NsCategoryAnalysis::on_day(const scanner::DailySnapshot& snapshot,
                                const ecosystem::Internet& net) {
  if (snapshot.day < from_ || snapshot.day > to_) {
    gate_.skip();
    return;
  }
  overlap_.ensure(net);
  if (coded_.size() < net.domain_count()) coded_.resize(net.domain_count(), 0);

  const scanner::ChurnDiff& churn = snapshot.churn;
  const bool flip =
      gate_.context_changed(overlap_.phase2_on(snapshot.day) ? 1 : 0);
  if (gate_.needs_full(churn, /*ns_dependent=*/true, flip)) {
    dyn_ = Counts{};
    ovl_ = Counts{};
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      const ecosystem::DomainId id = snapshot.list[i];
      const std::uint8_t code = mix_code(snapshot.apex.view(i), snapshot);
      coded_[id] = code;
      apply(code, overlap_.overlapping_on(id, snapshot.day), 1);
    }
    gate_.account_full(snapshot.size());
  } else {
    // overlapping_on is stable inside a phase (a flip forced a full pass
    // above), so removal re-derives the same membership the addition used.
    for (const ecosystem::DomainId id : churn.left) {
      apply(coded_[id], overlap_.overlapping_on(id, snapshot.day), kMinus);
      coded_[id] = kNone;
    }
    for (const std::uint32_t i : churn.changed) {
      const ecosystem::DomainId id = snapshot.list[i];
      const bool overlapping = overlap_.overlapping_on(id, snapshot.day);
      apply(coded_[id], overlapping, kMinus);
      const std::uint8_t code = mix_code(snapshot.apex.view(i), snapshot);
      coded_[id] = code;
      apply(code, overlapping, 1);
    }
    for (const std::uint32_t i : churn.entered) {
      const ecosystem::DomainId id = snapshot.list[i];
      const std::uint8_t code = mix_code(snapshot.apex.view(i), snapshot);
      coded_[id] = code;
      apply(code, overlap_.overlapping_on(id, snapshot.day), 1);
    }
    gate_.account_delta(churn);
  }
  emit(snapshot.day);
}

NsCategoryAnalysis::Shares NsCategoryAnalysis::dynamic_shares() const {
  return Shares{dyn_full_.mean(),    dyn_full_.stddev(), dyn_none_.mean(),
                dyn_none_.stddev(),  dyn_partial_.mean(),
                dyn_partial_.stddev()};
}

NsCategoryAnalysis::Shares NsCategoryAnalysis::overlapping_shares() const {
  return Shares{ovl_full_.mean(),    ovl_full_.stddev(), ovl_none_.mean(),
                ovl_none_.stddev(),  ovl_partial_.mean(),
                ovl_partial_.stddev()};
}

void ProviderAnalysis::add(ecosystem::DomainId id,
                           const std::vector<std::string>& ops,
                           net::SimTime day) {
  if (ops.empty()) return;
  const bool overlapping = overlap_.overlapping_on(id, day);
  for (const auto& op : ops) {
    ++live_ops_[op];
    providers_dynamic_.insert(op);
    domains_dynamic_[op].insert(id);
    if (overlapping) {
      providers_overlapping_.insert(op);
      domains_overlapping_[op].insert(id);
    }
  }
  ++live_domains_;
}

void ProviderAnalysis::remove(ecosystem::DomainId id,
                              const std::vector<std::string>& ops) {
  (void)id;
  if (ops.empty()) return;
  for (const auto& op : ops) {
    auto it = live_ops_.find(op);
    if (--it->second == 0) live_ops_.erase(it);
  }
  --live_domains_;
}

void ProviderAnalysis::on_day(const scanner::DailySnapshot& snapshot,
                              const ecosystem::Internet& net) {
  if (snapshot.day < from_ || snapshot.day > to_) {
    gate_.skip();
    return;
  }
  overlap_.ensure(net);

  // A row's contribution: its sorted non-CF operator names (empty when the
  // domain has no HTTPS record or only Cloudflare NS).
  const auto row_ops = [&snapshot](std::size_t i) {
    std::vector<std::string> out;
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) return out;
    for (const auto& op : ns_operators(obs, snapshot)) {
      if (op != "cloudflare") out.push_back(op);
    }
    return out;
  };

  const scanner::ChurnDiff& churn = snapshot.churn;
  // The accumulating window sets insert under the day's overlap phase, so
  // a phase edge must re-run every row once (delta days would never
  // re-insert unchanged rows under the new phase's membership).
  const bool flip =
      gate_.context_changed(overlap_.phase2_on(snapshot.day) ? 1 : 0);
  if (gate_.needs_full(churn, /*ns_dependent=*/true, flip)) {
    live_ops_.clear();
    live_domains_ = 0;
    ops_.clear();
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      auto ops = row_ops(i);
      add(snapshot.list[i], ops, snapshot.day);
      if (!ops.empty()) ops_[snapshot.list[i]] = std::move(ops);
    }
    gate_.account_full(snapshot.size());
  } else {
    for (const ecosystem::DomainId id : churn.left) {
      auto it = ops_.find(id);
      if (it != ops_.end()) {
        remove(id, it->second);
        ops_.erase(it);
      }
    }
    for (const std::uint32_t i : churn.changed) {
      const ecosystem::DomainId id = snapshot.list[i];
      auto it = ops_.find(id);
      if (it != ops_.end()) {
        remove(id, it->second);
        ops_.erase(it);
      }
      auto ops = row_ops(i);
      add(id, ops, snapshot.day);
      if (!ops.empty()) ops_[id] = std::move(ops);
    }
    for (const std::uint32_t i : churn.entered) {
      const ecosystem::DomainId id = snapshot.list[i];
      auto ops = row_ops(i);
      add(id, ops, snapshot.day);
      if (!ops.empty()) ops_[id] = std::move(ops);
    }
    gate_.account_delta(churn);
  }

  provider_count_.add(snapshot.day, static_cast<double>(live_ops_.size()));
  domain_count_.add(snapshot.day, static_cast<double>(live_domains_));
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_of(
    const std::map<std::string, std::set<ecosystem::DomainId>>& table,
    std::size_t k) {
  std::vector<std::pair<std::string, std::size_t>> rows;
  rows.reserve(table.size());
  for (const auto& [name, domains] : table) {
    rows.emplace_back(name, domains.size());
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_dynamic(
    std::size_t k) const {
  return top_of(domains_dynamic_, k);
}

std::vector<std::pair<std::string, std::size_t>> ProviderAnalysis::top_overlapping(
    std::size_t k) const {
  return top_of(domains_overlapping_, k);
}

void IntermittentUse::track_row(const scanner::DailySnapshot& snapshot,
                                std::size_t i) {
  const auto obs = snapshot.apex.view(i);
  bool on = obs.has_https();
  auto& track = tracks_[snapshot.list[i]];

  auto operators = ns_operators(obs, snapshot);
  if (!operators.empty()) {
    std::vector<std::string> sorted(operators.begin(), operators.end());
    track.operator_sets_seen.insert(util::join(sorted, "+"));
  }

  if (on) {
    if (track.saw_gap) track.reactivated_after_gap = true;
    track.ever_on = true;
    track.currently_on = true;
    track.was_cf_before_loss = operators.contains("cloudflare");
    track.last_operators = operators;
  } else {
    if (track.ever_on) {
      track.saw_gap = true;
      // The Study keeps issuing NS lookups for the cohort, so an empty
      // NS set while deactivated is a real observation (the paper's 20
      // no-NS domains), as is an NXDOMAIN for the apex.
      if (obs.nxdomain() || (obs.answered() && obs.ns_records().empty())) {
        track.ns_absent_while_off = true;
      }
      if (track.was_cf_before_loss && !operators.empty() &&
          !operators.contains("cloudflare")) {
        track.lost_https_on_migration = true;
      }
    }
    track.currently_on = false;
  }
}

void IntermittentUse::on_day(const scanner::DailySnapshot& snapshot,
                             const ecosystem::Internet& net) {
  (void)net;
  if (snapshot.day < from_ || snapshot.day > to_) {
    gate_.skip();
    return;
  }

  // The per-row update is idempotent for an unchanged row (every assignment
  // re-derives the same value; every flag is sticky and its condition is a
  // pure function of row + NS attribution), and a domain off the list is
  // never touched — so the delta path only needs changed + entered rows.
  const scanner::ChurnDiff& churn = snapshot.churn;
  if (gate_.needs_full(churn, /*ns_dependent=*/true, /*context_flip=*/false)) {
    for (std::size_t i = 0; i < snapshot.size(); ++i) track_row(snapshot, i);
    gate_.account_full(snapshot.size());
  } else {
    for (const std::uint32_t i : churn.changed) track_row(snapshot, i);
    for (const std::uint32_t i : churn.entered) track_row(snapshot, i);
    gate_.account_delta(churn);
  }
}

IntermittentUse::Result IntermittentUse::result() const {
  Result out;
  for (const auto& [id, track] : tracks_) {
    (void)id;
    bool intermittent =
        track.reactivated_after_gap || (track.ever_on && track.saw_gap);
    if (!intermittent) continue;
    ++out.intermittent_domains;
    if (track.lost_https_on_migration) ++out.lost_https_after_ns_change;
    if (track.ns_absent_while_off) ++out.no_ns_while_inactive;
    if (track.operator_sets_seen.size() <= 1) {
      ++out.same_ns_throughout;
      if (track.operator_sets_seen.contains("cloudflare")) {
        ++out.same_ns_cloudflare_only;
      } else {
        ++out.same_ns_other;
      }
    } else {
      ++out.changed_ns;
    }
  }
  return out;
}

}  // namespace httpsrr::analysis
