#include "analysis/common.h"

#include <cmath>

namespace httpsrr::analysis {

double TimeSeries::mean() const {
  if (points_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [day, v] : points_) {
    (void)day;
    sum += v;
  }
  return sum / static_cast<double>(points_.size());
}

double TimeSeries::stddev() const {
  if (points_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (const auto& [day, v] : points_) {
    (void)day;
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(points_.size() - 1));
}

std::optional<double> TimeSeries::at(net::SimTime day) const {
  auto it = points_.find(day.unix_seconds);
  if (it == points_.end()) return std::nullopt;
  return it->second;
}

double TimeSeries::mean_between(net::SimTime from, net::SimTime to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = points_.lower_bound(from.unix_seconds);
       it != points_.end() && it->first <= to.unix_seconds; ++it) {
    sum += it->second;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::set<std::string> ns_operators(const scanner::ObservationView& obs,
                                   const scanner::DailySnapshot& snapshot) {
  std::set<std::string> out;
  for (const auto& host : obs.ns_records()) {
    auto it = snapshot.ns_info.find(host);
    if (it != snapshot.ns_info.end() && it->second.operator_name) {
      out.insert(*it->second.operator_name);
    }
  }
  return out;
}

NsMix classify_ns_mix(const scanner::ObservationView& obs,
                      const scanner::DailySnapshot& snapshot) {
  auto operators = ns_operators(obs, snapshot);
  if (operators.empty()) return NsMix::unknown;
  bool has_cf = operators.contains("cloudflare");
  bool has_other = operators.size() > (has_cf ? 1u : 0u);
  if (has_cf && !has_other) return NsMix::full_cloudflare;
  if (has_cf && has_other) return NsMix::partial_cloudflare;
  return NsMix::none_cloudflare;
}

void OverlapSets::ensure(const ecosystem::Internet& net) {
  if (built_) return;
  built_ = true;
  const auto& config = net.config();
  source_change_ = config.source_change;
  phase1_.assign(net.domain_count(), false);
  phase2_.assign(net.domain_count(), false);

  auto phase1 = net.tranco().overlapping(
      config.start, config.source_change - net::Duration::days(1));
  for (auto id : phase1) phase1_[id] = true;
  phase1_count_ = phase1.size();

  auto phase2 = net.tranco().overlapping(config.source_change, config.end);
  for (auto id : phase2) phase2_[id] = true;
  phase2_count_ = phase2.size();
}

}  // namespace httpsrr::analysis
