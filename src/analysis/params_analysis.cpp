#include "analysis/params_analysis.h"

#include <algorithm>

namespace httpsrr::analysis {

namespace {

double pct_of(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

constexpr std::size_t kMinus = static_cast<std::size_t>(-1);

}  // namespace

bool is_cloudflare_default_config(const dns::SvcbRdata& record, net::SimTime day,
                                  net::SimTime h3_29_retirement) {
  if (!record.is_service_mode() || record.priority != 1) return false;
  if (!record.target.is_root()) return false;
  if (!record.params.has(dns::SvcParamKey::ipv4hint) ||
      !record.params.has(dns::SvcParamKey::ipv6hint)) {
    return false;
  }
  auto alpn = record.params.alpn();
  if (!alpn) return false;
  std::set<std::string> protocols(alpn->begin(), alpn->end());
  // ech and Google-QUIC ids ride on default records too; alpn must contain
  // the default set (h2, h3, +h3-29 before retirement).
  if (!protocols.contains("h2") || !protocols.contains("h3")) return false;
  if (day < h3_29_retirement && !protocols.contains("h3-29")) return false;
  return true;
}

void CfConfigClassifier::apply(std::uint8_t code, bool overlapping,
                               std::size_t delta) {
  if (code == 0) return;
  dyn_total_ += delta;
  if (code == 2) dyn_defaults_ += delta;
  if (overlapping) {
    ovl_total_ += delta;
    if (code == 2) ovl_defaults_ += delta;
  }
}

void CfConfigClassifier::on_day(const scanner::DailySnapshot& snapshot,
                                const ecosystem::Internet& net) {
  overlap_.ensure(net);
  if (coded_.size() < net.domain_count()) coded_.resize(net.domain_count(), 0);

  const auto code_of = [&](std::size_t i) -> std::uint8_t {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) return 0;
    if (classify_ns_mix(obs, snapshot) != NsMix::full_cloudflare) return 0;
    auto https_records = obs.https_records();
    const bool is_default = std::any_of(
        https_records.begin(), https_records.end(),
        [&](const dns::SvcbRdata& r) {
          return is_cloudflare_default_config(
              r, snapshot.day, net.config().h3_29_retirement);
        });
    return is_default ? 2 : 1;
  };

  const scanner::ChurnDiff& churn = snapshot.churn;
  // Day context: the overlap phase and which side of the h3-29 retirement
  // the day falls on (the default-config test flips for every unchanged
  // Cloudflare row when the retirement date passes).
  const std::uint32_t context =
      (overlap_.phase2_on(snapshot.day) ? 1u : 0u) |
      (snapshot.day < net.config().h3_29_retirement ? 2u : 0u);
  const bool flip = gate_.context_changed(context);
  if (gate_.needs_full(churn, /*ns_dependent=*/true, flip)) {
    dyn_total_ = dyn_defaults_ = ovl_total_ = ovl_defaults_ = 0;
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      const ecosystem::DomainId id = snapshot.list[i];
      const std::uint8_t code = code_of(i);
      coded_[id] = code;
      apply(code, overlap_.overlapping_on(id, snapshot.day), 1);
    }
    gate_.account_full(snapshot.size());
  } else {
    for (const ecosystem::DomainId id : churn.left) {
      apply(coded_[id], overlap_.overlapping_on(id, snapshot.day), kMinus);
      coded_[id] = 0;
    }
    for (const std::uint32_t i : churn.changed) {
      const ecosystem::DomainId id = snapshot.list[i];
      const bool overlapping = overlap_.overlapping_on(id, snapshot.day);
      apply(coded_[id], overlapping, kMinus);
      const std::uint8_t code = code_of(i);
      coded_[id] = code;
      apply(code, overlapping, 1);
    }
    for (const std::uint32_t i : churn.entered) {
      const ecosystem::DomainId id = snapshot.list[i];
      const std::uint8_t code = code_of(i);
      coded_[id] = code;
      apply(code, overlap_.overlapping_on(id, snapshot.day), 1);
    }
    gate_.account_delta(churn);
  }

  dyn_default_.add(snapshot.day, pct_of(dyn_defaults_, dyn_total_));
  ovl_default_.add(snapshot.day, pct_of(ovl_defaults_, ovl_total_));
}

void ProviderParamProfile::profile_row(const scanner::DailySnapshot& snapshot,
                                       std::size_t i) {
  const auto obs = snapshot.apex.view(i);
  if (!obs.has_https()) return;
  auto operators = ns_operators(obs, snapshot);
  if (!operators.contains(provider_)) return;

  Profile row;
  row.domains = 1;
  for (const auto& record : obs.https_records()) {
    if (record.is_service_mode()) {
      row.service_mode = 1;
      if (record.target.is_root()) row.target_self = 1;
      else row.target_other = 1;
    } else {
      row.alias_mode = 1;
      row.target_other = 1;
    }
    if (record.params.has(dns::SvcParamKey::alpn)) row.with_alpn = 1;
    if (record.params.has(dns::SvcParamKey::ipv4hint)) row.with_ipv4hint = 1;
    if (record.params.has(dns::SvcParamKey::ipv6hint)) row.with_ipv6hint = 1;
  }
  per_domain_[snapshot.list[i]] = row;
}

void ProviderParamProfile::on_day(const scanner::DailySnapshot& snapshot,
                                  const ecosystem::Internet& net) {
  (void)net;
  // The per-row update overwrites per_domain_[id] with a pure function of
  // row + attribution, so unchanged rows are no-ops and unlisted domains
  // keep their last profile — only changed + entered rows need replaying.
  const scanner::ChurnDiff& churn = snapshot.churn;
  if (gate_.needs_full(churn, /*ns_dependent=*/true, /*context_flip=*/false)) {
    for (std::size_t i = 0; i < snapshot.size(); ++i) profile_row(snapshot, i);
    gate_.account_full(snapshot.size());
  } else {
    for (const std::uint32_t i : churn.changed) profile_row(snapshot, i);
    for (const std::uint32_t i : churn.entered) profile_row(snapshot, i);
    gate_.account_delta(churn);
  }
}

ProviderParamProfile::Profile ProviderParamProfile::profile() const {
  Profile out;
  for (const auto& [id, row] : per_domain_) {
    (void)id;
    out.domains += 1;
    out.service_mode += row.service_mode;
    out.alias_mode += row.alias_mode;
    out.target_self += row.target_self;
    out.target_other += row.target_other;
    out.with_alpn += row.with_alpn;
    out.with_ipv4hint += row.with_ipv4hint;
    out.with_ipv6hint += row.with_ipv6hint;
  }
  return out;
}

void ParamAudit::audit_row(const scanner::DailySnapshot& snapshot,
                           std::size_t i) {
  const auto obs = snapshot.apex.view(i);
  if (!obs.has_https()) return;
  Result row;
  for (const auto& record : obs.https_records()) {
    if (record.is_service_mode()) {
      row.service_mode_domains = 1;
      if (record.priority == 1) row.priority_one = 1;
      if (record.params.empty()) row.service_without_params = 1;
    } else {
      row.alias_mode_domains = 1;
      if (record.target.is_root()) row.alias_target_self = 1;
    }
  }
  per_domain_[snapshot.list[i]] = row;
}

void ParamAudit::on_day(const scanner::DailySnapshot& snapshot,
                        const ecosystem::Internet& net) {
  (void)net;
  // Same overwrite idempotence as ProviderParamProfile, and no NS input at
  // all — the audit reads record shapes only.
  const scanner::ChurnDiff& churn = snapshot.churn;
  if (gate_.needs_full(churn, /*ns_dependent=*/false, /*context_flip=*/false)) {
    for (std::size_t i = 0; i < snapshot.size(); ++i) audit_row(snapshot, i);
    gate_.account_full(snapshot.size());
  } else {
    for (const std::uint32_t i : churn.changed) audit_row(snapshot, i);
    for (const std::uint32_t i : churn.entered) audit_row(snapshot, i);
    gate_.account_delta(churn);
  }
}

ParamAudit::Result ParamAudit::result() const {
  Result out;
  for (const auto& [id, row] : per_domain_) {
    (void)id;
    out.service_mode_domains += row.service_mode_domains;
    out.alias_mode_domains += row.alias_mode_domains;
    out.service_without_params += row.service_without_params;
    out.alias_target_self += row.alias_target_self;
    out.priority_one += row.priority_one;
  }
  return out;
}

AlpnDistribution::RowAlpn AlpnDistribution::classify_row(
    const scanner::DailySnapshot& snapshot, std::size_t i) const {
  RowAlpn row;
  const auto apex_obs = snapshot.apex.view(i);
  if (apex_obs.has_https()) {
    row.apex_https = true;
    row.apex_protocols = apex_obs.alpn_protocols();
    // §4.3.4 measures alpn advertisement among *ServiceMode* records —
    // AliasMode cannot carry SvcParams, so alias-only domains (GoDaddy's
    // bulk) are excluded from the denominator.
    if (!apex_obs.alias_mode() &&
        classify_ns_mix(apex_obs, snapshot) == NsMix::none_cloudflare) {
      row.non_cf = true;
      for (const auto& p : row.apex_protocols) {
        if (p == "h2") row.h2 = true;
        if (p == "h3") row.h3 = true;
      }
      row.no_alpn = row.apex_protocols.empty();
    }
  }
  const auto www_obs = snapshot.www.view(i);
  if (www_obs.has_https()) {
    row.www_https = true;
    row.www_protocols = www_obs.alpn_protocols();
  }
  return row;
}

void AlpnDistribution::add(const RowAlpn& row, bool overlapping) {
  if (overlapping && row.apex_https) {
    ++apex_https_run_;
    for (const auto& p : row.apex_protocols) ++apex_counts_run_[p];
  }
  if (row.non_cf) {
    ++non_cf_run_;
    if (row.h2) ++non_cf_h2_run_;
    if (row.h3) ++non_cf_h3_run_;
    if (row.no_alpn) ++non_cf_none_run_;
  }
  if (overlapping && row.www_https) {
    ++www_https_run_;
    for (const auto& p : row.www_protocols) ++www_counts_run_[p];
  }
}

void AlpnDistribution::remove(const RowAlpn& row, bool overlapping) {
  const auto drop = [](std::map<std::string, std::size_t>& counts,
                       const std::string& p) {
    auto it = counts.find(p);
    if (--it->second == 0) counts.erase(it);
  };
  if (overlapping && row.apex_https) {
    --apex_https_run_;
    for (const auto& p : row.apex_protocols) drop(apex_counts_run_, p);
  }
  if (row.non_cf) {
    --non_cf_run_;
    if (row.h2) --non_cf_h2_run_;
    if (row.h3) --non_cf_h3_run_;
    if (row.no_alpn) --non_cf_none_run_;
  }
  if (overlapping && row.www_https) {
    --www_https_run_;
    for (const auto& p : row.www_protocols) drop(www_counts_run_, p);
  }
}

void AlpnDistribution::on_day(const scanner::DailySnapshot& snapshot,
                              const ecosystem::Internet& net) {
  overlap_.ensure(net);

  const scanner::ChurnDiff& churn = snapshot.churn;
  const bool flip =
      gate_.context_changed(overlap_.phase2_on(snapshot.day) ? 1 : 0);
  if (gate_.needs_full(churn, /*ns_dependent=*/true, flip)) {
    apex_counts_run_.clear();
    www_counts_run_.clear();
    apex_https_run_ = www_https_run_ = 0;
    non_cf_run_ = non_cf_h2_run_ = non_cf_h3_run_ = non_cf_none_run_ = 0;
    cache_.clear();
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      RowAlpn row = classify_row(snapshot, i);
      const ecosystem::DomainId id = snapshot.list[i];
      add(row, overlap_.overlapping_on(id, snapshot.day));
      if (row.apex_https || row.www_https) cache_[id] = std::move(row);
    }
    gate_.account_full(snapshot.size());
  } else {
    for (const ecosystem::DomainId id : churn.left) {
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        remove(it->second, overlap_.overlapping_on(id, snapshot.day));
        cache_.erase(it);
      }
    }
    for (const std::uint32_t i : churn.changed) {
      const ecosystem::DomainId id = snapshot.list[i];
      const bool overlapping = overlap_.overlapping_on(id, snapshot.day);
      auto it = cache_.find(id);
      if (it != cache_.end()) {
        remove(it->second, overlapping);
        cache_.erase(it);
      }
      RowAlpn row = classify_row(snapshot, i);
      add(row, overlapping);
      if (row.apex_https || row.www_https) cache_[id] = std::move(row);
    }
    for (const std::uint32_t i : churn.entered) {
      const ecosystem::DomainId id = snapshot.list[i];
      RowAlpn row = classify_row(snapshot, i);
      add(row, overlap_.overlapping_on(id, snapshot.day));
      if (row.apex_https || row.www_https) cache_[id] = std::move(row);
    }
    gate_.account_delta(churn);
  }

  for (const auto& [protocol, count] : apex_counts_run_) {
    apex_series_[protocol].add(snapshot.day, pct_of(count, apex_https_run_));
  }
  for (const auto& [protocol, count] : www_counts_run_) {
    www_series_[protocol].add(snapshot.day, pct_of(count, www_https_run_));
  }
  if (non_cf_run_ > 0) {
    non_cf_h2_.add(snapshot.day, pct_of(non_cf_h2_run_, non_cf_run_));
    non_cf_h3_.add(snapshot.day, pct_of(non_cf_h3_run_, non_cf_run_));
    non_cf_none_.add(snapshot.day, pct_of(non_cf_none_run_, non_cf_run_));
  }
}

double AlpnDistribution::protocol_pct(const std::string& protocol,
                                      net::SimTime from, net::SimTime to,
                                      bool www) const {
  const auto& table = www ? www_series_ : apex_series_;
  auto it = table.find(protocol);
  if (it == table.end()) return 0.0;
  return it->second.mean_between(from, to);
}

double AlpnDistribution::non_cf_protocol_pct(const std::string& protocol) const {
  if (protocol == "h2") return non_cf_h2_.mean();
  if (protocol == "h3") return non_cf_h3_.mean();
  return 0.0;
}

double AlpnDistribution::non_cf_no_alpn_pct() const { return non_cf_none_.mean(); }

}  // namespace httpsrr::analysis
