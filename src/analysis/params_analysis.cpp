#include "analysis/params_analysis.h"

#include <algorithm>

namespace httpsrr::analysis {

bool is_cloudflare_default_config(const dns::SvcbRdata& record, net::SimTime day,
                                  net::SimTime h3_29_retirement) {
  if (!record.is_service_mode() || record.priority != 1) return false;
  if (!record.target.is_root()) return false;
  if (!record.params.has(dns::SvcParamKey::ipv4hint) ||
      !record.params.has(dns::SvcParamKey::ipv6hint)) {
    return false;
  }
  auto alpn = record.params.alpn();
  if (!alpn) return false;
  std::set<std::string> protocols(alpn->begin(), alpn->end());
  // ech and Google-QUIC ids ride on default records too; alpn must contain
  // the default set (h2, h3, +h3-29 before retirement).
  if (!protocols.contains("h2") || !protocols.contains("h3")) return false;
  if (day < h3_29_retirement && !protocols.contains("h3-29")) return false;
  return true;
}

void CfConfigClassifier::on_day(const scanner::DailySnapshot& snapshot,
                                const ecosystem::Internet& net) {
  overlap_.ensure(net);
  std::size_t dyn_total = 0, dyn_default = 0;
  std::size_t ovl_total = 0, ovl_default = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    if (classify_ns_mix(obs, snapshot) != NsMix::full_cloudflare) continue;

    auto https_records = obs.https_records();
    bool is_default = std::any_of(
        https_records.begin(), https_records.end(),
        [&](const dns::SvcbRdata& r) {
          return is_cloudflare_default_config(
              r, snapshot.day, net.config().h3_29_retirement);
        });
    ++dyn_total;
    if (is_default) ++dyn_default;
    if (overlap_.overlapping_on(snapshot.list[i], snapshot.day)) {
      ++ovl_total;
      if (is_default) ++ovl_default;
    }
  }
  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
  };
  dyn_default_.add(snapshot.day, pct(dyn_default, dyn_total));
  ovl_default_.add(snapshot.day, pct(ovl_default, ovl_total));
}

void ProviderParamProfile::on_day(const scanner::DailySnapshot& snapshot,
                                  const ecosystem::Internet& net) {
  (void)net;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    auto operators = ns_operators(obs, snapshot);
    if (!operators.contains(provider_)) continue;

    Profile row;
    row.domains = 1;
    for (const auto& record : obs.https_records()) {
      if (record.is_service_mode()) {
        row.service_mode = 1;
        if (record.target.is_root()) row.target_self = 1;
        else row.target_other = 1;
      } else {
        row.alias_mode = 1;
        row.target_other = 1;
      }
      if (record.params.has(dns::SvcParamKey::alpn)) row.with_alpn = 1;
      if (record.params.has(dns::SvcParamKey::ipv4hint)) row.with_ipv4hint = 1;
      if (record.params.has(dns::SvcParamKey::ipv6hint)) row.with_ipv6hint = 1;
    }
    per_domain_[snapshot.list[i]] = row;
  }
}

ProviderParamProfile::Profile ProviderParamProfile::profile() const {
  Profile out;
  for (const auto& [id, row] : per_domain_) {
    (void)id;
    out.domains += 1;
    out.service_mode += row.service_mode;
    out.alias_mode += row.alias_mode;
    out.target_self += row.target_self;
    out.target_other += row.target_other;
    out.with_alpn += row.with_alpn;
    out.with_ipv4hint += row.with_ipv4hint;
    out.with_ipv6hint += row.with_ipv6hint;
  }
  return out;
}

void ParamAudit::on_day(const scanner::DailySnapshot& snapshot,
                        const ecosystem::Internet& net) {
  (void)net;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    Result row;
    for (const auto& record : obs.https_records()) {
      if (record.is_service_mode()) {
        row.service_mode_domains = 1;
        if (record.priority == 1) row.priority_one = 1;
        if (record.params.empty()) row.service_without_params = 1;
      } else {
        row.alias_mode_domains = 1;
        if (record.target.is_root()) row.alias_target_self = 1;
      }
    }
    per_domain_[snapshot.list[i]] = row;
  }
}

ParamAudit::Result ParamAudit::result() const {
  Result out;
  for (const auto& [id, row] : per_domain_) {
    (void)id;
    out.service_mode_domains += row.service_mode_domains;
    out.alias_mode_domains += row.alias_mode_domains;
    out.service_without_params += row.service_without_params;
    out.alias_target_self += row.alias_target_self;
    out.priority_one += row.priority_one;
  }
  return out;
}

void AlpnDistribution::on_day(const scanner::DailySnapshot& snapshot,
                              const ecosystem::Internet& net) {
  overlap_.ensure(net);
  std::map<std::string, std::size_t> apex_counts, www_counts;
  std::size_t apex_https = 0, www_https = 0;
  std::size_t non_cf = 0, non_cf_h2 = 0, non_cf_h3 = 0, non_cf_none = 0;

  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto apex_obs = snapshot.apex.view(i);
    const auto www_obs = snapshot.www.view(i);
    bool overlapping = overlap_.overlapping_on(snapshot.list[i], snapshot.day);

    if (apex_obs.has_https()) {
      auto protocols = apex_obs.alpn_protocols();
      if (overlapping) {
        ++apex_https;
        for (const auto& p : protocols) ++apex_counts[p];
      }
      // §4.3.4 measures alpn advertisement among *ServiceMode* records —
      // AliasMode cannot carry SvcParams, so alias-only domains (GoDaddy's
      // bulk) are excluded from the denominator.
      if (!apex_obs.alias_mode() &&
          classify_ns_mix(apex_obs, snapshot) == NsMix::none_cloudflare) {
        ++non_cf;
        bool h2 = false, h3 = false;
        for (const auto& p : protocols) {
          if (p == "h2") h2 = true;
          if (p == "h3") h3 = true;
        }
        if (h2) ++non_cf_h2;
        if (h3) ++non_cf_h3;
        if (protocols.empty()) ++non_cf_none;
      }
    }
    if (overlapping && www_obs.has_https()) {
      ++www_https;
      for (const auto& p : www_obs.alpn_protocols()) ++www_counts[p];
    }
  }

  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole);
  };
  for (const auto& [protocol, count] : apex_counts) {
    apex_series_[protocol].add(snapshot.day, pct(count, apex_https));
  }
  for (const auto& [protocol, count] : www_counts) {
    www_series_[protocol].add(snapshot.day, pct(count, www_https));
  }
  if (non_cf > 0) {
    non_cf_h2_.add(snapshot.day, pct(non_cf_h2, non_cf));
    non_cf_h3_.add(snapshot.day, pct(non_cf_h3, non_cf));
    non_cf_none_.add(snapshot.day, pct(non_cf_none, non_cf));
  }
}

double AlpnDistribution::protocol_pct(const std::string& protocol,
                                      net::SimTime from, net::SimTime to,
                                      bool www) const {
  const auto& table = www ? www_series_ : apex_series_;
  auto it = table.find(protocol);
  if (it == table.end()) return 0.0;
  return it->second.mean_between(from, to);
}

double AlpnDistribution::non_cf_protocol_pct(const std::string& protocol) const {
  if (protocol == "h2") return non_cf_h2_.mean();
  if (protocol == "h3") return non_cf_h3_.mean();
  return 0.0;
}

double AlpnDistribution::non_cf_no_alpn_pct() const { return non_cf_none_.mean(); }

}  // namespace httpsrr::analysis
