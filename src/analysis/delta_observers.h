#pragma once

// Delta-aware observers: analysis that updates from the day-over-day churn
// diff (DailySnapshot::churn) instead of rescanning every row.
//
// At the 1M-domain scale the daily snapshot is ~99% identical to
// yesterday's — the Tranco churn tail and the handful of zone edits are
// the only rows that move.  The Study fingerprints every domain-day and
// hands observers the exact entered/changed/left sets with the previous
// day's packed summary bits, so a running counter needs O(churn) work per
// day, not O(list).  The contract: a row with an unchanged fingerprint has
// unchanged summary bits, so
//   today = yesterday - left_bits - changed_prev_bits
//                     + entered_bits + changed_today_bits.
// On a first (or otherwise churn-invalid) day the counter falls back to a
// full O(list) recompute; the incremental path must match a full recompute
// bit-for-bit every day, which tests/columnar_test.cpp checks.

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

// Running adoption counters (Fig. 2's numerators) maintained from churn
// diffs.  Tracks the dynamic list; percentages land in TimeSeries like
// AdoptionSeries', with the same values.
class DeltaAdoptionCounter final : public scanner::DailyObserver {
 public:
  struct Counts {
    std::size_t listed = 0;
    std::size_t apex_https = 0;
    std::size_t www_https = 0;
    std::size_t apex_ech = 0;
    std::size_t apex_signed = 0;
    std::size_t apex_validated = 0;

    friend bool operator==(const Counts&, const Counts&) = default;
  };

  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  [[nodiscard]] const Counts& counts() const { return counts_; }
  [[nodiscard]] const TimeSeries& apex_pct() const { return apex_pct_; }
  [[nodiscard]] const TimeSeries& www_pct() const { return www_pct_; }
  // Rows actually touched since the start (entered + changed + left over
  // every incremental day) — the work the churn diff saved is
  // days*list - this.
  [[nodiscard]] std::uint64_t rows_touched() const { return rows_touched_; }
  [[nodiscard]] std::size_t full_recomputes() const { return full_recomputes_; }

  // What a from-scratch O(list) pass over `snapshot` yields — the value
  // the incremental path must always equal.
  [[nodiscard]] static Counts recompute(
      const scanner::DailySnapshot& snapshot);

 private:
  Counts counts_;
  TimeSeries apex_pct_, www_pct_;
  std::uint64_t rows_touched_ = 0;
  std::size_t full_recomputes_ = 0;
};

}  // namespace httpsrr::analysis
