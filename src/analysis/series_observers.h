#pragma once

// Daily-series observers: the longitudinal fraction plots of the paper.
//   * AdoptionSeries  — Fig. 2a/2b: % of apex/www publishing HTTPS RRs.
//   * DnssecSeries    — Fig. 5a/5b: % of HTTPS RRs signed / AD-validated.
//   * EchSeries       — Fig. 13 (+§4.4.1): % of HTTPS publishers with ech,
//                       plus the detected shutdown date.
//   * EchDnssecSeries — Fig. 14: signed/validated among ECH publishers.

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

class AdoptionSeries final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  [[nodiscard]] const TimeSeries& dynamic_apex() const { return dynamic_apex_; }
  [[nodiscard]] const TimeSeries& dynamic_www() const { return dynamic_www_; }
  [[nodiscard]] const TimeSeries& overlapping_apex() const { return overlapping_apex_; }
  [[nodiscard]] const TimeSeries& overlapping_www() const { return overlapping_www_; }

 private:
  OverlapSets overlap_;
  TimeSeries dynamic_apex_, dynamic_www_, overlapping_apex_, overlapping_www_;
};

class DnssecSeries final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Percentages among HTTPS publishers.
  [[nodiscard]] const TimeSeries& signed_dynamic_apex() const { return sig_dyn_apex_; }
  [[nodiscard]] const TimeSeries& signed_dynamic_www() const { return sig_dyn_www_; }
  [[nodiscard]] const TimeSeries& signed_overlap_apex() const { return sig_ovl_apex_; }
  [[nodiscard]] const TimeSeries& signed_overlap_www() const { return sig_ovl_www_; }
  [[nodiscard]] const TimeSeries& validated_dynamic_apex() const { return ad_dyn_apex_; }
  [[nodiscard]] const TimeSeries& validated_overlap_apex() const { return ad_ovl_apex_; }

 private:
  OverlapSets overlap_;
  TimeSeries sig_dyn_apex_, sig_dyn_www_, sig_ovl_apex_, sig_ovl_www_;
  TimeSeries ad_dyn_apex_, ad_ovl_apex_;
};

class EchSeries final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // % of HTTPS publishers carrying an ech SvcParam (overlapping set).
  [[nodiscard]] const TimeSeries& apex() const { return apex_; }
  [[nodiscard]] const TimeSeries& www() const { return www_; }
  // First day on which the apex percentage hit zero after being nonzero.
  [[nodiscard]] std::optional<net::SimTime> shutdown_detected() const {
    return shutdown_;
  }
  // How many ECH publishers used non-Cloudflare name servers (daily mean).
  [[nodiscard]] const TimeSeries& non_cf_ech_domains() const { return non_cf_; }

 private:
  OverlapSets overlap_;
  TimeSeries apex_, www_, non_cf_;
  bool seen_nonzero_ = false;
  std::optional<net::SimTime> shutdown_;
};

class EchDnssecSeries final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Among overlapping domains publishing HTTPS+ech: % signed, % validated.
  [[nodiscard]] const TimeSeries& signed_pct() const { return signed_; }
  [[nodiscard]] const TimeSeries& validated_pct() const { return validated_; }

 private:
  OverlapSets overlap_;
  TimeSeries signed_, validated_;
};

}  // namespace httpsrr::analysis
