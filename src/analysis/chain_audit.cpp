#include "analysis/chain_audit.h"

#include "resolver/stub.h"
#include "scanner/https_scanner.h"

namespace httpsrr::analysis {

ChainAuditResult run_chain_audit(ecosystem::Internet& net, net::SimTime day) {
  net.advance_to(day);
  ChainAuditResult result;

  resolver::InfraChainSource source(net.infra(), net.clock());
  dnssec::ChainValidator validator(source, net.root_anchor());
  dnssec::ChainStatusCache cache;

  auto resolver = net.make_resolver();
  resolver::StubResolver stub(*resolver);
  scanner::HttpsScanner scanner(stub);

  for (ecosystem::DomainId id : net.tranco().list_for(day)) {
    const auto& apex = net.domain(id).apex;
    auto obs = scanner.scan(apex);

    bool has_https = obs.has_https();
    bool zone_signed = !source.dnskey_with_sigs(apex).empty();

    // NS attribution: resolve each NS host, WHOIS the first address.
    bool cloudflare_ns = false;
    for (const auto& host : obs.ns_records) {
      auto a = stub.query(host, dns::RrType::A);
      for (const auto& rr : a.answers) {
        if (const auto* rec = std::get_if<dns::ARdata>(&rr.rdata)) {
          auto op = net.whois().attribute(net::IpAddr(rec->address));
          if (op && *op == "cloudflare") cloudflare_ns = true;
        }
      }
    }

    auto account = [&](ChainAuditResult::Row& row) {
      ++row.total;
      if (!zone_signed) return;
      ++row.signed_;
      switch (validator.zone_status(apex, net.now(), &cache)) {
        case dnssec::Validation::secure: ++row.secure; break;
        case dnssec::Validation::insecure: ++row.insecure; break;
        case dnssec::Validation::bogus: ++row.bogus; break;
      }
    };

    if (has_https) {
      account(result.with_https);
      account(cloudflare_ns ? result.with_https_cloudflare
                            : result.with_https_non_cloudflare);
    } else {
      account(result.without_https);
    }
  }
  return result;
}

}  // namespace httpsrr::analysis
