#pragma once

// Rank analyses (Appendix C/D — Fig. 8, Fig. 9):
//   * rank distribution of overlapping vs non-overlapping domains;
//   * rank distribution of HTTPS publishers on non-Cloudflare NS.

#include <vector>

#include "analysis/common.h"
#include "scanner/study.h"

namespace httpsrr::analysis {

// Average rank per domain over sampled days, split by stability.
struct RankDistribution {
  std::vector<double> overlapping;      // average ranks, sorted ascending
  std::vector<double> non_overlapping;

  // Percentile helper: p in [0,100].
  [[nodiscard]] static double percentile(const std::vector<double>& sorted,
                                         double p);
};

// Samples `sample_days` evenly spaced days from [from, to].
[[nodiscard]] RankDistribution rank_distribution(ecosystem::Internet& net,
                                                 net::SimTime from,
                                                 net::SimTime to,
                                                 int sample_days = 8);

// Observer collecting daily ranks of HTTPS publishers on non-CF NS (Fig. 9).
class NonCfRankStats final : public scanner::DailyObserver {
 public:
  void on_day(const scanner::DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  // Mean observed rank per such domain, sorted ascending.
  [[nodiscard]] std::vector<double> mean_ranks() const;

 private:
  struct Acc {
    double sum = 0;
    std::size_t n = 0;
  };
  std::map<ecosystem::DomainId, Acc> ranks_;
};

}  // namespace httpsrr::analysis
