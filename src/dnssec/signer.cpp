#include "dnssec/signer.h"

#include "util/rng.h"
#include "util/sha256.h"

namespace httpsrr::dnssec {

namespace {

// Builds the signed data: RRSIG RDATA with the Signature field omitted,
// followed by the canonical form of the RRset (RFC 4034 §3.1.8.1).
dns::Bytes signed_data(const dns::RrsigRdata& sig, const dns::RrSet& rrset) {
  dns::WireWriter w;
  w.u16(static_cast<std::uint16_t>(sig.type_covered));
  w.u8(sig.algorithm);
  w.u8(sig.labels);
  w.u32(sig.original_ttl);
  w.u32(sig.expiration);
  w.u32(sig.inception);
  w.u16(sig.key_tag);
  // RFC 4034 §3.1.8.1: the Signer's Name is signed in canonical (folded)
  // form.  Signer and verifier both fold here, so a mixed-case spelling
  // carried in RRSIG RDATA cannot split them.
  w.name(sig.signer.case_folded());
  dns::Bytes out = std::move(w).take();
  dns::Bytes canonical = rrset.canonical_form(sig.original_ttl);
  out.insert(out.end(), canonical.begin(), canonical.end());
  return out;
}

dns::Bytes compute_signature(const dns::DnskeyRdata& dnskey,
                             const dns::Bytes& data) {
  util::Sha256 h;
  h.update(dnskey.public_key);
  h.update(data);
  auto digest = h.finish();
  return dns::Bytes(digest.begin(), digest.end());
}

// FNV-1a over the two memo inputs; used only to bucket entries — hits are
// confirmed by exact comparison in SignatureCache::sign.
std::uint64_t memo_hash(const dns::Bytes& public_key, const dns::Bytes& data) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const dns::Bytes& bytes) {
    for (std::uint8_t b : bytes) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  mix(public_key);
  mix(data);
  return h;
}

}  // namespace

dns::Bytes SignatureCache::sign(const dns::DnskeyRdata& dnskey,
                                const dns::Bytes& data) {
  const std::uint64_t h = memo_hash(dnskey.public_key, data);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(h);
    if (it != entries_.end() && it->second.public_key == dnskey.public_key &&
        it->second.data == data) {
      ++stats_.hits;
      return it->second.signature;
    }
  }
  dns::Bytes sig = compute_signature(dnskey, data);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    entries_[h] = Entry{dnskey.public_key, data, sig};
  }
  return sig;
}

void SignatureCache::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

SignatureCache::Stats SignatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

KeyPair KeyPair::generate(std::uint64_t seed, std::uint16_t flags) {
  KeyPair kp;
  util::SplitMix64 rng(seed);
  kp.secret.resize(32);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t word = rng.next();
    for (int b = 0; b < 8; ++b) {
      kp.secret[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(word >> (b * 8));
    }
  }
  auto pub = util::sha256(kp.secret);
  kp.dnskey.flags = flags;
  kp.dnskey.protocol = 3;
  kp.dnskey.algorithm = 253;
  kp.dnskey.public_key.assign(pub.begin(), pub.end());
  return kp;
}

dns::RrsigRdata sign_rrset(const dns::Name& signer_zone, const KeyPair& key,
                           const dns::RrSet& rrset, net::SimTime inception,
                           net::SimTime expiration, SignatureCache* cache) {
  dns::RrsigRdata sig;
  sig.type_covered = rrset.type();
  sig.algorithm = key.dnskey.algorithm;
  sig.labels = static_cast<std::uint8_t>(rrset.owner().label_count());
  sig.original_ttl = rrset.ttl();
  sig.inception = static_cast<std::uint32_t>(inception.unix_seconds);
  sig.expiration = static_cast<std::uint32_t>(expiration.unix_seconds);
  sig.key_tag = key.key_tag();
  sig.signer = signer_zone;
  dns::Bytes data = signed_data(sig, rrset);
  sig.signature = cache != nullptr ? cache->sign(key.dnskey, data)
                                   : compute_signature(key.dnskey, data);
  return sig;
}

std::string_view to_string(SigCheck c) {
  switch (c) {
    case SigCheck::valid: return "valid";
    case SigCheck::expired: return "expired";
    case SigCheck::not_yet_valid: return "not-yet-valid";
    case SigCheck::key_mismatch: return "key-mismatch";
    case SigCheck::bad_signature: return "bad-signature";
  }
  return "?";
}

SigCheck verify_rrsig(const dns::RrsigRdata& sig, const dns::DnskeyRdata& dnskey,
                      const dns::RrSet& rrset, net::SimTime now) {
  if (sig.key_tag != dnskey.key_tag() || sig.algorithm != dnskey.algorithm) {
    return SigCheck::key_mismatch;
  }
  auto t = static_cast<std::uint32_t>(now.unix_seconds);
  if (t > sig.expiration) return SigCheck::expired;
  if (t < sig.inception) return SigCheck::not_yet_valid;
  if (sig.signature != compute_signature(dnskey, signed_data(sig, rrset))) {
    return SigCheck::bad_signature;
  }
  return SigCheck::valid;
}

dns::DsRdata make_ds(const dns::Name& child_zone, const dns::DnskeyRdata& dnskey) {
  // RFC 4034 §5.1.4: the digest covers the *canonical* owner name.  The
  // validator walks zone names in whatever spelling the query used
  // ("COM" for a WWW.D00001.COM lookup), so hashing the preserved case
  // would mismatch the DS the parent computed over "com" and bogus-fail
  // the whole subtree.
  dns::WireWriter w;
  w.name(child_zone.case_folded());
  w.u16(dnskey.flags);
  w.u8(dnskey.protocol);
  w.u8(dnskey.algorithm);
  w.bytes(dnskey.public_key);
  auto digest = util::sha256(w.data());

  dns::DsRdata ds;
  ds.key_tag = dnskey.key_tag();
  ds.algorithm = dnskey.algorithm;
  ds.digest_type = 2;
  ds.digest.assign(digest.begin(), digest.end());
  return ds;
}

bool ds_matches(const dns::DsRdata& ds, const dns::Name& child_zone,
                const dns::DnskeyRdata& dnskey) {
  if (ds.key_tag != dnskey.key_tag() || ds.algorithm != dnskey.algorithm) {
    return false;
  }
  return ds == make_ds(child_zone, dnskey);
}

}  // namespace httpsrr::dnssec
