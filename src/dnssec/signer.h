#pragma once

// DNSSEC substrate: key generation, RRset signing/verification, DS records.
//
// Substitution note (see DESIGN.md): signatures use a *simulated* algorithm
// (number 253, PRIVATEDNS): sig = SHA-256(public_key || signed_data).  This
// keeps every structural property the study measures — key tags, DS
// digests, signature/data binding (any bit flip breaks verification),
// inception/expiration windows, missing-DS "insecure" states — while
// avoiding a from-scratch RSA/ECDSA implementation.  The measurement never
// relies on unforgeability, only on match/mismatch.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/rr.h"
#include "net/time.h"

namespace httpsrr::dnssec {

// A zone's signing key: public half is a DNSKEY RDATA; the private half
// stays inside the authoritative server.
struct KeyPair {
  dns::DnskeyRdata dnskey;
  dns::Bytes secret;

  // Deterministic generation from a seed (flags 257 = KSK, 256 = ZSK).
  static KeyPair generate(std::uint64_t seed, std::uint16_t flags = 256);

  [[nodiscard]] std::uint16_t key_tag() const { return dnskey.key_tag(); }
};

// Memo for computed signatures.  Signing is a pure function of (public
// key, signed data) — the signed data already encodes the rrset's canonical
// form, owner, type, TTL and the inception/expiration window — so entries
// can never go stale; hits are confirmed by exact byte comparison of both
// inputs, never by hash alone.  The epoch bump in Internet::advance_to
// calls invalidate() purely to bound memory: entries keyed on yesterday's
// validity window can no longer hit.  Thread-safe (authoritative servers
// are queried concurrently by the sharded scan).
class SignatureCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  // Returns SHA-256(public_key || data), memoized.
  [[nodiscard]] dns::Bytes sign(const dns::DnskeyRdata& dnskey,
                                const dns::Bytes& data);

  void invalidate();
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    dns::Bytes public_key;
    dns::Bytes data;
    dns::Bytes signature;
  };
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

// Signs `rrset` with `key` on behalf of `signer_zone`. With a non-null
// `cache`, the signature computation is memoized (see SignatureCache).
[[nodiscard]] dns::RrsigRdata sign_rrset(const dns::Name& signer_zone,
                                         const KeyPair& key,
                                         const dns::RrSet& rrset,
                                         net::SimTime inception,
                                         net::SimTime expiration,
                                         SignatureCache* cache = nullptr);

enum class SigCheck : std::uint8_t {
  valid,
  expired,
  not_yet_valid,
  key_mismatch,    // key tag / signer / algorithm does not match the DNSKEY
  bad_signature,   // data or key changed since signing
};

[[nodiscard]] std::string_view to_string(SigCheck c);

// Verifies `sig` over `rrset` with the public `dnskey` at virtual time `now`.
[[nodiscard]] SigCheck verify_rrsig(const dns::RrsigRdata& sig,
                                    const dns::DnskeyRdata& dnskey,
                                    const dns::RrSet& rrset, net::SimTime now);

// DS record for a child zone's DNSKEY (digest type 2 = SHA-256 over
// owner-wire || DNSKEY RDATA, per RFC 4034 §5.1.4).
[[nodiscard]] dns::DsRdata make_ds(const dns::Name& child_zone,
                                   const dns::DnskeyRdata& dnskey);

// True if `ds` authenticates `dnskey` at `child_zone`.
[[nodiscard]] bool ds_matches(const dns::DsRdata& ds, const dns::Name& child_zone,
                              const dns::DnskeyRdata& dnskey);

}  // namespace httpsrr::dnssec
