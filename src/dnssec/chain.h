#pragma once

// DNSSEC chain-of-trust evaluation (RFC 4035 semantics).
//
// A validating resolver classifies an RRset as:
//   * Secure   — an unbroken DS/DNSKEY chain from the trust anchor signs it;
//   * Insecure — a delegation on the path provably lacks a DS record (the
//                dominant state the paper measures: domains signing their
//                zone but never uploading DS to the registrar, §4.5/Table 9);
//   * Bogus    — a chain exists but a signature or digest fails.
//
// The validator pulls DNSKEY/DS sets through the ChainSource interface so
// it can run against the simulated Internet or against hand-built fixtures.

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "dnssec/signer.h"
#include "net/time.h"

namespace httpsrr::dnssec {

enum class Validation : std::uint8_t {
  secure,
  insecure,
  bogus,
};

[[nodiscard]] std::string_view to_string(Validation v);

// Supplies authoritative DNSSEC material per zone.
class ChainSource {
 public:
  virtual ~ChainSource() = default;

  // Closest enclosing zone apex for a name; nullopt when unknown.
  [[nodiscard]] virtual std::optional<dns::Name> zone_apex(
      const dns::Name& name) const = 0;

  // DNSKEY RRset of `zone` plus covering RRSIGs; empty when unsigned.
  [[nodiscard]] virtual std::vector<dns::Rr> dnskey_with_sigs(
      const dns::Name& zone) const = 0;

  // DS RRset for `zone` as served by its parent, plus covering RRSIGs;
  // empty when the parent holds no DS for this delegation.
  [[nodiscard]] virtual std::vector<dns::Rr> ds_with_sigs(
      const dns::Name& zone) const = 0;
};

// Memoises zone chain status the way a real validating resolver caches
// DNSKEY/DS material: entries live until `expires` on the virtual clock.
class ChainStatusCache {
 public:
  explicit ChainStatusCache(net::Duration ttl = net::Duration::hours(1))
      : ttl_(ttl) {}

  [[nodiscard]] std::optional<Validation> get(const dns::Name& zone,
                                              net::SimTime now) const;
  void put(const dns::Name& zone, Validation status, net::SimTime now);
  void clear() { entries_.clear(); }
  // Erases entries expired for longer than `grace` (get() already refuses
  // anything expired — sweeping is unobservable); returns how many were
  // dropped.  A grace window keeps recently-expired nodes in place for
  // overwrite-on-refresh instead of erase + re-insert.
  std::size_t sweep(net::SimTime now,
                    net::Duration grace = net::Duration::secs(0));
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Validation status;
    net::SimTime expires;
  };
  net::Duration ttl_;
  // Hashed: one probe per validated RRset on the resolver hot path, and
  // a study-sized cache holds thousands of zones.
  std::unordered_map<dns::Name, Entry, dns::NameHash> entries_;
};

class ChainValidator {
 public:
  // `root_anchor`: the trust-anchor DNSKEY for the root zone.
  ChainValidator(const ChainSource& source, dns::DnskeyRdata root_anchor)
      : source_(source), root_anchor_(std::move(root_anchor)) {}

  // Validates a queried RRset: `records` holds the data records and any
  // covering RRSIGs exactly as they appear in a response answer section.
  // `cache` (optional) memoises per-zone chain walks.
  [[nodiscard]] Validation validate(const dns::Name& owner,
                                    const std::vector<dns::Rr>& records,
                                    net::SimTime now,
                                    ChainStatusCache* cache = nullptr) const;

  // Evaluates the chain state of a zone itself (used by Table-9 audits).
  [[nodiscard]] Validation zone_status(const dns::Name& zone, net::SimTime now,
                                       ChainStatusCache* cache = nullptr) const;

  // Validates a *negative* answer: `authorities` holds the SOA and NSEC
  // records (with RRSIGs) from the authority section. Secure when a
  // verified NSEC proves qname's nonexistence (NXDOMAIN) or the absence of
  // qtype at qname (NODATA); bogus when the zone is secure but the proof
  // is missing, unverifiable, or does not cover the question.
  [[nodiscard]] Validation validate_denial(const dns::Name& qname,
                                           dns::RrType qtype,
                                           const std::vector<dns::Rr>& authorities,
                                           net::SimTime now,
                                           ChainStatusCache* cache = nullptr) const;

 private:
  [[nodiscard]] Validation zone_status_impl(const dns::Name& zone,
                                            net::SimTime now, int depth,
                                            ChainStatusCache* cache) const;

  const ChainSource& source_;
  dns::DnskeyRdata root_anchor_;
};

// Utility shared with the resolver: splits a record list into the data
// RRset (of `type`) and the RRSIGs covering it.
struct SplitRrset {
  dns::RrSet data;
  std::vector<dns::RrsigRdata> sigs;
};
[[nodiscard]] SplitRrset split_rrset(const std::vector<dns::Rr>& records,
                                     dns::RrType type);

}  // namespace httpsrr::dnssec
