#include "dnssec/chain.h"

#include <algorithm>

namespace httpsrr::dnssec {

std::string_view to_string(Validation v) {
  switch (v) {
    case Validation::secure: return "secure";
    case Validation::insecure: return "insecure";
    case Validation::bogus: return "bogus";
  }
  return "?";
}

SplitRrset split_rrset(const std::vector<dns::Rr>& records, dns::RrType type) {
  SplitRrset out;
  for (const auto& rr : records) {
    if (rr.type == type) {
      out.data.add(rr);
    } else if (rr.type == dns::RrType::RRSIG) {
      const auto* sig = std::get_if<dns::RrsigRdata>(&rr.rdata);
      if (sig && sig->type_covered == type) out.sigs.push_back(*sig);
    }
  }
  return out;
}

namespace {

// Tries every (sig, key) pair; true when any combination verifies.
bool any_sig_verifies(const std::vector<dns::RrsigRdata>& sigs,
                      const std::vector<dns::DnskeyRdata>& keys,
                      const dns::RrSet& rrset, net::SimTime now) {
  for (const auto& sig : sigs) {
    for (const auto& key : keys) {
      if (verify_rrsig(sig, key, rrset, now) == SigCheck::valid) return true;
    }
  }
  return false;
}

std::vector<dns::DnskeyRdata> extract_keys(const std::vector<dns::Rr>& records) {
  std::vector<dns::DnskeyRdata> keys;
  for (const auto& rr : records) {
    if (const auto* key = std::get_if<dns::DnskeyRdata>(&rr.rdata)) {
      keys.push_back(*key);
    }
  }
  return keys;
}

std::vector<dns::DsRdata> extract_ds(const std::vector<dns::Rr>& records) {
  std::vector<dns::DsRdata> out;
  for (const auto& rr : records) {
    if (const auto* ds = std::get_if<dns::DsRdata>(&rr.rdata)) out.push_back(*ds);
  }
  return out;
}

}  // namespace

std::optional<Validation> ChainStatusCache::get(const dns::Name& zone,
                                                net::SimTime now) const {
  auto it = entries_.find(zone);
  if (it == entries_.end() || it->second.expires <= now) return std::nullopt;
  return it->second.status;
}

void ChainStatusCache::put(const dns::Name& zone, Validation status,
                           net::SimTime now) {
  entries_[zone] = Entry{status, now + ttl_};
}

std::size_t ChainStatusCache::sweep(net::SimTime now, net::Duration grace) {
  return std::erase_if(entries_, [now, grace](const auto& kv) {
    return kv.second.expires + grace <= now;
  });
}

Validation ChainValidator::zone_status(const dns::Name& zone, net::SimTime now,
                                       ChainStatusCache* cache) const {
  return zone_status_impl(zone, now, 0, cache);
}

Validation ChainValidator::zone_status_impl(const dns::Name& zone,
                                            net::SimTime now, int depth,
                                            ChainStatusCache* cache) const {
  if (depth > 32) return Validation::bogus;  // malformed zone graph
  if (cache != nullptr) {
    if (auto cached = cache->get(zone, now)) return *cached;
  }

  auto finish = [&](Validation v) {
    if (cache != nullptr) cache->put(zone, v, now);
    return v;
  };

  auto dnskey_records = source_.dnskey_with_sigs(zone);
  auto keys = extract_keys(dnskey_records);

  if (zone.is_root()) {
    // Root: the anchor key must appear in the DNSKEY set and self-sign it.
    if (keys.empty()) return finish(Validation::insecure);
    bool anchor_present = false;
    for (const auto& key : keys) {
      if (key == root_anchor_) anchor_present = true;
    }
    if (!anchor_present) return finish(Validation::bogus);
    auto split = split_rrset(dnskey_records, dns::RrType::DNSKEY);
    if (!any_sig_verifies(split.sigs, {root_anchor_}, split.data, now)) {
      return finish(Validation::bogus);
    }
    return finish(Validation::secure);
  }

  // Parent chain first.
  auto parent_apex = source_.zone_apex(zone.parent());
  if (!parent_apex) return finish(Validation::insecure);
  Validation parent = zone_status_impl(*parent_apex, now, depth + 1, cache);
  if (parent != Validation::secure) return finish(parent);

  // DS at the (secure) parent.
  auto ds_records = source_.ds_with_sigs(zone);
  auto ds_set = extract_ds(ds_records);
  if (ds_set.empty()) {
    // Provably unsigned delegation: the Insecure state of Table 9.
    return finish(Validation::insecure);
  }
  // The DS RRset itself must be signed by the parent.
  auto parent_keys = extract_keys(source_.dnskey_with_sigs(*parent_apex));
  auto ds_split = split_rrset(ds_records, dns::RrType::DS);
  if (!any_sig_verifies(ds_split.sigs, parent_keys, ds_split.data, now)) {
    return finish(Validation::bogus);
  }

  // A DS must authenticate one of the zone's keys, and that key (or a peer)
  // must sign the DNSKEY RRset.
  if (keys.empty()) return finish(Validation::bogus);
  bool ds_ok = false;
  for (const auto& ds : ds_set) {
    for (const auto& key : keys) {
      if (ds_matches(ds, zone, key)) ds_ok = true;
    }
  }
  if (!ds_ok) return finish(Validation::bogus);

  auto key_split = split_rrset(dnskey_records, dns::RrType::DNSKEY);
  if (!any_sig_verifies(key_split.sigs, keys, key_split.data, now)) {
    return finish(Validation::bogus);
  }
  return finish(Validation::secure);
}

Validation ChainValidator::validate(const dns::Name& owner,
                                    const std::vector<dns::Rr>& records,
                                    net::SimTime now,
                                    ChainStatusCache* cache) const {
  if (records.empty()) return Validation::insecure;

  auto zone = source_.zone_apex(owner);
  if (!zone) return Validation::insecure;

  Validation chain = zone_status(*zone, now, cache);
  if (chain != Validation::secure) return chain;

  // The zone is secure: the RRset must carry a verifying signature.
  dns::RrType type = records.front().type;
  if (type == dns::RrType::RRSIG && records.size() > 1) {
    type = records[1].type;
  }
  auto split = split_rrset(records, type);
  if (split.sigs.empty()) return Validation::bogus;
  auto keys = extract_keys(source_.dnskey_with_sigs(*zone));
  if (!any_sig_verifies(split.sigs, keys, split.data, now)) {
    return Validation::bogus;
  }
  return Validation::secure;
}

Validation ChainValidator::validate_denial(const dns::Name& qname,
                                           dns::RrType qtype,
                                           const std::vector<dns::Rr>& authorities,
                                           net::SimTime now,
                                           ChainStatusCache* cache) const {
  auto zone = source_.zone_apex(qname);
  if (!zone) return Validation::insecure;
  Validation chain = zone_status(*zone, now, cache);
  if (chain != Validation::secure) return chain;

  // A secure zone must prove its denials.
  auto keys = extract_keys(source_.dnskey_with_sigs(*zone));
  for (const auto& rr : authorities) {
    if (rr.type != dns::RrType::NSEC) continue;
    const auto* nsec = std::get_if<dns::NsecRdata>(&rr.rdata);
    if (nsec == nullptr) continue;

    // The NSEC RRset must verify against the zone keys.
    std::vector<dns::Rr> subset;
    for (const auto& candidate : authorities) {
      bool covers = false;
      if (candidate.type == dns::RrType::RRSIG) {
        const auto* sig = std::get_if<dns::RrsigRdata>(&candidate.rdata);
        covers = sig != nullptr && sig->type_covered == dns::RrType::NSEC;
      }
      if (candidate.owner == rr.owner &&
          (candidate.type == dns::RrType::NSEC || covers)) {
        subset.push_back(candidate);
      }
    }
    auto split = split_rrset(subset, dns::RrType::NSEC);
    if (!any_sig_verifies(split.sigs, keys, split.data, now)) continue;

    if (rr.owner == qname) {
      // NODATA proof: qtype must be absent from the bitmap.
      bool has_type = std::find(nsec->types.begin(), nsec->types.end(),
                                qtype) != nsec->types.end();
      if (!has_type) return Validation::secure;
      continue;
    }
    // NXDOMAIN proof: owner < qname < next in canonical order, where a
    // next <= owner means the chain wraps past the end of the zone.
    bool after_owner = rr.owner < qname;
    bool wraps = !(rr.owner < nsec->next);
    bool before_next = qname < nsec->next;
    if (after_owner && (before_next || wraps)) return Validation::secure;
  }
  return Validation::bogus;
}

}  // namespace httpsrr::dnssec
