#pragma once

// TLS Encrypted Client Hello configuration (draft-ietf-tls-esni-13 wire
// format — the version the paper's testbed deploys via the DEfO OpenSSL /
// Nginx branches).
//
//   ECHConfigList: u16 total length, then ECHConfig*
//   ECHConfig:     u16 version (0xfe0d), u16 length, ECHConfigContents
//   Contents:      HpkeKeyConfig, u8 maximum_name_length,
//                  opaque public_name<1..255>, extensions<0..2^16-1>
//   HpkeKeyConfig: u8 config_id, u16 kem_id, opaque public_key<1..2^16-1>,
//                  cipher_suites<4..2^16-4> of (u16 kdf_id, u16 aead_id)
//
// The structure is bit-exact to the draft; only the key material inside
// public_key is produced by the simulated HPKE (see ech/hpke.h).

#include <cstdint>
#include <string>
#include <vector>

#include "dns/wire.h"
#include "util/result.h"

namespace httpsrr::ech {

using dns::Bytes;

inline constexpr std::uint16_t kEchVersionDraft13 = 0xfe0d;
// X25519 / HKDF-SHA256 / AES-128-GCM ids, as Cloudflare publishes.
inline constexpr std::uint16_t kKemX25519Sha256 = 0x0020;
inline constexpr std::uint16_t kKdfHkdfSha256 = 0x0001;
inline constexpr std::uint16_t kAeadAes128Gcm = 0x0001;

struct HpkeSuite {
  std::uint16_t kdf_id = kKdfHkdfSha256;
  std::uint16_t aead_id = kAeadAes128Gcm;
  friend bool operator==(const HpkeSuite&, const HpkeSuite&) = default;
};

struct EchConfig {
  std::uint16_t version = kEchVersionDraft13;
  std::uint8_t config_id = 0;
  std::uint16_t kem_id = kKemX25519Sha256;
  Bytes public_key;
  std::vector<HpkeSuite> cipher_suites{HpkeSuite{}};
  std::uint8_t maximum_name_length = 0;
  std::string public_name;  // client-facing server, e.g. cloudflare-ech.com
  Bytes extensions;

  void encode(dns::WireWriter& w) const;
  static util::Result<EchConfig> decode(dns::WireReader& r);

  friend bool operator==(const EchConfig&, const EchConfig&) = default;
};

struct EchConfigList {
  std::vector<EchConfig> configs;

  [[nodiscard]] Bytes encode() const;
  static util::Result<EchConfigList> decode(const Bytes& wire);

  friend bool operator==(const EchConfigList&, const EchConfigList&) = default;
};

}  // namespace httpsrr::ech
