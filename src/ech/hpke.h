#pragma once

// SimHpke — simulated HPKE sealed box for the ECH substrate.
//
// Substitution note (DESIGN.md): real ECH uses X25519 + HKDF + AEAD.  The
// study's client/server interactions only depend on *key identity*: a
// ClientHelloInner sealed under configuration K opens iff the server still
// holds K's private key; otherwise the server answers with retry configs.
// SimHpke reproduces exactly that contract:
//   * keygen(seed): secret = 32 seeded bytes, public = SHA-256(secret);
//   * seal(pk, aad, pt): XOR keystream derived from (pk, aad) plus a
//     16-byte integrity tag binding (pk, aad, pt);
//   * open(sk, aad, ct): derives pk from sk, reverses the stream, verifies
//     the tag — any pk/sk mismatch or bit flip fails.
// It is NOT confidential against an observer who knows pk; no experiment
// in the paper depends on that property.

#include <cstdint>

#include "dns/wire.h"
#include "util/result.h"

namespace httpsrr::ech {

using dns::Bytes;

struct HpkeKeyPair {
  Bytes secret;      // 32 octets
  Bytes public_key;  // 32 octets, derived from secret

  static HpkeKeyPair generate(std::uint64_t seed);
};

// Seals `plaintext` to `public_key`, binding `aad`.
[[nodiscard]] Bytes hpke_seal(const Bytes& public_key, const Bytes& aad,
                              const Bytes& plaintext);

// Opens `ciphertext` with `secret`; fails on key mismatch or corruption.
[[nodiscard]] util::Result<Bytes> hpke_open(const Bytes& secret,
                                            const Bytes& aad,
                                            const Bytes& ciphertext);

// Derives the public key for a secret (used to match config ids to keys).
[[nodiscard]] Bytes hpke_public_of(const Bytes& secret);

}  // namespace httpsrr::ech
