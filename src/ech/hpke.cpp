#include "ech/hpke.h"

#include "util/rng.h"
#include "util/sha256.h"

namespace httpsrr::ech {

using util::Error;
using util::Result;

namespace {

constexpr std::size_t kTagLen = 16;

// Counter-mode keystream from SHA-256(context || counter).
void xor_keystream(const Bytes& context, Bytes& data) {
  for (std::size_t block = 0; block * 32 < data.size(); ++block) {
    util::Sha256 h;
    h.update(context);
    std::uint8_t counter[4] = {
        static_cast<std::uint8_t>(block >> 24), static_cast<std::uint8_t>(block >> 16),
        static_cast<std::uint8_t>(block >> 8), static_cast<std::uint8_t>(block)};
    h.update(counter, 4);
    auto stream = h.finish();
    for (std::size_t i = 0; i < 32 && block * 32 + i < data.size(); ++i) {
      data[block * 32 + i] ^= stream[i];
    }
  }
}

Bytes make_tag(const Bytes& public_key, const Bytes& aad, const Bytes& plaintext) {
  util::Sha256 h;
  h.update("ech-sim-tag");
  h.update(public_key);
  h.update(aad);
  h.update(plaintext);
  auto digest = h.finish();
  return Bytes(digest.begin(), digest.begin() + kTagLen);
}

Bytes stream_context(const Bytes& public_key, const Bytes& aad) {
  util::Sha256 h;
  h.update("ech-sim-stream");
  h.update(public_key);
  h.update(aad);
  auto digest = h.finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

HpkeKeyPair HpkeKeyPair::generate(std::uint64_t seed) {
  HpkeKeyPair kp;
  util::SplitMix64 rng(seed ^ 0xec11ec11ec11ec11ULL);
  kp.secret.resize(32);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t word = rng.next();
    for (int b = 0; b < 8; ++b) {
      kp.secret[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(word >> (b * 8));
    }
  }
  kp.public_key = hpke_public_of(kp.secret);
  return kp;
}

Bytes hpke_public_of(const Bytes& secret) {
  util::Sha256 h;
  h.update("ech-sim-pub");
  h.update(secret);
  auto digest = h.finish();
  return Bytes(digest.begin(), digest.end());
}

Bytes hpke_seal(const Bytes& public_key, const Bytes& aad, const Bytes& plaintext) {
  Bytes ct = plaintext;
  xor_keystream(stream_context(public_key, aad), ct);
  Bytes tag = make_tag(public_key, aad, plaintext);
  ct.insert(ct.end(), tag.begin(), tag.end());
  return ct;
}

Result<Bytes> hpke_open(const Bytes& secret, const Bytes& aad,
                        const Bytes& ciphertext) {
  if (ciphertext.size() < kTagLen) return Error{"ciphertext shorter than tag"};
  Bytes public_key = hpke_public_of(secret);
  Bytes body(ciphertext.begin(),
             ciphertext.end() - static_cast<std::ptrdiff_t>(kTagLen));
  Bytes tag(ciphertext.end() - static_cast<std::ptrdiff_t>(kTagLen),
            ciphertext.end());
  xor_keystream(stream_context(public_key, aad), body);
  if (tag != make_tag(public_key, aad, body)) {
    return Error{"ECH decryption failure (key mismatch or corruption)"};
  }
  return body;
}

}  // namespace httpsrr::ech
