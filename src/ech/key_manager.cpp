#include "ech/key_manager.h"

#include "util/rng.h"

namespace httpsrr::ech {

EchKeyManager::EchKeyManager(Options options, net::SimTime now)
    : options_(std::move(options)) {
  install_new_key(now);
  next_rotation_ = now + next_period();
}

net::Duration EchKeyManager::next_period() {
  // Deterministic jitter: hash (seed, counter) into [0, jitter).
  net::Duration period = options_.rotation_period;
  if (options_.rotation_jitter.seconds > 0) {
    std::uint64_t h = util::mix64(options_.seed * 0x9e37u + counter_);
    period.seconds += static_cast<std::int64_t>(
        h % static_cast<std::uint64_t>(options_.rotation_jitter.seconds));
  }
  return period;
}

void EchKeyManager::install_new_key(net::SimTime now) {
  (void)now;
  ++counter_;
  current_keys_ = HpkeKeyPair::generate(options_.seed * 1000003 + counter_);
  current_id_ = static_cast<std::uint8_t>(util::mix64(options_.seed + counter_));

  EchConfig config;
  config.config_id = current_id_;
  config.public_key = current_keys_.public_key;
  config.public_name = options_.public_name;
  current_list_ = EchConfigList{{config}};
}

void EchKeyManager::rotate(net::SimTime now) {
  if (options_.retain_previous_keys) {
    retained_.push_back(KeySlot{current_id_, current_keys_, now});
  }
  install_new_key(now);
  ++rotations_;

  // Drop keys past the retention window.
  while (!retained_.empty() &&
         now - retained_.front().retired_at > options_.retention) {
    retained_.pop_front();
  }
}

void EchKeyManager::tick(net::SimTime now) {
  while (now >= next_rotation_) {
    rotate(next_rotation_);
    next_rotation_ = next_rotation_ + next_period();
  }
  while (!retained_.empty() &&
         now - retained_.front().retired_at > options_.retention) {
    retained_.pop_front();
  }
}

std::optional<Bytes> EchKeyManager::open(std::uint8_t config_id, const Bytes& aad,
                                         const Bytes& ciphertext) const {
  if (config_id == current_id_) {
    if (auto pt = hpke_open(current_keys_.secret, aad, ciphertext)) {
      return std::move(pt).take();
    }
    return std::nullopt;
  }
  for (const auto& slot : retained_) {
    if (slot.config_id == config_id) {
      if (auto pt = hpke_open(slot.keys.secret, aad, ciphertext)) {
        return std::move(pt).take();
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace httpsrr::ech
