#include "ech/config.h"

namespace httpsrr::ech {

using util::Error;
using util::Result;

void EchConfig::encode(dns::WireWriter& w) const {
  w.u16(version);
  // Contents in a scratch writer so the length prefix is exact.
  dns::WireWriter contents;
  contents.u8(config_id);
  contents.u16(kem_id);
  contents.u16(static_cast<std::uint16_t>(public_key.size()));
  contents.bytes(public_key);
  contents.u16(static_cast<std::uint16_t>(cipher_suites.size() * 4));
  for (const auto& suite : cipher_suites) {
    contents.u16(suite.kdf_id);
    contents.u16(suite.aead_id);
  }
  contents.u8(maximum_name_length);
  contents.u8(static_cast<std::uint8_t>(public_name.size()));
  contents.raw_string(public_name);
  contents.u16(static_cast<std::uint16_t>(extensions.size()));
  contents.bytes(extensions);

  w.u16(static_cast<std::uint16_t>(contents.size()));
  w.bytes(contents.data());
}

Result<EchConfig> EchConfig::decode(dns::WireReader& r) {
  EchConfig out;
  auto version = r.u16();
  if (!version) return Error{version.error()};
  out.version = *version;
  auto length = r.u16();
  if (!length) return Error{length.error()};
  std::size_t end = r.pos() + *length;
  if (end > r.pos() + r.remaining()) return Error{"ECHConfig overruns buffer"};

  if (out.version != kEchVersionDraft13) {
    // Unknown versions are skipped by clients; we surface them as parse
    // errors here and let callers decide (browsers ignore such entries).
    auto skipped = r.bytes(*length);
    if (!skipped) return Error{skipped.error()};
    return Error{"unsupported ECHConfig version"};
  }

  auto config_id = r.u8();
  auto kem_id = r.u16();
  if (!config_id || !kem_id) return Error{"truncated HpkeKeyConfig"};
  out.config_id = *config_id;
  out.kem_id = *kem_id;

  auto pk_len = r.u16();
  if (!pk_len) return Error{pk_len.error()};
  if (*pk_len == 0) return Error{"empty ECH public key"};
  auto pk = r.bytes(*pk_len);
  if (!pk) return Error{pk.error()};
  out.public_key = std::move(*pk);

  auto suites_len = r.u16();
  if (!suites_len) return Error{suites_len.error()};
  if (*suites_len % 4 != 0 || *suites_len == 0) {
    return Error{"bad cipher_suites length"};
  }
  out.cipher_suites.clear();
  for (unsigned i = 0; i < *suites_len / 4; ++i) {
    auto kdf = r.u16();
    auto aead = r.u16();
    if (!kdf || !aead) return Error{"truncated cipher suite"};
    out.cipher_suites.push_back(HpkeSuite{*kdf, *aead});
  }

  auto max_name_len = r.u8();
  if (!max_name_len) return Error{max_name_len.error()};
  out.maximum_name_length = *max_name_len;

  auto name_len = r.u8();
  if (!name_len) return Error{name_len.error()};
  if (*name_len == 0) return Error{"empty ECH public_name"};
  auto name = r.bytes(*name_len);
  if (!name) return Error{name.error()};
  out.public_name.assign(name->begin(), name->end());

  auto ext_len = r.u16();
  if (!ext_len) return Error{ext_len.error()};
  auto ext = r.bytes(*ext_len);
  if (!ext) return Error{ext.error()};
  out.extensions = std::move(*ext);

  if (r.pos() != end) return Error{"ECHConfig length mismatch"};
  return out;
}

Bytes EchConfigList::encode() const {
  dns::WireWriter inner;
  for (const auto& config : configs) config.encode(inner);
  dns::WireWriter w;
  w.u16(static_cast<std::uint16_t>(inner.size()));
  w.bytes(inner.data());
  return std::move(w).take();
}

Result<EchConfigList> EchConfigList::decode(const Bytes& wire) {
  dns::WireReader r(wire);
  auto total = r.u16();
  if (!total) return Error{total.error()};
  if (*total != r.remaining()) return Error{"ECHConfigList length mismatch"};
  if (*total == 0) return Error{"empty ECHConfigList"};

  EchConfigList out;
  while (!r.at_end()) {
    auto config = EchConfig::decode(r);
    if (!config) return Error{config.error()};
    out.configs.push_back(std::move(*config));
  }
  return out;
}

}  // namespace httpsrr::ech
