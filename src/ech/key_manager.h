#pragma once

// EchKeyManager — the server-side key lifecycle the paper measures (§4.4.2).
//
// Cloudflare rotates the ECH key roughly every 1–2 hours (Fig. 4 measures a
// mean configuration lifetime of 1.26 h).  Because HTTPS records are cached
// by resolvers for their TTL, a correct deployment must keep *previous*
// keys usable for at least one TTL after rotation, and must answer clients
// holding stale configurations with retry configs.  The manager models:
//   * a rotation schedule (deterministic jitter per domain);
//   * a retention window of old keys ("dual-key window");
//   * retry-config emission for stale/unknown configurations.
// The ablation bench (ablate_ech_keys) disables the retention window to
// quantify the hard-failure rate the paper warns about.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "ech/config.h"
#include "ech/hpke.h"
#include "net/time.h"

namespace httpsrr::ech {

class EchKeyManager {
 public:
  struct Options {
    std::string public_name;          // client-facing server name
    net::Duration rotation_period = net::Duration::hours(1);
    net::Duration rotation_jitter = net::Duration::minutes(30);  // 0..jitter added per cycle
    net::Duration retention = net::Duration::minutes(10);  // keep old keys >= record TTL
    bool retain_previous_keys = true;  // ablation switch
    std::uint64_t seed = 1;
  };

  EchKeyManager(Options options, net::SimTime now);

  // Advances the lifecycle; rotates when the schedule fires.
  void tick(net::SimTime now);

  // Forces an immediate rotation (used by tests).
  void rotate(net::SimTime now);

  // The ECHConfigList to publish in the HTTPS record right now.
  [[nodiscard]] const EchConfigList& current_config_list() const {
    return current_list_;
  }
  [[nodiscard]] Bytes current_config_wire() const { return current_list_.encode(); }
  [[nodiscard]] std::uint8_t current_config_id() const { return current_id_; }
  [[nodiscard]] const std::string& public_name() const { return options_.public_name; }

  // Server side: attempts to open a sealed inner hello produced under
  // `config_id`. Returns the plaintext on success; nullopt when the key is
  // unknown/retired (the caller then serves retry configs).
  [[nodiscard]] std::optional<Bytes> open(std::uint8_t config_id,
                                          const Bytes& aad,
                                          const Bytes& ciphertext) const;

  // Number of keys currently accepted (current + retained).
  [[nodiscard]] std::size_t live_key_count() const { return 1 + retained_.size(); }
  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }

 private:
  struct KeySlot {
    std::uint8_t config_id;
    HpkeKeyPair keys;
    net::SimTime retired_at;
  };

  void install_new_key(net::SimTime now);
  [[nodiscard]] net::Duration next_period();

  Options options_;
  HpkeKeyPair current_keys_;
  std::uint8_t current_id_ = 0;
  EchConfigList current_list_;
  std::deque<KeySlot> retained_;
  net::SimTime next_rotation_;
  std::uint64_t counter_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace httpsrr::ech
