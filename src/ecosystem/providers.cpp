#include "ecosystem/providers.h"

#include <cassert>

#include "util/rng.h"
#include "util/strings.h"

namespace httpsrr::ecosystem {

ProviderCatalog ProviderCatalog::make(std::uint64_t seed, std::size_t tail_count) {
  ProviderCatalog catalog;
  auto& p = catalog.providers;

  // --- Cloudflare: the 70%+ engine of the ecosystem (§4.2.2) --------------
  {
    ProviderSpec cf;
    cf.name = "cloudflare";
    cf.ns_domain = "cloudflare.com";
    cf.supports_https_rr = true;
    cf.style = HttpsRecordStyle::cloudflare_default;
    cf.https_support_since = net::SimTime::from_date(2020, 9, 1);
    cf.supports_ech = true;
    cf.online_dnssec = true;
    p.push_back(std::move(cf));
  }

  // --- Named non-Cloudflare providers (Table 3 + Table 5) -----------------
  struct Named {
    const char* name;
    const char* ns_domain;
    HttpsRecordStyle style;
    std::size_t https_domains;  // dynamic-column counts at 1M scale
    double overlap_fraction;
  };
  // Overlap fractions chosen so the overlapping column of Table 3 comes out
  // right: eName's customers churn (185 dynamic vs ~0 overlapping), GoDaddy
  // and Hover are stable, Google/NSONE mixed.
  const Named named[] = {
      {"ename", "ename.net", HttpsRecordStyle::service_full, 185, 0.02},
      {"google", "googledomains.com", HttpsRecordStyle::service_no_params, 159, 0.25},
      {"godaddy", "domaincontrol.com", HttpsRecordStyle::alias_to_endpoint, 105, 0.56},
      {"nsone", "nsone.net", HttpsRecordStyle::service_full, 79, 0.25},
      {"hover", "hover.com", HttpsRecordStyle::service_full, 12, 0.90},
      {"domeneshop", "domeneshop.no", HttpsRecordStyle::service_full, 16, 0.38},
  };
  for (const auto& n : named) {
    ProviderSpec spec;
    spec.name = n.name;
    spec.ns_domain = n.ns_domain;
    spec.style = n.style;
    spec.https_domains_full_scale = n.https_domains;
    spec.overlap_fraction = n.overlap_fraction;
    spec.https_support_since = net::SimTime::from_date(2022, 6, 1);
    p.push_back(std::move(spec));
  }

  // --- The long tail: 244 distinct operators over the period --------------
  // Support go-live dates spread across the measurement window produce the
  // 55 -> 85 upward trend of Fig. 3.
  util::Pcg32 rng(seed ^ 0x70211dULL);
  net::SimTime window_start = net::SimTime::from_date(2021, 1, 1);
  net::SimTime window_end = net::SimTime::from_date(2024, 2, 1);
  std::int64_t window_days =
      (window_end - window_start).seconds / 86400;
  for (std::size_t i = 0; i < tail_count; ++i) {
    ProviderSpec spec;
    spec.name = util::format("provider-%03zu", i);
    spec.ns_domain = util::format("provider-%03zu.net", i);
    spec.style = rng.chance(0.25) ? HttpsRecordStyle::alias_to_endpoint
                                  : HttpsRecordStyle::service_full;
    // 1..6 HTTPS customers each at full scale; a heavier handful.
    spec.https_domains_full_scale = 1 + rng.uniform(6);
    if (rng.chance(0.05)) spec.https_domains_full_scale += rng.uniform(20);
    spec.overlap_fraction = 0.2 + 0.6 * rng.uniform01();
    spec.https_support_since =
        window_start +
        net::Duration::days(static_cast<std::int64_t>(
            rng.uniform(static_cast<std::uint32_t>(window_days))));
    p.push_back(std::move(spec));
  }

  // --- Bulk no-HTTPS providers for the remaining ~75% of domains ----------
  const char* bulk[] = {"parkedns", "legacyhost", "isphost", "registrar-dns"};
  for (const char* name : bulk) {
    ProviderSpec spec;
    spec.name = name;
    spec.ns_domain = std::string(name) + ".net";
    spec.supports_https_rr = false;
    spec.style = HttpsRecordStyle::none;
    p.push_back(std::move(spec));
  }

  return catalog;
}

std::size_t ProviderCatalog::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (providers[i].name == name) return i;
  }
  assert(false && "unknown provider name");
  return 0;
}

}  // namespace httpsrr::ecosystem
