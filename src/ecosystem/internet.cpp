#include "ecosystem/internet.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "util/rng.h"
#include "util/strings.h"

namespace httpsrr::ecosystem {

using dns::Name;
using dns::name_of;
using dns::Rr;
using dns::RrType;
using resolver::AuthoritativeServer;

namespace {

constexpr std::uint32_t kApexTtl = 300;
constexpr std::uint32_t kNsTtl = 86400;

// Deterministic per-(domain, stream) random draw in [0,1).
double draw(std::uint64_t seed, DomainId id, std::uint64_t stream) {
  std::uint64_t h = util::mix64(seed ^ (static_cast<std::uint64_t>(id) * 0x9e3779b1ULL) ^
                                (stream << 40));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t draw_u64(std::uint64_t seed, DomainId id, std::uint64_t stream) {
  return util::mix64(seed ^ (static_cast<std::uint64_t>(id) * 0xc2b2ae35ULL) ^
                     (stream << 40));
}

// Generation-aware web address for a domain.
net::Ipv4Addr web_address(DomainId id, std::uint64_t generation) {
  auto g = static_cast<std::uint8_t>(generation % 8);
  return net::Ipv4Addr(static_cast<std::uint8_t>(104),
                       static_cast<std::uint8_t>(16 + g),
                       static_cast<std::uint8_t>((id >> 8) & 0xff),
                       static_cast<std::uint8_t>(id & 0xff));
}

net::Ipv6Addr web_address6(DomainId id) {
  std::array<std::uint16_t, 8> groups{0x2606, 0x4700, 0, 0, 0, 0,
                                      static_cast<std::uint16_t>(id >> 16),
                                      static_cast<std::uint16_t>(id & 0xffff)};
  return net::Ipv6Addr::from_groups(groups);
}

}  // namespace

// ---------------------------------------------------- flyweight zone sources
//
// The eager build stored one Zone per domain (plus a delegation node per
// domain inside the TLD zones) — the dominant share of the 1M-scale RSS.
// The flyweight build stores none of it: a DomainZoneSource per provider
// stamps a domain's hosted zone from the provider template + DomainState
// deltas when the AuthoritativeServer needs it, and a TldZoneSource on the
// gTLD server stamps the single-domain slice of the TLD zone (delegation
// NS, DS, in-bailiwick glue).  Both keep mutex-guarded caches keyed by
// DomainId and stamped with domain_version_, so within a frozen epoch each
// zone is built at most once and a per-domain event invalidates exactly
// that domain's entries.

class Internet::DomainZoneSource final : public resolver::ZoneSource {
 public:
  DomainZoneSource(const Internet* net, std::size_t provider)
      : net_(net), provider_(provider) {}

  [[nodiscard]] std::shared_ptr<const resolver::HostedZone> zone_for(
      const Name& qname) const override {
    if (qname.label_count() < 2) return nullptr;
    const DomainState* d = net_->domain_by_name(qname.suffix(2));
    if (d == nullptr) return nullptr;
    // Hosting predicate: the primary provider always serves; a second
    // provider only when permanently mixed in (the temporary multi-NS
    // provider2 is a lame delegation, as in the eager build).
    if (d->provider != provider_ &&
        !(d->provider2 == provider_ &&
          d->quirk == DomainState::Quirk::mixed_provider)) {
      return nullptr;
    }
    const std::uint32_t version = net_->domain_version_[d->id];
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(d->id);
      if (it != cache_.end() && it->second.version == version) {
        return it->second.zone;
      }
    }
    auto zone = std::make_shared<const resolver::HostedZone>(
        net_->materialize_domain_zone(*d, provider_));
    std::lock_guard<std::mutex> lock(mu_);
    if (net_->config_.zone_cache_limit != 0 &&
        cache_.size() >= net_->config_.zone_cache_limit) {
      cache_.clear();  // generational: a scan touches each domain in a burst
    }
    cache_[d->id] = Entry{version, zone};
    return zone;
  }

  // Drops entries whose stamped version fell behind the domain's current
  // one — unreachable through the version check above, so unobservable.
  std::size_t sweep_stale() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::erase_if(cache_, [this](const auto& kv) {
      return kv.second.version != net_->domain_version_[kv.first];
    });
  }

 private:
  struct Entry {
    std::uint32_t version = 0;
    std::shared_ptr<const resolver::HostedZone> zone;
  };
  const Internet* net_;
  std::size_t provider_;
  mutable std::mutex mu_;
  mutable std::unordered_map<DomainId, Entry> cache_;
};

class Internet::TldZoneSource final : public resolver::ZoneSource {
 public:
  explicit TldZoneSource(const Internet* net) : net_(net) {}

  [[nodiscard]] std::shared_ptr<const resolver::HostedZone> zone_for(
      const Name& qname) const override {
    if (qname.label_count() < 2) return nullptr;  // TLD apex: static zone
    const DomainState* d = net_->domain_by_name(qname.suffix(2));
    if (d == nullptr) return nullptr;  // provider glue etc.: static zone
    const std::uint32_t version = net_->domain_version_[d->id];
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(d->id);
      if (it != cache_.end() && it->second.version == version) {
        return it->second.zone;  // may be null: fall through to the static zone
      }
    }
    auto built = net_->materialize_tld_delegation(*d);
    // An empty slice (vanished unsigned domain whose providers have no
    // in-bailiwick glue) falls through to the static TLD zone, whose anchor
    // node keeps denial proofs well-formed.
    std::shared_ptr<const resolver::HostedZone> zone;
    if (built.zone.record_count() != 0) {
      zone = std::make_shared<const resolver::HostedZone>(std::move(built));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (net_->config_.zone_cache_limit != 0 &&
        cache_.size() >= net_->config_.zone_cache_limit) {
      cache_.clear();
    }
    cache_[d->id] = Entry{version, std::move(zone)};
    auto it = cache_.find(d->id);
    return it->second.zone;
  }

  std::size_t sweep_stale() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::erase_if(cache_, [this](const auto& kv) {
      return kv.second.version != net_->domain_version_[kv.first];
    });
  }

 private:
  struct Entry {
    std::uint32_t version = 0;
    std::shared_ptr<const resolver::HostedZone> zone;
  };
  const Internet* net_;
  mutable std::mutex mu_;
  mutable std::unordered_map<DomainId, Entry> cache_;
};

const std::vector<AuthoritativeServer*>* Internet::servers_for(
    const Name& apex) const {
  auto it = by_name_.find(apex);
  if (it == by_name_.end()) return nullptr;
  const DomainState& d = domains_[it->second];
  if (!(d.apex == apex)) return nullptr;  // www names are not zone apexes
  static thread_local std::vector<AuthoritativeServer*> scratch;
  scratch.clear();
  scratch.push_back(provider_server(d.provider));
  if (d.provider2 != SIZE_MAX &&
      d.quirk == DomainState::Quirk::mixed_provider) {
    scratch.push_back(provider_server(d.provider2));
  }
  return &scratch;
}

Internet::Internet(EcosystemConfig config)
    : config_(config),
      clock_(config.start),
      catalog_(ProviderCatalog::make(config.seed)),
      root_key_(dnssec::KeyPair::generate(config.seed ^ 0x1007, 257)) {
  TrancoFeed::Options feed_options;
  feed_options.universe_size = config_.universe_size;
  feed_options.list_size = config_.list_size;
  feed_options.source_change = config_.source_change;
  feed_options.seed = config_.seed;
  feed_ = std::make_unique<TrancoFeed>(feed_options);

  ech::EchKeyManager::Options ech_options;
  ech_options.public_name = "cloudflare-ech.com";
  ech_options.rotation_period = config_.ech_rotation_period;
  ech_options.rotation_jitter = config_.ech_rotation_jitter;
  ech_options.retention = net::Duration::minutes(10);
  ech_options.seed = config_.seed ^ 0xec;
  cf_ech_ = std::make_shared<ech::EchKeyManager>(ech_options, config_.start);

  build_population();
  build_infrastructure();
  schedule_events();

  // Web reachability (formerly part of the per-zone build): every apex
  // answers on 443 at its address; chronic mismatchers also listen on the
  // stale hint address.
  for (const auto& d : domains_) {
    (void)network_.listen(net::Endpoint{net::IpAddr(d.address), 443});
    if (!(d.hint_address == d.address)) {
      (void)network_.listen(net::Endpoint{net::IpAddr(d.hint_address), 443});
    }
  }

  if (config_.prewarm_zones) prewarm_all_zones();

  // Construction is done mutating: from here on the frozen-epoch contract
  // holds (nothing changes outside advance_to), so the authoritative
  // servers may memoize rendered responses and signatures.  advance_to
  // opens every epoch edge by dropping those memos before events apply.
  infra_.enable_response_caching();
  if (config_.response_cache_limit != 0) {
    infra_.set_response_cache_limit(config_.response_cache_limit);
  }
}

Internet::~Internet() = default;

void Internet::prewarm_all_zones() {
  for (const auto& d : domains_) {
    (void)domain_sources_[d.provider]->zone_for(d.apex);
    if (d.provider2 != SIZE_MAX &&
        d.quirk == DomainState::Quirk::mixed_provider) {
      (void)domain_sources_[d.provider2]->zone_for(d.apex);
    }
    (void)tld_source_->zone_for(d.apex);
  }
}

dns::Name Internet::tld_of(const DomainState& d) const {
  return d.apex.suffix(1);
}

AuthoritativeServer* Internet::provider_server(std::size_t index) const {
  return provider_servers_[index];
}

const DomainState* Internet::domain_by_name(const Name& apex) const {
  auto it = by_name_.find(apex);
  return it == by_name_.end() ? nullptr : &domains_[it->second];
}

// --------------------------------------------------------------- population

void Internet::build_population() {
  const std::uint64_t seed = config_.seed;
  const std::size_t universe = config_.universe_size;
  domains_.resize(universe);

  // Providers with explicit HTTPS customer targets get them assigned first.
  // We walk the universe in a deterministic shuffled order.
  std::vector<DomainId> order(universe);
  for (std::size_t i = 0; i < universe; ++i) order[i] = static_cast<DomainId>(i);
  util::Pcg32 shuffle_rng(seed ^ 0xa110c);
  for (std::size_t i = universe - 1; i > 0; --i) {
    std::size_t j = shuffle_rng.uniform(static_cast<std::uint32_t>(i + 1));
    std::swap(order[i], order[j]);
  }

  const char* tld_choices[] = {"com", "com", "com", "com", "com", "com", "com",
                               "net", "net", "org"};

  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    d.id = id;
    const char* tld = tld_choices[draw_u64(seed, id, 1) % 10];
    d.apex = name_of(util::format("d%05u.%s", id, tld));
    d.www = *d.apex.prepend("www");
    d.address = web_address(id, 0);
    d.hint_address = d.address;
    d.address6 = web_address6(id);
    by_name_[d.apex] = id;
    by_name_[d.www] = id;
  }

  // --- named/tail providers: place their HTTPS customers ------------------
  std::size_t cursor = 0;
  auto take_domains = [&](std::size_t count, double overlap_fraction,
                          std::size_t provider_index) {
    std::size_t placed = 0;
    std::size_t scan = 0;
    while (placed < count && scan < order.size()) {
      DomainId id = order[(cursor + scan) % order.size()];
      ++scan;
      DomainState& d = domains_[id];
      if (d.provider != 0 || d.on_cloudflare) continue;  // already claimed
      bool stable = feed_->stability(id) == Stability::core_both;
      bool want_stable = draw(seed, id, 2) < overlap_fraction;
      if (stable != want_stable) continue;
      d.provider = provider_index;
      d.publishes_https = true;
      d.https_since = config_.start - net::Duration::days(30);
      ++placed;
    }
    cursor += scan;
  };

  // Provider customer counts scale *stochastically* (floor + fractional
  // Bernoulli) rather than with a min-1 clamp: at small scales most tail
  // providers must end up with zero customers, matching the paper's ~2,900
  // non-Cloudflare HTTPS apexes spread over 244 operators.
  for (std::size_t p = 1; p < catalog_.providers.size(); ++p) {
    const auto& spec = catalog_.providers[p];
    if (spec.https_domains_full_scale == 0) continue;
    double expected = static_cast<double>(spec.https_domains_full_scale) *
                      config_.scale() * config_.noncf_oversample;
    auto count = static_cast<std::size_t>(expected);
    double frac = expected - static_cast<double>(count);
    if (draw(seed, static_cast<DomainId>(p), 60) < frac) ++count;
    if (count == 0) continue;
    take_domains(count, spec.overlap_fraction, p);
  }

  // --- Cloudflare cohort & the bulk remainder -----------------------------
  std::size_t bulk_start = catalog_.providers.size() - 4;
  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    if (d.provider != 0) continue;  // claimed by a named/tail provider

    bool core = feed_->stability(id) == Stability::core_both;
    double cf_share = core ? config_.cf_share_core : config_.cf_share_churn;
    if (draw(seed, id, 3) < cf_share) {
      d.on_cloudflare = true;
      d.provider = 0;
      if (draw(seed, id, 4) < config_.cf_proxied) {
        d.cf_proxied = true;
        d.publishes_https = true;
        double customized =
            core ? config_.cf_customized_core : config_.cf_customized_churn;
        d.cf_customized = draw(seed, id, 5) < customized;
        d.cf_free_plan = draw(seed, id, 6) < config_.cf_free_plan;
        d.www_has_https = draw(seed, id, 7) < config_.www_mirror;

        // Activation date: stable domains were proxied before the window;
        // churners activate progressively (the rising Fig. 2a trend).
        bool churner = feed_->stability(id) == Stability::churn;
        if (churner && draw(seed, id, 8) < config_.churn_late_activation) {
          auto window_days = (config_.end - config_.start).seconds / 86400;
          auto offset = static_cast<std::int64_t>(draw_u64(seed, id, 9) %
                                                  static_cast<std::uint64_t>(window_days));
          d.https_since = config_.start + net::Duration::days(offset);
        } else {
          d.https_since = config_.start - net::Duration::days(60);
        }
      }
    } else {
      // Bulk provider without HTTPS support.
      d.provider = bulk_start + draw_u64(seed, id, 10) % 4;
    }
  }

  // --- DNSSEC flags --------------------------------------------------------
  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    bool core = feed_->stability(id) == Stability::core_both;
    double p_signed;
    double p_ds_ok;
    if (d.publishes_https) {
      p_signed = config_.signed_with_https;
      p_ds_ok = d.on_cloudflare ? config_.ds_ok_with_https_cf
                                : config_.ds_ok_with_https_noncf;
      // Dynamic Fig. 5a decline: late-activating churners sign less.
      if (!core && d.https_since > config_.start) p_signed *= 0.25;
    } else {
      p_signed = config_.signed_without_https;
      p_ds_ok = config_.ds_ok_without_https;
    }
    if (draw(seed, id, 11) < p_signed) {
      d.dnssec_signed = true;
      d.ds_uploaded = draw(seed, id, 12) < p_ds_ok;
      // Overlapping Fig. 5b rise: a share of core signers adopt mid-window.
      if (core && draw(seed, id, 13) < config_.core_signing_adoption) {
        auto window_days = (config_.end - config_.start).seconds / 86400;
        auto offset = static_cast<std::int64_t>(draw_u64(seed, id, 14) %
                                                static_cast<std::uint64_t>(window_days));
        d.signs_from = config_.start + net::Duration::days(offset);
      } else {
        d.signs_from = config_.start - net::Duration::days(90);
      }
    }
  }

  // --- quirk cohorts -------------------------------------------------------
  auto assign_quirk = [&](std::size_t count, DomainState::Quirk quirk,
                          auto&& predicate) -> std::size_t {
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < order.size() && assigned < count; ++i) {
      DomainState& d = domains_[order[i]];
      if (d.quirk != DomainState::Quirk::none) continue;
      if (!predicate(d)) continue;
      d.quirk = quirk;
      ++assigned;
    }
    return assigned;
  };
  auto is_cf_default = [](const DomainState& d) {
    return d.on_cloudflare && d.cf_proxied && !d.cf_customized;
  };

  assign_quirk(config_.scaled(config_.intermittent_cf_toggle_full),
               DomainState::Quirk::proxied_toggler, is_cf_default);
  assign_quirk(config_.scaled(config_.intermittent_multi_ns_full),
               DomainState::Quirk::multi_ns_deactivation, is_cf_default);
  assign_quirk(config_.scaled(config_.ns_change_lose_https_full),
               DomainState::Quirk::ns_change_lose_https, is_cf_default);
  {
    // Prefer non-Cloudflare publishers for the mixed-provider cohort; at
    // small scales fall back to Cloudflare ones (the paper saw both mixes).
    std::size_t want = config_.scaled(config_.mixed_provider_full);
    std::size_t got = assign_quirk(want, DomainState::Quirk::mixed_provider,
                                   [](const DomainState& d) {
                                     return !d.on_cloudflare && d.publishes_https;
                                   });
    if (got < want) {
      (void)assign_quirk(want - got, DomainState::Quirk::mixed_provider,
                         [&](const DomainState& d) {
                           return is_cf_default(d) &&
                                  d.https_since <= config_.start;
                         });
    }
  }
  assign_quirk(config_.scaled(config_.ns_vanish_full),
               DomainState::Quirk::ns_vanish, is_cf_default);
  assign_quirk(config_.scaled(config_.chronic_mismatch_full),
               DomainState::Quirk::chronic_mismatch, is_cf_default);

  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    if (d.quirk == DomainState::Quirk::mixed_provider) {
      d.provider2 = bulk_start + draw_u64(seed, id, 15) % 4;
    }
    if (d.quirk == DomainState::Quirk::chronic_mismatch) {
      d.hint_address = web_address(id, 7);  // permanently different
    }
  }

  // Flyweight deltas: whether HTTPS records exist in the zone right now —
  // exactly the eager build's write condition at construction time — and
  // the version stamps the zone-source caches compare against.
  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    d.https_written = d.publishes_https && d.https_since <= config_.start;
  }
  domain_version_.assign(universe, 0);
}

// ----------------------------------------------------------- infrastructure

void Internet::build_infrastructure() {
  const std::uint64_t seed = config_.seed;

  root_server_ = &infra_.add_server("root-ops", *net::IpAddr::parse("198.41.0.4"));
  root_server_->add_zone(dns::Zone(Name{}));
  root_server_->enable_dnssec(Name{}, root_key_);
  infra_.register_zone(Name{}, {root_server_});
  infra_.set_root_servers({*net::IpAddr::parse("198.41.0.4")});

  tld_server_ = &infra_.add_server("gtld-ops", *net::IpAddr::parse("192.5.6.30"));
  const char* tld_names[] = {"com", "net", "org", "no"};
  auto* root_zone = root_server_->find_zone(Name{});
  for (std::size_t i = 0; i < 4; ++i) {
    Name tld = name_of(tld_names[i]);
    tlds_.push_back(tld);
    tld_keys_.push_back(dnssec::KeyPair::generate(seed ^ (0x71d + i), 257));
    tld_server_->add_zone(dns::Zone(tld));
    tld_server_->enable_dnssec(tld, tld_keys_.back());
    infra_.register_zone(tld, {tld_server_});

    (void)root_zone->add(dns::make_ns(tld, kNsTtl, name_of("ns.gtld-servers.net")));
    (void)root_zone->add(Rr{tld, RrType::DS, dns::RrClass::IN, kNsTtl,
                            dnssec::make_ds(tld, tld_keys_.back().dnskey)});
  }
  (void)root_zone->add(dns::make_a(name_of("ns.gtld-servers.net"), kNsTtl,
                                   net::Ipv4Addr(192, 5, 6, 30)));

  // One server per provider; its two NS host names share the address.
  auto hook = [this](const Name& owner, dns::SvcbRdata& svcb, net::SimTime now) {
    svcb_hook(owner, svcb, now);
  };
  for (std::size_t p = 0; p < catalog_.providers.size(); ++p) {
    const auto& spec = catalog_.providers[p];
    auto address = net::IpAddr(net::Ipv4Addr(
        10, static_cast<std::uint8_t>(1 + p / 200),
        static_cast<std::uint8_t>(p % 200), 53));
    auto& server = infra_.add_server(spec.name, address);
    server.set_supports_https_rr(spec.supports_https_rr);
    server.set_svcb_hook(hook);
    provider_servers_.push_back(&server);
    domain_sources_.push_back(std::make_unique<DomainZoneSource>(this, p));
    server.set_zone_source(domain_sources_.back().get());

    // Glue for ns1/ns2.<ns_domain> in the matching TLD zone.
    Name ns_parent = name_of(spec.ns_domain);
    Name tld = ns_parent.suffix(1);
    auto* tld_zone = tld_server_->find_zone(tld);
    assert(tld_zone != nullptr && "provider NS domain must be under a known TLD");
    for (int n = 1; n <= spec.ns_count; ++n) {
      Name host = *ns_parent.prepend(util::format("ns%d", n));
      (void)tld_zone->add(dns::make_a(host, kNsTtl, address.v4()));
    }

    // WHOIS ground truth + noise for a slice of the tail.
    whois_.register_ip(address, spec.name);
    if (util::starts_with(spec.name, "provider-") &&
        draw_u64(seed, static_cast<DomainId>(p), 16) % 10 == 0) {
      whois_.set_visible_org(address, "mega-cloud-hosting");
      whois_.add_manual_override("mega-cloud-hosting", spec.name);
    }
  }

  // Per-domain zones and delegations are materialized on demand from here
  // on: the TLD server stamps delegation slices, each provider server
  // stamps hosted zones, and zone-cut discovery goes through the
  // ZoneDirectory answered from DomainState.
  tld_source_ = std::make_unique<TldZoneSource>(this);
  tld_server_->set_zone_source(tld_source_.get());
  infra_.set_zone_directory(this);

  // Every static TLD zone still needs at least one node below its apex:
  // NXDOMAIN/NODATA denial proofs and the empty-non-terminal check at the
  // TLD apex (which DNSKEY synthesis depends on) require a non-empty node
  // map.  TLDs without in-bailiwick provider glue (org) get an anchor node
  // whose name sorts canonically before the d***** population names.
  for (const auto& tld : tlds_) {
    auto* zone = tld_server_->find_zone(tld);
    if (zone->record_count() == 0) {
      (void)zone->add(dns::make_a(*tld.prepend("anchor"), kNsTtl,
                                  net::Ipv4Addr(192, 0, 2, 53)));
    }
  }
}

// ------------------------------------------------------ zone materialization

bool Internet::www_is_cname(const DomainState& d) const {
  // A share of zones publish www as a CNAME to the apex (the shape the
  // paper's scanner chases, §4.1); the rest give www its own A record.
  return draw(config_.seed, d.id, 70) < 0.25;
}

dns::SvcbRdata Internet::make_https_record(const DomainState& d) const {
  const std::uint64_t seed = config_.seed;
  const auto& spec = catalog_.providers[d.provider];

  dns::SvcbRdata svcb;
  svcb.priority = 1;  // ServiceMode, TargetName "."
  if (d.on_cloudflare) {
    if (!d.cf_customized) return svcb;  // placeholder: hook fills params

    // Customised Cloudflare configurations (§4.3.3 / Appendix E.1).
    // Nearly all still carry hints (97% hint utilisation, Fig. 11).
    double shape = draw(seed, d.id, 20);
    if (shape < 0.62) {
      svcb.params.set_alpn({"h2"});
      svcb.params.set_ipv4hint({d.hint_address});
      svcb.params.set_ipv6hint({d.address6});
    } else if (shape < 0.88) {
      // Customised with h3 but only a v4 hint (distinguishable from the
      // default, which always carries both hint families).
      svcb.params.set_alpn({"h2", "h3"});
      svcb.params.set_ipv4hint({d.hint_address});
    } else if (shape < 0.93) {
      // ServiceMode without any SvcParams (the 202-domain cohort).
    } else if (shape < 0.98) {
      svcb.priority = 0;  // AliasMode
      svcb.target = d.www;
    } else {
      svcb.priority = 0;  // broken: AliasMode pointing at itself
    }
    return svcb;
  }

  switch (spec.style) {
    case HttpsRecordStyle::service_no_params: {
      double shape = draw(seed, d.id, 21);
      if (shape < 0.05) {
        svcb.params.set_alpn({"h2"});
      } else if (shape < 0.07) {
        svcb.params.set_ipv4hint({d.address});
      }
      return svcb;
    }
    case HttpsRecordStyle::alias_to_endpoint: {
      double shape = draw(seed, d.id, 22);
      if (shape < 0.99) {
        svcb.priority = 0;
        svcb.target = name_of(
            util::format("site%u.hosting.%s", d.id, spec.ns_domain.c_str()));
      } else {
        svcb.params.set_alpn({"h3", "h2"});
        svcb.params.set_ipv4hint({d.address});
        svcb.params.set_ipv6hint({d.address6});
      }
      return svcb;
    }
    case HttpsRecordStyle::service_full:
    default: {
      double shape = draw(seed, d.id, 23);
      if (shape < 0.084) {
        // no alpn at all (8.44%, §4.3.4)
      } else if (shape < 0.084 + 0.268) {
        svcb.params.set_alpn({"h2", "h3"});
      } else if (shape < 0.98) {
        svcb.params.set_alpn({"h2"});
      } else if (shape < 0.99) {
        svcb.params.set_alpn({"http/1.1"});  // the 6-domain oddity
      } else {
        svcb.params.set_alpn({"h3-27", "h3-29"});  // the gentoo.org oddity
      }
      if (draw(seed, d.id, 24) < 0.5) {
        svcb.params.set_ipv4hint({d.hint_address});
      }
      return svcb;
    }
    case HttpsRecordStyle::none:
    case HttpsRecordStyle::cloudflare_default:
      return svcb;
  }
}

resolver::HostedZone Internet::materialize_domain_zone(
    const DomainState& d, std::size_t provider_index) const {
  const auto& spec = catalog_.providers[provider_index];
  resolver::HostedZone hosted{dns::Zone(d.apex)};
  auto& zone = hosted.zone;

  dns::SoaRdata soa;
  soa.mname = *name_of(spec.ns_domain).prepend("ns1");
  soa.rname = *d.apex.prepend("hostmaster");
  soa.serial = 2023050801;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 300;
  (void)zone.add(dns::make_soa(d.apex, kNsTtl, std::move(soa)));

  // The apex NS RRset mirrors the delegation: the primary provider's hosts
  // first, then the second provider's while one is mixed in.
  if (d.ns_present) {
    auto add_ns_for = [&](std::size_t p) {
      const auto& pspec = catalog_.providers[p];
      Name ns_parent = name_of(pspec.ns_domain);
      for (int n = 1; n <= pspec.ns_count; ++n) {
        (void)zone.add(dns::make_ns(
            d.apex, kNsTtl, *ns_parent.prepend(util::format("ns%d", n))));
      }
    };
    add_ns_for(d.provider);
    if (d.provider2 != SIZE_MAX) add_ns_for(d.provider2);
  }

  (void)zone.add(dns::make_a(d.apex, kApexTtl, d.address));
  (void)zone.add(dns::make_aaaa(d.apex, kApexTtl, d.address6));
  if (www_is_cname(d)) {
    (void)zone.add(dns::make_cname(d.www, kApexTtl, d.apex));
  } else {
    (void)zone.add(dns::make_a(d.www, kApexTtl, d.address));
  }

  if (d.https_written) {
    dns::SvcbRdata record = make_https_record(d);
    (void)zone.add(dns::make_https(d.apex, kApexTtl, record));
    if (d.www_has_https && !www_is_cname(d)) {
      (void)zone.add(dns::make_https(d.www, kApexTtl, record));
    }
  }

  if (d.dnssec_signed && d.signs_from <= clock_.now()) {
    hosted.key = dnssec::KeyPair::generate(config_.seed ^ d.id, 257);
  }
  return hosted;
}

resolver::HostedZone Internet::materialize_tld_delegation(
    const DomainState& d) const {
  Name tld = tld_of(d);
  resolver::HostedZone hosted{dns::Zone(tld)};
  auto& zone = hosted.zone;

  if (d.ns_present) {
    auto add_ns_for = [&](std::size_t p) {
      const auto& pspec = catalog_.providers[p];
      Name ns_parent = name_of(pspec.ns_domain);
      for (int n = 1; n <= pspec.ns_count; ++n) {
        (void)zone.add(dns::make_ns(
            d.apex, kNsTtl, *ns_parent.prepend(util::format("ns%d", n))));
      }
    };
    add_ns_for(d.provider);
    if (d.provider2 != SIZE_MAX) add_ns_for(d.provider2);
  }

  if (d.dnssec_signed && d.ds_uploaded && d.signs_from <= clock_.now()) {
    auto key = dnssec::KeyPair::generate(config_.seed ^ d.id, 257);
    (void)zone.add(Rr{d.apex, RrType::DS, dns::RrClass::IN, kNsTtl,
                      dnssec::make_ds(d.apex, key.dnskey)});
  }

  // In-bailiwick glue for the providers' NS hosts (Zone::add drops
  // out-of-zone owners, exactly like the eager shared-glue build).  Added
  // even while the NS set has vanished: the eager TLD zone kept its shared
  // glue, and a non-empty slice is what anchors denial proofs.
  auto add_glue_for = [&](std::size_t p) {
    const auto& pspec = catalog_.providers[p];
    Name ns_parent = name_of(pspec.ns_domain);
    auto v4 = provider_server(p)->address().v4();
    for (int n = 1; n <= pspec.ns_count; ++n) {
      (void)zone.add(dns::make_a(
          *ns_parent.prepend(util::format("ns%d", n)), kNsTtl, v4));
    }
  };
  add_glue_for(d.provider);
  if (d.provider2 != SIZE_MAX) add_glue_for(d.provider2);

  for (std::size_t i = 0; i < tlds_.size(); ++i) {
    if (tlds_[i] == tld) {
      hosted.key = tld_keys_[i];
      break;
    }
  }
  return hosted;
}

// -------------------------------------------------------------- the hook

void Internet::svcb_hook(const Name& owner, dns::SvcbRdata& svcb,
                         net::SimTime now) const {
  auto it = by_name_.find(owner);
  if (it == by_name_.end()) return;
  const DomainState& d = domains_[it->second];

  if (d.on_cloudflare && d.cf_proxied && !d.cf_customized) {
    // Cloudflare default record: "1 . alpn=… ipv4hint=… ipv6hint=… [ech=…]".
    std::vector<std::string> alpn = {"h2", "h3"};
    if (now < config_.h3_29_retirement) alpn.emplace_back("h3-29");
    for (DomainId g : google_quic_domains_) {
      if (g == d.id) {
        alpn.insert(alpn.end(), {"Q043", "Q046", "Q050"});
      }
    }
    svcb.params.set_alpn(alpn);
    svcb.params.set_ipv4hint({d.hint_address});
    svcb.params.set_ipv6hint({d.address6});
    if (ech_active_ && d.cf_free_plan && now < config_.ech_shutdown) {
      // ECH rides on apex and (slightly less often) www records: the paper
      // measures ~70% apex vs ~63% www ECH share (§4.4.1).
      bool is_www = owner == d.www;
      if (!is_www || draw(config_.seed, d.id, 31) < 0.90) {
        svcb.params.set_ech(cf_ech_->current_config_wire());
      }
    }
    return;
  }

  // Non-Cloudflare ECH cohort (§4.4.1): their static records gain the very
  // same cloudflare-ech.com configuration.
  if (!d.on_cloudflare && d.quirk == DomainState::Quirk::mixed_provider) {
    return;  // unrelated cohort
  }
  if (!d.on_cloudflare && d.publishes_https && svcb.is_service_mode() &&
      ech_active_ && now < config_.ech_shutdown &&
      draw(config_.seed, d.id, 30) < 0.037) {  // 106 of 2,884 at full scale
    svcb.params.set_ech(cf_ech_->current_config_wire());
  }
}

// ----------------------------------------------------------------- events

void Internet::schedule_events() {
  const std::uint64_t seed = config_.seed;
  util::Pcg32 rng(seed ^ 0xe7e27);
  auto window_days = (config_.end - config_.start).seconds / 86400;
  auto ns_window_days = (config_.end - config_.ns_window_start).seconds / 86400;

  auto random_time_in = [&rng](net::SimTime from, std::int64_t days) {
    auto day = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, days))));
    auto secs = static_cast<std::int64_t>(rng.uniform(86400));
    return from + net::Duration::days(day) + net::Duration::secs(secs);
  };

  std::vector<DomainId> cf_https;
  for (const auto& d : domains_) {
    if (d.on_cloudflare && d.cf_proxied && !d.cf_customized) cf_https.push_back(d.id);
  }

  for (const auto& d : domains_) {
    switch (d.quirk) {
      case DomainState::Quirk::proxied_toggler:
      case DomainState::Quirk::multi_ns_deactivation: {
        // One off/on cycle inside the NS measurement window.
        auto off_at = random_time_in(config_.ns_window_start, ns_window_days - 15);
        auto gap = net::Duration::days(1 + rng.uniform(10));
        bool multi = d.quirk == DomainState::Quirk::multi_ns_deactivation;
        events_.push_back({off_at, EventType::proxied_off, d.id, multi ? 1u : 0u});
        events_.push_back({off_at + gap, EventType::proxied_on, d.id, 0});
        break;
      }
      case DomainState::Quirk::ns_change_lose_https: {
        auto at = random_time_in(config_.ns_window_start, ns_window_days - 2);
        std::size_t bulk = catalog_.providers.size() - 4 + rng.uniform(4);
        events_.push_back({at, EventType::ns_migrate, d.id, bulk});
        break;
      }
      case DomainState::Quirk::ns_vanish: {
        auto at = random_time_in(config_.ns_window_start, ns_window_days - 10);
        events_.push_back({at, EventType::ns_vanish, d.id, 0});
        events_.push_back({at + net::Duration::days(2 + rng.uniform(5)),
                           EventType::ns_restore, d.id, 0});
        break;
      }
      default:
        break;
    }
  }

  // Renumber events. Before the Jun 19 pipeline fix the whole Cloudflare
  // population renumbers with long hint lags (the ~2% mismatch plateau of
  // Fig. 11); afterwards, mismatches concentrate on a small renumber-prone
  // pool with short lags (the paper's 317 distinct domains, §4.3.5).
  if (!cf_https.empty()) {
    std::vector<DomainId> pool;
    for (DomainId id : cf_https) {
      if (domains_[id].quirk != DomainState::Quirk::none) continue;
      pool.push_back(id);
      if (pool.size() >= std::max<std::size_t>(
              2, config_.scaled(config_.renumber_pool_full))) {
        break;
      }
    }
    std::map<DomainId, std::uint64_t> generation_of;
    double carry = 0.0;
    for (std::int64_t day = 0; day < window_days; ++day) {
      net::SimTime date = config_.start + net::Duration::days(day);
      bool prefix = date < config_.hint_pipeline_fix;
      const auto& population = prefix ? cf_https : pool;
      double rate = prefix ? config_.renumber_rate_prefix
                           : config_.pool_renumber_rate;
      carry += rate * static_cast<double>(population.size());
      while (carry >= 1.0) {
        carry -= 1.0;
        DomainId id = population[rng.uniform(
            static_cast<std::uint32_t>(population.size()))];
        auto at = date + net::Duration::secs(rng.uniform(43200));
        // Payload: generation in the low byte, post-fix flag in bit 8 (the
        // pool is flakier: higher dead-address probabilities).
        std::uint64_t generation = ++generation_of[id];
        std::uint64_t payload = (generation & 0xff) | (prefix ? 0 : 0x100);
        events_.push_back({at, EventType::renumber, id, payload});

        double lag_days = prefix ? config_.hint_lag_days_prefix
                                 : config_.hint_lag_days_postfix;
        auto lag_secs = static_cast<std::int64_t>(
            86400.0 * lag_days * (0.4 + 1.2 * rng.uniform01()));
        events_.push_back({at + net::Duration::secs(std::max<std::int64_t>(
                                    3600, lag_secs)),
                           EventType::hint_sync, id, payload});
      }
    }
  }

  // Churn-pool HTTPS activations that fall inside the window.
  for (const auto& d : domains_) {
    if (d.publishes_https && d.https_since > config_.start) {
      events_.push_back({d.https_since, EventType::https_activate, d.id, 0});
    }
  }

  // Mid-window DNSSEC signing activations.
  for (const auto& d : domains_) {
    if (d.dnssec_signed && d.signs_from > config_.start) {
      events_.push_back({d.signs_from, EventType::sign_on, d.id, 0});
    }
  }

  // Global events.
  events_.push_back({config_.ech_shutdown, EventType::ech_shutdown, 0, 0});
  if (!cf_https.empty()) {
    events_.push_back({net::SimTime::from_date(2024, 2, 11),
                       EventType::alpn_google_quic, cf_https[0], 0});
  }

  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
}

void Internet::apply(const Event& event) {
  // Events are pure state mutations now: zones are stamped from DomainState
  // on demand, so "edit the zone" collapses to "flip the delta bit and bump
  // the domain's version" (which invalidates its cached materializations).
  // Only the network keeps imperative side effects.
  DomainState& d = domains_[event.domain];
  switch (event.type) {
    case EventType::https_activate:
      if (d.publishes_https && (!d.on_cloudflare || d.cf_proxied)) {
        d.https_written = true;
      }
      break;
    case EventType::proxied_off:
      d.cf_proxied = false;
      d.https_written = false;
      if (event.payload == 1) {
        // Temporarily mix in a second provider's NS (§4.2.3).
        d.provider2 = catalog_.providers.size() - 4;
      }
      break;
    case EventType::proxied_on:
      d.cf_proxied = true;
      if (d.quirk == DomainState::Quirk::multi_ns_deactivation &&
          d.provider2 != SIZE_MAX) {
        d.provider2 = SIZE_MAX;
      }
      if (d.publishes_https) d.https_written = true;
      break;
    case EventType::ns_migrate:
      // The old provider's source stops claiming the apex, the new bulk
      // provider's starts — serving a fresh HTTPS-less zone.
      d.on_cloudflare = false;
      d.cf_proxied = false;
      d.publishes_https = false;
      d.https_written = false;
      d.provider = static_cast<std::size_t>(event.payload);
      break;
    case EventType::ns_vanish:
      d.ns_present = false;
      break;
    case EventType::ns_restore:
      d.ns_present = true;
      break;
    case EventType::renumber: {
      net::Ipv4Addr old_address = d.address;
      std::uint64_t generation = event.payload & 0xff;
      bool pool_event = (event.payload & 0x100) != 0;
      d.address = web_address(d.id, generation);

      // Reachability consequences (§4.3.5 connectivity experiment).
      double p_dead_a =
          pool_event ? config_.pool_dead_a : config_.renumber_dead_a;
      double p_dead_hint =
          pool_event ? config_.pool_dead_hint : config_.renumber_dead_hint;
      double dead_a = draw(config_.seed, d.id, 400 + event.payload);
      if (dead_a < p_dead_a) {
        network_.set_host_unreachable(net::IpAddr(d.address), true);
      } else {
        network_.set_host_unreachable(net::IpAddr(d.address), false);
        (void)network_.listen(net::Endpoint{net::IpAddr(d.address), 443});
      }
      double dead_hint = draw(config_.seed, d.id, 900 + event.payload);
      if (dead_hint < p_dead_hint) {
        network_.close(net::Endpoint{net::IpAddr(old_address), 443});
        network_.set_host_unreachable(net::IpAddr(old_address), true);
      }
      break;
    }
    case EventType::hint_sync:
      if (d.quirk != DomainState::Quirk::chronic_mismatch) {
        d.hint_address = d.address;
      }
      break;
    case EventType::sign_on:
      // signs_from <= now from here on: materialization turns the zone key
      // and the delegation-side DS on by itself.
      break;
    case EventType::ech_shutdown:
      ech_active_ = false;
      return;  // global: no per-domain version to bump
    case EventType::alpn_google_quic:
      google_quic_domains_.push_back(event.domain);
      break;
  }
  ++domain_version_[event.domain];
}

std::size_t Internet::sweep_zone_caches() {
  std::size_t dropped = 0;
  for (auto& source : domain_sources_) dropped += source->sweep_stale();
  if (tld_source_) dropped += tld_source_->sweep_stale();
  return dropped;
}

void Internet::advance_to(net::SimTime t) {
  // Epoch edge: everything below may mutate zones, provider capabilities,
  // the network, or the ECH keys, so every memoized response/signature in
  // the server directory is invalidated first.  (Zone edits reach zones
  // through retained Zone* pointers too — apply() bypasses the servers'
  // own invalidating mutators, so this directory-wide bump is what makes
  // the memo layers safe, not the per-mutator hooks.)
  infra_.bump_epoch();
  while (next_event_ < events_.size() && events_[next_event_].at <= t) {
    clock_.advance_to(events_[next_event_].at);
    apply(events_[next_event_]);
    ++next_event_;
  }
  clock_.advance_to(t);
  cf_ech_->tick(t);
}

std::unique_ptr<resolver::RecursiveResolver> Internet::make_resolver(
    resolver::ResolverOptions options) const {
  return std::make_unique<resolver::RecursiveResolver>(infra_, clock_,
                                                       root_key_.dnskey, options);
}

}  // namespace httpsrr::ecosystem
