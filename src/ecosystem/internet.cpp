#include "ecosystem/internet.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"
#include "util/strings.h"

namespace httpsrr::ecosystem {

using dns::Name;
using dns::name_of;
using dns::Rr;
using dns::RrType;
using resolver::AuthoritativeServer;

namespace {

constexpr std::uint32_t kApexTtl = 300;
constexpr std::uint32_t kNsTtl = 86400;

// Deterministic per-(domain, stream) random draw in [0,1).
double draw(std::uint64_t seed, DomainId id, std::uint64_t stream) {
  std::uint64_t h = util::mix64(seed ^ (static_cast<std::uint64_t>(id) * 0x9e3779b1ULL) ^
                                (stream << 40));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t draw_u64(std::uint64_t seed, DomainId id, std::uint64_t stream) {
  return util::mix64(seed ^ (static_cast<std::uint64_t>(id) * 0xc2b2ae35ULL) ^
                     (stream << 40));
}

// Generation-aware web address for a domain.
net::Ipv4Addr web_address(DomainId id, std::uint64_t generation) {
  auto g = static_cast<std::uint8_t>(generation % 8);
  return net::Ipv4Addr(static_cast<std::uint8_t>(104),
                       static_cast<std::uint8_t>(16 + g),
                       static_cast<std::uint8_t>((id >> 8) & 0xff),
                       static_cast<std::uint8_t>(id & 0xff));
}

net::Ipv6Addr web_address6(DomainId id) {
  std::array<std::uint16_t, 8> groups{0x2606, 0x4700, 0, 0, 0, 0,
                                      static_cast<std::uint16_t>(id >> 16),
                                      static_cast<std::uint16_t>(id & 0xffff)};
  return net::Ipv6Addr::from_groups(groups);
}

}  // namespace

Internet::Internet(EcosystemConfig config)
    : config_(config),
      clock_(config.start),
      catalog_(ProviderCatalog::make(config.seed)),
      root_key_(dnssec::KeyPair::generate(config.seed ^ 0x1007, 257)) {
  TrancoFeed::Options feed_options;
  feed_options.universe_size = config_.universe_size;
  feed_options.list_size = config_.list_size;
  feed_options.source_change = config_.source_change;
  feed_options.seed = config_.seed;
  feed_ = std::make_unique<TrancoFeed>(feed_options);

  ech::EchKeyManager::Options ech_options;
  ech_options.public_name = "cloudflare-ech.com";
  ech_options.rotation_period = config_.ech_rotation_period;
  ech_options.rotation_jitter = config_.ech_rotation_jitter;
  ech_options.retention = net::Duration::minutes(10);
  ech_options.seed = config_.seed ^ 0xec;
  cf_ech_ = std::make_shared<ech::EchKeyManager>(ech_options, config_.start);

  build_population();
  build_infrastructure();
  for (const auto& d : domains_) build_zone(d);
  schedule_events();

  // Construction is done mutating: from here on the frozen-epoch contract
  // holds (nothing changes outside advance_to), so the authoritative
  // servers may memoize rendered responses and signatures.  advance_to
  // opens every epoch edge by dropping those memos before events apply.
  infra_.enable_response_caching();
}

dns::Name Internet::tld_of(const DomainState& d) const {
  return d.apex.suffix(1);
}

AuthoritativeServer* Internet::provider_server(std::size_t index) const {
  return provider_servers_[index];
}

const DomainState* Internet::domain_by_name(const Name& apex) const {
  auto it = by_name_.find(apex);
  return it == by_name_.end() ? nullptr : &domains_[it->second];
}

// --------------------------------------------------------------- population

void Internet::build_population() {
  const std::uint64_t seed = config_.seed;
  const std::size_t universe = config_.universe_size;
  domains_.resize(universe);

  // Providers with explicit HTTPS customer targets get them assigned first.
  // We walk the universe in a deterministic shuffled order.
  std::vector<DomainId> order(universe);
  for (std::size_t i = 0; i < universe; ++i) order[i] = static_cast<DomainId>(i);
  util::Pcg32 shuffle_rng(seed ^ 0xa110c);
  for (std::size_t i = universe - 1; i > 0; --i) {
    std::size_t j = shuffle_rng.uniform(static_cast<std::uint32_t>(i + 1));
    std::swap(order[i], order[j]);
  }

  const char* tld_choices[] = {"com", "com", "com", "com", "com", "com", "com",
                               "net", "net", "org"};

  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    d.id = id;
    const char* tld = tld_choices[draw_u64(seed, id, 1) % 10];
    d.apex = name_of(util::format("d%05u.%s", id, tld));
    d.www = *d.apex.prepend("www");
    d.address = web_address(id, 0);
    d.hint_address = d.address;
    d.address6 = web_address6(id);
    by_name_[d.apex] = id;
    by_name_[d.www] = id;
  }

  // --- named/tail providers: place their HTTPS customers ------------------
  std::size_t cursor = 0;
  auto take_domains = [&](std::size_t count, double overlap_fraction,
                          std::size_t provider_index) {
    std::size_t placed = 0;
    std::size_t scan = 0;
    while (placed < count && scan < order.size()) {
      DomainId id = order[(cursor + scan) % order.size()];
      ++scan;
      DomainState& d = domains_[id];
      if (d.provider != 0 || d.on_cloudflare) continue;  // already claimed
      bool stable = feed_->stability(id) == Stability::core_both;
      bool want_stable = draw(seed, id, 2) < overlap_fraction;
      if (stable != want_stable) continue;
      d.provider = provider_index;
      d.publishes_https = true;
      d.https_since = config_.start - net::Duration::days(30);
      ++placed;
    }
    cursor += scan;
  };

  // Provider customer counts scale *stochastically* (floor + fractional
  // Bernoulli) rather than with a min-1 clamp: at small scales most tail
  // providers must end up with zero customers, matching the paper's ~2,900
  // non-Cloudflare HTTPS apexes spread over 244 operators.
  for (std::size_t p = 1; p < catalog_.providers.size(); ++p) {
    const auto& spec = catalog_.providers[p];
    if (spec.https_domains_full_scale == 0) continue;
    double expected = static_cast<double>(spec.https_domains_full_scale) *
                      config_.scale() * config_.noncf_oversample;
    auto count = static_cast<std::size_t>(expected);
    double frac = expected - static_cast<double>(count);
    if (draw(seed, static_cast<DomainId>(p), 60) < frac) ++count;
    if (count == 0) continue;
    take_domains(count, spec.overlap_fraction, p);
  }

  // --- Cloudflare cohort & the bulk remainder -----------------------------
  std::size_t bulk_start = catalog_.providers.size() - 4;
  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    if (d.provider != 0) continue;  // claimed by a named/tail provider

    bool core = feed_->stability(id) == Stability::core_both;
    double cf_share = core ? config_.cf_share_core : config_.cf_share_churn;
    if (draw(seed, id, 3) < cf_share) {
      d.on_cloudflare = true;
      d.provider = 0;
      if (draw(seed, id, 4) < config_.cf_proxied) {
        d.cf_proxied = true;
        d.publishes_https = true;
        double customized =
            core ? config_.cf_customized_core : config_.cf_customized_churn;
        d.cf_customized = draw(seed, id, 5) < customized;
        d.cf_free_plan = draw(seed, id, 6) < config_.cf_free_plan;
        d.www_has_https = draw(seed, id, 7) < config_.www_mirror;

        // Activation date: stable domains were proxied before the window;
        // churners activate progressively (the rising Fig. 2a trend).
        bool churner = feed_->stability(id) == Stability::churn;
        if (churner && draw(seed, id, 8) < config_.churn_late_activation) {
          auto window_days = (config_.end - config_.start).seconds / 86400;
          auto offset = static_cast<std::int64_t>(draw_u64(seed, id, 9) %
                                                  static_cast<std::uint64_t>(window_days));
          d.https_since = config_.start + net::Duration::days(offset);
        } else {
          d.https_since = config_.start - net::Duration::days(60);
        }
      }
    } else {
      // Bulk provider without HTTPS support.
      d.provider = bulk_start + draw_u64(seed, id, 10) % 4;
    }
  }

  // --- DNSSEC flags --------------------------------------------------------
  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    bool core = feed_->stability(id) == Stability::core_both;
    double p_signed;
    double p_ds_ok;
    if (d.publishes_https) {
      p_signed = config_.signed_with_https;
      p_ds_ok = d.on_cloudflare ? config_.ds_ok_with_https_cf
                                : config_.ds_ok_with_https_noncf;
      // Dynamic Fig. 5a decline: late-activating churners sign less.
      if (!core && d.https_since > config_.start) p_signed *= 0.25;
    } else {
      p_signed = config_.signed_without_https;
      p_ds_ok = config_.ds_ok_without_https;
    }
    if (draw(seed, id, 11) < p_signed) {
      d.dnssec_signed = true;
      d.ds_uploaded = draw(seed, id, 12) < p_ds_ok;
      // Overlapping Fig. 5b rise: a share of core signers adopt mid-window.
      if (core && draw(seed, id, 13) < config_.core_signing_adoption) {
        auto window_days = (config_.end - config_.start).seconds / 86400;
        auto offset = static_cast<std::int64_t>(draw_u64(seed, id, 14) %
                                                static_cast<std::uint64_t>(window_days));
        d.signs_from = config_.start + net::Duration::days(offset);
      } else {
        d.signs_from = config_.start - net::Duration::days(90);
      }
    }
  }

  // --- quirk cohorts -------------------------------------------------------
  auto assign_quirk = [&](std::size_t count, DomainState::Quirk quirk,
                          auto&& predicate) -> std::size_t {
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < order.size() && assigned < count; ++i) {
      DomainState& d = domains_[order[i]];
      if (d.quirk != DomainState::Quirk::none) continue;
      if (!predicate(d)) continue;
      d.quirk = quirk;
      ++assigned;
    }
    return assigned;
  };
  auto is_cf_default = [](const DomainState& d) {
    return d.on_cloudflare && d.cf_proxied && !d.cf_customized;
  };

  assign_quirk(config_.scaled(config_.intermittent_cf_toggle_full),
               DomainState::Quirk::proxied_toggler, is_cf_default);
  assign_quirk(config_.scaled(config_.intermittent_multi_ns_full),
               DomainState::Quirk::multi_ns_deactivation, is_cf_default);
  assign_quirk(config_.scaled(config_.ns_change_lose_https_full),
               DomainState::Quirk::ns_change_lose_https, is_cf_default);
  {
    // Prefer non-Cloudflare publishers for the mixed-provider cohort; at
    // small scales fall back to Cloudflare ones (the paper saw both mixes).
    std::size_t want = config_.scaled(config_.mixed_provider_full);
    std::size_t got = assign_quirk(want, DomainState::Quirk::mixed_provider,
                                   [](const DomainState& d) {
                                     return !d.on_cloudflare && d.publishes_https;
                                   });
    if (got < want) {
      (void)assign_quirk(want - got, DomainState::Quirk::mixed_provider,
                         [&](const DomainState& d) {
                           return is_cf_default(d) &&
                                  d.https_since <= config_.start;
                         });
    }
  }
  assign_quirk(config_.scaled(config_.ns_vanish_full),
               DomainState::Quirk::ns_vanish, is_cf_default);
  assign_quirk(config_.scaled(config_.chronic_mismatch_full),
               DomainState::Quirk::chronic_mismatch, is_cf_default);

  for (DomainId id = 0; id < universe; ++id) {
    DomainState& d = domains_[id];
    if (d.quirk == DomainState::Quirk::mixed_provider) {
      d.provider2 = bulk_start + draw_u64(seed, id, 15) % 4;
    }
    if (d.quirk == DomainState::Quirk::chronic_mismatch) {
      d.hint_address = web_address(id, 7);  // permanently different
    }
  }
}

// ----------------------------------------------------------- infrastructure

void Internet::build_infrastructure() {
  const std::uint64_t seed = config_.seed;

  root_server_ = &infra_.add_server("root-ops", *net::IpAddr::parse("198.41.0.4"));
  root_server_->add_zone(dns::Zone(Name{}));
  root_server_->enable_dnssec(Name{}, root_key_);
  infra_.register_zone(Name{}, {root_server_});
  infra_.set_root_servers({*net::IpAddr::parse("198.41.0.4")});

  tld_server_ = &infra_.add_server("gtld-ops", *net::IpAddr::parse("192.5.6.30"));
  const char* tld_names[] = {"com", "net", "org", "no"};
  auto* root_zone = root_server_->find_zone(Name{});
  for (std::size_t i = 0; i < 4; ++i) {
    Name tld = name_of(tld_names[i]);
    tlds_.push_back(tld);
    tld_keys_.push_back(dnssec::KeyPair::generate(seed ^ (0x71d + i), 257));
    tld_server_->add_zone(dns::Zone(tld));
    tld_server_->enable_dnssec(tld, tld_keys_.back());
    infra_.register_zone(tld, {tld_server_});

    (void)root_zone->add(dns::make_ns(tld, kNsTtl, name_of("ns.gtld-servers.net")));
    (void)root_zone->add(Rr{tld, RrType::DS, dns::RrClass::IN, kNsTtl,
                            dnssec::make_ds(tld, tld_keys_.back().dnskey)});
  }
  (void)root_zone->add(dns::make_a(name_of("ns.gtld-servers.net"), kNsTtl,
                                   net::Ipv4Addr(192, 5, 6, 30)));

  // One server per provider; its two NS host names share the address.
  auto hook = [this](const Name& owner, dns::SvcbRdata& svcb, net::SimTime now) {
    svcb_hook(owner, svcb, now);
  };
  for (std::size_t p = 0; p < catalog_.providers.size(); ++p) {
    const auto& spec = catalog_.providers[p];
    auto address = net::IpAddr(net::Ipv4Addr(
        10, static_cast<std::uint8_t>(1 + p / 200),
        static_cast<std::uint8_t>(p % 200), 53));
    auto& server = infra_.add_server(spec.name, address);
    server.set_supports_https_rr(spec.supports_https_rr);
    server.set_svcb_hook(hook);
    provider_servers_.push_back(&server);

    // Glue for ns1/ns2.<ns_domain> in the matching TLD zone.
    Name ns_parent = name_of(spec.ns_domain);
    Name tld = ns_parent.suffix(1);
    auto* tld_zone = tld_server_->find_zone(tld);
    assert(tld_zone != nullptr && "provider NS domain must be under a known TLD");
    for (int n = 1; n <= spec.ns_count; ++n) {
      Name host = *ns_parent.prepend(util::format("ns%d", n));
      (void)tld_zone->add(dns::make_a(host, kNsTtl, address.v4()));
    }

    // WHOIS ground truth + noise for a slice of the tail.
    whois_.register_ip(address, spec.name);
    if (util::starts_with(spec.name, "provider-") &&
        draw_u64(seed, static_cast<DomainId>(p), 16) % 10 == 0) {
      whois_.set_visible_org(address, "mega-cloud-hosting");
      whois_.add_manual_override("mega-cloud-hosting", spec.name);
    }
  }
}

// ------------------------------------------------------------ zone building

void Internet::sync_delegation(const DomainState& d, bool include_ns) {
  // The NS set lives in two places: the TLD delegation and the zone's own
  // apex NS RRset (what an NS query through the resolver returns). Both
  // must reflect provider changes for the scanner to observe them.
  Name tld = tld_of(d);
  auto* tld_zone = tld_server_->find_zone(tld);
  tld_zone->remove(d.apex, RrType::NS);

  std::vector<dns::Zone*> hosted;
  if (auto* zone = provider_server(d.provider)->find_zone(d.apex)) {
    hosted.push_back(zone);
  }
  if (d.provider2 != SIZE_MAX) {
    if (auto* zone = provider_server(d.provider2)->find_zone(d.apex)) {
      hosted.push_back(zone);
    }
  }
  for (auto* zone : hosted) zone->remove(d.apex, RrType::NS);
  if (!include_ns) return;

  auto add_ns_for = [&](std::size_t provider_index) {
    const auto& spec = catalog_.providers[provider_index];
    Name ns_parent = name_of(spec.ns_domain);
    for (int n = 1; n <= spec.ns_count; ++n) {
      Name host = *ns_parent.prepend(util::format("ns%d", n));
      (void)tld_zone->add(dns::make_ns(d.apex, kNsTtl, host));
      for (auto* zone : hosted) {
        (void)zone->add(dns::make_ns(d.apex, kNsTtl, host));
      }
    }
  };
  add_ns_for(d.provider);
  if (d.provider2 != SIZE_MAX) add_ns_for(d.provider2);
}

void Internet::update_address_records(const DomainState& d) {
  auto update_in = [&](AuthoritativeServer* server) {
    auto* zone = server->find_zone(d.apex);
    if (zone == nullptr) return;
    zone->remove(d.apex, RrType::A);
    (void)zone->add(dns::make_a(d.apex, kApexTtl, d.address));
    if (zone->records_at(d.www, RrType::CNAME).empty()) {
      zone->remove(d.www, RrType::A);
      (void)zone->add(dns::make_a(d.www, kApexTtl, d.address));
    }
  };
  update_in(provider_server(d.provider));
  if (d.provider2 != SIZE_MAX) update_in(provider_server(d.provider2));
}

void Internet::write_https_records(const DomainState& d) {
  const std::uint64_t seed = config_.seed;
  const auto& spec = catalog_.providers[d.provider];

  auto make_record = [&]() -> dns::SvcbRdata {
    dns::SvcbRdata svcb;
    svcb.priority = 1;  // ServiceMode, TargetName "."
    if (d.on_cloudflare) {
      if (!d.cf_customized) return svcb;  // placeholder: hook fills params

      // Customised Cloudflare configurations (§4.3.3 / Appendix E.1).
      // Nearly all still carry hints (97% hint utilisation, Fig. 11).
      double shape = draw(seed, d.id, 20);
      if (shape < 0.62) {
        svcb.params.set_alpn({"h2"});
        svcb.params.set_ipv4hint({d.hint_address});
        svcb.params.set_ipv6hint({d.address6});
      } else if (shape < 0.88) {
        // Customised with h3 but only a v4 hint (distinguishable from the
        // default, which always carries both hint families).
        svcb.params.set_alpn({"h2", "h3"});
        svcb.params.set_ipv4hint({d.hint_address});
      } else if (shape < 0.93) {
        // ServiceMode without any SvcParams (the 202-domain cohort).
      } else if (shape < 0.98) {
        svcb.priority = 0;  // AliasMode
        svcb.target = d.www;
      } else {
        svcb.priority = 0;  // broken: AliasMode pointing at itself
      }
      return svcb;
    }

    switch (spec.style) {
      case HttpsRecordStyle::service_no_params: {
        double shape = draw(seed, d.id, 21);
        if (shape < 0.05) {
          svcb.params.set_alpn({"h2"});
        } else if (shape < 0.07) {
          svcb.params.set_ipv4hint({d.address});
        }
        return svcb;
      }
      case HttpsRecordStyle::alias_to_endpoint: {
        double shape = draw(seed, d.id, 22);
        if (shape < 0.99) {
          svcb.priority = 0;
          svcb.target = name_of(
              util::format("site%u.hosting.%s", d.id, spec.ns_domain.c_str()));
        } else {
          svcb.params.set_alpn({"h3", "h2"});
          svcb.params.set_ipv4hint({d.address});
          svcb.params.set_ipv6hint({d.address6});
        }
        return svcb;
      }
      case HttpsRecordStyle::service_full:
      default: {
        double shape = draw(seed, d.id, 23);
        if (shape < 0.084) {
          // no alpn at all (8.44%, §4.3.4)
        } else if (shape < 0.084 + 0.268) {
          svcb.params.set_alpn({"h2", "h3"});
        } else if (shape < 0.98) {
          svcb.params.set_alpn({"h2"});
        } else if (shape < 0.99) {
          svcb.params.set_alpn({"http/1.1"});  // the 6-domain oddity
        } else {
          svcb.params.set_alpn({"h3-27", "h3-29"});  // the gentoo.org oddity
        }
        if (draw(seed, d.id, 24) < 0.5) {
          svcb.params.set_ipv4hint({d.hint_address});
        }
        return svcb;
      }
      case HttpsRecordStyle::none:
      case HttpsRecordStyle::cloudflare_default:
        return svcb;
    }
  };

  auto write_in = [&](AuthoritativeServer* server) {
    auto* zone = server->find_zone(d.apex);
    if (zone == nullptr) return;
    zone->remove(d.apex, RrType::HTTPS);
    zone->remove(d.www, RrType::HTTPS);
    dns::SvcbRdata record = make_record();
    (void)zone->add(dns::make_https(d.apex, kApexTtl, record));
    bool www_is_cname = !zone->records_at(d.www, dns::RrType::CNAME).empty();
    if (d.www_has_https && !www_is_cname) {
      (void)zone->add(dns::make_https(d.www, kApexTtl, record));
    }
  };
  write_in(provider_server(d.provider));
  if (d.provider2 != SIZE_MAX) write_in(provider_server(d.provider2));
}

void Internet::remove_https_records(const DomainState& d) {
  auto remove_in = [&](AuthoritativeServer* server) {
    auto* zone = server->find_zone(d.apex);
    if (zone == nullptr) return;
    zone->remove(d.apex, RrType::HTTPS);
    zone->remove(d.www, RrType::HTTPS);
  };
  remove_in(provider_server(d.provider));
  if (d.provider2 != SIZE_MAX) remove_in(provider_server(d.provider2));
}

void Internet::build_zone(const DomainState& d) {
  auto build_on = [&](std::size_t provider_index) {
    const auto& spec = catalog_.providers[provider_index];
    AuthoritativeServer* server = provider_server(provider_index);

    dns::Zone zone(d.apex);
    dns::SoaRdata soa;
    soa.mname = *name_of(spec.ns_domain).prepend("ns1");
    soa.rname = *d.apex.prepend("hostmaster");
    soa.serial = 2023050801;
    soa.refresh = 7200;
    soa.retry = 3600;
    soa.expire = 1209600;
    soa.minimum = 300;
    (void)zone.add(dns::make_soa(d.apex, kNsTtl, std::move(soa)));

    Name ns_parent = name_of(spec.ns_domain);
    for (int n = 1; n <= spec.ns_count; ++n) {
      (void)zone.add(dns::make_ns(d.apex, kNsTtl,
                                  *ns_parent.prepend(util::format("ns%d", n))));
    }
    (void)zone.add(dns::make_a(d.apex, kApexTtl, d.address));
    (void)zone.add(dns::make_aaaa(d.apex, kApexTtl, d.address6));
    // A share of zones publish www as a CNAME to the apex (the shape the
    // paper's scanner chases, §4.1); the rest give www its own A record.
    if (draw(config_.seed, d.id, 70) < 0.25) {
      (void)zone.add(dns::make_cname(d.www, kApexTtl, d.apex));
    } else {
      (void)zone.add(dns::make_a(d.www, kApexTtl, d.address));
    }

    server->add_zone(std::move(zone));

    if (d.dnssec_signed && d.signs_from <= clock_.now()) {
      server->enable_dnssec(d.apex,
                            dnssec::KeyPair::generate(config_.seed ^ d.id, 257));
      if (d.ds_uploaded) {
        auto* tld_zone = tld_server_->find_zone(tld_of(d));
        const auto* key = server->zone_key(d.apex);
        (void)tld_zone->add(Rr{d.apex, RrType::DS, dns::RrClass::IN, kNsTtl,
                               dnssec::make_ds(d.apex, key->dnskey)});
      }
    }
  };

  build_on(d.provider);
  std::vector<AuthoritativeServer*> hosts = {provider_server(d.provider)};
  if (d.provider2 != SIZE_MAX) {
    build_on(d.provider2);
    hosts.push_back(provider_server(d.provider2));
  }
  infra_.register_zone(d.apex, std::move(hosts));

  sync_delegation(d, /*include_ns=*/true);
  if (d.publishes_https && d.https_since <= clock_.now()) {
    write_https_records(d);
  }

  // Web reachability: the apex answers on 443 at its address; chronic
  // mismatchers also listen on the stale hint address.
  (void)network_.listen(net::Endpoint{net::IpAddr(d.address), 443});
  if (!(d.hint_address == d.address)) {
    (void)network_.listen(net::Endpoint{net::IpAddr(d.hint_address), 443});
  }
}

// -------------------------------------------------------------- the hook

void Internet::svcb_hook(const Name& owner, dns::SvcbRdata& svcb,
                         net::SimTime now) const {
  auto it = by_name_.find(owner);
  if (it == by_name_.end()) return;
  const DomainState& d = domains_[it->second];

  if (d.on_cloudflare && d.cf_proxied && !d.cf_customized) {
    // Cloudflare default record: "1 . alpn=… ipv4hint=… ipv6hint=… [ech=…]".
    std::vector<std::string> alpn = {"h2", "h3"};
    if (now < config_.h3_29_retirement) alpn.emplace_back("h3-29");
    for (DomainId g : google_quic_domains_) {
      if (g == d.id) {
        alpn.insert(alpn.end(), {"Q043", "Q046", "Q050"});
      }
    }
    svcb.params.set_alpn(alpn);
    svcb.params.set_ipv4hint({d.hint_address});
    svcb.params.set_ipv6hint({d.address6});
    if (ech_active_ && d.cf_free_plan && now < config_.ech_shutdown) {
      // ECH rides on apex and (slightly less often) www records: the paper
      // measures ~70% apex vs ~63% www ECH share (§4.4.1).
      bool is_www = owner == d.www;
      if (!is_www || draw(config_.seed, d.id, 31) < 0.90) {
        svcb.params.set_ech(cf_ech_->current_config_wire());
      }
    }
    return;
  }

  // Non-Cloudflare ECH cohort (§4.4.1): their static records gain the very
  // same cloudflare-ech.com configuration.
  if (!d.on_cloudflare && d.quirk == DomainState::Quirk::mixed_provider) {
    return;  // unrelated cohort
  }
  if (!d.on_cloudflare && d.publishes_https && svcb.is_service_mode() &&
      ech_active_ && now < config_.ech_shutdown &&
      draw(config_.seed, d.id, 30) < 0.037) {  // 106 of 2,884 at full scale
    svcb.params.set_ech(cf_ech_->current_config_wire());
  }
}

// ----------------------------------------------------------------- events

void Internet::schedule_events() {
  const std::uint64_t seed = config_.seed;
  util::Pcg32 rng(seed ^ 0xe7e27);
  auto window_days = (config_.end - config_.start).seconds / 86400;
  auto ns_window_days = (config_.end - config_.ns_window_start).seconds / 86400;

  auto random_time_in = [&rng](net::SimTime from, std::int64_t days) {
    auto day = static_cast<std::int64_t>(rng.uniform(static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, days))));
    auto secs = static_cast<std::int64_t>(rng.uniform(86400));
    return from + net::Duration::days(day) + net::Duration::secs(secs);
  };

  std::vector<DomainId> cf_https;
  for (const auto& d : domains_) {
    if (d.on_cloudflare && d.cf_proxied && !d.cf_customized) cf_https.push_back(d.id);
  }

  for (const auto& d : domains_) {
    switch (d.quirk) {
      case DomainState::Quirk::proxied_toggler:
      case DomainState::Quirk::multi_ns_deactivation: {
        // One off/on cycle inside the NS measurement window.
        auto off_at = random_time_in(config_.ns_window_start, ns_window_days - 15);
        auto gap = net::Duration::days(1 + rng.uniform(10));
        bool multi = d.quirk == DomainState::Quirk::multi_ns_deactivation;
        events_.push_back({off_at, EventType::proxied_off, d.id, multi ? 1u : 0u});
        events_.push_back({off_at + gap, EventType::proxied_on, d.id, 0});
        break;
      }
      case DomainState::Quirk::ns_change_lose_https: {
        auto at = random_time_in(config_.ns_window_start, ns_window_days - 2);
        std::size_t bulk = catalog_.providers.size() - 4 + rng.uniform(4);
        events_.push_back({at, EventType::ns_migrate, d.id, bulk});
        break;
      }
      case DomainState::Quirk::ns_vanish: {
        auto at = random_time_in(config_.ns_window_start, ns_window_days - 10);
        events_.push_back({at, EventType::ns_vanish, d.id, 0});
        events_.push_back({at + net::Duration::days(2 + rng.uniform(5)),
                           EventType::ns_restore, d.id, 0});
        break;
      }
      default:
        break;
    }
  }

  // Renumber events. Before the Jun 19 pipeline fix the whole Cloudflare
  // population renumbers with long hint lags (the ~2% mismatch plateau of
  // Fig. 11); afterwards, mismatches concentrate on a small renumber-prone
  // pool with short lags (the paper's 317 distinct domains, §4.3.5).
  if (!cf_https.empty()) {
    std::vector<DomainId> pool;
    for (DomainId id : cf_https) {
      if (domains_[id].quirk != DomainState::Quirk::none) continue;
      pool.push_back(id);
      if (pool.size() >= std::max<std::size_t>(
              2, config_.scaled(config_.renumber_pool_full))) {
        break;
      }
    }
    std::map<DomainId, std::uint64_t> generation_of;
    double carry = 0.0;
    for (std::int64_t day = 0; day < window_days; ++day) {
      net::SimTime date = config_.start + net::Duration::days(day);
      bool prefix = date < config_.hint_pipeline_fix;
      const auto& population = prefix ? cf_https : pool;
      double rate = prefix ? config_.renumber_rate_prefix
                           : config_.pool_renumber_rate;
      carry += rate * static_cast<double>(population.size());
      while (carry >= 1.0) {
        carry -= 1.0;
        DomainId id = population[rng.uniform(
            static_cast<std::uint32_t>(population.size()))];
        auto at = date + net::Duration::secs(rng.uniform(43200));
        // Payload: generation in the low byte, post-fix flag in bit 8 (the
        // pool is flakier: higher dead-address probabilities).
        std::uint64_t generation = ++generation_of[id];
        std::uint64_t payload = (generation & 0xff) | (prefix ? 0 : 0x100);
        events_.push_back({at, EventType::renumber, id, payload});

        double lag_days = prefix ? config_.hint_lag_days_prefix
                                 : config_.hint_lag_days_postfix;
        auto lag_secs = static_cast<std::int64_t>(
            86400.0 * lag_days * (0.4 + 1.2 * rng.uniform01()));
        events_.push_back({at + net::Duration::secs(std::max<std::int64_t>(
                                    3600, lag_secs)),
                           EventType::hint_sync, id, payload});
      }
    }
  }

  // Churn-pool HTTPS activations that fall inside the window.
  for (const auto& d : domains_) {
    if (d.publishes_https && d.https_since > config_.start) {
      events_.push_back({d.https_since, EventType::https_activate, d.id, 0});
    }
  }

  // Mid-window DNSSEC signing activations.
  for (const auto& d : domains_) {
    if (d.dnssec_signed && d.signs_from > config_.start) {
      events_.push_back({d.signs_from, EventType::sign_on, d.id, 0});
    }
  }

  // Global events.
  events_.push_back({config_.ech_shutdown, EventType::ech_shutdown, 0, 0});
  if (!cf_https.empty()) {
    events_.push_back({net::SimTime::from_date(2024, 2, 11),
                       EventType::alpn_google_quic, cf_https[0], 0});
  }

  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
}

void Internet::apply(const Event& event) {
  DomainState& d = domains_[event.domain];
  switch (event.type) {
    case EventType::https_activate:
      if (d.publishes_https && (!d.on_cloudflare || d.cf_proxied)) {
        write_https_records(d);
      }
      break;
    case EventType::proxied_off: {
      d.cf_proxied = false;
      remove_https_records(d);
      if (event.payload == 1) {
        // Temporarily mix in a second provider's NS (§4.2.3).
        d.provider2 = catalog_.providers.size() - 4;
        sync_delegation(d, true);
      }
      break;
    }
    case EventType::proxied_on: {
      d.cf_proxied = true;
      if (d.quirk == DomainState::Quirk::multi_ns_deactivation &&
          d.provider2 != SIZE_MAX) {
        d.provider2 = SIZE_MAX;
        sync_delegation(d, true);
      }
      if (d.publishes_https) write_https_records(d);
      break;
    }
    case EventType::ns_migrate: {
      remove_https_records(d);
      provider_server(d.provider)->remove_zone(d.apex);
      d.on_cloudflare = false;
      d.cf_proxied = false;
      d.publishes_https = false;
      d.provider = event.payload;
      build_zone(d);
      break;
    }
    case EventType::ns_vanish:
      sync_delegation(d, false);
      break;
    case EventType::ns_restore:
      sync_delegation(d, true);
      break;
    case EventType::renumber: {
      net::Ipv4Addr old_address = d.address;
      std::uint64_t generation = event.payload & 0xff;
      bool pool_event = (event.payload & 0x100) != 0;
      d.address = web_address(d.id, generation);
      update_address_records(d);

      // Reachability consequences (§4.3.5 connectivity experiment).
      double p_dead_a =
          pool_event ? config_.pool_dead_a : config_.renumber_dead_a;
      double p_dead_hint =
          pool_event ? config_.pool_dead_hint : config_.renumber_dead_hint;
      double dead_a = draw(config_.seed, d.id, 400 + event.payload);
      if (dead_a < p_dead_a) {
        network_.set_host_unreachable(net::IpAddr(d.address), true);
      } else {
        network_.set_host_unreachable(net::IpAddr(d.address), false);
        (void)network_.listen(net::Endpoint{net::IpAddr(d.address), 443});
      }
      double dead_hint = draw(config_.seed, d.id, 900 + event.payload);
      if (dead_hint < p_dead_hint) {
        network_.close(net::Endpoint{net::IpAddr(old_address), 443});
        network_.set_host_unreachable(net::IpAddr(old_address), true);
      }
      break;
    }
    case EventType::hint_sync:
      if (d.quirk != DomainState::Quirk::chronic_mismatch) {
        d.hint_address = d.address;
      }
      break;
    case EventType::sign_on: {
      auto* server = provider_server(d.provider);
      server->enable_dnssec(d.apex,
                            dnssec::KeyPair::generate(config_.seed ^ d.id, 257));
      if (d.ds_uploaded) {
        auto* tld_zone = tld_server_->find_zone(tld_of(d));
        const auto* key = server->zone_key(d.apex);
        tld_zone->remove(d.apex, RrType::DS);
        (void)tld_zone->add(Rr{d.apex, RrType::DS, dns::RrClass::IN, kNsTtl,
                               dnssec::make_ds(d.apex, key->dnskey)});
      }
      break;
    }
    case EventType::ech_shutdown:
      ech_active_ = false;
      break;
    case EventType::alpn_google_quic:
      google_quic_domains_.push_back(event.domain);
      break;
  }
}

void Internet::advance_to(net::SimTime t) {
  // Epoch edge: everything below may mutate zones, provider capabilities,
  // the network, or the ECH keys, so every memoized response/signature in
  // the server directory is invalidated first.  (Zone edits reach zones
  // through retained Zone* pointers too — apply() bypasses the servers'
  // own invalidating mutators, so this directory-wide bump is what makes
  // the memo layers safe, not the per-mutator hooks.)
  infra_.bump_epoch();
  while (next_event_ < events_.size() && events_[next_event_].at <= t) {
    clock_.advance_to(events_[next_event_].at);
    apply(events_[next_event_]);
    ++next_event_;
  }
  clock_.advance_to(t);
  cf_ech_->tick(t);
}

std::unique_ptr<resolver::RecursiveResolver> Internet::make_resolver(
    resolver::ResolverOptions options) const {
  return std::make_unique<resolver::RecursiveResolver>(infra_, clock_,
                                                       root_key_.dnskey, options);
}

}  // namespace httpsrr::ecosystem
