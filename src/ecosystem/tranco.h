#pragma once

// TrancoFeed — the synthetic top-list the scanner downloads each day.
//
// Reproduces the structural properties the paper's analysis depends on
// (§4.1, Appendix C):
//   * a *stable core* of domains present every day (the "overlapping" set:
//     ~63.5% of the list before the source change, ~68.4% after);
//   * a churn tail re-sampled daily;
//   * the Aug 1 2023 source change, which swaps part of the core and
//     shifts the list's composition;
//   * ranks: core domains rank higher on average than churners (Fig. 8).
//
// Determinism: the list for a given (seed, day) is a pure function, so a
// bench can re-derive any day's list without storing snapshots.

#include <cstdint>
#include <vector>

#include "net/time.h"

namespace httpsrr::ecosystem {

using DomainId = std::uint32_t;

// Membership class of a domain in the feed.
enum class Stability : std::uint8_t {
  core_both,    // in the list every day, both phases (overlapping overall)
  core_phase1,  // stable before Aug 1 only
  core_phase2,  // stable after Aug 1 only
  churn,        // appears intermittently
};

class TrancoFeed {
 public:
  struct Options {
    std::size_t universe_size = 30000;
    std::size_t list_size = 20000;
    double core_both_fraction = 0.555;   // of list size
    double core_phase1_only = 0.080;     // + both = 63.5% stable in phase 1
    double core_phase2_only = 0.129;     // + both = 68.4% stable in phase 2
    net::SimTime source_change = net::SimTime::from_date(2023, 8, 1);
    std::uint64_t seed = 1;
  };

  explicit TrancoFeed(Options options);

  [[nodiscard]] std::size_t universe_size() const { return options_.universe_size; }
  [[nodiscard]] std::size_t list_size() const { return options_.list_size; }
  [[nodiscard]] Stability stability(DomainId id) const { return stability_[id]; }

  // The ranked list for a given day (index = rank - 1).
  [[nodiscard]] std::vector<DomainId> list_for(net::SimTime day) const;

  // Same list, written into a reused buffer.  Scores each member once
  // (instead of twice per sort comparison) — the day's pull at the 1M
  // scale is score-bound, and the permutation is unchanged because the
  // comparator's decisions are identical.
  void list_for_into(net::SimTime day, std::vector<DomainId>& out) const;

  // True if `id` is in the list on `day` (consistent with list_for).
  [[nodiscard]] bool contains(DomainId id, net::SimTime day) const;

  // Rank of a domain on a day (1-based); 0 when absent.
  [[nodiscard]] std::size_t rank_of(DomainId id, net::SimTime day) const;

  // Domains present every day of [start, end] (the paper's "overlapping"
  // set for that window).
  [[nodiscard]] std::vector<DomainId> overlapping(net::SimTime start,
                                                  net::SimTime end) const;

 private:
  [[nodiscard]] bool in_phase2(net::SimTime day) const {
    return day >= options_.source_change;
  }
  // Deterministic churn-membership decision for (id, day).
  [[nodiscard]] bool churner_in_list(DomainId id, std::int64_t day_index) const;

  Options options_;
  std::vector<Stability> stability_;   // indexed by DomainId
  std::vector<DomainId> core_both_;
  std::vector<DomainId> core_phase1_;
  std::vector<DomainId> core_phase2_;
  std::vector<DomainId> churners_;
  double churn_keep_probability_ = 0.5;
};

}  // namespace httpsrr::ecosystem
