#pragma once

// WhoisDb — the IP-ownership registry the NS scanner consults (§4.2.2).
//
// The paper attributes name-server IPs to operators via ipwhois plus a
// manual review that corrects two classes of noise:
//   * cloud-hosted name servers whose WHOIS shows the cloud provider, not
//     the DNS operator;
//   * BYOIP, where a customer's own registration masks the operator.
// The db models both: register() records the ground-truth operator,
// set_cloud_front()/set_byoip_owner() inject the noisy WHOIS answer, and
// the manual_override table resolves noise back — exactly the pipeline the
// scanner's attribution code exercises.

#include <map>
#include <optional>
#include <string>

#include "net/ip.h"

namespace httpsrr::ecosystem {

class WhoisDb {
 public:
  // Ground-truth registration for an address.
  void register_ip(const net::IpAddr& ip, std::string organisation);

  // Noise injection: WHOIS answers `visible_org` although the operator is
  // the registered one.
  void set_visible_org(const net::IpAddr& ip, std::string visible_org);

  // Manual-review table: maps a noisy WHOIS org to the real operator.
  void add_manual_override(std::string whois_org, std::string real_operator);

  // Raw WHOIS answer (what ipwhois would print).
  [[nodiscard]] std::optional<std::string> lookup(const net::IpAddr& ip) const;

  // WHOIS + manual review: the attribution used by the analysis.
  [[nodiscard]] std::optional<std::string> attribute(const net::IpAddr& ip) const;

  [[nodiscard]] std::size_t size() const { return truth_.size(); }

 private:
  std::map<net::IpAddr, std::string> truth_;
  std::map<net::IpAddr, std::string> visible_;
  std::map<std::string, std::string> overrides_;
};

}  // namespace httpsrr::ecosystem
