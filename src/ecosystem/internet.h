#pragma once

// Internet — the deterministic simulated Internet the scanner measures.
//
// Substitution (DESIGN.md): the paper scans the real Tranco top-1M over
// eleven months; we scan a scaled synthetic population whose *behavioural*
// composition follows the paper's findings — Cloudflare's proxied default
// machinery, provider capability differences, misconfiguration cohorts,
// the DNSSEC-without-DS epidemic, ECH key rotation, and the global event
// timeline (h3-29 retirement May 31, hint-pipeline fix Jun 19, Tranco
// source change Aug 1, Cloudflare ECH shutdown Oct 5).
//
// Everything is derived from a single seed; advancing time replays a
// precomputed event schedule, so two runs over the same window observe the
// same Internet.
//
// Thread-safety contract (the sharded Study relies on this): advance_to()
// mutates zones, the network, and the ECH key manager and must run alone,
// from a single thread.  Between advances the Internet is frozen, and
// every const accessor — infra(), domain(), tranco(), whois(), clock(),
// the authoritative servers' handle()/handle_udp() paths, and the SVCB
// hook they invoke — is a pure read safe for any number of concurrent
// scanner threads.  The frozen epoch is also what lets the authoritative
// servers memoize rendered responses and RRSIGs (mutex-guarded,
// enabled at construction): advance_to() invalidates every memo across
// the server directory before applying events, so zone edits, provider
// toggles and ECH key rotation always produce fresh answers.  Resolvers
// built by make_resolver() are themselves stateful: one per thread.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ech/key_manager.h"
#include "ecosystem/providers.h"
#include "ecosystem/tranco.h"
#include "ecosystem/whois.h"
#include "net/network.h"
#include "resolver/infra.h"
#include "resolver/recursive.h"

namespace httpsrr::ecosystem {

struct EcosystemConfig {
  std::size_t list_size = 20000;       // daily Tranco list (1:50 scale)
  std::size_t universe_size = 30000;   // all domains ever observed
  std::uint64_t seed = 2023;
  net::SimTime start = net::SimTime::from_date(2023, 5, 8);
  net::SimTime end = net::SimTime::from_date(2024, 3, 31);

  // Global event timeline (paper dates).
  net::SimTime h3_29_retirement = net::SimTime::from_date(2023, 5, 31);
  net::SimTime hint_pipeline_fix = net::SimTime::from_date(2023, 6, 19);
  net::SimTime source_change = net::SimTime::from_date(2023, 8, 1);
  net::SimTime ech_shutdown = net::SimTime::from_date(2023, 10, 5);
  net::SimTime ns_window_start = net::SimTime::from_date(2023, 10, 11);

  // --- adoption composition (calibrated to §4.2/§4.3) ---------------------
  double cf_share_core = 0.285;     // core-universe domains on Cloudflare NS
  double cf_share_churn = 0.30;    // churn pool leans more recent => more CF
  double cf_proxied = 0.92;         // of CF customers: proxied on (=> HTTPS RR)
  double cf_customized_core = 0.28; // customized config share, stable domains
  double cf_customized_churn = 0.05;
  double cf_free_plan = 0.95;       // free zones got ECH before Oct 5
  double www_mirror = 0.97;         // www carries the HTTPS record too
  // Churn-pool staggered adoption: fraction of churn CF domains whose
  // HTTPS activation date falls inside the window (rising dynamic trend).
  double churn_late_activation = 0.55;
  // Stratified oversampling of the (tiny) non-Cloudflare HTTPS sector:
  // multiplies every non-CF provider's customer count so provider-level
  // analyses (Tables 3/5, Fig. 3, the §4.3.4 ALPN split) have statistical
  // resolution at small scales. Benches that use it divide the factor back
  // out when rescaling to 1M; it skews the Table 2 non-CF share by the
  // same factor, so Table 2 runs without it.
  double noncf_oversample = 1.0;

  // --- DNSSEC (Table 9 / Fig. 5) ------------------------------------------
  double signed_with_https = 0.077;
  double ds_ok_with_https_cf = 0.505;
  double ds_ok_with_https_noncf = 0.859;
  double signed_without_https = 0.048;
  double ds_ok_without_https = 0.762;
  // Fraction of *core* signed-domain cohort that turns DNSSEC on inside the
  // window (drives the rising overlapping curve of Fig. 5b).
  double core_signing_adoption = 0.25;

  // --- misconfiguration cohorts (absolute counts at 1M scale; scaled by
  //     list_size/1e6 with a minimum of 1 when nonzero) --------------------
  std::size_t intermittent_cf_toggle_full = 2673;   // proxied on/off (§4.2.3)
  std::size_t intermittent_multi_ns_full = 1593;    // mixed NS while off
  std::size_t ns_change_lose_https_full = 236;      // CF -> non-CF migration
  std::size_t mixed_provider_full = 6;              // one NS lacks HTTPS support
  std::size_t ns_vanish_full = 20;                  // NS records disappear
  std::size_t chronic_mismatch_full = 5;            // always-mismatched hints

  // --- IP-hint dynamics (§4.3.5) ------------------------------------------
  double renumber_rate_prefix = 0.0033;  // per CF-HTTPS domain per day, pre-fix
  // After the Jun 19 pipeline fix, mismatches concentrate on a small pool
  // of renumber-prone domains (the paper's 317 distinct over 67 days, with
  // 30-80 daily) instead of the whole population.
  std::size_t renumber_pool_full = 450;   // pool size at 1M scale
  double pool_renumber_rate = 0.05;       // per pool domain per day, post-fix
  double hint_lag_days_prefix = 6.0;     // mean hint pipeline lag before fix
  double hint_lag_days_postfix = 1.4;
  double renumber_dead_a = 0.08;         // new A address unreachable
  double renumber_dead_hint = 0.04;      // stale hint address unreachable
  // The renumber-prone pool is flakier (the paper's 193-of-317 domains
  // with at least one dead address, split ~2:1 hint-only : A-only).
  double pool_dead_a = 0.30;
  double pool_dead_hint = 0.15;

  // ECH rotation (Fig. 4): ~1h period + <1h jitter => mean lifetime 1.26 h.
  net::Duration ech_rotation_period = net::Duration::hours(1);
  net::Duration ech_rotation_jitter = net::Duration::minutes(31);

  // --- flyweight build knobs (columnar ecosystem, PR 8) -------------------
  // Per-domain zones are no longer stored: they are stamped from provider
  // templates + DomainState deltas at the AuthoritativeServer lookup
  // boundary.  prewarm_zones materializes every domain's zones into the
  // source caches at construction so a timed first scan day pays no build
  // cost (the historical profile); million-domain runs turn it off and cap
  // the caches instead, trading a little rebuild work for bounded RSS.
  bool prewarm_zones = true;
  std::size_t zone_cache_limit = 0;      // materialized zones kept (0 = all)
  std::size_t response_cache_limit = 0;  // rendered responses kept (0 = all)

  [[nodiscard]] double scale() const {
    return static_cast<double>(list_size) / 1e6;
  }
  [[nodiscard]] std::size_t scaled(std::size_t full_scale_count) const {
    if (full_scale_count == 0) return 0;
    auto s = static_cast<std::size_t>(static_cast<double>(full_scale_count) * scale());
    return s == 0 ? 1 : s;
  }
};

// Ground-truth per-domain state (the analysis layer must *not* read this —
// it exists for construction, event application, and test oracles).
struct DomainState {
  DomainId id = 0;
  dns::Name apex;
  dns::Name www;
  std::size_t provider = 0;            // catalog index
  std::size_t provider2 = SIZE_MAX;    // mixed-provider cohort only

  bool on_cloudflare = false;
  bool cf_proxied = false;      // proxied toggle state (=> default HTTPS RR)
  bool cf_customized = false;   // customised HTTPS record instead of default
  bool cf_free_plan = false;    // ECH cohort before the shutdown
  bool publishes_https = false; // current truth (any provider)
  net::SimTime https_since;     // activation date

  bool dnssec_signed = false;
  bool ds_uploaded = false;
  net::SimTime signs_from;      // when signing turns on (may be mid-window)

  net::Ipv4Addr address;        // current A record
  net::Ipv6Addr address6;
  net::Ipv4Addr hint_address;   // current ipv4hint (lags address on renumber)
  bool www_has_https = false;

  // Flyweight zone deltas: zones are stamped from these bits on demand, so
  // what used to be zone edits is now plain state here (+ a version bump).
  bool ns_present = true;       // false while the NS set has vanished
  bool https_written = false;   // HTTPS RRs currently exist in the zone

  enum class Quirk : std::uint8_t {
    none,
    proxied_toggler,
    multi_ns_deactivation,
    ns_change_lose_https,
    mixed_provider,
    ns_vanish,
    chronic_mismatch,
  };
  Quirk quirk = Quirk::none;
};

// The Internet implements resolver::ZoneDirectory so zone-cut discovery
// (zone_servers/zone_apex) works without a million-entry registry: root and
// TLD zones stay eagerly registered, per-domain apexes are answered from
// DomainState.  Per-domain zones themselves are materialized on demand at
// the AuthoritativeServer lookup boundary (resolver::ZoneSource) from
// provider templates + the per-domain delta bits, with version-checked
// caches so a frozen epoch serves each zone build at most once.
class Internet : public resolver::ZoneDirectory {
 public:
  explicit Internet(EcosystemConfig config);
  ~Internet() override;
  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;

  // resolver::ZoneDirectory — who serves `apex`?  Returns thread-local
  // scratch (valid until the next call on the same thread), or nullptr
  // when the name is not a domain apex in the population.
  [[nodiscard]] const std::vector<resolver::AuthoritativeServer*>* servers_for(
      const dns::Name& apex) const override;

  // Advances virtual time, applying every scheduled event in between and
  // ticking the shared ECH key manager.
  void advance_to(net::SimTime t);

  // Day-boundary GC: drops flyweight zone-cache entries whose stamped
  // version is no longer the domain's current one.  zone_for() refuses a
  // stale-version entry (it rebuilds and overwrites), so the sweep is
  // unobservable; without it a longitudinal run accretes one dead zone
  // materialization per churn event until the generational cap clears
  // everything at once.  Returns the number of entries dropped.
  std::size_t sweep_zone_caches();

  [[nodiscard]] net::SimTime now() const { return clock_.now(); }
  [[nodiscard]] const EcosystemConfig& config() const { return config_; }
  [[nodiscard]] const net::SimClock& clock() const { return clock_; }
  [[nodiscard]] const resolver::DnsInfra& infra() const { return infra_; }
  [[nodiscard]] const net::SimNetwork& network() const { return network_; }
  [[nodiscard]] const TrancoFeed& tranco() const { return *feed_; }
  [[nodiscard]] const WhoisDb& whois() const { return whois_; }
  [[nodiscard]] const ProviderCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const dns::DnskeyRdata& root_anchor() const {
    return root_key_.dnskey;
  }
  [[nodiscard]] const ech::EchKeyManager& cloudflare_ech() const { return *cf_ech_; }

  // Ground truth access (tests and oracles only).
  [[nodiscard]] const DomainState& domain(DomainId id) const { return domains_[id]; }
  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] const DomainState* domain_by_name(const dns::Name& apex) const;

  // Builds a fresh public recursive resolver over this Internet.
  [[nodiscard]] std::unique_ptr<resolver::RecursiveResolver> make_resolver(
      resolver::ResolverOptions options = resolver::ResolverOptions()) const;

 private:
  enum class EventType : std::uint8_t {
    https_activate,    // churn-pool adoption date arrives
    proxied_off,
    proxied_on,
    ns_migrate,        // move to a non-CF provider (loses HTTPS)
    ns_vanish,
    ns_restore,
    renumber,          // new A address now; hint catches up later
    hint_sync,         // hint pipeline writes the new address
    sign_on,           // DNSSEC signing activates
    ech_shutdown,      // global: strip ECH everywhere (Oct 5)
    alpn_google_quic,  // one domain starts advertising Q043/Q046/Q050
  };
  struct Event {
    net::SimTime at;
    EventType type;
    DomainId domain = 0;
    std::uint64_t payload = 0;
  };

  class DomainZoneSource;  // per-provider ZoneSource (defined in internet.cpp)
  class TldZoneSource;     // per-TLD delegation ZoneSource

  void build_population();
  void build_infrastructure();
  void schedule_events();
  void apply(const Event& event);
  void prewarm_all_zones();

  // Flyweight materialization: stamp a domain's zone (or its slice of the
  // TLD delegation) from provider templates + DomainState, reproducing the
  // exact net effect the eager per-zone build used to store.
  [[nodiscard]] resolver::HostedZone materialize_domain_zone(
      const DomainState& d, std::size_t provider_index) const;
  [[nodiscard]] resolver::HostedZone materialize_tld_delegation(
      const DomainState& d) const;
  [[nodiscard]] dns::SvcbRdata make_https_record(const DomainState& d) const;
  [[nodiscard]] bool www_is_cname(const DomainState& d) const;

  // The dynamic-parameter hook for Cloudflare-default records.
  void svcb_hook(const dns::Name& owner, dns::SvcbRdata& svcb,
                 net::SimTime now) const;

  [[nodiscard]] resolver::AuthoritativeServer* provider_server(std::size_t index) const;
  [[nodiscard]] dns::Name tld_of(const DomainState& d) const;

  EcosystemConfig config_;
  net::SimClock clock_;
  net::SimNetwork network_;
  resolver::DnsInfra infra_;
  ProviderCatalog catalog_;
  std::unique_ptr<TrancoFeed> feed_;
  WhoisDb whois_;

  dnssec::KeyPair root_key_;
  std::vector<dnssec::KeyPair> tld_keys_;
  std::vector<dns::Name> tlds_;
  resolver::AuthoritativeServer* root_server_ = nullptr;
  resolver::AuthoritativeServer* tld_server_ = nullptr;
  std::vector<resolver::AuthoritativeServer*> provider_servers_;

  std::vector<DomainState> domains_;
  std::unordered_map<dns::Name, DomainId, dns::NameHash> by_name_;
  // Bumped on every per-domain event; the zone-source caches compare it so
  // a stale materialized zone is rebuilt exactly when state changed.
  std::vector<std::uint32_t> domain_version_;
  std::vector<std::unique_ptr<DomainZoneSource>> domain_sources_;
  std::unique_ptr<TldZoneSource> tld_source_;
  std::vector<Event> events_;
  std::size_t next_event_ = 0;

  std::shared_ptr<ech::EchKeyManager> cf_ech_;
  bool ech_active_ = true;        // false after the Oct 5 shutdown
  bool h3_29_active_ = true;      // false after May 31
  std::vector<DomainId> google_quic_domains_;
};

}  // namespace httpsrr::ecosystem
