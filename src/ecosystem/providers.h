#pragma once

// DNS provider models for the synthetic Internet.
//
// The paper's server-side story is dominated by provider behaviour:
// Cloudflare's proxied default accounts for >70% of all HTTPS records
// (§4.3.1), Google/GoDaddy exhibit characteristic parameter shapes
// (Table 5), and a long tail of 244 smaller operators hosts the rest
// (Table 3, Fig. 3).  A ProviderSpec captures the knobs that drive all of
// those observations; ProviderCatalog instantiates the paper's population
// (scaled) with deterministic per-provider RNG streams.

#include <cstdint>
#include <string>
#include <vector>

#include "net/time.h"

namespace httpsrr::ecosystem {

// How a provider shapes the HTTPS records of its customers.
enum class HttpsRecordStyle : std::uint8_t {
  none,              // provider cannot serve type 65 at all
  cloudflare_default,  // "1 . alpn=h2,h3 ipv4hint=… ipv6hint=…" (+ech)
  service_no_params,   // "1 ." and nothing else (Google's dominant shape)
  alias_to_endpoint,   // "0 <endpoint>." (GoDaddy's dominant shape)
  service_full,        // generic ServiceMode with alpn and hints
};

struct ProviderSpec {
  std::string name;             // "cloudflare", "ename", "provider-17", …
  std::string ns_domain;        // NS host names live under this ("cloudflare.com")
  int ns_count = 2;             // NS records per customer zone
  bool supports_https_rr = true;
  HttpsRecordStyle style = HttpsRecordStyle::none;
  // Date this provider's HTTPS support went live (drives the Fig. 3 upward
  // trend of active non-Cloudflare providers).
  net::SimTime https_support_since = net::SimTime::from_date(2020, 1, 1);
  // Fraction of this provider's HTTPS-publishing customers that are stable
  // ("overlapping") Tranco residents — splits Table 3's two columns.
  double overlap_fraction = 0.5;
  // Target number of HTTPS-publishing customer domains at full (1M) scale.
  std::size_t https_domains_full_scale = 0;
  bool supports_ech = false;    // only Cloudflare (pre-Oct-5) in the study
  bool online_dnssec = false;   // signs answers on the fly when zone enrolled
};

// The provider population of the study.
struct ProviderCatalog {
  // [0] is always Cloudflare; then the named providers of Table 3; then the
  // numbered tail. `tail_count` controls how many tail operators exist
  // (244 distinct non-Cloudflare providers appear over the full period).
  std::vector<ProviderSpec> providers;

  static ProviderCatalog make(std::uint64_t seed, std::size_t tail_count = 238);

  [[nodiscard]] const ProviderSpec& cloudflare() const { return providers[0]; }
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
};

}  // namespace httpsrr::ecosystem
