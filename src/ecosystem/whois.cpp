#include "ecosystem/whois.h"

namespace httpsrr::ecosystem {

void WhoisDb::register_ip(const net::IpAddr& ip, std::string organisation) {
  truth_[ip] = std::move(organisation);
}

void WhoisDb::set_visible_org(const net::IpAddr& ip, std::string visible_org) {
  visible_[ip] = std::move(visible_org);
}

void WhoisDb::add_manual_override(std::string whois_org, std::string real_operator) {
  overrides_[std::move(whois_org)] = std::move(real_operator);
}

std::optional<std::string> WhoisDb::lookup(const net::IpAddr& ip) const {
  if (auto it = visible_.find(ip); it != visible_.end()) return it->second;
  if (auto it = truth_.find(ip); it != truth_.end()) return it->second;
  return std::nullopt;
}

std::optional<std::string> WhoisDb::attribute(const net::IpAddr& ip) const {
  auto raw = lookup(ip);
  if (!raw) return std::nullopt;
  if (auto it = overrides_.find(*raw); it != overrides_.end()) return it->second;
  return raw;
}

}  // namespace httpsrr::ecosystem
