#include "ecosystem/tranco.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace httpsrr::ecosystem {

TrancoFeed::TrancoFeed(Options options) : options_(options) {
  const std::size_t universe = options_.universe_size;
  const std::size_t list = options_.list_size;
  assert(universe > list && "universe must exceed the list size");

  auto count_both = static_cast<std::size_t>(options_.core_both_fraction * list);
  auto count_p1 = static_cast<std::size_t>(options_.core_phase1_only * list);
  auto count_p2 = static_cast<std::size_t>(options_.core_phase2_only * list);
  assert(count_both + count_p1 + count_p2 < universe);

  stability_.resize(universe, Stability::churn);
  // Deterministic partition: shuffle ids with the seed, take prefixes.
  std::vector<DomainId> ids(universe);
  for (std::size_t i = 0; i < universe; ++i) ids[i] = static_cast<DomainId>(i);
  util::Pcg32 rng(options_.seed ^ 0x7a4c0ULL);
  for (std::size_t i = universe - 1; i > 0; --i) {
    std::size_t j = rng.uniform(static_cast<std::uint32_t>(i + 1));
    std::swap(ids[i], ids[j]);
  }

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count_both; ++i) {
    stability_[ids[cursor]] = Stability::core_both;
    core_both_.push_back(ids[cursor++]);
  }
  for (std::size_t i = 0; i < count_p1; ++i) {
    stability_[ids[cursor]] = Stability::core_phase1;
    core_phase1_.push_back(ids[cursor++]);
  }
  for (std::size_t i = 0; i < count_p2; ++i) {
    stability_[ids[cursor]] = Stability::core_phase2;
    core_phase2_.push_back(ids[cursor++]);
  }
  while (cursor < universe) {
    churners_.push_back(ids[cursor++]);
  }

  // Churn probability that roughly fills the list each day.
  std::size_t core_phase1_total = count_both + count_p1;
  std::size_t core_phase2_total = count_both + count_p2;
  std::size_t churn_pool = churners_.size() + count_p2;  // p2 cores churn in p1
  std::size_t needed =
      list - std::min(list, std::min(core_phase1_total, core_phase2_total));
  churn_keep_probability_ =
      churn_pool == 0 ? 0.0
                      : std::min(1.0, static_cast<double>(needed) /
                                          static_cast<double>(churn_pool));
}

bool TrancoFeed::churner_in_list(DomainId id, std::int64_t day_index) const {
  std::uint64_t h = util::mix64(options_.seed ^ (static_cast<std::uint64_t>(id) << 20) ^
                                static_cast<std::uint64_t>(day_index));
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < churn_keep_probability_;
}

bool TrancoFeed::contains(DomainId id, net::SimTime day) const {
  std::int64_t day_index = day.unix_seconds / 86400;
  bool phase2 = in_phase2(day);
  switch (stability_[id]) {
    case Stability::core_both:
      return true;
    case Stability::core_phase1:
      return !phase2 || churner_in_list(id, day_index);
    case Stability::core_phase2:
      return phase2 || churner_in_list(id, day_index);
    case Stability::churn:
      return churner_in_list(id, day_index);
  }
  return false;
}

std::vector<DomainId> TrancoFeed::list_for(net::SimTime day) const {
  std::vector<DomainId> members;
  list_for_into(day, members);
  return members;
}

void TrancoFeed::list_for_into(net::SimTime day,
                               std::vector<DomainId>& out) const {
  std::int64_t day_index = day.unix_seconds / 86400;

  // Rank ordering: a stable per-domain quality score plus daily jitter;
  // core domains score better (Fig. 8's separation).  Scores are computed
  // once per member and sorted as (score, id) pairs: the comparator sees
  // the same booleans the score-per-comparison sort saw, so the resulting
  // permutation — ties included — is identical, at a third of the mix64
  // work for a million members.
  struct Scored {
    std::uint64_t score;
    DomainId id;
  };
  std::vector<Scored> members;
  members.reserve(options_.list_size + options_.list_size / 8);

  for (DomainId id = 0; id < stability_.size(); ++id) {
    if (!contains(id, day)) continue;
    std::uint64_t base = util::mix64(options_.seed ^ 0xbadc0de ^ id) >> 3;
    std::uint64_t jitter =
        util::mix64(options_.seed ^ id ^ (static_cast<std::uint64_t>(day_index) << 32)) >> 8;
    std::uint64_t bonus = 0;
    switch (stability_[id]) {
      case Stability::core_both: bonus = 0; break;
      case Stability::core_phase1:
      case Stability::core_phase2: bonus = 1ULL << 60; break;
      case Stability::churn: bonus = 3ULL << 60; break;
    }
    members.push_back({bonus + base / 2 + jitter / 4, id});
  }

  std::sort(members.begin(), members.end(),
            [](const Scored& a, const Scored& b) { return a.score < b.score; });
  out.clear();
  out.reserve(members.size());
  for (const Scored& m : members) out.push_back(m.id);
}

std::size_t TrancoFeed::rank_of(DomainId id, net::SimTime day) const {
  if (!contains(id, day)) return 0;
  auto list = list_for(day);
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i] == id) return i + 1;
  }
  return 0;
}

std::vector<DomainId> TrancoFeed::overlapping(net::SimTime start,
                                              net::SimTime end) const {
  // Core domains cover the phases in the window by construction; churners
  // (probability ~0.5/day) cannot realistically survive a multi-day window,
  // but short windows are handled exactly.
  bool spans_phase1 = start < options_.source_change;
  bool spans_phase2 = end >= options_.source_change;
  std::int64_t days = (end - start).seconds / 86400 + 1;

  std::vector<DomainId> out = core_both_;
  auto add_if_all_days = [&](const std::vector<DomainId>& ids) {
    for (DomainId id : ids) {
      bool all = true;
      for (std::int64_t d = 0; d < days && all; ++d) {
        all = contains(id, start + net::Duration::days(d));
      }
      if (all) out.push_back(id);
    }
  };
  if (spans_phase1 && !spans_phase2) add_if_all_days(core_phase1_);
  if (spans_phase2 && !spans_phase1) add_if_all_days(core_phase2_);
  if (days <= 3) add_if_all_days(churners_);  // exactness for short windows
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace httpsrr::ecosystem
