#pragma once

// Lab — the controlled client-side testbed of §5 (Figure 6): an
// authoritative name server we configure per experiment, web servers we
// place at chosen IPs/ports, a public recursive resolver in between, and
// browser profiles visiting URLs.  Experiments are written exactly like
// the paper's zone snippets:
//
//   Lab lab;
//   lab.set_zone("a.com", R"(
//     a.com. 60 IN HTTPS 1 . alpn=h2 port=8443
//     a.com. 60 IN A 10.0.0.10
//   )");
//   auto& server = lab.add_web_server("10.0.0.10", {443, 8443});
//   server.add_site("a.com", {...});
//   auto result = lab.visit(BrowserProfile::chrome(), "https://a.com");

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "resolver/infra.h"
#include "resolver/recursive.h"
#include "tls/handshake.h"
#include "web/browser.h"
#include "web/navigator.h"

namespace httpsrr::web {

class Lab {
 public:
  Lab();

  // Installs (or replaces) the zone for `origin` on the lab's authoritative
  // server and wires the delegation. Terminates on malformed master text —
  // lab zones are experiment literals.
  void set_zone(const std::string& origin, std::string_view master_text);

  // Creates a TLS web server reachable at `ip` on each of `ports`.
  tls::TlsServer& add_web_server(const std::string& ip,
                                 const std::vector<std::uint16_t>& ports,
                                 std::string description = "web");

  // Binds an already-created server at an extra endpoint.
  void bind(tls::TlsServer& server, const std::string& ip, std::uint16_t port);

  // Opens a plain-HTTP listener (port 80 semantics: reachable, no TLS).
  void add_http_listener(const std::string& ip, std::uint16_t port = 80);

  // Runs one browser navigation. Each visit uses a fresh cache state if
  // `fresh_session` (the paper clears DNS cache + history between rounds).
  [[nodiscard]] NavigationResult visit(const BrowserProfile& profile,
                                       const std::string& url,
                                       bool fresh_session = true);

  // Direct access for advanced experiments.
  [[nodiscard]] net::SimNetwork& network() { return network_; }
  [[nodiscard]] net::SimClock& clock() { return clock_; }
  [[nodiscard]] resolver::RecursiveResolver& resolver() { return *resolver_; }
  [[nodiscard]] resolver::AuthoritativeServer& lab_ns() { return *lab_ns_; }
  [[nodiscard]] tls::TlsDirectory& tls_directory() { return tls_; }

 private:
  net::SimClock clock_;
  net::SimNetwork network_;
  resolver::DnsInfra infra_;
  dnssec::KeyPair root_key_;
  resolver::AuthoritativeServer* root_ns_ = nullptr;
  resolver::AuthoritativeServer* tld_ns_ = nullptr;
  resolver::AuthoritativeServer* lab_ns_ = nullptr;
  std::unique_ptr<resolver::RecursiveResolver> resolver_;
  tls::TlsDirectory tls_;
  std::vector<std::unique_ptr<tls::TlsServer>> web_servers_;
};

}  // namespace httpsrr::web
