#include "web/browser.h"

namespace httpsrr::web {

BrowserProfile BrowserProfile::chrome() {
  BrowserProfile p;
  p.kind = BrowserKind::chrome;
  p.name = "Chrome";
  p.query_https_rr = true;
  p.upgrade_scheme_on_https_rr = true;
  p.follow_alias_mode = false;
  p.follow_service_target = false;
  p.use_port_param = false;
  p.port_failover_to_443 = false;
  p.use_alpn_param = true;
  p.use_ip_hints = false;
  p.ip_hint_failover = false;
  p.support_ech = true;
  p.grease_ech = true;
  p.hard_fail_on_malformed_ech = true;
  p.support_ech_retry = true;
  p.support_ech_split_mode = false;
  return p;
}

BrowserProfile BrowserProfile::edge() {
  // Edge is Chromium-based; the paper measured identical behaviour but
  // tested it separately (§5 footnote 12) — so do we.
  BrowserProfile p = chrome();
  p.kind = BrowserKind::edge;
  p.name = "Edge";
  return p;
}

BrowserProfile BrowserProfile::safari() {
  BrowserProfile p;
  p.kind = BrowserKind::safari;
  p.name = "Safari";
  p.query_https_rr = true;
  p.upgrade_scheme_on_https_rr = false;  // fetches but does not upgrade
  p.follow_alias_mode = true;
  p.follow_service_target = true;
  p.use_port_param = true;
  p.port_failover_to_443 = true;
  p.use_alpn_param = true;
  p.use_ip_hints = true;
  p.ip_hint_failover = true;  // immediate retry with the other record type
  p.try_all_service_records = true;
  p.support_ech = false;      // no ECH support at all
  return p;
}

BrowserProfile BrowserProfile::firefox() {
  BrowserProfile p;
  p.kind = BrowserKind::firefox;
  p.name = "Firefox";
  p.query_https_rr = true;
  p.https_rr_requires_doh = true;  // type-65 lookups only over DoH
  p.doh_enabled = true;            // on by default
  p.upgrade_scheme_on_https_rr = true;
  p.follow_alias_mode = false;
  p.follow_service_target = true;
  p.use_port_param = true;
  p.port_failover_to_443 = true;
  p.use_alpn_param = true;
  p.use_ip_hints = true;
  p.ip_hint_failover = true;  // after a longer wait (same outcome)
  p.try_all_service_records = true;
  p.firefox_h2_compat_probe = true;
  p.support_ech = true;
  p.grease_ech = true;
  p.hard_fail_on_malformed_ech = false;  // ignores the malformed blob
  p.support_ech_retry = true;
  p.support_ech_split_mode = false;
  return p;
}

BrowserProfile BrowserProfile::spec_compliant() {
  BrowserProfile p;
  p.kind = BrowserKind::custom;
  p.name = "SpecCompliant";
  p.query_https_rr = true;
  p.upgrade_scheme_on_https_rr = true;
  p.follow_alias_mode = true;
  p.follow_service_target = true;
  p.use_port_param = true;
  p.port_failover_to_443 = true;
  p.use_alpn_param = true;
  p.use_ip_hints = true;
  p.ip_hint_failover = true;
  p.try_all_service_records = true;
  p.support_ech = true;
  p.grease_ech = true;
  p.hard_fail_on_malformed_ech = false;
  p.support_ech_retry = true;
  p.support_ech_split_mode = true;
  return p;
}

}  // namespace httpsrr::web
