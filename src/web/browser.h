#pragma once

// BrowserProfile — policy objects encoding how each of the four major
// browsers consumes HTTPS records and ECH, as measured in the paper's §5
// testbed (Tables 6 and 7).  The Navigator executes a profile; the profiles
// themselves are data, so tests can also synthesise hypothetical browsers
// (e.g. a fully spec-compliant client) for the ablation benches.
//
// Summary of the measured behaviours encoded here:
//
//                       Chrome   Edge   Safari  Firefox
//   query HTTPS RR        yes     yes     yes     yes (DoH only)
//   upgrade to https      yes     yes      no     yes
//   AliasMode target       no      no     yes      no
//   ServiceMode target     no      no     yes     yes
//   port parameter         no      no     yes     yes
//   port failover->443      -       -     yes     yes
//   alpn parameter        yes     yes     yes     yes
//   IP hints               no      no     yes     yes
//   hint<->A failover       -       -   immediate delayed
//   ECH (shared mode)     yes     yes      no     yes
//   malformed ECH        hard    hard       -   ignore
//   ECH retry configs     yes     yes       -     yes
//   ECH split mode         no      no       -      no

#include <string>

namespace httpsrr::web {

enum class BrowserKind { chrome, edge, safari, firefox, custom };

struct BrowserProfile {
  BrowserKind kind = BrowserKind::custom;
  std::string name = "custom";

  // --- DNS behaviour -----------------------------------------------------
  // Issues type-65 queries at all. Firefox only does so over DoH.
  bool query_https_rr = true;
  bool https_rr_requires_doh = false;
  bool doh_enabled = true;

  // --- use of the record as an HTTPS signal ------------------------------
  // Upgrade bare / http:// navigations to https when an HTTPS RR exists.
  bool upgrade_scheme_on_https_rr = true;

  // --- parameter handling -------------------------------------------------
  bool follow_alias_mode = false;      // chase AliasMode TargetName
  bool follow_service_target = false;  // connect to ServiceMode TargetName
  bool use_port_param = false;
  bool port_failover_to_443 = false;   // retry on the default port on failure
  bool use_alpn_param = true;
  bool use_ip_hints = false;           // prefer hints over A records
  bool ip_hint_failover = false;       // cross over between hint and A lists
  // Try lower-priority ServiceMode records after a connection failure
  // (RFC 9460 §3 asks clients to; Chromium only ever uses the best record).
  bool try_all_service_records = false;
  bool firefox_h2_compat_probe = false;  // extra h2 attempt after h3-only

  // --- ECH ----------------------------------------------------------------
  bool support_ech = false;
  // Send GREASE ECH on connections without a real configuration
  // (Chromium and Firefox do; keeps middleboxes from ossifying).
  bool grease_ech = false;
  bool hard_fail_on_malformed_ech = false;  // vs. silently ignore the blob
  bool support_ech_retry = false;
  bool support_ech_split_mode = false;  // resolve public_name out of band

  static BrowserProfile chrome();
  static BrowserProfile edge();
  static BrowserProfile safari();
  static BrowserProfile firefox();
  // A hypothetical client implementing the full RFC 9460 + ECH draft
  // (used by the failover ablation to quantify what correctness buys).
  static BrowserProfile spec_compliant();
};

}  // namespace httpsrr::web
