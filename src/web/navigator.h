#pragma once

// Navigator — executes a browser profile against the simulated network:
// URL parsing, HTTPS/A lookups, HTTPS-RR interpretation, endpoint candidate
// selection, TLS/ECH handshakes with per-profile failover.  This is the
// client half of the paper's §5 testbed; web::Lab wires it to a zone.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "ech/config.h"
#include "net/network.h"
#include "resolver/recursive.h"
#include "tls/handshake.h"
#include "web/browser.h"

namespace httpsrr::web {

enum class Scheme : std::uint8_t { none, http, https };

struct ParsedUrl {
  Scheme scheme = Scheme::none;
  std::string host;
  std::optional<std::uint16_t> port;

  static util::Result<ParsedUrl> parse(std::string_view url);
};

enum class NavError : std::uint8_t {
  none,
  bad_url,
  dns_failure,          // resolution failed outright (SERVFAIL/NXDOMAIN)
  no_address,           // no usable IP for the chosen endpoint
  connect_failed,       // every candidate endpoint refused/unreachable
  tls_alpn_failure,
  tls_cert_invalid,
  ech_parse_failure,            // hard fail on malformed ech blob
  ech_fallback_cert_invalid,    // split-mode outcome (§5.3.2)
};

[[nodiscard]] std::string_view to_string(NavError e);

struct DnsQueryLog {
  dns::Name qname;
  dns::RrType qtype;
};

struct ConnectAttemptLog {
  net::Endpoint endpoint;
  bool ech = false;
  bool ok = false;
  std::string detail;
};

struct NavigationResult {
  bool success = false;
  NavError error = NavError::none;
  Scheme used_scheme = Scheme::none;
  net::Endpoint endpoint;                   // where the winning attempt went
  std::optional<std::string> negotiated_alpn;
  bool used_https_rr = false;               // record influenced the plan
  bool queried_https_rr = false;            // type-65 query was issued
  bool ech_attempted = false;
  bool ech_accepted = false;
  bool used_retry_config = false;
  bool h2_compat_probe = false;             // Firefox extra h2 attempt
  std::vector<DnsQueryLog> dns_queries;
  std::vector<ConnectAttemptLog> attempts;

  [[nodiscard]] std::string summary() const;
};

class Navigator {
 public:
  Navigator(resolver::RecursiveResolver& resolver, const net::SimNetwork& network,
            const tls::TlsDirectory& tls, BrowserProfile profile)
      : resolver_(resolver), network_(network), tls_(tls),
        profile_(std::move(profile)) {}

  [[nodiscard]] const BrowserProfile& profile() const { return profile_; }

  // Navigates to `url` ("a.com", "http://a.com", "https://a.com:8443").
  [[nodiscard]] NavigationResult navigate(const std::string& url);

 private:
  struct Candidate {
    net::IpAddr address;
    bool from_hint = false;
  };

  [[nodiscard]] std::vector<net::IpAddr> resolve_addresses(
      const dns::Name& host, NavigationResult& result);
  // Returns every usable record, lowest SvcPriority first. Records whose
  // `mandatory` lists a key this client does not implement are discarded
  // (RFC 9460 §8: such records MUST NOT be used).
  [[nodiscard]] std::vector<dns::SvcbRdata> fetch_https_records(
      const dns::Name& host, NavigationResult& result);

  // Runs TLS (optionally with ECH) against candidates, applying the
  // profile's failover rules. Returns true when the navigation concluded
  // (success or hard failure recorded in `result`).
  void run_https_plan(const dns::Name& origin_host,
                      const std::vector<Candidate>& candidates,
                      std::uint16_t port,
                      const std::vector<std::string>& alpn,
                      const std::optional<ech::EchConfig>& ech_config,
                      NavigationResult& result);

  resolver::RecursiveResolver& resolver_;
  const net::SimNetwork& network_;
  const tls::TlsDirectory& tls_;
  BrowserProfile profile_;
};

}  // namespace httpsrr::web
