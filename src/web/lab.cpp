#include "web/lab.h"

#include <cassert>
#include <cstdlib>

namespace httpsrr::web {

using dns::Name;
using dns::name_of;
using dns::RrType;

namespace {

net::IpAddr lab_ip(const std::string& text) {
  auto ip = net::IpAddr::parse(text);
  if (!ip.ok()) {
    assert(false && "Lab: bad IP literal");
    std::abort();
  }
  return *ip;
}

void must(const util::Result<void>& r) {
  if (!r.ok()) {
    assert(false && "Lab: zone setup failed");
    std::abort();
  }
}

constexpr const char* kRootIp = "10.53.0.1";
constexpr const char* kTldIp = "10.53.0.2";
constexpr const char* kLabNsIp = "10.53.0.53";

}  // namespace

Lab::Lab()
    : clock_(net::SimTime::from_string("2024-01-15")),
      root_key_(dnssec::KeyPair::generate(0xbeef, 257)) {
  root_ns_ = &infra_.add_server("lab-root", lab_ip(kRootIp));
  tld_ns_ = &infra_.add_server("lab-gtld", lab_ip(kTldIp));
  lab_ns_ = &infra_.add_server("lab-auth", lab_ip(kLabNsIp));

  root_ns_->add_zone(dns::Zone(Name{}));
  infra_.register_zone(Name{}, {root_ns_});
  infra_.set_root_servers({lab_ip(kRootIp)});

  resolver::ResolverOptions options;
  options.validate_dnssec = false;  // the §5 experiments run without DNSSEC
  resolver_ = std::make_unique<resolver::RecursiveResolver>(
      infra_, clock_, root_key_.dnskey, options);
}

void Lab::set_zone(const std::string& origin, std::string_view master_text) {
  Name apex = name_of(origin);
  if (apex.is_root() || apex.label_count() < 2) {
    assert(false && "Lab zones must sit below a TLD");
    std::abort();
  }
  Name tld = apex.suffix(1);

  // Ensure the TLD zone and root delegation exist.
  if (tld_ns_->find_zone(tld) == nullptr) {
    tld_ns_->add_zone(dns::Zone(tld));
    infra_.register_zone(tld, {tld_ns_});
    auto* root_zone = root_ns_->find_zone(Name{});
    must(root_zone->add(dns::make_ns(tld, 86400, name_of("ns.gtld.lab"))));
    if (root_zone->records_at(name_of("ns.gtld.lab"), RrType::A).empty()) {
      must(root_zone->add(dns::make_a(name_of("ns.gtld.lab"), 86400,
                                      lab_ip(kTldIp).v4())));
    }
  }

  // Ensure the delegation from the TLD to the lab server exists.
  auto* tld_zone = tld_ns_->find_zone(tld);
  Name ns_host = *name_of("ns1.lab-dns").prepend("x");  // placeholder, replaced
  {
    // ns1.lab-dns.<tld>
    std::vector<std::string> labels = {"ns1", "lab-dns"};
    for (const auto& l : tld.labels()) labels.push_back(l);
    ns_host = *Name::from_labels(std::move(labels));
  }
  if (tld_zone->records_at(apex, RrType::NS).empty()) {
    must(tld_zone->add(dns::make_ns(apex, 86400, ns_host)));
    if (tld_zone->records_at(ns_host, RrType::A).empty()) {
      must(tld_zone->add(dns::make_a(ns_host, 86400, lab_ip(kLabNsIp).v4())));
    }
  }

  // Install (or replace) the experiment zone.
  auto zone = dns::Zone::parse(apex, master_text, /*default_ttl=*/60);
  if (!zone.ok()) {
    // Experiment zones are source literals; fail loudly.
    std::fprintf(stderr, "Lab zone parse error: %s\n", zone.error().c_str());
    std::abort();
  }
  lab_ns_->remove_zone(apex);
  lab_ns_->add_zone(std::move(*zone));
  infra_.register_zone(apex, {lab_ns_});
}

tls::TlsServer& Lab::add_web_server(const std::string& ip,
                                    const std::vector<std::uint16_t>& ports,
                                    std::string description) {
  auto server = std::make_unique<tls::TlsServer>(std::move(description));
  tls::TlsServer* raw = server.get();
  web_servers_.push_back(std::move(server));
  for (std::uint16_t port : ports) {
    tls_.bind(network_, net::Endpoint{lab_ip(ip), port}, raw);
  }
  return *raw;
}

void Lab::bind(tls::TlsServer& server, const std::string& ip, std::uint16_t port) {
  tls_.bind(network_, net::Endpoint{lab_ip(ip), port}, &server);
}

void Lab::add_http_listener(const std::string& ip, std::uint16_t port) {
  (void)network_.listen(net::Endpoint{lab_ip(ip), port});
}

NavigationResult Lab::visit(const BrowserProfile& profile, const std::string& url,
                            bool fresh_session) {
  if (fresh_session) resolver_->flush_cache();
  Navigator navigator(*resolver_, network_, tls_, profile);
  return navigator.navigate(url);
}

}  // namespace httpsrr::web
