#include "web/navigator.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::web {

using dns::Name;
using dns::RrType;
using util::Error;
using util::Result;

Result<ParsedUrl> ParsedUrl::parse(std::string_view url) {
  ParsedUrl out;
  std::string_view rest = url;
  if (util::starts_with(rest, "https://")) {
    out.scheme = Scheme::https;
    rest.remove_prefix(8);
  } else if (util::starts_with(rest, "http://")) {
    out.scheme = Scheme::http;
    rest.remove_prefix(7);
  } else if (rest.find("://") != std::string_view::npos) {
    return Error{"unsupported URL scheme"};
  }
  if (auto slash = rest.find('/'); slash != std::string_view::npos) {
    rest = rest.substr(0, slash);
  }
  if (auto colon = rest.find(':'); colon != std::string_view::npos) {
    std::uint64_t port = 0;
    if (!util::parse_u64(rest.substr(colon + 1), port, 65535) || port == 0) {
      return Error{"bad port in URL"};
    }
    out.port = static_cast<std::uint16_t>(port);
    rest = rest.substr(0, colon);
  }
  if (rest.empty()) return Error{"empty host in URL"};
  out.host = std::string(rest);
  return out;
}

std::string_view to_string(NavError e) {
  switch (e) {
    case NavError::none: return "OK";
    case NavError::bad_url: return "BAD_URL";
    case NavError::dns_failure: return "ERR_NAME_NOT_RESOLVED";
    case NavError::no_address: return "ERR_ADDRESS_UNREACHABLE";
    case NavError::connect_failed: return "ERR_CONNECTION_FAILED";
    case NavError::tls_alpn_failure: return "ERR_ALPN_NEGOTIATION_FAILED";
    case NavError::tls_cert_invalid: return "ERR_CERT_AUTHORITY_INVALID";
    case NavError::ech_parse_failure: return "ERR_ECH_CONFIG_INVALID";
    case NavError::ech_fallback_cert_invalid:
      return "ERR_ECH_FALLBACK_CERTIFICATE_INVALID";
  }
  return "?";
}

std::string NavigationResult::summary() const {
  std::string out = success ? "OK" : std::string(to_string(error));
  if (success) {
    out += used_scheme == Scheme::https ? " https" : " http";
    out += " via " + endpoint.to_string();
    if (negotiated_alpn) out += " alpn=" + *negotiated_alpn;
    if (ech_accepted) out += " ech";
    if (used_retry_config) out += " (retry-config)";
  }
  return out;
}

std::vector<net::IpAddr> Navigator::resolve_addresses(const Name& host,
                                                      NavigationResult& result) {
  result.dns_queries.push_back(DnsQueryLog{host, RrType::A});
  auto resp = resolver_.resolve(host, RrType::A);
  std::vector<net::IpAddr> out;
  for (const auto& rr : resp.answers) {
    if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
      out.push_back(net::IpAddr(a->address));
    }
  }
  return out;
}

std::vector<dns::SvcbRdata> Navigator::fetch_https_records(
    const Name& host, NavigationResult& result) {
  result.dns_queries.push_back(DnsQueryLog{host, RrType::HTTPS});
  result.queried_https_rr = true;
  auto resp = resolver_.resolve(host, RrType::HTTPS);
  if (resp.header.rcode != dns::Rcode::NOERROR) return {};

  std::vector<dns::SvcbRdata> records;
  for (const auto& rr : resp.answers) {
    if (rr.type != RrType::HTTPS) continue;
    const auto& svcb = std::get<dns::SvcbRdata>(rr.rdata);
    // RFC 9460 §8: a record whose mandatory list names a key the client
    // does not implement MUST NOT be used. This client implements the
    // seven IANA-defined keys (0..6).
    bool usable = true;
    if (auto mandatory = svcb.params.mandatory()) {
      for (std::uint16_t key : *mandatory) {
        if (key > static_cast<std::uint16_t>(dns::SvcParamKey::ipv6hint)) {
          usable = false;
        }
      }
    }
    if (usable) records.push_back(svcb);
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const dns::SvcbRdata& a, const dns::SvcbRdata& b) {
                     return a.priority < b.priority;
                   });
  return records;
}

void Navigator::run_https_plan(const Name& origin_host,
                               const std::vector<Candidate>& candidates,
                               std::uint16_t port,
                               const std::vector<std::string>& alpn,
                               const std::optional<ech::EchConfig>& ech_config,
                               NavigationResult& result) {
  std::string origin = origin_host.to_string();
  origin.pop_back();  // strip trailing dot for SNI form

  for (const auto& candidate : candidates) {
    net::Endpoint ep{candidate.address, port};
    tls::ClientHello hello;
    if (ech_config.has_value()) {
      hello = tls::ClientHello::with_ech(*ech_config, origin, alpn);
    } else if (profile_.grease_ech) {
      // No real configuration: Chromium-style GREASE keeps the extension
      // on the wire (real SNI outer; servers must tolerate and ignore it).
      std::uint64_t entropy = (static_cast<std::uint64_t>(port) << 32) ^
                              std::hash<std::string>{}(origin);
      hello = tls::ClientHello::with_grease_ech(origin, alpn, entropy);
    } else {
      hello = tls::ClientHello::plain(origin, alpn);
    }
    auto hr = tls::tls_connect(network_, tls_, ep, hello);

    ConnectAttemptLog log{ep, ech_config.has_value(), false, {}};
    if (!hr.transport_ok) {
      log.detail = std::string(net::to_string(hr.transport_error));
      result.attempts.push_back(std::move(log));
      continue;  // transport failure: try the next candidate address
    }

    // Transport established: TLS outcomes are terminal for this navigation
    // (browsers do not retry other IPs after a TLS-level failure).
    result.endpoint = ep;

    if (ech_config.has_value()) {
      result.ech_attempted = true;
      if (hr.ech_accepted) {
        if (!hr.tls_ok) {
          result.error = hr.alert == tls::TlsAlert::no_application_protocol
                             ? NavError::tls_alpn_failure
                             : NavError::tls_cert_invalid;
          log.detail = std::string(tls::to_string(hr.alert));
          result.attempts.push_back(std::move(log));
          return;
        }
        if (!hr.certificate.matches(origin)) {
          result.error = NavError::tls_cert_invalid;
          result.attempts.push_back(std::move(log));
          return;
        }
        result.success = true;
        result.ech_accepted = true;
        result.negotiated_alpn = hr.negotiated_alpn;
        log.ok = true;
        result.attempts.push_back(std::move(log));
        return;
      }

      // ECH was not accepted. The fallback handshake is only trustworthy if
      // the presented certificate authenticates the *public name* — the
      // draft's requirement, and exactly what breaks Split Mode (§5.3.2).
      if (!hr.certificate.matches(ech_config->public_name)) {
        result.error = NavError::ech_fallback_cert_invalid;
        log.detail = "fallback cert does not cover public_name";
        result.attempts.push_back(std::move(log));
        return;
      }

      if (!hr.retry_configs.empty() && profile_.support_ech_retry) {
        auto retry_list = ech::EchConfigList::decode(hr.retry_configs);
        if (retry_list.ok() && !retry_list->configs.empty()) {
          auto retry_hello = tls::ClientHello::with_ech(
              retry_list->configs.front(), origin, alpn);
          auto hr2 = tls::tls_connect(network_, tls_, ep, retry_hello);
          if (hr2.transport_ok && hr2.ech_accepted && hr2.tls_ok &&
              hr2.certificate.matches(origin)) {
            result.success = true;
            result.ech_accepted = true;
            result.used_retry_config = true;
            result.negotiated_alpn = hr2.negotiated_alpn;
            log.ok = true;
            log.detail = "via retry config";
            result.attempts.push_back(std::move(log));
            return;
          }
        }
        result.error = NavError::tls_cert_invalid;
        result.attempts.push_back(std::move(log));
        return;
      }

      // Unilateral deployment: the server ignored the extension. Fall back
      // to a standard TLS handshake with the real SNI.
      auto plain = tls::ClientHello::plain(origin, alpn);
      auto hr3 = tls::tls_connect(network_, tls_, ep, plain);
      if (hr3.transport_ok && hr3.tls_ok && hr3.certificate.matches(origin)) {
        result.success = true;
        result.negotiated_alpn = hr3.negotiated_alpn;
        log.ok = true;
        log.detail = "fallback to standard TLS";
        result.attempts.push_back(std::move(log));
        return;
      }
      result.error = NavError::tls_cert_invalid;
      result.attempts.push_back(std::move(log));
      return;
    }

    // Plain TLS path.
    if (!hr.tls_ok) {
      result.error = hr.alert == tls::TlsAlert::no_application_protocol
                         ? NavError::tls_alpn_failure
                         : NavError::tls_cert_invalid;
      log.detail = std::string(tls::to_string(hr.alert));
      result.attempts.push_back(std::move(log));
      return;
    }
    if (!hr.certificate.matches(origin)) {
      result.error = NavError::tls_cert_invalid;
      result.attempts.push_back(std::move(log));
      return;
    }
    result.success = true;
    result.negotiated_alpn = hr.negotiated_alpn;
    log.ok = true;
    result.attempts.push_back(std::move(log));
    return;
  }

  result.error =
      candidates.empty() ? NavError::no_address : NavError::connect_failed;
}

NavigationResult Navigator::navigate(const std::string& url) {
  NavigationResult result;

  auto parsed = ParsedUrl::parse(url);
  if (!parsed.ok()) {
    result.error = NavError::bad_url;
    return result;
  }
  auto host = Name::parse(parsed->host);
  if (!host.ok()) {
    result.error = NavError::bad_url;
    return result;
  }

  // --- DNS phase ----------------------------------------------------------
  bool can_query_https =
      profile_.query_https_rr &&
      (!profile_.https_rr_requires_doh || profile_.doh_enabled);
  std::vector<dns::SvcbRdata> records;
  if (can_query_https) records = fetch_https_records(*host, result);
  auto origin_ips = resolve_addresses(*host, result);

  bool go_https =
      parsed->scheme == Scheme::https ||
      (!records.empty() && profile_.upgrade_scheme_on_https_rr);

  // --- Plain HTTP path ------------------------------------------------------
  if (!go_https) {
    result.used_scheme = Scheme::http;
    std::uint16_t port = parsed->port.value_or(80);
    if (origin_ips.empty()) {
      result.error = NavError::no_address;
      return result;
    }
    for (const auto& ip : origin_ips) {
      net::Endpoint ep{ip, port};
      auto connect = network_.connect(ep);
      ConnectAttemptLog log{ep, false, connect.ok(),
                            std::string(net::to_string(connect.error))};
      result.attempts.push_back(std::move(log));
      if (connect.ok()) {
        result.success = true;
        result.endpoint = ep;
        return result;
      }
    }
    result.error = NavError::connect_failed;
    return result;
  }

  // --- HTTPS plan -----------------------------------------------------------
  result.used_scheme = Scheme::https;

  // AliasMode (always the lowest priority when present) redirects the whole
  // plan; it cannot be mixed with ServiceMode records for the same owner.
  std::optional<Name> alias_target;
  if (!records.empty() && records.front().is_alias_mode()) {
    if (profile_.follow_alias_mode && !records.front().target.is_root()) {
      alias_target = records.front().target;
      result.used_https_rr = true;
    }
    records.clear();  // AliasMode carries no SvcParams
  }

  // One connection plan per usable ServiceMode record, best priority first.
  // A nullopt entry is the record-less fallback plan (plain A lookup).
  std::vector<std::optional<dns::SvcbRdata>> plans;
  if (records.empty()) {
    plans.push_back(std::nullopt);
  } else {
    for (const auto& record : records) plans.emplace_back(record);
    if (!profile_.try_all_service_records) plans.resize(1);
  }

  for (std::size_t plan_index = 0; plan_index < plans.size(); ++plan_index) {
    const auto& record = plans[plan_index];
    Name endpoint_host = alias_target.value_or(*host);
    std::uint16_t port = parsed->port.value_or(443);
    std::vector<std::string> alpn = {"h2", "http/1.1"};  // default offer
    std::optional<ech::EchConfig> ech_config;

    if (record.has_value()) {
      result.used_https_rr = true;
      if (profile_.follow_service_target) {
        endpoint_host = record->effective_target(*host);
      }
      if (profile_.use_port_param) {
        if (auto p = record->params.port()) port = *p;
      }
      if (profile_.use_alpn_param) {
        if (auto protocols = record->params.alpn()) {
          alpn = *protocols;
          if (!record->params.no_default_alpn()) alpn.emplace_back("http/1.1");
        }
      }
      if (profile_.support_ech) {
        if (auto blob = record->params.ech()) {
          auto list = ech::EchConfigList::decode(*blob);
          if (!list.ok()) {
            if (profile_.hard_fail_on_malformed_ech) {
              // Chrome/Edge terminate after the initial SYN (§5.3.1 case 2).
              result.error = NavError::ech_parse_failure;
              return result;
            }
            // Firefox ignores the malformed blob and proceeds without ECH.
          } else {
            ech_config = list->configs.front();
          }
        }
      }
    }

    // --- candidate addresses -----------------------------------------------
    std::vector<net::IpAddr> endpoint_ips =
        endpoint_host == *host ? origin_ips
                               : resolve_addresses(endpoint_host, result);
    std::vector<net::IpAddr> hint_ips;
    if (record.has_value() && profile_.use_ip_hints) {
      if (auto hints = record->params.ipv4hint()) {
        for (const auto& a : *hints) hint_ips.push_back(net::IpAddr(a));
      }
      if (auto hints6 = record->params.ipv6hint()) {
        for (const auto& a : *hints6) hint_ips.push_back(net::IpAddr(a));
      }
    }

    std::vector<Candidate> candidates;
    auto add_unique = [&candidates](const net::IpAddr& ip, bool from_hint) {
      for (const auto& c : candidates) {
        if (c.address == ip) return;
      }
      candidates.push_back(Candidate{ip, from_hint});
    };
    if (profile_.use_ip_hints && !hint_ips.empty()) {
      for (const auto& ip : hint_ips) add_unique(ip, true);
      if (profile_.ip_hint_failover) {
        for (const auto& ip : endpoint_ips) add_unique(ip, false);
      }
    } else {
      for (const auto& ip : endpoint_ips) add_unique(ip, false);
      if (profile_.ip_hint_failover) {
        for (const auto& ip : hint_ips) add_unique(ip, true);
      }
    }

    // Split-mode-aware clients resolve the client-facing server instead.
    if (ech_config.has_value() && profile_.support_ech_split_mode) {
      if (auto public_host = Name::parse(ech_config->public_name)) {
        auto public_ips = resolve_addresses(*public_host, result);
        if (!public_ips.empty()) {
          candidates.clear();
          for (const auto& ip : public_ips) add_unique(ip, false);
        }
      }
    }

    if (candidates.empty()) {
      result.error = NavError::no_address;
      continue;  // a lower-priority record may still work
    }

    result.error = NavError::none;
    run_https_plan(*host, candidates, port, alpn, ech_config, result);

    // Port failover (Safari/Firefox): retry everything on 443.
    if (!result.success && result.error == NavError::connect_failed &&
        profile_.port_failover_to_443 && port != 443) {
      result.error = NavError::none;
      run_https_plan(*host, candidates, 443, alpn, ech_config, result);
    }

    if (result.success) break;
    // Only connection-level failures justify moving to the next record;
    // TLS/ECH hard failures are terminal (matching browser behaviour).
    if (result.error != NavError::connect_failed &&
        result.error != NavError::no_address) {
      break;
    }
  }

  // Firefox compatibility probe: after an h3-only connection it also opens
  // an h2 connection shortly after (§5.2.2(3)).
  if (result.success && profile_.firefox_h2_compat_probe &&
      result.negotiated_alpn == "h3") {
    result.h2_compat_probe = true;
  }
  return result;
}

}  // namespace httpsrr::web
