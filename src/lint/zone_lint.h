#pragma once

// zone_lint — a configuration checker for HTTPS/SVCB records in a zone.
//
// The paper's discussion (§7) argues the HTTPS ecosystem needs ACME/Certbot
// style automation because every failure class it measured was a quiet
// server-side misconfiguration: AliasMode records that alias to themselves
// (§4.3.3), IP hints diverging from A records (§4.3.5), malformed ech blobs
// that hard-fail Chrome (§5.3.1), ECH published without DNSSEC (§4.5.2),
// and more.  This linter detects every one of those classes statically
// from zone data, so an operator (or a CI pipeline) can catch them before
// a resolver ever serves the record.

#include <string>
#include <vector>

#include "dns/zone.h"

namespace httpsrr::lint {

enum class Severity : std::uint8_t { error, warning, info };

[[nodiscard]] std::string_view to_string(Severity s);

struct Finding {
  Severity severity = Severity::warning;
  std::string code;    // stable machine-readable id, e.g. "alias-self"
  dns::Name owner;     // record owner the finding is anchored to
  std::string message;
};

struct LintOptions {
  bool check_ech = true;        // parse ech SvcParams as ECHConfigLists
  bool check_consistency = true;  // hints vs A/AAAA, TTL skew, www parity
  bool check_dnssec = true;     // ECH-without-DNSSEC warning
};

// Lints every SVCB/HTTPS record in `zone` (plus the cross-record
// consistency checks). Findings are ordered by owner, then severity.
[[nodiscard]] std::vector<Finding> lint_zone(const dns::Zone& zone,
                                             const LintOptions& options = {});

// Renders findings as "severity code owner: message" lines.
[[nodiscard]] std::string render_findings(const std::vector<Finding>& findings);

// True when any finding is an error.
[[nodiscard]] bool has_errors(const std::vector<Finding>& findings);

}  // namespace httpsrr::lint
