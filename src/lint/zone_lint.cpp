#include "lint/zone_lint.h"

#include <algorithm>
#include <set>

#include "ech/config.h"
#include "util/strings.h"

namespace httpsrr::lint {

using dns::Name;
using dns::Rr;
using dns::RrType;
using dns::SvcbRdata;

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::error: return "error";
    case Severity::warning: return "warning";
    case Severity::info: return "info";
  }
  return "?";
}

namespace {

class Linter {
 public:
  Linter(const dns::Zone& zone, const LintOptions& options)
      : zone_(zone), options_(options) {}

  std::vector<Finding> run() {
    zone_signed_ = !zone_.records_at(zone_.origin(), RrType::DNSKEY).empty();
    for (const auto& rrset : zone_.all_rrsets()) {
      if (rrset.type() == RrType::HTTPS || rrset.type() == RrType::SVCB) {
        lint_owner(rrset.owner(), rrset.records());
      }
    }
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       if (!(a.owner == b.owner)) return a.owner < b.owner;
                       return a.severity < b.severity;
                     });
    return std::move(findings_);
  }

 private:
  void add(Severity severity, std::string code, const Name& owner,
           std::string message) {
    findings_.push_back(
        Finding{severity, std::move(code), owner, std::move(message)});
  }

  void lint_owner(const Name& owner, const std::vector<Rr>& records) {
    // CNAME coexistence: a CNAME excludes all other data, so an HTTPS
    // record next to one can never be served correctly (RFC 1034 §3.6.2).
    if (!zone_.records_at(owner, RrType::CNAME).empty()) {
      add(Severity::error, "https-beside-cname", owner,
          "HTTPS record coexists with a CNAME; resolvers will never serve it");
    }

    std::set<std::uint16_t> priorities;
    bool any_alias = false;
    bool any_service = false;

    for (const auto& rr : records) {
      const auto* svcb = std::get_if<SvcbRdata>(&rr.rdata);
      if (svcb == nullptr) continue;

      if (auto v = svcb->validate(); !v.ok()) {
        add(Severity::error, "invalid-record", owner, v.error());
      }

      if (svcb->is_alias_mode()) {
        any_alias = true;
        lint_alias(owner, *svcb);
      } else {
        any_service = true;
        if (!priorities.insert(svcb->priority).second) {
          add(Severity::warning, "duplicate-priority", owner,
              util::format("two ServiceMode records share SvcPriority %u",
                           svcb->priority));
        }
        lint_service(owner, rr, *svcb);
      }
    }

    if (any_alias && any_service) {
      // RFC 9460 §2.4.2: AliasMode excludes ServiceMode at the same owner.
      add(Severity::error, "alias-and-service", owner,
          "AliasMode and ServiceMode records cannot coexist at one owner");
    }

    if (options_.check_consistency) lint_www_parity(owner);
  }

  void lint_alias(const Name& owner, const SvcbRdata& svcb) {
    if (svcb.target.is_root() || svcb.target == owner) {
      // The paper's 19-domain misconfiguration (§4.3.3): an alias to
      // oneself provides no redirection and can loop resolvers.
      add(Severity::error, "alias-self", owner,
          "AliasMode TargetName points at the owner itself");
      return;
    }
    if (svcb.target.is_subdomain_of(zone_.origin())) {
      bool has_address =
          !zone_.records_at(svcb.target, RrType::A).empty() ||
          !zone_.records_at(svcb.target, RrType::AAAA).empty() ||
          !zone_.records_at(svcb.target, RrType::HTTPS).empty();
      if (!has_address) {
        add(Severity::warning, "alias-target-dangling", owner,
            "AliasMode target " + svcb.target.to_string() +
                " has no A/AAAA/HTTPS records in this zone");
      }
    } else {
      add(Severity::info, "alias-target-external", owner,
          "AliasMode target " + svcb.target.to_string() +
              " is outside the zone; verify it resolves");
    }
  }

  void lint_service(const Name& owner, const Rr& rr, const SvcbRdata& svcb) {
    if (svcb.params.empty()) {
      // Works, but conveys nothing beyond "HTTPS supported" (§4.3.3's
      // 202-domain cohort) — usually a half-finished configuration.
      add(Severity::warning, "service-no-params", owner,
          "ServiceMode record carries no SvcParams");
    }

    if (auto protocols = svcb.params.alpn()) {
      for (const auto& protocol : *protocols) {
        if (protocol == "h3-29" || protocol == "h3-27") {
          add(Severity::warning, "deprecated-alpn", owner,
              "alpn advertises retired HTTP/3 draft " + protocol);
        }
      }
    }

    if (auto port = svcb.params.port()) {
      if (*port == 443) {
        add(Severity::info, "port-default", owner,
            "port=443 is the default and can be dropped");
      }
      // Chrome/Edge ignore the port parameter entirely (§5.2.2) — warn
      // that a non-443 port cuts off those clients unless 443 also works.
      if (*port != 443) {
        add(Severity::warning, "port-chromium-unsupported", owner,
            util::format("port=%u is ignored by Chromium-based browsers; "
                         "keep the service reachable on 443 too",
                         *port));
      }
    }

    if (options_.check_ech) {
      if (auto blob = svcb.params.ech()) {
        auto list = ech::EchConfigList::decode(*blob);
        if (!list.ok()) {
          // The §5.3.1 hard-failure source: Chrome/Edge abort on this.
          add(Severity::error, "ech-malformed", owner,
              "ech value is not a valid ECHConfigList: " + list.error());
        } else if (options_.check_dnssec && !zone_signed_) {
          add(Severity::warning, "ech-without-dnssec", owner,
              "ECH keys are served from an unsigned zone; they can be "
              "stripped or forged in transit (§4.5.2)");
        }
      }
    }

    if (options_.check_consistency) {
      lint_hints(owner, rr, svcb);
    }
  }

  void lint_hints(const Name& owner, const Rr& rr, const SvcbRdata& svcb) {
    Name target = svcb.effective_target(owner);
    if (!target.is_subdomain_of(zone_.origin())) return;

    auto compare = [&](auto hints_opt, RrType addr_type, const char* kind) {
      if (!hints_opt) return;
      auto address_records = zone_.records_at(target, addr_type);
      if (address_records.empty()) {
        add(Severity::warning, std::string(kind) + "-without-address", owner,
            util::format("%s present but %s has no %s records", kind,
                         target.to_string().c_str(),
                         addr_type == RrType::A ? "A" : "AAAA"));
        return;
      }
      std::set<std::string> hint_set;
      for (const auto& a : *hints_opt) hint_set.insert(a.to_string());
      std::set<std::string> addr_set;
      std::uint32_t addr_ttl = 0;
      for (const auto& record : address_records) {
        addr_ttl = record.ttl;
        if (const auto* a = std::get_if<dns::ARdata>(&record.rdata)) {
          addr_set.insert(a->address.to_string());
        } else if (const auto* aaaa = std::get_if<dns::AaaaRdata>(&record.rdata)) {
          addr_set.insert(aaaa->address.to_string());
        }
      }
      if (hint_set != addr_set) {
        // The §4.3.5 outage class: divergent hints strand hint-preferring
        // and hint-ignoring clients on different addresses.
        add(Severity::error, std::string(kind) + "-mismatch", owner,
            util::format("%s {%s} disagrees with %s records {%s}", kind,
                         util::join({hint_set.begin(), hint_set.end()}, ",")
                             .c_str(),
                         addr_type == RrType::A ? "A" : "AAAA",
                         util::join({addr_set.begin(), addr_set.end()}, ",")
                             .c_str()));
      }
      if (rr.ttl != addr_ttl) {
        // Different TTLs expire at different times in resolver caches,
        // opening transient mismatch windows (§4.3.5 caching discussion).
        add(Severity::warning, "ttl-skew", owner,
            util::format("HTTPS TTL %u differs from %s TTL %u; caches will "
                         "expire them at different times",
                         rr.ttl, addr_type == RrType::A ? "A" : "AAAA",
                         addr_ttl));
      }
    };
    compare(svcb.params.ipv4hint(), RrType::A, "ipv4hint");
    compare(svcb.params.ipv6hint(), RrType::AAAA, "ipv6hint");
  }

  void lint_www_parity(const Name& owner) {
    if (!(owner == zone_.origin())) return;
    auto www = owner.prepend("www");
    if (!www.ok()) return;
    bool www_exists = !zone_.records_at(*www, RrType::A).empty() ||
                      !zone_.records_at(*www, RrType::CNAME).empty();
    bool www_https = !zone_.records_at(*www, RrType::HTTPS).empty();
    bool www_cname = !zone_.records_at(*www, RrType::CNAME).empty();
    if (www_exists && !www_https && !www_cname) {
      add(Severity::info, "www-without-https", owner,
          "the apex publishes an HTTPS record but www does not");
    }
  }

  const dns::Zone& zone_;
  const LintOptions& options_;
  bool zone_signed_ = false;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> lint_zone(const dns::Zone& zone, const LintOptions& options) {
  return Linter(zone, options).run();
}

std::string render_findings(const std::vector<Finding>& findings) {
  if (findings.empty()) return "no findings\n";
  std::string out;
  for (const auto& f : findings) {
    out += util::format("%-7s %-26s %s %s\n",
                        std::string(to_string(f.severity)).c_str(),
                        f.code.c_str(), f.owner.to_string().c_str(),
                        f.message.c_str());
  }
  return out;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::error;
  });
}

}  // namespace httpsrr::lint
