#pragma once

// Small string utilities shared across the library.  All functions are pure
// and operate on std::string_view at the boundary (Core Guidelines F.15/SL).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace httpsrr::util {

// ASCII-only case conversion (DNS names are ASCII; locale must not matter).
// Defined inline: both sit on the name-comparison hot path, called hundreds
// of millions of times per scan day.
[[nodiscard]] constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
[[nodiscard]] std::string to_lower(std::string_view s);

// True if the two views are equal ignoring ASCII case.
[[nodiscard]] constexpr bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

// Split `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

// Split on runs of ASCII whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

// Join `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

// Hex encoding of raw bytes (lowercase, two digits per byte).
[[nodiscard]] std::string hex_encode(const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::string hex_encode(const std::uint8_t* data, std::size_t len);

// Hex decoding; returns false on odd length or non-hex characters.
[[nodiscard]] bool hex_decode(std::string_view hex, std::vector<std::uint8_t>& out);

// Parse an unsigned decimal integer with overflow/garbage detection.
// Returns false on empty input, non-digits, or value > max.
[[nodiscard]] bool parse_u64(std::string_view s, std::uint64_t& out,
                             std::uint64_t max = UINT64_MAX);

// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace httpsrr::util
