#include "util/base64.h"

#include <array>

namespace httpsrr::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

}  // namespace

std::string base64_encode(const std::vector<std::uint8_t>& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t triple = (static_cast<std::uint32_t>(data[i]) << 16) |
                           (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                           data[i + 2];
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3f]);
    out.push_back(kAlphabet[triple & 0x3f]);
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t triple = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t triple = (static_cast<std::uint32_t>(data[i]) << 16) |
                           (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

bool base64_decode(std::string_view text, std::vector<std::uint8_t>& out) {
  static const std::array<std::int8_t, 256> kReverse = make_reverse_table();
  out.clear();
  if (text.empty()) return true;
  if (text.size() % 4 != 0) return false;

  std::size_t padding = 0;
  if (text.back() == '=') ++padding;
  if (text.size() >= 2 && text[text.size() - 2] == '=') ++padding;

  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    std::uint32_t triple = 0;
    int valid = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding only allowed in the final two positions.
        if (i + j + 2 < text.size()) return false;
        triple <<= 6;
        continue;
      }
      std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) return false;
      triple = (triple << 6) | static_cast<std::uint32_t>(v);
      ++valid;
    }
    out.push_back(static_cast<std::uint8_t>(triple >> 16));
    if (valid >= 3) out.push_back(static_cast<std::uint8_t>(triple >> 8));
    if (valid == 4) out.push_back(static_cast<std::uint8_t>(triple));
  }
  return true;
}

}  // namespace httpsrr::util
