#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace httpsrr::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(ascii_lower(c));
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string hex_encode(const std::vector<std::uint8_t>& bytes) {
  return hex_encode(bytes.data(), bytes.size());
}

bool hex_decode(std::string_view hex, std::vector<std::uint8_t>& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out, std::uint64_t max) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
    if (v > max) return false;
  }
  out = v;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace httpsrr::util
