#pragma once

// SHA-256 (FIPS 180-4), implemented from scratch for the DNSSEC and ECH
// substrates: DS digests, key tags, and the simulated-HPKE keystream all
// need a real cryptographic hash so that digests behave like the deployed
// protocol (collision-free in practice, avalanche on any bit flip).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace httpsrr::util {

using Sha256Digest = std::array<std::uint8_t, 32>;

// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(std::string_view s);
  void update(const std::vector<std::uint8_t>& bytes);

  // Finalises and returns the digest. The hasher must not be reused after.
  [[nodiscard]] Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// One-shot helpers.
[[nodiscard]] Sha256Digest sha256(const std::uint8_t* data, std::size_t len);
[[nodiscard]] Sha256Digest sha256(std::string_view s);
[[nodiscard]] Sha256Digest sha256(const std::vector<std::uint8_t>& bytes);

}  // namespace httpsrr::util
