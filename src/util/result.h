#pragma once

// Result<T>: a lightweight expected-style return type for parse paths.
//
// The library parses untrusted input (DNS wire data, zone files, ECH
// configuration blobs).  Malformed input is an *expected* outcome there, so
// those paths return Result<T> instead of throwing; exceptions are reserved
// for broken invariants and constructor failure (see C++ Core Guidelines
// E.2/E.3).  gcc 12 does not ship std::expected, hence this small stand-in.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace httpsrr::util {

// Error payload: a human-readable message describing why parsing failed.
struct Error {
  std::string message;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return my_value;            // success
  //   return Error{"truncated"};  // failure
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  // Value access. Precondition: ok().
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Error access. Precondition: !ok().
  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return error_.message;
  }

  // value_or: fall back to a default on failure.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Error error_;
};

// Result<void> specialisation: success carries no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : ok_(true) {}
  Result(Error error) : ok_(false), error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  [[nodiscard]] const std::string& error() const {
    assert(!ok_);
    return error_.message;
  }

 private:
  bool ok_;
  Error error_;
};

}  // namespace httpsrr::util
