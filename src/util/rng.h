#pragma once

// Deterministic pseudo-random generators for the ecosystem simulation.
//
// Everything in the synthetic Internet must be reproducible from a single
// seed: domain/provider assignment, churn, misconfiguration events.  We use
// SplitMix64 for seeding/hashing and PCG32 as the workhorse stream.
// std::mt19937 is avoided because its state is bulky and its distributions
// are not portable across standard library implementations.

#include <cstdint>

namespace httpsrr::util {

// SplitMix64: tiny, high-quality mixer; also usable as a hash of a counter.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Stateless mix of a 64-bit value (one SplitMix64 step).
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  return SplitMix64(x).next();
}

// PCG32 (pcg_xsh_rr_64_32): small, fast, statistically solid.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0x2b1a5852f33f2b09ULL) {
    state_ = 0;
    inc_ = (stream << 1) | 1;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  // Uniform in [0, bound). Precondition: bound > 0. Uses Lemire rejection.
  std::uint32_t uniform(std::uint32_t bound) {
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto low = static_cast<std::uint32_t>(m);
    if (low < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (low < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        low = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  // Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace httpsrr::util
