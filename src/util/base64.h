#pragma once

// Base64 (RFC 4648, standard alphabet, padded) — the encoding zone files
// use for the `ech` SvcParam value.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace httpsrr::util {

[[nodiscard]] std::string base64_encode(const std::vector<std::uint8_t>& data);

// Strict decode: requires correct padding, rejects non-alphabet bytes and
// whitespace. Returns false on malformed input.
[[nodiscard]] bool base64_decode(std::string_view text,
                                 std::vector<std::uint8_t>& out);

}  // namespace httpsrr::util
