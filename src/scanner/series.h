#pragma once

// DaySeriesWriter — per-day longitudinal series emitter for the scan
// drivers (bench/micro_study --days, tools/httpsrr_scan --series).  One
// line per scanned day: adoption, churn, wall-clock cost, memory, and the
// day-boundary GC counters (Study::gc_stats()) — the data behind the
// "day 300 costs the same as day 1" flat-curve claim.
//
// The output format follows the file extension: `.jsonl` writes one JSON
// object per line (machine-friendly, schema-free appends); anything else
// writes CSV with a header row.  Lines are flushed as they are written so
// a long run tailed mid-flight shows every completed day.

#include <cstdint>
#include <cstdio>
#include <string>

namespace httpsrr::scanner {

// One scanned day, as the drivers assemble it from the snapshot, the
// Study counters, and their own wall clock.
struct DayPoint {
  std::uint64_t day_index = 0;     // 0-based position in the run
  std::string date;                // calendar date, YYYY-MM-DD
  std::uint64_t listed = 0;        // domains on the day's list
  std::uint64_t apex_https = 0;    // apex rows with an HTTPS RRset
  std::uint64_t www_https = 0;     // www rows with an HTTPS RRset
  std::uint64_t churn_unchanged = 0;
  std::uint64_t churn_changed = 0;
  std::uint64_t churn_entered = 0;
  std::uint64_t churn_left = 0;
  double seconds = 0.0;            // wall-clock cost of the day
  double rss_mib = 0.0;            // peak RSS after the day, MiB
  double intern_hit_rate = 0.0;
  // Study::GcStats, sampled after the day completed.
  std::uint64_t interner_entries = 0;
  std::uint64_t interner_live = 0;
  std::uint64_t interner_tombstones = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compaction_freed = 0;
  std::uint64_t resolver_swept = 0;
  std::uint64_t zone_swept = 0;
};

class DaySeriesWriter {
 public:
  // Opens `path` for writing (truncates).  `ok()` reports open failure —
  // the drivers warn and continue unrecorded rather than aborting a run
  // that may be hours deep.
  explicit DaySeriesWriter(const std::string& path);
  ~DaySeriesWriter();

  DaySeriesWriter(const DaySeriesWriter&) = delete;
  DaySeriesWriter& operator=(const DaySeriesWriter&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  void append(const DayPoint& point);

 private:
  std::FILE* file_ = nullptr;
  bool jsonl_ = false;
  bool wrote_header_ = false;
};

}  // namespace httpsrr::scanner
