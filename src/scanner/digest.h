#pragma once

// Snapshot digest — the canonical fingerprint of one day's scan output.
//
// Every determinism gate in the repo (micro_study's cross-K check, the
// ci.sh socket gate's in-process vs cross-process comparison, the
// endpoint equivalence tests) hashes a snapshot through this one
// function, so "bit-identical output" means the same thing everywhere.
// The digest folds the classified observation rows (flags, record
// counts, HTTPS presentation text), the NS attribution table in
// canonical name order, and the study's total query count.  TTLs are
// deliberately excluded: they decay with resolution time, which is a
// transport property, not scan content.

#include <cstdint>
#include <string>

#include "scanner/observation.h"

namespace httpsrr::scanner {

[[nodiscard]] std::string snapshot_digest(const DailySnapshot& snapshot,
                                          std::uint64_t total_queries);

}  // namespace httpsrr::scanner
