#include "scanner/digest.h"

#include "util/sha256.h"
#include "util/strings.h"

namespace httpsrr::scanner {

std::string snapshot_digest(const DailySnapshot& snapshot,
                            std::uint64_t total_queries) {
  std::string blob;
  blob.reserve(snapshot.size() * 8);
  auto add_obs = [&](const HttpsObservation& obs) {
    blob += obs.answered ? 'A' : 'a';
    blob += obs.has_https() ? 'H' : 'h';
    blob += obs.has_ech() ? 'E' : 'e';
    blob += static_cast<char>('0' + obs.a_records().size() % 10);
    blob += static_cast<char>('0' + obs.ns_records.size() % 10);
    for (const auto& record : obs.https_records()) {
      blob += record.to_presentation();
    }
  };
  for (const auto& obs : snapshot.apex) add_obs(obs);
  for (const auto& obs : snapshot.www) add_obs(obs);
  // Canonical name order — the same order the pre-columnar std::map
  // iterated in, so the digest stays pinned across the hashed-table move.
  for (const auto* entry : snapshot.sorted_ns_info()) {
    blob += entry->first.to_string();
    blob += static_cast<char>('0' + entry->second.addresses.size() % 10);
    if (entry->second.operator_name) blob += *entry->second.operator_name;
  }
  blob += std::to_string(total_queries);
  auto digest = util::sha256(blob);
  return util::hex_encode(digest.data(), digest.size());
}

}  // namespace httpsrr::scanner
