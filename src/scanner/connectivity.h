#pragma once

// ConnectivityAudit — the §4.3.5 connectivity experiment: whenever a daily
// scan observes a domain whose ipv4hint set disagrees with its A RRset, it
// immediately attempts TLS connections (port 443) to *every* address in
// both sets and classifies reachability:
//   * occurrences: domain-days with a mismatch;
//   * distinct mismatching domains;
//   * domains with at least one unreachable address;
//   * domains reachable only via the hint, or only via the A record.

#include <map>
#include <set>

#include "ecosystem/internet.h"
#include "scanner/study.h"

namespace httpsrr::scanner {

class ConnectivityAudit final : public DailyObserver {
 public:
  struct Result {
    std::size_t occurrences = 0;
    std::size_t distinct_domains = 0;
    std::size_t domains_with_unreachable = 0;
    std::size_t hint_only_reachable = 0;
    std::size_t a_only_reachable = 0;
    std::size_t always_mismatched = 0;  // mismatched on every observed day
  };

  ConnectivityAudit(net::SimTime from, net::SimTime to) : from_(from), to_(to) {}

  void on_day(const DailySnapshot& snapshot,
              const ecosystem::Internet& net) override;

  [[nodiscard]] Result result() const;

 private:
  struct DomainRecord {
    std::size_t mismatch_days = 0;
    std::size_t observed_days = 0;
    bool any_unreachable = false;
    bool hint_only = false;
    bool a_only = false;
  };

  net::SimTime from_;
  net::SimTime to_;
  std::size_t occurrences_ = 0;
  std::map<ecosystem::DomainId, DomainRecord> domains_;
};

}  // namespace httpsrr::scanner
