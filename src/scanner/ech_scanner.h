#pragma once

// HourlyEchScanner — the §4.4.2 experiment: hourly HTTPS scans over a
// multi-day window, tracking every distinct ECH configuration observed,
// how many consecutive hourly scans each appears in, and the average
// configuration lifetime per domain (Fig. 4).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ecosystem/internet.h"
#include "scanner/https_scanner.h"

namespace httpsrr::scanner {

class HourlyEchScanner {
 public:
  struct Result {
    std::size_t scans = 0;
    std::size_t domains_tracked = 0;
    std::size_t unique_configs = 0;
    // consecutive-scan count -> number of configs observed for that long.
    std::map<int, int> consecutive_scan_histogram;
    // Average observed config duration per domain, in hours.
    std::vector<double> per_domain_avg_hours;
    double overall_avg_hours = 0.0;
    // Client-facing public names seen inside the ECH configurations.
    std::set<std::string> public_names;
  };

  // Scans every HTTPS-publishing apex in the current list each hour for
  // `hours` hours starting at `from`. `sample_limit` caps the tracked
  // domain count (0 = no cap).
  [[nodiscard]] Result run(ecosystem::Internet& net, net::SimTime from,
                           int hours, std::size_t sample_limit = 0);
};

}  // namespace httpsrr::scanner
