#include "scanner/https_scanner.h"

namespace httpsrr::scanner {

using dns::RrType;

HttpsObservation HttpsScanner::scan(const dns::Name& host, bool follow_up) {
  HttpsObservation obs;

  ++queries_;
  auto resp = stub_.query_shared(host, RrType::HTTPS);
  switch (resp.rcode) {
    case dns::Rcode::NOERROR:
      obs.answered = true;
      break;
    case dns::Rcode::NXDOMAIN:
      obs.nxdomain = true;
      return obs;
    default:
      obs.servfail = true;
      return obs;
  }

  obs.ad = resp.ad;
  // The observation shares the cache's immutable answer vector — no record
  // is copied; typed access filters on read (HttpsObservation ranges).
  obs.https_answer = resp.answers_snapshot();
  for (const auto& rr : *obs.https_answer) {
    switch (rr.type) {
      case RrType::CNAME:
        // The resolver chased the alias for us; record that it happened.
        obs.followed_cname = true;
        break;
      case RrType::RRSIG: {
        const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
        if (sig.type_covered == RrType::HTTPS) obs.rrsig_present = true;
        break;
      }
      default:
        break;
    }
  }

  if (!obs.has_https() || !follow_up) return obs;
  fill_follow_ups(host, obs);
  return obs;
}

void HttpsScanner::fill_follow_ups(const dns::Name& host, HttpsObservation& obs) {
  ++queries_;
  obs.a_answer = stub_.query_shared(host, RrType::A).answers_snapshot();
  ++queries_;
  obs.aaaa_answer = stub_.query_shared(host, RrType::AAAA).answers_snapshot();

  ++queries_;
  auto soa = stub_.query_shared(host, RrType::SOA);
  obs.soa_present = soa.has_answer_of_type(RrType::SOA);

  ++queries_;
  auto ns = stub_.query_shared(host, RrType::NS);
  for (const auto& rr : ns.answers()) {
    if (const auto* rec = std::get_if<dns::NsRdata>(&rr.rdata)) {
      obs.ns_records.push_back(rec->nsdname);
    }
  }
}

}  // namespace httpsrr::scanner
