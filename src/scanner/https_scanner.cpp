#include "scanner/https_scanner.h"

namespace httpsrr::scanner {

using dns::RrType;

HttpsObservation HttpsScanner::scan(const dns::Name& host, bool follow_up) {
  HttpsObservation obs;
  ++queries_;
  apply_https(obs, stub_.query_shared(host, RrType::HTTPS));
  if (!obs.has_https() || !follow_up) return obs;
  fill_follow_ups(host, obs);
  return obs;
}

void HttpsScanner::apply_https(HttpsObservation& obs,
                               const resolver::ResolvedAnswer& resp) {
  switch (resp.rcode) {
    case dns::Rcode::NOERROR:
      obs.answered = true;
      break;
    case dns::Rcode::NXDOMAIN:
      obs.nxdomain = true;
      return;
    default:
      obs.servfail = true;
      return;
  }

  obs.ad = resp.ad;
  // The observation shares the cache's immutable answer vector — no record
  // is copied; typed access filters on read (HttpsObservation ranges).
  obs.https_answer = resp.answers_snapshot();
  for (const auto& rr : *obs.https_answer) {
    switch (rr.type) {
      case RrType::CNAME:
        // The resolver chased the alias for us; record that it happened.
        obs.followed_cname = true;
        break;
      case RrType::RRSIG: {
        const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
        if (sig.type_covered == RrType::HTTPS) obs.rrsig_present = true;
        break;
      }
      default:
        break;
    }
  }
}

void HttpsScanner::apply_follow_ups(HttpsObservation& obs,
                                    const resolver::ResolvedAnswer& a,
                                    const resolver::ResolvedAnswer& aaaa,
                                    const resolver::ResolvedAnswer& soa,
                                    const resolver::ResolvedAnswer& ns) {
  obs.a_answer = a.answers_snapshot();
  obs.aaaa_answer = aaaa.answers_snapshot();
  obs.soa_present = soa.has_answer_of_type(RrType::SOA);
  for (const auto& rr : ns.answers()) {
    if (const auto* rec = std::get_if<dns::NsRdata>(&rr.rdata)) {
      obs.ns_records.push_back(rec->nsdname);
    }
  }
}

void HttpsScanner::fill_follow_ups(const dns::Name& host,
                                   HttpsObservation& obs) {
  queries_ += 4;
  auto a = stub_.query_shared(host, RrType::A);
  auto aaaa = stub_.query_shared(host, RrType::AAAA);
  auto soa = stub_.query_shared(host, RrType::SOA);
  auto ns = stub_.query_shared(host, RrType::NS);
  apply_follow_ups(obs, a, aaaa, soa, ns);
}

}  // namespace httpsrr::scanner
