#include "scanner/https_scanner.h"

namespace httpsrr::scanner {

using dns::RrType;

HttpsObservation HttpsScanner::scan(const dns::Name& host, bool follow_up) {
  HttpsObservation obs;

  ++queries_;
  auto resp = stub_.query_shared(host, RrType::HTTPS);
  switch (resp.rcode) {
    case dns::Rcode::NOERROR:
      obs.answered = true;
      break;
    case dns::Rcode::NXDOMAIN:
      obs.nxdomain = true;
      return obs;
    default:
      obs.servfail = true;
      return obs;
  }

  obs.ad = resp.ad;
  for (const auto& rr : resp.answers()) {
    switch (rr.type) {
      case RrType::HTTPS:
        obs.https_records.push_back(std::get<dns::SvcbRdata>(rr.rdata));
        break;
      case RrType::CNAME:
        // The resolver chased the alias for us; record that it happened.
        obs.followed_cname = true;
        break;
      case RrType::RRSIG: {
        const auto& sig = std::get<dns::RrsigRdata>(rr.rdata);
        if (sig.type_covered == RrType::HTTPS) obs.rrsig_present = true;
        break;
      }
      default:
        break;
    }
  }

  if (!obs.has_https() || !follow_up) return obs;
  fill_follow_ups(host, obs);
  return obs;
}

void HttpsScanner::fill_follow_ups(const dns::Name& host, HttpsObservation& obs) {
  ++queries_;
  auto a = stub_.query_shared(host, RrType::A);
  for (const auto& rr : a.answers()) {
    if (const auto* rec = std::get_if<dns::ARdata>(&rr.rdata)) {
      obs.a_records.push_back(rec->address);
    }
  }
  ++queries_;
  auto aaaa = stub_.query_shared(host, RrType::AAAA);
  for (const auto& rr : aaaa.answers()) {
    if (const auto* rec = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
      obs.aaaa_records.push_back(rec->address);
    }
  }
  ++queries_;
  auto soa = stub_.query_shared(host, RrType::SOA);
  obs.soa_present = soa.has_answer_of_type(RrType::SOA);

  ++queries_;
  auto ns = stub_.query_shared(host, RrType::NS);
  for (const auto& rr : ns.answers()) {
    if (const auto* rec = std::get_if<dns::NsRdata>(&rr.rdata)) {
      obs.ns_records.push_back(rec->nsdname);
    }
  }
}

}  // namespace httpsrr::scanner
