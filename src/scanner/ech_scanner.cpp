#include "scanner/ech_scanner.h"

#include "ech/config.h"
#include "util/sha256.h"
#include "util/strings.h"

namespace httpsrr::scanner {

HourlyEchScanner::Result HourlyEchScanner::run(ecosystem::Internet& net,
                                               net::SimTime from, int hours,
                                               std::size_t sample_limit) {
  Result result;

  // Wire-true vantage: the stub talks to the borrowed resolver through a
  // LocalEndpoint, so every hourly observation — including the ECH config
  // blobs being fingerprinted — survives an encode/decode round trip.
  // Cache flushes still address the resolver instance directly.
  auto resolver = net.make_resolver();
  resolver::LocalEndpoint endpoint(*resolver, /*backup=*/nullptr);
  resolver::StubResolver stub(endpoint);
  HttpsScanner scanner(stub);

  // Identify the tracked population at the first scan: every listed apex
  // currently publishing an ECH configuration.
  net.advance_to(from);
  std::vector<ecosystem::DomainId> tracked;
  for (ecosystem::DomainId id : net.tranco().list_for(from)) {
    auto obs = scanner.scan(net.domain(id).apex, /*follow_up=*/false);
    if (obs.has_ech()) tracked.push_back(id);
    if (sample_limit != 0 && tracked.size() >= sample_limit) break;
  }
  result.domains_tracked = tracked.size();

  // Per-domain run tracking: current config fingerprint + run length.
  struct RunState {
    std::string fingerprint;
    int run_length = 0;
    std::vector<int> completed_runs;
  };
  std::vector<RunState> runs(tracked.size());
  std::map<std::string, int> config_max_run;

  // A full-list scan takes real time; spreading the per-domain queries
  // across ~45 minutes of each hour reproduces the per-domain lifetime
  // spread of Fig. 4 (domains sample the rotation at different phases).
  const std::int64_t spacing =
      tracked.empty() ? 0 : (45 * 60) / static_cast<std::int64_t>(tracked.size());
  for (int hour = 0; hour <= hours; ++hour) {
    net::SimTime at = from + net::Duration::hours(hour);
    net.advance_to(at);
    resolver->flush_cache();  // the experiment wants fresh records each scan
    ++result.scans;

    for (std::size_t i = 0; i < tracked.size(); ++i) {
      net.advance_to(at + net::Duration::secs(spacing * static_cast<std::int64_t>(i)));
      auto obs = scanner.scan(net.domain(tracked[i]).apex, /*follow_up=*/false);
      auto blob = obs.ech_config();
      std::string fp;
      if (blob) {
        auto digest = util::sha256(*blob);
        fp = util::hex_encode(digest.data(), 8);
        if (auto list = ech::EchConfigList::decode(*blob)) {
          for (const auto& config : list->configs) {
            result.public_names.insert(config.public_name);
          }
        }
      }
      RunState& run = runs[i];
      if (fp == run.fingerprint) {
        if (!fp.empty()) ++run.run_length;
      } else {
        if (run.run_length > 0) run.completed_runs.push_back(run.run_length);
        run.fingerprint = fp;
        run.run_length = fp.empty() ? 0 : 1;
      }
      if (!fp.empty()) {
        auto [it, inserted] = config_max_run.try_emplace(fp, 0);
        (void)inserted;
        it->second = std::max(it->second, run.run_length);
      }
    }
  }
  for (auto& run : runs) {
    if (run.run_length > 0) run.completed_runs.push_back(run.run_length);
  }

  result.unique_configs = config_max_run.size();
  for (const auto& [fp, longest] : config_max_run) {
    (void)fp;
    ++result.consecutive_scan_histogram[longest];
  }

  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& run : runs) {
    if (run.completed_runs.empty()) continue;
    double sum = 0.0;
    for (int r : run.completed_runs) sum += r;
    double avg = sum / static_cast<double>(run.completed_runs.size());
    result.per_domain_avg_hours.push_back(avg);
    total += avg;
    ++counted;
  }
  result.overall_avg_hours = counted == 0 ? 0.0 : total / static_cast<double>(counted);
  return result;
}

}  // namespace httpsrr::scanner
