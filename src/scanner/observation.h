#pragma once

// Observation records produced by the scanning framework — the in-memory
// equivalent of the paper's daily dataset rows (Table 1).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/svcb.h"
#include "ecosystem/tranco.h"
#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::scanner {

// One host (apex or www) scanned on one day.
struct HttpsObservation {
  bool answered = false;   // NOERROR response received
  bool servfail = false;
  bool nxdomain = false;
  bool followed_cname = false;

  std::vector<dns::SvcbRdata> https_records;
  bool rrsig_present = false;  // RRSIG covering the HTTPS RRset was returned
  bool ad = false;             // Authenticated Data bit in the response

  // Follow-up lookups (issued only when an HTTPS record was seen, §4.1).
  std::vector<net::Ipv4Addr> a_records;
  std::vector<net::Ipv6Addr> aaaa_records;
  std::vector<dns::Name> ns_records;
  bool soa_present = false;

  [[nodiscard]] bool has_https() const { return !https_records.empty(); }
  [[nodiscard]] bool has_ech() const;
  [[nodiscard]] std::optional<dns::Bytes> ech_config() const;
  [[nodiscard]] bool alias_mode() const;
  // All ipv4 hints across records.
  [[nodiscard]] std::vector<net::Ipv4Addr> ipv4_hints() const;
  [[nodiscard]] std::vector<net::Ipv6Addr> ipv6_hints() const;
  // Union of advertised ALPN protocol ids.
  [[nodiscard]] std::vector<std::string> alpn_protocols() const;
  // True when ipv4 hints are present and equal the A RRset as a set.
  [[nodiscard]] bool hints_match_a() const;

  // Field-wise equality, used by the shard-count-invariance tests.
  friend bool operator==(const HttpsObservation&,
                         const HttpsObservation&) = default;
};

// Name-server side data for one NS host name.
struct NsInfo {
  std::vector<net::IpAddr> addresses;
  std::optional<std::string> whois_org;   // raw WHOIS answer
  std::optional<std::string> operator_name;  // after manual review

  friend bool operator==(const NsInfo&, const NsInfo&) = default;
};

// Everything collected on one day.
struct DailySnapshot {
  net::SimTime day;
  std::vector<ecosystem::DomainId> list;  // today's Tranco list (rank order)
  std::vector<HttpsObservation> apex;     // parallel to `list`
  std::vector<HttpsObservation> www;      // parallel to `list`
  std::map<dns::Name, NsInfo> ns_info;    // NS hosts of HTTPS publishers

  [[nodiscard]] std::size_t size() const { return list.size(); }

  friend bool operator==(const DailySnapshot&, const DailySnapshot&) = default;
};

}  // namespace httpsrr::scanner
