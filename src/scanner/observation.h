#pragma once

// Observation records produced by the scanning framework — the in-memory
// equivalent of the paper's daily dataset rows (Table 1).
//
// Answer sections are held as *shared snapshots*: the same immutable
// `shared_ptr<const vector<Rr>>` vectors the resolver cache serves
// (ResolvedAnswer::answers_snapshot), so assembling an observation on a
// warm cache copies no records.  Typed access goes through lazy filtered
// ranges (https_records(), a_records(), ...) that walk the snapshot in
// place.  Equality is deep — snapshots compare by content, never by
// pointer — because shard-invariance tests compare observations produced
// by *different* resolvers whose caches hold distinct but equal vectors.

#include <cstddef>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/message.h"
#include "dns/svcb.h"
#include "ecosystem/tranco.h"
#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::scanner {

namespace detail {

// Forward iteration over the records of a shared answer-section snapshot
// whose RDATA holds RdataT, projected through Proj (the full payload, or
// one field of it).  A null snapshot iterates as empty.
template <typename RdataT, typename Proj>
class RdataRange {
 public:
  using value_type = std::remove_cvref_t<
      decltype(Proj{}(std::declval<const RdataT&>()))>;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using value_type = RdataRange::value_type;
    using pointer = const value_type*;
    using reference = const value_type&;

    iterator() = default;
    iterator(const std::vector<dns::Rr>* v, std::size_t i) : v_(v), i_(i) {
      skip();
    }
    reference operator*() const {
      return Proj{}(std::get<RdataT>((*v_)[i_].rdata));
    }
    pointer operator->() const { return &**this; }
    iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    void skip() {
      while (v_ != nullptr && i_ < v_->size() &&
             !std::holds_alternative<RdataT>((*v_)[i_].rdata)) {
        ++i_;
      }
    }
    const std::vector<dns::Rr>* v_ = nullptr;
    std::size_t i_ = 0;
  };

  explicit RdataRange(const std::vector<dns::Rr>* v) : v_(v) {}
  [[nodiscard]] iterator begin() const { return iterator(v_, 0); }
  [[nodiscard]] iterator end() const {
    return iterator(v_, v_ != nullptr ? v_->size() : 0);
  }
  [[nodiscard]] bool empty() const { return begin() == end(); }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (auto it = begin(); it != end(); ++it) ++n;
    return n;
  }

 private:
  const std::vector<dns::Rr>* v_;
};

struct IdentityProj {
  template <typename T>
  const T& operator()(const T& v) const {
    return v;
  }
};
struct AddressProj {
  template <typename T>
  const auto& operator()(const T& v) const {
    return v.address;
  }
};

}  // namespace detail

using SvcbRange = detail::RdataRange<dns::SvcbRdata, detail::IdentityProj>;
using Ipv4Range = detail::RdataRange<dns::ARdata, detail::AddressProj>;
using Ipv6Range = detail::RdataRange<dns::AaaaRdata, detail::AddressProj>;

// One host (apex or www) scanned on one day.
struct HttpsObservation {
  bool answered = false;   // NOERROR response received
  bool servfail = false;
  bool nxdomain = false;
  bool followed_cname = false;

  bool rrsig_present = false;  // RRSIG covering the HTTPS RRset was returned
  bool ad = false;             // Authenticated Data bit in the response

  // Shared answer-section snapshots (null until the lookup ran; treated as
  // empty).  `https_answer` also carries the CNAME chain and RRSIGs of the
  // HTTPS response; the typed ranges below filter on access.
  std::shared_ptr<const std::vector<dns::Rr>> https_answer;
  std::shared_ptr<const std::vector<dns::Rr>> a_answer;
  std::shared_ptr<const std::vector<dns::Rr>> aaaa_answer;

  // Follow-up lookups (issued only when an HTTPS record was seen, §4.1).
  std::vector<dns::Name> ns_records;
  bool soa_present = false;

  [[nodiscard]] SvcbRange https_records() const {
    return SvcbRange(https_answer.get());
  }
  [[nodiscard]] Ipv4Range a_records() const {
    return Ipv4Range(a_answer.get());
  }
  [[nodiscard]] Ipv6Range aaaa_records() const {
    return Ipv6Range(aaaa_answer.get());
  }

  [[nodiscard]] bool has_https() const { return !https_records().empty(); }
  [[nodiscard]] bool has_ech() const;
  [[nodiscard]] std::optional<dns::Bytes> ech_config() const;
  [[nodiscard]] bool alias_mode() const;
  // All ipv4 hints across records.
  [[nodiscard]] std::vector<net::Ipv4Addr> ipv4_hints() const;
  [[nodiscard]] std::vector<net::Ipv6Addr> ipv6_hints() const;
  // Union of advertised ALPN protocol ids.
  [[nodiscard]] std::vector<std::string> alpn_protocols() const;
  // True when ipv4 hints are present and equal the A RRset as a set.
  [[nodiscard]] bool hints_match_a() const;

  // Deep field-wise equality, used by the shard-count-invariance tests:
  // section snapshots compare by record content (null == empty), so
  // observations assembled by different shards' resolvers compare equal.
  friend bool operator==(const HttpsObservation& a, const HttpsObservation& b);
};

// Name-server side data for one NS host name.
struct NsInfo {
  std::vector<net::IpAddr> addresses;
  std::optional<std::string> whois_org;   // raw WHOIS answer
  std::optional<std::string> operator_name;  // after manual review

  friend bool operator==(const NsInfo&, const NsInfo&) = default;
};

// Everything collected on one day.
struct DailySnapshot {
  net::SimTime day;
  std::vector<ecosystem::DomainId> list;  // today's Tranco list (rank order)
  std::vector<HttpsObservation> apex;     // parallel to `list`
  std::vector<HttpsObservation> www;      // parallel to `list`
  std::map<dns::Name, NsInfo> ns_info;    // NS hosts of HTTPS publishers

  [[nodiscard]] std::size_t size() const { return list.size(); }

  friend bool operator==(const DailySnapshot&, const DailySnapshot&) = default;
};

}  // namespace httpsrr::scanner
