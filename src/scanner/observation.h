#pragma once

// Observation records produced by the scanning framework — the in-memory
// equivalent of the paper's daily dataset rows (Table 1).
//
// Answer sections are held as *shared snapshots*: the same immutable
// `shared_ptr<const vector<Rr>>` vectors the resolver cache serves
// (ResolvedAnswer::answers_snapshot), so assembling an observation on a
// warm cache copies no records.  Typed access goes through lazy filtered
// ranges (https_records(), a_records(), ...) that walk the snapshot in
// place.  Equality is deep — snapshots compare by content, never by
// pointer — because shard-invariance tests compare observations produced
// by *different* resolvers whose caches hold distinct but equal vectors.
//
// `HttpsObservation` is the *row* form: the scan waves classify responses
// into these scratch rows, and accessors materialize them back out of the
// columnar day store (scanner/columns.h) for code that wants a
// self-contained value.  The day-scale storage itself is columnar — see
// DailySnapshot in scanner/columns.h, included at the bottom so existing
// `#include "scanner/observation.h"` sites keep seeing the whole surface.

#include <cstddef>
#include <iterator>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "dns/message.h"
#include "dns/svcb.h"
#include "ecosystem/tranco.h"
#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::scanner {

namespace detail {

// Forward iteration over the records of a shared answer-section snapshot
// whose RDATA holds RdataT, projected through Proj (the full payload, or
// one field of it).  A null snapshot iterates as empty.
template <typename RdataT, typename Proj>
class RdataRange {
 public:
  using value_type = std::remove_cvref_t<
      decltype(Proj{}(std::declval<const RdataT&>()))>;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using difference_type = std::ptrdiff_t;
    using value_type = RdataRange::value_type;
    using pointer = const value_type*;
    using reference = const value_type&;

    iterator() = default;
    iterator(const std::vector<dns::Rr>* v, std::size_t i) : v_(v), i_(i) {
      skip();
    }
    reference operator*() const {
      return Proj{}(std::get<RdataT>((*v_)[i_].rdata));
    }
    pointer operator->() const { return &**this; }
    iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    void skip() {
      while (v_ != nullptr && i_ < v_->size() &&
             !std::holds_alternative<RdataT>((*v_)[i_].rdata)) {
        ++i_;
      }
    }
    const std::vector<dns::Rr>* v_ = nullptr;
    std::size_t i_ = 0;
  };

  explicit RdataRange(const std::vector<dns::Rr>* v) : v_(v) {}
  [[nodiscard]] iterator begin() const { return iterator(v_, 0); }
  [[nodiscard]] iterator end() const {
    return iterator(v_, v_ != nullptr ? v_->size() : 0);
  }
  [[nodiscard]] bool empty() const { return begin() == end(); }
  // One walk of the snapshot.  Callers that need the count alongside the
  // records should walk once themselves (or read the interned per-section
  // counts through ObservationView) instead of calling size() repeatedly.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (auto it = begin(); it != end(); ++it) ++n;
    return n;
  }

 private:
  const std::vector<dns::Rr>* v_;
};

struct IdentityProj {
  template <typename T>
  const T& operator()(const T& v) const {
    return v;
  }
};
struct AddressProj {
  template <typename T>
  const auto& operator()(const T& v) const {
    return v.address;
  }
};

}  // namespace detail

using SvcbRange = detail::RdataRange<dns::SvcbRdata, detail::IdentityProj>;
using Ipv4Range = detail::RdataRange<dns::ARdata, detail::AddressProj>;
using Ipv6Range = detail::RdataRange<dns::AaaaRdata, detail::AddressProj>;

namespace detail {

// Shared implementations of the typed HTTPS-record accessors, written over
// a raw section pointer so the row form (HttpsObservation) and the
// columnar view (ObservationView) classify records through one body.
[[nodiscard]] bool section_has_ech(const std::vector<dns::Rr>* v);
[[nodiscard]] std::optional<dns::Bytes> section_ech_config(
    const std::vector<dns::Rr>* v);
[[nodiscard]] bool section_alias_mode(const std::vector<dns::Rr>* v);
[[nodiscard]] std::vector<net::Ipv4Addr> section_ipv4_hints(
    const std::vector<dns::Rr>* v);
[[nodiscard]] std::vector<net::Ipv6Addr> section_ipv6_hints(
    const std::vector<dns::Rr>* v);
[[nodiscard]] std::vector<std::string> section_alpn_protocols(
    const std::vector<dns::Rr>* v);
// True when `hints` is non-empty and equals the A records of `a` as a set.
// Takes the hints precomputed so callers that need them anyway (most do)
// walk the HTTPS section once instead of once per predicate.
[[nodiscard]] bool hints_match_a_section(std::span<const net::Ipv4Addr> hints,
                                         const std::vector<dns::Rr>* a);
// Content comparison for answer-section snapshots: shards hold distinct
// but equal cache vectors, and a never-filled section (null) must equal a
// filled-but-empty one.
[[nodiscard]] bool sections_equal(
    const std::shared_ptr<const std::vector<dns::Rr>>& a,
    const std::shared_ptr<const std::vector<dns::Rr>>& b);

}  // namespace detail

// One host (apex or www) scanned on one day.
struct HttpsObservation {
  bool answered = false;   // NOERROR response received
  bool servfail = false;
  bool nxdomain = false;
  bool followed_cname = false;

  bool rrsig_present = false;  // RRSIG covering the HTTPS RRset was returned
  bool ad = false;             // Authenticated Data bit in the response

  // Shared answer-section snapshots (null until the lookup ran; treated as
  // empty).  `https_answer` also carries the CNAME chain and RRSIGs of the
  // HTTPS response; the typed ranges below filter on access.
  std::shared_ptr<const std::vector<dns::Rr>> https_answer;
  std::shared_ptr<const std::vector<dns::Rr>> a_answer;
  std::shared_ptr<const std::vector<dns::Rr>> aaaa_answer;

  // Follow-up lookups (issued only when an HTTPS record was seen, §4.1).
  std::vector<dns::Name> ns_records;
  bool soa_present = false;

  [[nodiscard]] SvcbRange https_records() const {
    return SvcbRange(https_answer.get());
  }
  [[nodiscard]] Ipv4Range a_records() const {
    return Ipv4Range(a_answer.get());
  }
  [[nodiscard]] Ipv6Range aaaa_records() const {
    return Ipv6Range(aaaa_answer.get());
  }

  [[nodiscard]] bool has_https() const { return !https_records().empty(); }
  [[nodiscard]] bool has_ech() const {
    return detail::section_has_ech(https_answer.get());
  }
  [[nodiscard]] std::optional<dns::Bytes> ech_config() const {
    return detail::section_ech_config(https_answer.get());
  }
  [[nodiscard]] bool alias_mode() const {
    return detail::section_alias_mode(https_answer.get());
  }
  // All ipv4 hints across records.
  [[nodiscard]] std::vector<net::Ipv4Addr> ipv4_hints() const {
    return detail::section_ipv4_hints(https_answer.get());
  }
  [[nodiscard]] std::vector<net::Ipv6Addr> ipv6_hints() const {
    return detail::section_ipv6_hints(https_answer.get());
  }
  // Union of advertised ALPN protocol ids.
  [[nodiscard]] std::vector<std::string> alpn_protocols() const {
    return detail::section_alpn_protocols(https_answer.get());
  }
  // True when ipv4 hints are present and equal the A RRset as a set.  The
  // span overload takes hints the caller already extracted, so checking
  // "has hints" and "hints match" costs one HTTPS-section walk, not three.
  [[nodiscard]] bool hints_match_a() const {
    return hints_match_a(ipv4_hints());
  }
  [[nodiscard]] bool hints_match_a(
      std::span<const net::Ipv4Addr> hints) const {
    return detail::hints_match_a_section(hints, a_answer.get());
  }

  // Deep field-wise equality, used by the shard-count-invariance tests:
  // section snapshots compare by record content (null == empty), so
  // observations assembled by different shards' resolvers compare equal.
  friend bool operator==(const HttpsObservation& a, const HttpsObservation& b);
};

// Name-server side data for one NS host name.
struct NsInfo {
  std::vector<net::IpAddr> addresses;
  std::optional<std::string> whois_org;   // raw WHOIS answer
  std::optional<std::string> operator_name;  // after manual review

  friend bool operator==(const NsInfo&, const NsInfo&) = default;
};

}  // namespace httpsrr::scanner

// DailySnapshot and the columnar backing store live in columns.h; pulled
// in here (after the row types above, which it builds on) so the many
// existing includes of observation.h keep compiling unchanged.
#include "scanner/columns.h"  // IWYU pragma: keep
