#pragma once

// Columnar backing store for a day's scan — the structure-of-arrays form
// of the per-domain HttpsObservation rows, built for the paper's actual
// scale (1M domains/day for months).
//
// Layout, per host column (apex / www):
//   * one bit-packed flags byte per domain (answered/servfail/nxdomain/
//     followed_cname/rrsig_present/ad/soa_present);
//   * three 32-bit refs per domain into a deduplicated RRset interner —
//     most of the million rows share a handful of provider RRsets, and
//     every NOERROR-empty answer collapses to ref 0;
//   * a prefix-offset side table into one shared dns::Name pool for the
//     sparse NS data (most rows have none).
//
// That is ~17 bytes of column data per host instead of a ~200-byte row of
// three shared_ptr control blocks and a vector header.  Reads go through
// ObservationView (zero-copy accessor mirroring the HttpsObservation read
// API) or the materializing operator[], which rebuilds a full row so the
// pre-columnar call sites (`snapshot.apex[i].has_https()`, range-for over
// a column) compile unchanged.
//
// Lifetime rules: an ObservationView (and the spans/ranges it hands out)
// borrows from its column and is valid until the column is destroyed or
// appended to.  Columns share their interner by shared_ptr; copies of a
// snapshot therefore share interned sections, which is safe because
// entries are append-only and immutable — but only one writer (the Study)
// may append at a time.  Shard columns are built thread-locally and merged
// on the coordinating thread.
//
// This header is layered under scanner/observation.h (which includes it at
// the bottom); include either one.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/wire.h"
#include "scanner/observation.h"  // row types + typed ranges (layered pair)

namespace httpsrr::scanner {

struct HttpsObservation;
struct NsInfo;

// Deduplicating store of shared answer-section snapshots.  Ref 0 is the
// canonical "null or empty" section: the resolver's static shared empty
// vector — and any other empty section — interns to it for free, which is
// what collapses the ~3/4 of rows whose lookups answered with no records.
//
// Dedup runs in two tiers: a pointer map (shards re-serve the same cache
// vector to thousands of domains) and a content map keyed by a hash of the
// section's deterministic wire encoding (distinct-but-equal vectors from
// different resolver caches).  Hash collisions fall back to a deep record
// compare, so interning never changes equality semantics.
class RrsetInterner {
 public:
  using Section = std::shared_ptr<const std::vector<dns::Rr>>;

  static constexpr std::uint32_t kNullRef = 0;

  struct Stats {
    std::uint64_t pointer_hits = 0;
    std::uint64_t content_hits = 0;
    std::uint64_t empty_hits = 0;  // null/empty canonicalized to ref 0
    std::uint64_t misses = 0;      // new entries
    [[nodiscard]] double hit_rate() const {
      auto hits = pointer_hits + content_hits + empty_hits;
      auto total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  RrsetInterner();

  // Returns the ref for `section`, adding an entry on first sight.  Null
  // and empty sections canonicalize to kNullRef.
  std::uint32_t intern(const Section& section);

  // The records behind a ref; nullptr for kNullRef (read as empty).
  [[nodiscard]] const std::vector<dns::Rr>* records(std::uint32_t ref) const {
    return sections_[ref].get();
  }
  // Shared handle for materializing rows (null for kNullRef).
  [[nodiscard]] const Section& section(std::uint32_t ref) const {
    return sections_[ref];
  }
  // Content hash of a ref (0 for kNullRef) — the churn fingerprints fold
  // these in, so a day-over-day RRset change is one u64 compare away.
  [[nodiscard]] std::uint64_t content_hash(std::uint32_t ref) const {
    return hashes_[ref];
  }
  // Cached per-entry record counts by RDATA kind (computed once at intern
  // time) — the O(1) answer to "how many A records" that RdataRange::size
  // would otherwise re-walk per call.
  [[nodiscard]] std::uint32_t svcb_count(std::uint32_t ref) const {
    return svcb_counts_[ref];
  }
  [[nodiscard]] std::uint32_t a_count(std::uint32_t ref) const {
    return a_counts_[ref];
  }
  [[nodiscard]] std::uint32_t aaaa_count(std::uint32_t ref) const {
    return aaaa_counts_[ref];
  }

  [[nodiscard]] std::size_t entry_count() const { return sections_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Approximate heap footprint of the interner's own tables plus the
  // record vectors it pins (shared with the resolver caches).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] std::uint64_t hash_records(const std::vector<dns::Rr>& v);

  std::vector<Section> sections_;          // [0] = null
  std::vector<std::uint64_t> hashes_;      // [0] = 0
  std::vector<std::uint32_t> svcb_counts_;
  std::vector<std::uint32_t> a_counts_;
  std::vector<std::uint32_t> aaaa_counts_;
  std::unordered_map<const void*, std::uint32_t> by_pointer_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_content_;
  dns::WireWriter scratch_;  // reused per hash_records call
  Stats stats_;
};

class ObservationColumn;

// Zero-copy read accessor over one row of an ObservationColumn, mirroring
// the HttpsObservation read API as methods.  Self-contained: construction
// resolves the flags byte, section pointers, and NS span, so hot observer
// loops touch four cache lines per row instead of materializing a row.
class ObservationView {
 public:
  [[nodiscard]] bool answered() const { return (flags_ & kAnswered) != 0; }
  [[nodiscard]] bool servfail() const { return (flags_ & kServfail) != 0; }
  [[nodiscard]] bool nxdomain() const { return (flags_ & kNxdomain) != 0; }
  [[nodiscard]] bool followed_cname() const {
    return (flags_ & kFollowedCname) != 0;
  }
  [[nodiscard]] bool rrsig_present() const {
    return (flags_ & kRrsigPresent) != 0;
  }
  [[nodiscard]] bool ad() const { return (flags_ & kAd) != 0; }
  [[nodiscard]] bool soa_present() const { return (flags_ & kSoaPresent) != 0; }

  [[nodiscard]] std::span<const dns::Name> ns_records() const { return ns_; }

  [[nodiscard]] SvcbRange https_records() const { return SvcbRange(https_); }
  [[nodiscard]] Ipv4Range a_records() const { return Ipv4Range(a_); }
  [[nodiscard]] Ipv6Range aaaa_records() const { return Ipv6Range(aaaa_); }

  // Interned per-section record counts: O(1), no snapshot walk.
  [[nodiscard]] std::size_t https_record_count() const { return svcb_count_; }
  [[nodiscard]] std::size_t a_record_count() const { return a_count_; }
  [[nodiscard]] std::size_t aaaa_record_count() const { return aaaa_count_; }

  [[nodiscard]] bool has_https() const { return svcb_count_ != 0; }
  [[nodiscard]] bool has_ech() const { return detail::section_has_ech(https_); }
  [[nodiscard]] std::optional<dns::Bytes> ech_config() const {
    return detail::section_ech_config(https_);
  }
  [[nodiscard]] bool alias_mode() const {
    return detail::section_alias_mode(https_);
  }
  [[nodiscard]] std::vector<net::Ipv4Addr> ipv4_hints() const {
    return detail::section_ipv4_hints(https_);
  }
  [[nodiscard]] std::vector<net::Ipv6Addr> ipv6_hints() const {
    return detail::section_ipv6_hints(https_);
  }
  [[nodiscard]] std::vector<std::string> alpn_protocols() const {
    return detail::section_alpn_protocols(https_);
  }
  [[nodiscard]] bool hints_match_a() const {
    return hints_match_a(ipv4_hints());
  }
  [[nodiscard]] bool hints_match_a(
      std::span<const net::Ipv4Addr> hints) const {
    return detail::hints_match_a_section(hints, a_);
  }

  // A self-contained row copy (shares the interned section vectors).
  [[nodiscard]] HttpsObservation materialize() const;

  static constexpr std::uint8_t kAnswered = 1u << 0;
  static constexpr std::uint8_t kServfail = 1u << 1;
  static constexpr std::uint8_t kNxdomain = 1u << 2;
  static constexpr std::uint8_t kFollowedCname = 1u << 3;
  static constexpr std::uint8_t kRrsigPresent = 1u << 4;
  static constexpr std::uint8_t kAd = 1u << 5;
  static constexpr std::uint8_t kSoaPresent = 1u << 6;

 private:
  friend class ObservationColumn;
  ObservationView(std::uint8_t flags, const std::vector<dns::Rr>* https,
                  const std::vector<dns::Rr>* a,
                  const std::vector<dns::Rr>* aaaa,
                  std::uint32_t svcb_count, std::uint32_t a_count,
                  std::uint32_t aaaa_count, std::span<const dns::Name> ns,
                  const RrsetInterner::Section* https_handle,
                  const RrsetInterner::Section* a_handle,
                  const RrsetInterner::Section* aaaa_handle)
      : flags_(flags), svcb_count_(svcb_count), a_count_(a_count),
        aaaa_count_(aaaa_count), https_(https), a_(a), aaaa_(aaaa), ns_(ns),
        https_handle_(https_handle), a_handle_(a_handle),
        aaaa_handle_(aaaa_handle) {}

  std::uint8_t flags_;
  std::uint32_t svcb_count_, a_count_, aaaa_count_;
  const std::vector<dns::Rr>* https_;
  const std::vector<dns::Rr>* a_;
  const std::vector<dns::Rr>* aaaa_;
  std::span<const dns::Name> ns_;
  const RrsetInterner::Section* https_handle_;  // for materialize()
  const RrsetInterner::Section* a_handle_;
  const RrsetInterner::Section* aaaa_handle_;
};

// One host column (all apex rows, or all www rows) of a day.
class ObservationColumn {
 public:
  ObservationColumn() : ObservationColumn(std::make_shared<RrsetInterner>()) {}
  explicit ObservationColumn(std::shared_ptr<RrsetInterner> interner)
      : interner_(std::move(interner)), ns_offset_{0} {}

  [[nodiscard]] std::size_t size() const { return flags_.size(); }
  [[nodiscard]] bool empty() const { return flags_.empty(); }
  void reserve(std::size_t n);
  void clear();

  // Appends a classified row, interning its sections.
  void append(const HttpsObservation& row);
  // Appends every row of `src`, remapping its interner refs into ours
  // (pointer hits when src shares our interner's underlying vectors —
  // the shard-merge fast path).
  void append_column(const ObservationColumn& src);

  [[nodiscard]] ObservationView view(std::size_t i) const {
    return ObservationView(
        flags_[i], interner_->records(https_ref_[i]),
        interner_->records(a_ref_[i]), interner_->records(aaaa_ref_[i]),
        interner_->svcb_count(https_ref_[i]),
        interner_->a_count(a_ref_[i]), interner_->aaaa_count(aaaa_ref_[i]),
        std::span<const dns::Name>(ns_pool_.data() + ns_offset_[i],
                                   ns_offset_[i + 1] - ns_offset_[i]),
        &interner_->section(https_ref_[i]), &interner_->section(a_ref_[i]),
        &interner_->section(aaaa_ref_[i]));
  }

  // Materializing read — keeps the pre-columnar `snapshot.apex[i].field`
  // call sites compiling (the returned row is a value; a const& binding
  // lifetime-extends it).
  [[nodiscard]] HttpsObservation operator[](std::size_t i) const;

  // By-value iteration so range-for over a column still works.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = HttpsObservation;
    using difference_type = std::ptrdiff_t;

    const_iterator(const ObservationColumn* col, std::size_t i)
        : col_(col), i_(i) {}
    [[nodiscard]] HttpsObservation operator*() const;
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    const ObservationColumn* col_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  // Content fingerprint of one row: flags + section content hashes + NS
  // names.  Day-over-day equality of fingerprints is what the churn diff
  // keys on; any observable change to the row changes it.
  [[nodiscard]] std::uint64_t fingerprint(std::size_t i) const;

  [[nodiscard]] const RrsetInterner& interner() const { return *interner_; }
  [[nodiscard]] const std::shared_ptr<RrsetInterner>& interner_ptr() const {
    return interner_;
  }
  // Column-side bytes only (flags, refs, NS side table) — interner bytes
  // are accounted once per snapshot, not per column.
  [[nodiscard]] std::size_t column_bytes() const;

  // Deep row-wise equality with null==empty section semantics; columns
  // with different interners compare by record content.
  friend bool operator==(const ObservationColumn& x,
                         const ObservationColumn& y);

 private:
  std::shared_ptr<RrsetInterner> interner_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> https_ref_;
  std::vector<std::uint32_t> a_ref_;
  std::vector<std::uint32_t> aaaa_ref_;
  std::vector<std::uint32_t> ns_offset_;  // size()+1 prefix offsets
  std::vector<dns::Name> ns_pool_;
};

// Day-over-day churn diff, computed by the Study after each day's merge:
// which list rows are new, which changed content, which domains left, and
// the packed summary bits a delta-aware observer needs to update its
// counters without rescanning the 99% of rows that didn't move.
struct ChurnDiff {
  // Summary bits (see DailySnapshot::summary_bits).
  static constexpr std::uint8_t kApexHttps = 1u << 0;
  static constexpr std::uint8_t kWwwHttps = 1u << 1;
  static constexpr std::uint8_t kApexEch = 1u << 2;
  static constexpr std::uint8_t kApexSigned = 1u << 3;
  static constexpr std::uint8_t kApexValidated = 1u << 4;

  bool valid = false;  // false on a study's first observed day
  // True when a cross-day NS re-probe overwrote a cached NsInfo entry with
  // different content.  Row fingerprints do not cover the NS side-channel,
  // so on such a day an *unchanged* row can still change its WHOIS-based
  // attribution — ns-dependent delta observers must run a full pass.
  bool ns_info_refreshed = false;
  std::size_t unchanged = 0;  // rows listed both days with equal fingerprint
  std::vector<std::uint32_t> entered;  // list indices not listed yesterday
  std::vector<std::uint32_t> changed;  // list indices with fingerprint churn
  std::vector<std::uint8_t> changed_prev_bits;  // parallel to `changed`
  std::vector<ecosystem::DomainId> left;  // listed yesterday, absent today
  std::vector<std::uint8_t> left_prev_bits;  // parallel to `left`

  friend bool operator==(const ChurnDiff&, const ChurnDiff&) = default;
};

// Everything collected on one day.  `apex`/`www` share one RRset interner;
// `list` is today's Tranco list in rank order and the columns are parallel
// to it.
struct DailySnapshot {
  net::SimTime day;
  std::vector<ecosystem::DomainId> list;
  ObservationColumn apex;
  ObservationColumn www;
  std::unordered_map<dns::Name, NsInfo, dns::NameHash> ns_info;
  ChurnDiff churn;

  DailySnapshot();

  [[nodiscard]] std::size_t size() const { return list.size(); }

  // Packed adoption bits of row i (ChurnDiff::k* masks).
  [[nodiscard]] std::uint8_t summary_bits(std::size_t i) const;

  // ns_info entries ordered by canonical name order — the deterministic
  // iteration the digest and reports need now that the table is hashed.
  [[nodiscard]] std::vector<const std::pair<const dns::Name, NsInfo>*>
  sorted_ns_info() const;

  struct MemoryStats {
    std::size_t bytes_total = 0;       // columns + interner + list + NS table
    std::size_t column_bytes = 0;      // flags/refs/NS side tables
    std::size_t interner_bytes = 0;    // dedup tables + pinned record vectors
    std::size_t interned_sections = 0;
    double intern_hit_rate = 0.0;
    double bytes_per_domain = 0.0;
  };
  [[nodiscard]] MemoryStats memory_stats() const;

  friend bool operator==(const DailySnapshot& a, const DailySnapshot& b);
};

}  // namespace httpsrr::scanner
