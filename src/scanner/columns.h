#pragma once

// Columnar backing store for a day's scan — the structure-of-arrays form
// of the per-domain HttpsObservation rows, built for the paper's actual
// scale (1M domains/day for months).
//
// Layout, per host column (apex / www):
//   * one bit-packed flags byte per domain (answered/servfail/nxdomain/
//     followed_cname/rrsig_present/ad/soa_present);
//   * three 32-bit refs per domain into a deduplicated RRset interner —
//     most of the million rows share a handful of provider RRsets, and
//     every NOERROR-empty answer collapses to ref 0;
//   * a prefix-offset side table into one shared dns::Name pool for the
//     sparse NS data (most rows have none).
//
// That is ~17 bytes of column data per host instead of a ~200-byte row of
// three shared_ptr control blocks and a vector header.  Reads go through
// ObservationView (zero-copy accessor mirroring the HttpsObservation read
// API) or the materializing operator[], which rebuilds a full row so the
// pre-columnar call sites (`snapshot.apex[i].has_https()`, range-for over
// a column) compile unchanged.
//
// Lifetime rules: an ObservationView (and the spans/ranges it hands out)
// borrows from its column and is valid until the column is destroyed or
// appended to.  Columns share their interner by shared_ptr; copies of a
// snapshot therefore share interned sections, which is safe because
// entries are append-only and immutable — but only one writer (the Study)
// may append at a time.  Shard columns are built thread-locally and merged
// on the coordinating thread.
//
// This header is layered under scanner/observation.h (which includes it at
// the bottom); include either one.

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/wire.h"
#include "scanner/observation.h"  // row types + typed ranges (layered pair)
#include "util/rng.h"             // mix64 for the flat-table probe sequence

namespace httpsrr::scanner {

struct HttpsObservation;
struct NsInfo;

// Flat open-addressing key→ref table (linear probing, power-of-two sized,
// duplicate keys allowed, no erase — compaction rebuilds from scratch).
// One contiguous slot array instead of a node per entry: interning a
// million sections costs zero map-node allocations, a probe touches one
// cache line in the common case, and tearing a table down after a
// compaction is a single free instead of millions — the node-based maps
// this replaces made the interner's daily rebuild-and-discard cycle the
// second-largest line in the day's time budget.
class FlatRefTable {
 public:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  struct Cursor {
    std::size_t idx = 0;
  };

  [[nodiscard]] std::size_t size() const { return count_; }
  // Pre-sizes for n entries at under 3/4 load (never shrinks).
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 3 < n * 4) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  // Duplicate-key iteration: first() starts the probe walk, next()
  // resumes it past the previously returned slot.  kAbsent ends the walk.
  [[nodiscard]] std::uint32_t first(std::uint64_t key, Cursor& c) const {
    if (slots_.empty()) return kAbsent;
    c.idx = util::mix64(key) & (slots_.size() - 1);
    return scan(key, c);
  }
  [[nodiscard]] std::uint32_t next(std::uint64_t key, Cursor& c) const {
    if (slots_.empty()) return kAbsent;
    c.idx = (c.idx + 1) & (slots_.size() - 1);
    return scan(key, c);
  }
  void insert(std::uint64_t key, std::uint32_t val) {
    if (slots_.empty() || (count_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = util::mix64(key) & mask;
    while (slots_[i].val != kAbsent) i = (i + 1) & mask;
    slots_[i] = Slot{key, val};
    ++count_;
  }
  [[nodiscard]] std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key;
    std::uint32_t val;
  };
  [[nodiscard]] std::uint32_t scan(std::uint64_t key, Cursor& c) const {
    const std::size_t mask = slots_.size() - 1;
    while (slots_[c.idx].val != kAbsent) {
      if (slots_[c.idx].key == key) return slots_[c.idx].val;
      c.idx = (c.idx + 1) & mask;
    }
    return kAbsent;
  }
  void rehash(std::size_t n) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(n, Slot{0, kAbsent});
    for (const auto& s : old) {
      if (s.val == kAbsent) continue;
      std::size_t i = util::mix64(s.key) & (n - 1);
      while (slots_[i].val != kAbsent) i = (i + 1) & (n - 1);
      slots_[i] = s;
    }
  }
  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

// Deduplicating store of shared answer-section snapshots.  Ref 0 is the
// canonical "null or empty" section: the resolver's static shared empty
// vector — and any other empty section — interns to it for free, which is
// what collapses the ~3/4 of rows whose lookups answered with no records.
//
// Dedup runs in two tiers: a pointer map (shards re-serve the same cache
// vector to thousands of domains) and a content map keyed by a hash of the
// section's deterministic wire encoding (distinct-but-equal vectors from
// different resolver caches).  Hash collisions fall back to a deep record
// compare, so interning never changes equality semantics.
class RrsetInterner {
 public:
  using Section = std::shared_ptr<const std::vector<dns::Rr>>;

  static constexpr std::uint32_t kNullRef = 0;

  struct Stats {
    std::uint64_t pointer_hits = 0;
    std::uint64_t content_hits = 0;
    std::uint64_t empty_hits = 0;  // null/empty canonicalized to ref 0
    std::uint64_t misses = 0;      // new entries
    std::uint64_t compactions = 0;       // compact_into() passes survived
    std::uint64_t compaction_freed = 0;  // entries dropped across all passes
    [[nodiscard]] double hit_rate() const {
      auto hits = pointer_hits + content_hits + empty_hits;
      auto total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  // Table health for the per-day report lines: hit_rate alone hides a
  // table full of dead weight, so liveness is broken out explicitly.
  struct Health {
    std::size_t entries = 0;     // table entries (the null entry excluded)
    std::size_t live = 0;        // referenced at generation >= min_generation
    std::size_t tombstones = 0;  // dead weight the next compaction frees
  };

  RrsetInterner();

  // Returns the ref for `section`, adding an entry on first sight.  Null
  // and empty sections canonicalize to kNullRef.  The returned ref's entry
  // is stamped with the current generation (see begin_generation).
  std::uint32_t intern(const Section& section);

  // ---- Liveness & compaction (longitudinal GC, see DESIGN.md) ----------
  //
  // The Study scans every day into one persistent interner; a generation
  // is one scan day.  Every intern()/touch() stamps the entry with the
  // current generation, and compact_into() rebuilds the table densely from
  // the entries a retained window still references — evicted refs remap to
  // kNullRef, surviving refs get contiguous new values, and per-entry
  // content hashes ride along unchanged, which is what keeps churn
  // fingerprints and delta-observer numerators bit-identical across a
  // compaction.

  void begin_generation(std::uint32_t generation) { generation_ = generation; }
  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  // Re-stamps a ref emitted without an intern() call (the same-interner
  // append_column fast path).
  void touch(std::uint32_t ref) {
    if (ref != kNullRef) last_used_[ref] = generation_;
  }
  [[nodiscard]] std::uint32_t last_used(std::uint32_t ref) const {
    return last_used_[ref];
  }

  [[nodiscard]] Health health(std::uint32_t min_generation) const;

  struct Compaction {
    std::shared_ptr<RrsetInterner> interner;  // dense rebuild, survivors only
    std::vector<std::uint32_t> remap;  // old ref -> new ref; dead -> kNullRef
    std::size_t freed = 0;
  };
  // Copy-on-compact: builds a fresh interner holding only the entries last
  // referenced at generation >= min_generation (ref 0 always survives) and
  // the remap to rebind retained columns.  `this` is left untouched — any
  // snapshot still holding it stays valid and keeps the old entries alive
  // until its last holder lets go; that shared_ptr hand-off is the whole
  // "who may hold a Section across a compaction" story.
  [[nodiscard]] Compaction compact_into(std::uint32_t min_generation) const;

  // The records behind a ref; nullptr for kNullRef (read as empty).
  [[nodiscard]] const std::vector<dns::Rr>* records(std::uint32_t ref) const {
    return sections_[ref].get();
  }
  // Shared handle for materializing rows (null for kNullRef).
  [[nodiscard]] const Section& section(std::uint32_t ref) const {
    return sections_[ref];
  }
  // Content hash of a ref (0 for kNullRef) — the churn fingerprints fold
  // these in, so a day-over-day RRset change is one u64 compare away.
  [[nodiscard]] std::uint64_t content_hash(std::uint32_t ref) const {
    return hashes_[ref];
  }
  // Cached per-entry record counts by RDATA kind (computed once at intern
  // time) — the O(1) answer to "how many A records" that RdataRange::size
  // would otherwise re-walk per call.
  [[nodiscard]] std::uint32_t svcb_count(std::uint32_t ref) const {
    return svcb_counts_[ref];
  }
  [[nodiscard]] std::uint32_t a_count(std::uint32_t ref) const {
    return a_counts_[ref];
  }
  [[nodiscard]] std::uint32_t aaaa_count(std::uint32_t ref) const {
    return aaaa_counts_[ref];
  }

  [[nodiscard]] std::size_t entry_count() const { return sections_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Approximate heap footprint of the interner's own tables plus the
  // record vectors it pins (shared with the resolver caches).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] std::uint64_t hash_records(const std::vector<dns::Rr>& v);
  void push_entry(const Section& section, std::uint64_t hash);

  // The pointer memo is a bet that callers re-present the same vector
  // address (response flyweights held by memo caches, shard canonicals
  // walked twice during a merge).  At the million-domain scale that bet
  // never pays: the response memos thrash and every serve is a fresh
  // vector, so the tier's upkeep — an insert per miss, an insert plus a
  // pin-until-compaction keepalive per content hit — is pure waste.
  // Retire it adaptively: once a large probe sample has gone essentially
  // unanswered, stop registering.  Deterministic (a pure function of the
  // intern-call sequence, carried across compactions with stats_), and
  // unobservable in output: dedup decisions fall through to the content
  // tier with identical results.  The 64Ki floor keeps small studies —
  // where the memo caches do hold and pointer hits dominate — active
  // forever.
  [[nodiscard]] bool pointer_tier_active() const {
    return stats_.pointer_hits * 8 + 65536 >= stats_.content_hits + stats_.misses;
  }

  std::vector<Section> sections_;          // [0] = null
  std::vector<std::uint64_t> hashes_;      // [0] = 0
  std::vector<std::uint32_t> svcb_counts_;
  std::vector<std::uint32_t> a_counts_;
  std::vector<std::uint32_t> aaaa_counts_;
  std::vector<std::uint32_t> last_used_;   // generation of last intern/touch
  // Pointer addresses and content hashes both key into flat tables: ref
  // values are always >= 1 here (null/empty short-circuits), so kAbsent is
  // never a stored value.
  static std::uint64_t pointer_key(const void* p) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
  }
  FlatRefTable by_pointer_;
  FlatRefTable by_content_;
  // Keepalives for the pointer map's content-hit entries: a key whose
  // vector is NOT the canonical section must be pinned, or the caller may
  // free it and a later allocation at the same address would alias into a
  // false pointer hit.  Cleared (with by_pointer_) on every compaction —
  // pointer identity only pays within a day anyway.
  std::vector<Section> pinned_;
  dns::WireWriter scratch_;  // reused per hash_records call
  std::uint32_t generation_ = 0;
  Stats stats_;
};

class ObservationColumn;

// Zero-copy read accessor over one row of an ObservationColumn, mirroring
// the HttpsObservation read API as methods.  Self-contained: construction
// resolves the flags byte, section pointers, and NS span, so hot observer
// loops touch four cache lines per row instead of materializing a row.
class ObservationView {
 public:
  [[nodiscard]] bool answered() const { return (flags_ & kAnswered) != 0; }
  [[nodiscard]] bool servfail() const { return (flags_ & kServfail) != 0; }
  [[nodiscard]] bool nxdomain() const { return (flags_ & kNxdomain) != 0; }
  [[nodiscard]] bool followed_cname() const {
    return (flags_ & kFollowedCname) != 0;
  }
  [[nodiscard]] bool rrsig_present() const {
    return (flags_ & kRrsigPresent) != 0;
  }
  [[nodiscard]] bool ad() const { return (flags_ & kAd) != 0; }
  [[nodiscard]] bool soa_present() const { return (flags_ & kSoaPresent) != 0; }

  [[nodiscard]] std::span<const dns::Name> ns_records() const { return ns_; }

  [[nodiscard]] SvcbRange https_records() const { return SvcbRange(https_); }
  [[nodiscard]] Ipv4Range a_records() const { return Ipv4Range(a_); }
  [[nodiscard]] Ipv6Range aaaa_records() const { return Ipv6Range(aaaa_); }

  // Interned per-section record counts: O(1), no snapshot walk.
  [[nodiscard]] std::size_t https_record_count() const { return svcb_count_; }
  [[nodiscard]] std::size_t a_record_count() const { return a_count_; }
  [[nodiscard]] std::size_t aaaa_record_count() const { return aaaa_count_; }

  [[nodiscard]] bool has_https() const { return svcb_count_ != 0; }
  [[nodiscard]] bool has_ech() const { return detail::section_has_ech(https_); }
  [[nodiscard]] std::optional<dns::Bytes> ech_config() const {
    return detail::section_ech_config(https_);
  }
  [[nodiscard]] bool alias_mode() const {
    return detail::section_alias_mode(https_);
  }
  [[nodiscard]] std::vector<net::Ipv4Addr> ipv4_hints() const {
    return detail::section_ipv4_hints(https_);
  }
  [[nodiscard]] std::vector<net::Ipv6Addr> ipv6_hints() const {
    return detail::section_ipv6_hints(https_);
  }
  [[nodiscard]] std::vector<std::string> alpn_protocols() const {
    return detail::section_alpn_protocols(https_);
  }
  [[nodiscard]] bool hints_match_a() const {
    return hints_match_a(ipv4_hints());
  }
  [[nodiscard]] bool hints_match_a(
      std::span<const net::Ipv4Addr> hints) const {
    return detail::hints_match_a_section(hints, a_);
  }

  // A self-contained row copy (shares the interned section vectors).
  [[nodiscard]] HttpsObservation materialize() const;

  static constexpr std::uint8_t kAnswered = 1u << 0;
  static constexpr std::uint8_t kServfail = 1u << 1;
  static constexpr std::uint8_t kNxdomain = 1u << 2;
  static constexpr std::uint8_t kFollowedCname = 1u << 3;
  static constexpr std::uint8_t kRrsigPresent = 1u << 4;
  static constexpr std::uint8_t kAd = 1u << 5;
  static constexpr std::uint8_t kSoaPresent = 1u << 6;

 private:
  friend class ObservationColumn;
  ObservationView(std::uint8_t flags, const std::vector<dns::Rr>* https,
                  const std::vector<dns::Rr>* a,
                  const std::vector<dns::Rr>* aaaa,
                  std::uint32_t svcb_count, std::uint32_t a_count,
                  std::uint32_t aaaa_count, std::span<const dns::Name> ns,
                  const RrsetInterner::Section* https_handle,
                  const RrsetInterner::Section* a_handle,
                  const RrsetInterner::Section* aaaa_handle)
      : flags_(flags), svcb_count_(svcb_count), a_count_(a_count),
        aaaa_count_(aaaa_count), https_(https), a_(a), aaaa_(aaaa), ns_(ns),
        https_handle_(https_handle), a_handle_(a_handle),
        aaaa_handle_(aaaa_handle) {}

  std::uint8_t flags_;
  std::uint32_t svcb_count_, a_count_, aaaa_count_;
  const std::vector<dns::Rr>* https_;
  const std::vector<dns::Rr>* a_;
  const std::vector<dns::Rr>* aaaa_;
  std::span<const dns::Name> ns_;
  const RrsetInterner::Section* https_handle_;  // for materialize()
  const RrsetInterner::Section* a_handle_;
  const RrsetInterner::Section* aaaa_handle_;
};

// One host column (all apex rows, or all www rows) of a day.
class ObservationColumn {
 public:
  ObservationColumn() : ObservationColumn(std::make_shared<RrsetInterner>()) {}
  explicit ObservationColumn(std::shared_ptr<RrsetInterner> interner)
      : interner_(std::move(interner)), ns_offset_{0} {}

  [[nodiscard]] std::size_t size() const { return flags_.size(); }
  [[nodiscard]] bool empty() const { return flags_.empty(); }
  void reserve(std::size_t n);
  void clear();

  // Appends a classified row, interning its sections.
  void append(const HttpsObservation& row);
  // Appends every row of `src`, remapping its interner refs into ours
  // (pointer hits when src shares our interner's underlying vectors —
  // the shard-merge fast path).
  void append_column(const ObservationColumn& src);
  // Applies a compaction remap: every ref rewritten to its new value and
  // the column rebound to the compacted interner.  The remap must cover
  // every ref this column holds with a live (non-kNullRef) target for
  // non-null refs — i.e. the column must be inside the retained window the
  // compaction was computed for.
  void rebind(const RrsetInterner::Compaction& compaction);

  [[nodiscard]] ObservationView view(std::size_t i) const {
    return ObservationView(
        flags_[i], interner_->records(https_ref_[i]),
        interner_->records(a_ref_[i]), interner_->records(aaaa_ref_[i]),
        interner_->svcb_count(https_ref_[i]),
        interner_->a_count(a_ref_[i]), interner_->aaaa_count(aaaa_ref_[i]),
        std::span<const dns::Name>(ns_pool_.data() + ns_offset_[i],
                                   ns_offset_[i + 1] - ns_offset_[i]),
        &interner_->section(https_ref_[i]), &interner_->section(a_ref_[i]),
        &interner_->section(aaaa_ref_[i]));
  }

  // Materializing read — keeps the pre-columnar `snapshot.apex[i].field`
  // call sites compiling (the returned row is a value; a const& binding
  // lifetime-extends it).
  [[nodiscard]] HttpsObservation operator[](std::size_t i) const;

  // By-value iteration so range-for over a column still works.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = HttpsObservation;
    using difference_type = std::ptrdiff_t;

    const_iterator(const ObservationColumn* col, std::size_t i)
        : col_(col), i_(i) {}
    [[nodiscard]] HttpsObservation operator*() const;
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator&,
                           const const_iterator&) = default;

   private:
    const ObservationColumn* col_;
    std::size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

  // Content fingerprint of one row: flags + section content hashes + NS
  // names.  Day-over-day equality of fingerprints is what the churn diff
  // keys on; any observable change to the row changes it.
  [[nodiscard]] std::uint64_t fingerprint(std::size_t i) const;

  [[nodiscard]] const RrsetInterner& interner() const { return *interner_; }
  [[nodiscard]] const std::shared_ptr<RrsetInterner>& interner_ptr() const {
    return interner_;
  }
  // Column-side bytes only (flags, refs, NS side table) — interner bytes
  // are accounted once per snapshot, not per column.
  [[nodiscard]] std::size_t column_bytes() const;

  // Deep row-wise equality with null==empty section semantics; columns
  // with different interners compare by record content.
  friend bool operator==(const ObservationColumn& x,
                         const ObservationColumn& y);

 private:
  std::shared_ptr<RrsetInterner> interner_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> https_ref_;
  std::vector<std::uint32_t> a_ref_;
  std::vector<std::uint32_t> aaaa_ref_;
  std::vector<std::uint32_t> ns_offset_;  // size()+1 prefix offsets
  std::vector<dns::Name> ns_pool_;
};

// Day-over-day churn diff, computed by the Study after each day's merge:
// which list rows are new, which changed content, which domains left, and
// the packed summary bits a delta-aware observer needs to update its
// counters without rescanning the 99% of rows that didn't move.
struct ChurnDiff {
  // Summary bits (see DailySnapshot::summary_bits).
  static constexpr std::uint8_t kApexHttps = 1u << 0;
  static constexpr std::uint8_t kWwwHttps = 1u << 1;
  static constexpr std::uint8_t kApexEch = 1u << 2;
  static constexpr std::uint8_t kApexSigned = 1u << 3;
  static constexpr std::uint8_t kApexValidated = 1u << 4;

  bool valid = false;  // false on a study's first observed day
  // True when a cross-day NS re-probe overwrote a cached NsInfo entry with
  // different content.  Row fingerprints do not cover the NS side-channel,
  // so on such a day an *unchanged* row can still change its WHOIS-based
  // attribution — ns-dependent delta observers must run a full pass.
  bool ns_info_refreshed = false;
  std::size_t unchanged = 0;  // rows listed both days with equal fingerprint
  std::vector<std::uint32_t> entered;  // list indices not listed yesterday
  std::vector<std::uint32_t> changed;  // list indices with fingerprint churn
  std::vector<std::uint8_t> changed_prev_bits;  // parallel to `changed`
  std::vector<ecosystem::DomainId> left;  // listed yesterday, absent today
  std::vector<std::uint8_t> left_prev_bits;  // parallel to `left`

  friend bool operator==(const ChurnDiff&, const ChurnDiff&) = default;
};

// Everything collected on one day.  `apex`/`www` share one RRset interner;
// `list` is today's Tranco list in rank order and the columns are parallel
// to it.
struct DailySnapshot {
  net::SimTime day;
  std::vector<ecosystem::DomainId> list;
  ObservationColumn apex;
  ObservationColumn www;
  std::unordered_map<dns::Name, NsInfo, dns::NameHash> ns_info;
  ChurnDiff churn;

  DailySnapshot();
  // Longitudinal form: both columns ride the caller's (persistent) interner
  // — the Study's day snapshots share one interner across days so the
  // retained ring and today's scan dedup against each other.
  explicit DailySnapshot(std::shared_ptr<RrsetInterner> interner);

  [[nodiscard]] std::size_t size() const { return list.size(); }

  // Packed adoption bits of row i (ChurnDiff::k* masks).
  [[nodiscard]] std::uint8_t summary_bits(std::size_t i) const;

  // ns_info entries ordered by canonical name order — the deterministic
  // iteration the digest and reports need now that the table is hashed.
  [[nodiscard]] std::vector<const std::pair<const dns::Name, NsInfo>*>
  sorted_ns_info() const;

  struct MemoryStats {
    std::size_t bytes_total = 0;       // columns + interner + list + NS table
    std::size_t column_bytes = 0;      // flags/refs/NS side tables
    std::size_t interner_bytes = 0;    // dedup tables + pinned record vectors
    std::size_t interned_sections = 0;
    double intern_hit_rate = 0.0;
    double bytes_per_domain = 0.0;
  };
  [[nodiscard]] MemoryStats memory_stats() const;

  friend bool operator==(const DailySnapshot& a, const DailySnapshot& b);
};

}  // namespace httpsrr::scanner
