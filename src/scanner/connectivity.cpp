#include "scanner/connectivity.h"

#include <algorithm>

namespace httpsrr::scanner {

void ConnectivityAudit::on_day(const DailySnapshot& snapshot,
                               const ecosystem::Internet& net) {
  if (snapshot.day < from_ || snapshot.day > to_) return;

  for (std::size_t i = 0; i < snapshot.list.size(); ++i) {
    const auto obs = snapshot.apex.view(i);
    if (!obs.has_https()) continue;
    auto hints = obs.ipv4_hints();
    auto a_records = obs.a_records();
    if (hints.empty() || obs.a_record_count() == 0) continue;

    auto& record = domains_[snapshot.list[i]];
    ++record.observed_days;
    if (obs.hints_match_a(hints)) continue;

    ++occurrences_;
    ++record.mismatch_days;

    // Probe every address in hint ∪ A on port 443 (the OpenSSL client step).
    auto reachable = [&net](net::Ipv4Addr ip) {
      return net.network()
          .connect(net::Endpoint{net::IpAddr(ip), 443})
          .ok();
    };
    bool any_hint_ok = std::any_of(hints.begin(), hints.end(), reachable);
    bool all_hint_ok = std::all_of(hints.begin(), hints.end(), reachable);
    bool any_a_ok =
        std::any_of(a_records.begin(), a_records.end(), reachable);
    bool all_a_ok =
        std::all_of(a_records.begin(), a_records.end(), reachable);

    if (!all_hint_ok || !all_a_ok) record.any_unreachable = true;
    if (any_hint_ok && !any_a_ok) record.hint_only = true;
    if (any_a_ok && !any_hint_ok) record.a_only = true;
  }
}

ConnectivityAudit::Result ConnectivityAudit::result() const {
  Result out;
  out.occurrences = occurrences_;
  for (const auto& [id, record] : domains_) {
    (void)id;
    if (record.mismatch_days == 0) continue;
    ++out.distinct_domains;
    if (record.any_unreachable) ++out.domains_with_unreachable;
    if (record.hint_only && !record.a_only) ++out.hint_only_reachable;
    if (record.a_only && !record.hint_only) ++out.a_only_reachable;
    if (record.mismatch_days == record.observed_days && record.observed_days > 1) {
      ++out.always_mismatched;
    }
  }
  return out;
}

}  // namespace httpsrr::scanner
