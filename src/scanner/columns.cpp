#include "scanner/columns.h"

#include <algorithm>

#include "util/rng.h"

namespace httpsrr::scanner {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

// Deep comparison of two refs possibly from different interners, with the
// null==empty semantics of HttpsObservation sections.  Non-zero refs are
// never empty (intern canonicalizes), so the kNullRef checks suffice.
bool refs_equal(const RrsetInterner& ia, std::uint32_t ra,
                const RrsetInterner& ib, std::uint32_t rb) {
  if (&ia == &ib && ra == rb) return true;
  const auto* va = ia.records(ra);
  const auto* vb = ib.records(rb);
  if (va == vb) return true;  // same shared vector (or both null)
  if (va == nullptr || vb == nullptr) return false;
  return *va == *vb;
}

}  // namespace

RrsetInterner::RrsetInterner() {
  // Entry 0: the canonical null/empty section.
  sections_.emplace_back();
  hashes_.push_back(0);
  svcb_counts_.push_back(0);
  a_counts_.push_back(0);
  aaaa_counts_.push_back(0);
  last_used_.push_back(0);
}

std::uint64_t RrsetInterner::hash_records(const std::vector<dns::Rr>& v) {
  // Wire-encode the section into the reused scratch writer: encode_rr is
  // deterministic for equal record content (the compression table resets
  // with the buffer), so equal sections hash equal.  Sections that differ
  // only in name case hash apart — that merely costs a duplicate entry;
  // equality comparisons never trust the hash.
  scratch_.clear();
  for (const auto& rr : v) {
    dns::encode_rr(rr, scratch_);
  }
  const auto& bytes = scratch_.data();
  return fnv1a(kFnvOffset, bytes.data(), bytes.size());
}

void RrsetInterner::push_entry(const Section& section, std::uint64_t hash) {
  sections_.push_back(section);
  hashes_.push_back(hash);
  std::uint32_t svcb = 0, a = 0, aaaa = 0;
  for (const auto& rr : *section) {
    if (std::holds_alternative<dns::SvcbRdata>(rr.rdata)) ++svcb;
    else if (std::holds_alternative<dns::ARdata>(rr.rdata)) ++a;
    else if (std::holds_alternative<dns::AaaaRdata>(rr.rdata)) ++aaaa;
  }
  svcb_counts_.push_back(svcb);
  a_counts_.push_back(a);
  aaaa_counts_.push_back(aaaa);
  last_used_.push_back(generation_);
}

std::uint32_t RrsetInterner::intern(const Section& section) {
  if (!section || section->empty()) {
    ++stats_.empty_hits;
    return kNullRef;
  }
  const std::uint64_t pkey = pointer_key(section.get());
  FlatRefTable::Cursor pc;
  if (const std::uint32_t hit = by_pointer_.first(pkey, pc);
      hit != FlatRefTable::kAbsent) {
    ++stats_.pointer_hits;
    last_used_[hit] = generation_;
    return hit;
  }
  const std::uint64_t h = hash_records(*section);
  FlatRefTable::Cursor cc;
  for (std::uint32_t ref = by_content_.first(h, cc);
       ref != FlatRefTable::kAbsent; ref = by_content_.next(h, cc)) {
    if (*sections_[ref] == *section) {
      ++stats_.content_hits;
      if (pointer_tier_active()) {
        by_pointer_.insert(pkey, ref);
        // The key vector is a duplicate the caller may free: pin it, or a
        // later allocation reusing the address would falsely pointer-hit.
        pinned_.push_back(section);
      }
      last_used_[ref] = generation_;
      return ref;
    }
  }
  ++stats_.misses;
  const auto ref = static_cast<std::uint32_t>(sections_.size());
  push_entry(section, h);
  by_content_.insert(h, ref);
  if (pointer_tier_active()) by_pointer_.insert(pkey, ref);
  return ref;
}

RrsetInterner::Health RrsetInterner::health(
    std::uint32_t min_generation) const {
  Health h;
  h.entries = sections_.size() - 1;  // skip the null entry
  for (std::size_t i = 1; i < last_used_.size(); ++i) {
    if (last_used_[i] >= min_generation) ++h.live;
  }
  h.tombstones = h.entries - h.live;
  return h;
}

RrsetInterner::Compaction RrsetInterner::compact_into(
    std::uint32_t min_generation) const {
  Compaction out;
  auto dense = std::make_shared<RrsetInterner>();
  out.remap.assign(sections_.size(), kNullRef);
  // Pre-count survivors so the dense copy allocates once.  The headroom
  // (half again the live count) covers the coming day's churn inserts
  // without a mid-scan rehash of the rebuilt tables — the rehash storms of
  // growing two node-based maps from empty were most of compaction's cost.
  std::size_t live = 0;
  for (std::size_t i = 1; i < sections_.size(); ++i) {
    if (last_used_[i] >= min_generation) ++live;
  }
  const std::size_t headroom = live + 1 + live / 2;
  dense->sections_.reserve(headroom);
  dense->hashes_.reserve(headroom);
  dense->svcb_counts_.reserve(headroom);
  dense->a_counts_.reserve(headroom);
  dense->aaaa_counts_.reserve(headroom);
  dense->last_used_.reserve(headroom);
  const bool reseed_pointers = pointer_tier_active();
  if (reseed_pointers) dense->by_pointer_.reserve(headroom);
  dense->by_content_.reserve(headroom);
  for (std::size_t i = 1; i < sections_.size(); ++i) {
    if (last_used_[i] < min_generation) {
      ++out.freed;
      continue;
    }
    const auto ref = static_cast<std::uint32_t>(dense->sections_.size());
    dense->sections_.push_back(sections_[i]);
    dense->hashes_.push_back(hashes_[i]);
    dense->svcb_counts_.push_back(svcb_counts_[i]);
    dense->a_counts_.push_back(a_counts_[i]);
    dense->aaaa_counts_.push_back(aaaa_counts_[i]);
    dense->last_used_.push_back(last_used_[i]);  // keep the original stamp
    dense->by_content_.insert(hashes_[i], ref);
    // Canonical sections are pinned by the table itself — their pointer
    // keys can never dangle, so the next day's cache-shared vectors keep
    // their pointer-hit fast path.  Duplicate (pinned_) keys are dropped:
    // they re-enter as content hits on their next sighting.  A retired
    // pointer tier (see pointer_tier_active) is not reseeded at all.
    if (reseed_pointers) {
      dense->by_pointer_.insert(pointer_key(sections_[i].get()), ref);
    }
    out.remap[i] = ref;
  }
  dense->generation_ = generation_;
  dense->stats_ = stats_;
  ++dense->stats_.compactions;
  dense->stats_.compaction_freed += out.freed;
  out.interner = std::move(dense);
  return out;
}

std::size_t RrsetInterner::memory_bytes() const {
  std::size_t bytes = sections_.capacity() * sizeof(Section) +
                      hashes_.capacity() * sizeof(std::uint64_t) +
                      (svcb_counts_.capacity() + a_counts_.capacity() +
                       aaaa_counts_.capacity() + last_used_.capacity()) *
                          sizeof(std::uint32_t) +
                      pinned_.capacity() * sizeof(Section);
  // Flat dedup tables: one slot array each, no per-node heap cost.
  bytes += by_pointer_.memory_bytes() + by_content_.memory_bytes();
  // Pinned record vectors (shared with resolver caches, counted here so
  // bytes-per-domain reflects what the snapshot keeps alive).
  for (const auto& section : sections_) {
    if (section) bytes += section->capacity() * sizeof(dns::Rr);
  }
  return bytes;
}

void ObservationColumn::reserve(std::size_t n) {
  flags_.reserve(n);
  https_ref_.reserve(n);
  a_ref_.reserve(n);
  aaaa_ref_.reserve(n);
  ns_offset_.reserve(n + 1);
}

void ObservationColumn::clear() {
  flags_.clear();
  https_ref_.clear();
  a_ref_.clear();
  aaaa_ref_.clear();
  ns_offset_.assign(1, 0);
  ns_pool_.clear();
}

void ObservationColumn::append(const HttpsObservation& row) {
  std::uint8_t flags = 0;
  if (row.answered) flags |= ObservationView::kAnswered;
  if (row.servfail) flags |= ObservationView::kServfail;
  if (row.nxdomain) flags |= ObservationView::kNxdomain;
  if (row.followed_cname) flags |= ObservationView::kFollowedCname;
  if (row.rrsig_present) flags |= ObservationView::kRrsigPresent;
  if (row.ad) flags |= ObservationView::kAd;
  if (row.soa_present) flags |= ObservationView::kSoaPresent;
  flags_.push_back(flags);
  https_ref_.push_back(interner_->intern(row.https_answer));
  a_ref_.push_back(interner_->intern(row.a_answer));
  aaaa_ref_.push_back(interner_->intern(row.aaaa_answer));
  ns_pool_.insert(ns_pool_.end(), row.ns_records.begin(),
                  row.ns_records.end());
  ns_offset_.push_back(static_cast<std::uint32_t>(ns_pool_.size()));
}

void ObservationColumn::append_column(const ObservationColumn& src) {
  const std::size_t n = src.size();
  flags_.insert(flags_.end(), src.flags_.begin(), src.flags_.end());
  const bool same = interner_ == src.interner_;
  for (std::size_t i = 0; i < n; ++i) {
    if (same) {
      // Refs re-emitted without an intern() call still count as uses: the
      // liveness stamp must cover them or a compaction could evict an
      // entry this column references.
      interner_->touch(src.https_ref_[i]);
      interner_->touch(src.a_ref_[i]);
      interner_->touch(src.aaaa_ref_[i]);
      https_ref_.push_back(src.https_ref_[i]);
      a_ref_.push_back(src.a_ref_[i]);
      aaaa_ref_.push_back(src.aaaa_ref_[i]);
    } else {
      // Remap into our interner; the shared_ptrs are the same objects the
      // shard interned, so these resolve as pointer hits after first sight.
      https_ref_.push_back(
          interner_->intern(src.interner_->section(src.https_ref_[i])));
      a_ref_.push_back(
          interner_->intern(src.interner_->section(src.a_ref_[i])));
      aaaa_ref_.push_back(
          interner_->intern(src.interner_->section(src.aaaa_ref_[i])));
    }
  }
  const auto base = static_cast<std::uint32_t>(ns_pool_.size());
  ns_pool_.insert(ns_pool_.end(), src.ns_pool_.begin(), src.ns_pool_.end());
  for (std::size_t i = 1; i <= n; ++i) {
    ns_offset_.push_back(base + src.ns_offset_[i]);
  }
}

void ObservationColumn::rebind(const RrsetInterner::Compaction& compaction) {
  const auto apply = [&compaction](std::vector<std::uint32_t>& refs) {
    for (auto& ref : refs) ref = compaction.remap[ref];
  };
  apply(https_ref_);
  apply(a_ref_);
  apply(aaaa_ref_);
  interner_ = compaction.interner;
}

HttpsObservation ObservationColumn::operator[](std::size_t i) const {
  return view(i).materialize();
}

HttpsObservation ObservationColumn::const_iterator::operator*() const {
  return (*col_)[i_];
}

HttpsObservation ObservationView::materialize() const {
  HttpsObservation row;
  row.answered = answered();
  row.servfail = servfail();
  row.nxdomain = nxdomain();
  row.followed_cname = followed_cname();
  row.rrsig_present = rrsig_present();
  row.ad = ad();
  row.soa_present = soa_present();
  row.https_answer = *https_handle_;
  row.a_answer = *a_handle_;
  row.aaaa_answer = *aaaa_handle_;
  row.ns_records.assign(ns_.begin(), ns_.end());
  return row;
}

std::uint64_t ObservationColumn::fingerprint(std::size_t i) const {
  std::uint64_t h = kFnvOffset;
  auto fold = [&h](std::uint64_t v) { h = util::mix64(h ^ v); };
  fold(flags_[i]);
  fold(interner_->content_hash(https_ref_[i]));
  fold(interner_->content_hash(a_ref_[i]));
  fold(interner_->content_hash(aaaa_ref_[i]));
  const std::uint32_t begin = ns_offset_[i], end = ns_offset_[i + 1];
  fold(end - begin);
  for (std::uint32_t j = begin; j < end; ++j) {
    fold(ns_pool_[j].hash());  // case-folded name hash
  }
  return h;
}

std::size_t ObservationColumn::column_bytes() const {
  return flags_.capacity() * sizeof(std::uint8_t) +
         (https_ref_.capacity() + a_ref_.capacity() + aaaa_ref_.capacity() +
          ns_offset_.capacity()) * sizeof(std::uint32_t) +
         ns_pool_.capacity() * sizeof(dns::Name);
}

bool operator==(const ObservationColumn& x, const ObservationColumn& y) {
  if (x.size() != y.size()) return false;
  if (x.flags_ != y.flags_) return false;
  // NS slices: per-row lengths must agree, then names compare (Name == is
  // case-insensitive, so the pools compare element-wise, not byte-wise).
  if (x.ns_offset_ != y.ns_offset_) return false;
  if (x.ns_pool_ != y.ns_pool_) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!refs_equal(*x.interner_, x.https_ref_[i], *y.interner_,
                    y.https_ref_[i]) ||
        !refs_equal(*x.interner_, x.a_ref_[i], *y.interner_, y.a_ref_[i]) ||
        !refs_equal(*x.interner_, x.aaaa_ref_[i], *y.interner_,
                    y.aaaa_ref_[i])) {
      return false;
    }
  }
  return true;
}

DailySnapshot::DailySnapshot() : DailySnapshot(std::make_shared<RrsetInterner>()) {}

DailySnapshot::DailySnapshot(std::shared_ptr<RrsetInterner> interner) {
  apex = ObservationColumn(interner);
  www = ObservationColumn(std::move(interner));
}

std::uint8_t DailySnapshot::summary_bits(std::size_t i) const {
  std::uint8_t bits = 0;
  const auto a = apex.view(i);
  if (a.has_https()) {
    bits |= ChurnDiff::kApexHttps;
    if (a.has_ech()) bits |= ChurnDiff::kApexEch;
    if (a.rrsig_present()) {
      bits |= ChurnDiff::kApexSigned;
      if (a.ad()) bits |= ChurnDiff::kApexValidated;
    }
  }
  if (www.view(i).has_https()) bits |= ChurnDiff::kWwwHttps;
  return bits;
}

std::vector<const std::pair<const dns::Name, NsInfo>*>
DailySnapshot::sorted_ns_info() const {
  std::vector<const std::pair<const dns::Name, NsInfo>*> out;
  out.reserve(ns_info.size());
  for (const auto& entry : ns_info) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return out;
}

DailySnapshot::MemoryStats DailySnapshot::memory_stats() const {
  MemoryStats stats;
  stats.column_bytes = apex.column_bytes() + www.column_bytes();
  stats.interner_bytes = apex.interner().memory_bytes();
  if (&apex.interner() != &www.interner()) {
    stats.interner_bytes += www.interner().memory_bytes();
  }
  std::size_t ns_bytes = 0;
  for (const auto& [host, info] : ns_info) {
    (void)host;
    ns_bytes += sizeof(dns::Name) + sizeof(NsInfo) +
                info.addresses.capacity() * sizeof(net::IpAddr) +
                (info.whois_org ? info.whois_org->capacity() : 0) +
                (info.operator_name ? info.operator_name->capacity() : 0);
  }
  stats.bytes_total = stats.column_bytes + stats.interner_bytes + ns_bytes +
                      list.capacity() * sizeof(ecosystem::DomainId);
  stats.interned_sections = apex.interner().entry_count();
  stats.intern_hit_rate = apex.interner().stats().hit_rate();
  stats.bytes_per_domain =
      list.empty() ? 0.0
                   : static_cast<double>(stats.bytes_total) /
                         static_cast<double>(list.size());
  return stats;
}

bool operator==(const DailySnapshot& a, const DailySnapshot& b) {
  return a.day == b.day && a.list == b.list && a.apex == b.apex &&
         a.www == b.www && a.ns_info == b.ns_info && a.churn == b.churn;
}

}  // namespace httpsrr::scanner
