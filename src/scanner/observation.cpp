#include "scanner/observation.h"

#include <algorithm>

namespace httpsrr::scanner {

bool HttpsObservation::has_ech() const {
  for (const auto& r : https_records) {
    if (r.params.has(dns::SvcParamKey::ech)) return true;
  }
  return false;
}

std::optional<dns::Bytes> HttpsObservation::ech_config() const {
  for (const auto& r : https_records) {
    if (auto blob = r.params.ech()) return blob;
  }
  return std::nullopt;
}

bool HttpsObservation::alias_mode() const {
  return !https_records.empty() &&
         std::all_of(https_records.begin(), https_records.end(),
                     [](const dns::SvcbRdata& r) { return r.is_alias_mode(); });
}

std::vector<net::Ipv4Addr> HttpsObservation::ipv4_hints() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& r : https_records) {
    if (auto hints = r.params.ipv4hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<net::Ipv6Addr> HttpsObservation::ipv6_hints() const {
  std::vector<net::Ipv6Addr> out;
  for (const auto& r : https_records) {
    if (auto hints = r.params.ipv6hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<std::string> HttpsObservation::alpn_protocols() const {
  std::vector<std::string> out;
  for (const auto& r : https_records) {
    if (auto protocols = r.params.alpn()) {
      for (auto& p : *protocols) {
        if (std::find(out.begin(), out.end(), p) == out.end()) {
          out.push_back(std::move(p));
        }
      }
    }
  }
  return out;
}

bool HttpsObservation::hints_match_a() const {
  auto hints = ipv4_hints();
  if (hints.empty()) return false;
  std::vector<net::Ipv4Addr> a = a_records;
  std::sort(hints.begin(), hints.end());
  hints.erase(std::unique(hints.begin(), hints.end()), hints.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return hints == a;
}

}  // namespace httpsrr::scanner
