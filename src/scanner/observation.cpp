#include "scanner/observation.h"

#include <algorithm>

namespace httpsrr::scanner {

namespace {

// Content comparison for answer-section snapshots: shards hold distinct
// but equal cache vectors, and a never-filled section (null) must equal a
// filled-but-empty one.
bool sections_equal(const std::shared_ptr<const std::vector<dns::Rr>>& a,
                    const std::shared_ptr<const std::vector<dns::Rr>>& b) {
  static const std::vector<dns::Rr> kEmpty;
  const auto& va = a ? *a : kEmpty;
  const auto& vb = b ? *b : kEmpty;
  return va == vb;
}

}  // namespace

bool operator==(const HttpsObservation& a, const HttpsObservation& b) {
  return a.answered == b.answered && a.servfail == b.servfail &&
         a.nxdomain == b.nxdomain && a.followed_cname == b.followed_cname &&
         a.rrsig_present == b.rrsig_present && a.ad == b.ad &&
         a.ns_records == b.ns_records && a.soa_present == b.soa_present &&
         sections_equal(a.https_answer, b.https_answer) &&
         sections_equal(a.a_answer, b.a_answer) &&
         sections_equal(a.aaaa_answer, b.aaaa_answer);
}

bool HttpsObservation::has_ech() const {
  for (const auto& r : https_records()) {
    if (r.params.has(dns::SvcParamKey::ech)) return true;
  }
  return false;
}

std::optional<dns::Bytes> HttpsObservation::ech_config() const {
  for (const auto& r : https_records()) {
    if (auto blob = r.params.ech()) return blob;
  }
  return std::nullopt;
}

bool HttpsObservation::alias_mode() const {
  auto records = https_records();
  return !records.empty() &&
         std::all_of(records.begin(), records.end(),
                     [](const dns::SvcbRdata& r) { return r.is_alias_mode(); });
}

std::vector<net::Ipv4Addr> HttpsObservation::ipv4_hints() const {
  std::vector<net::Ipv4Addr> out;
  for (const auto& r : https_records()) {
    if (auto hints = r.params.ipv4hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<net::Ipv6Addr> HttpsObservation::ipv6_hints() const {
  std::vector<net::Ipv6Addr> out;
  for (const auto& r : https_records()) {
    if (auto hints = r.params.ipv6hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<std::string> HttpsObservation::alpn_protocols() const {
  std::vector<std::string> out;
  for (const auto& r : https_records()) {
    if (auto protocols = r.params.alpn()) {
      for (auto& p : *protocols) {
        if (std::find(out.begin(), out.end(), p) == out.end()) {
          out.push_back(std::move(p));
        }
      }
    }
  }
  return out;
}

bool HttpsObservation::hints_match_a() const {
  auto hints = ipv4_hints();
  if (hints.empty()) return false;
  auto range = a_records();
  std::vector<net::Ipv4Addr> a(range.begin(), range.end());
  std::sort(hints.begin(), hints.end());
  hints.erase(std::unique(hints.begin(), hints.end()), hints.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return hints == a;
}

}  // namespace httpsrr::scanner
