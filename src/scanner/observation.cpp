#include "scanner/observation.h"

#include <algorithm>

namespace httpsrr::scanner {

namespace detail {

bool sections_equal(const std::shared_ptr<const std::vector<dns::Rr>>& a,
                    const std::shared_ptr<const std::vector<dns::Rr>>& b) {
  static const std::vector<dns::Rr> kEmpty;
  const auto& va = a ? *a : kEmpty;
  const auto& vb = b ? *b : kEmpty;
  return va == vb;
}

bool section_has_ech(const std::vector<dns::Rr>* v) {
  for (const auto& r : SvcbRange(v)) {
    if (r.params.has(dns::SvcParamKey::ech)) return true;
  }
  return false;
}

std::optional<dns::Bytes> section_ech_config(const std::vector<dns::Rr>* v) {
  for (const auto& r : SvcbRange(v)) {
    if (auto blob = r.params.ech()) return blob;
  }
  return std::nullopt;
}

bool section_alias_mode(const std::vector<dns::Rr>* v) {
  auto records = SvcbRange(v);
  return !records.empty() &&
         std::all_of(records.begin(), records.end(),
                     [](const dns::SvcbRdata& r) { return r.is_alias_mode(); });
}

std::vector<net::Ipv4Addr> section_ipv4_hints(const std::vector<dns::Rr>* v) {
  std::vector<net::Ipv4Addr> out;
  for (const auto& r : SvcbRange(v)) {
    if (auto hints = r.params.ipv4hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<net::Ipv6Addr> section_ipv6_hints(const std::vector<dns::Rr>* v) {
  std::vector<net::Ipv6Addr> out;
  for (const auto& r : SvcbRange(v)) {
    if (auto hints = r.params.ipv6hint()) {
      out.insert(out.end(), hints->begin(), hints->end());
    }
  }
  return out;
}

std::vector<std::string> section_alpn_protocols(const std::vector<dns::Rr>* v) {
  std::vector<std::string> out;
  for (const auto& r : SvcbRange(v)) {
    if (auto protocols = r.params.alpn()) {
      for (auto& p : *protocols) {
        if (std::find(out.begin(), out.end(), p) == out.end()) {
          out.push_back(std::move(p));
        }
      }
    }
  }
  return out;
}

bool hints_match_a_section(std::span<const net::Ipv4Addr> hints,
                           const std::vector<dns::Rr>* a) {
  if (hints.empty()) return false;
  auto range = Ipv4Range(a);
  std::vector<net::Ipv4Addr> addrs(range.begin(), range.end());
  std::vector<net::Ipv4Addr> wanted(hints.begin(), hints.end());
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  std::sort(addrs.begin(), addrs.end());
  addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
  return wanted == addrs;
}

}  // namespace detail

bool operator==(const HttpsObservation& a, const HttpsObservation& b) {
  return a.answered == b.answered && a.servfail == b.servfail &&
         a.nxdomain == b.nxdomain && a.followed_cname == b.followed_cname &&
         a.rrsig_present == b.rrsig_present && a.ad == b.ad &&
         a.ns_records == b.ns_records && a.soa_present == b.soa_present &&
         detail::sections_equal(a.https_answer, b.https_answer) &&
         detail::sections_equal(a.a_answer, b.a_answer) &&
         detail::sections_equal(a.aaaa_answer, b.aaaa_answer);
}

}  // namespace httpsrr::scanner
