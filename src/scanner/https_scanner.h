#pragma once

// HttpsScanner — the paper's scanning framework (§4.1), one host at a time:
//   1. HTTPS query via the primary resolver (Cloudflare backup on failure);
//   2. CNAME chase when the answer aliases elsewhere;
//   3. RRSIG / AD-bit capture from the HTTPS response;
//   4. follow-up A / AAAA / SOA / NS lookups when an HTTPS record exists.

#include "dns/message.h"
#include "resolver/stub.h"
#include "scanner/observation.h"

namespace httpsrr::scanner {

class HttpsScanner {
 public:
  explicit HttpsScanner(resolver::StubResolver& stub) : stub_(stub) {}

  // Scans one host. `follow_up` controls whether the A/AAAA/SOA/NS queries
  // are issued when an HTTPS record is present (the daily pipeline does;
  // the hourly ECH scan does not).
  [[nodiscard]] HttpsObservation scan(const dns::Name& host,
                                      bool follow_up = true);

  // Issues the A/AAAA/SOA/NS follow-up lookups into an existing
  // observation.  The Study uses this to keep tracking the NS records of
  // domains that *used to* publish HTTPS (the paper cross-references its
  // NS dataset when analysing intermittent records, §4.2.3).
  void fill_follow_ups(const dns::Name& host, HttpsObservation& obs);

  [[nodiscard]] std::uint64_t queries_sent() const { return queries_; }

 private:
  resolver::StubResolver& stub_;
  std::uint64_t queries_ = 0;
};

}  // namespace httpsrr::scanner
