#pragma once

// HttpsScanner — the paper's scanning framework (§4.1), one host at a time:
//   1. HTTPS query via the primary resolver (Cloudflare backup on failure);
//   2. CNAME chase when the answer aliases elsewhere;
//   3. RRSIG / AD-bit capture from the HTTPS response;
//   4. follow-up A / AAAA / SOA / NS lookups when an HTTPS record exists.
//
// The response-classification logic lives in the static apply_* helpers so
// the serial path here and the Study's engine-batched waves (scanner/
// study.cpp) fill observations through one implementation — batching can
// change the schedule, never the dataset.

#include "dns/message.h"
#include "resolver/stub.h"
#include "scanner/observation.h"

namespace httpsrr::scanner {

class HttpsScanner {
 public:
  explicit HttpsScanner(resolver::StubResolver& stub) : stub_(stub) {}

  // Scans one host. `follow_up` controls whether the A/AAAA/SOA/NS queries
  // are issued when an HTTPS record is present (the daily pipeline does;
  // the hourly ECH scan does not).
  [[nodiscard]] HttpsObservation scan(const dns::Name& host,
                                      bool follow_up = true);

  // Issues the A/AAAA/SOA/NS follow-up lookups into an existing
  // observation.  The Study uses this to keep tracking the NS records of
  // domains that *used to* publish HTTPS (the paper cross-references its
  // NS dataset when analysing intermittent records, §4.2.3).
  void fill_follow_ups(const dns::Name& host, HttpsObservation& obs);

  // Classifies one HTTPS response into a fresh observation: rcode split,
  // shared answer snapshot, CNAME/RRSIG walk.  NXDOMAIN/SERVFAIL leave the
  // answer snapshot unset, exactly like scan()'s early returns.
  static void apply_https(HttpsObservation& obs,
                          const resolver::ResolvedAnswer& resp);
  // Applies the four follow-up responses (A, AAAA, SOA, NS, in the order
  // the serial scanner issues them).
  static void apply_follow_ups(HttpsObservation& obs,
                               const resolver::ResolvedAnswer& a,
                               const resolver::ResolvedAnswer& aaaa,
                               const resolver::ResolvedAnswer& soa,
                               const resolver::ResolvedAnswer& ns);

  [[nodiscard]] std::uint64_t queries_sent() const { return queries_; }

 private:
  resolver::StubResolver& stub_;
  std::uint64_t queries_ = 0;
};

}  // namespace httpsrr::scanner
