#include "scanner/series.h"

#include "util/strings.h"

namespace httpsrr::scanner {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

DaySeriesWriter::DaySeriesWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")), jsonl_(ends_with(path, ".jsonl")) {}

DaySeriesWriter::~DaySeriesWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void DaySeriesWriter::append(const DayPoint& point) {
  if (file_ == nullptr) return;
  const auto pct = [](std::uint64_t n, std::uint64_t d) {
    return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(d);
  };
  std::string line;
  if (jsonl_) {
    line = util::format(
        "{\"day\": %llu, \"date\": \"%s\", \"listed\": %llu, "
        "\"apex_https\": %llu, \"www_https\": %llu, "
        "\"apex_https_pct\": %.4f, \"www_https_pct\": %.4f, "
        "\"churn_unchanged\": %llu, \"churn_changed\": %llu, "
        "\"churn_entered\": %llu, \"churn_left\": %llu, "
        "\"seconds\": %.3f, \"rss_mib\": %.1f, \"intern_hit_rate\": %.6f, "
        "\"interner_entries\": %llu, \"interner_live\": %llu, "
        "\"interner_tombstones\": %llu, \"compactions\": %llu, "
        "\"compaction_freed\": %llu, \"resolver_swept\": %llu, "
        "\"zone_swept\": %llu}\n",
        static_cast<unsigned long long>(point.day_index), point.date.c_str(),
        static_cast<unsigned long long>(point.listed),
        static_cast<unsigned long long>(point.apex_https),
        static_cast<unsigned long long>(point.www_https),
        pct(point.apex_https, point.listed), pct(point.www_https, point.listed),
        static_cast<unsigned long long>(point.churn_unchanged),
        static_cast<unsigned long long>(point.churn_changed),
        static_cast<unsigned long long>(point.churn_entered),
        static_cast<unsigned long long>(point.churn_left), point.seconds,
        point.rss_mib, point.intern_hit_rate,
        static_cast<unsigned long long>(point.interner_entries),
        static_cast<unsigned long long>(point.interner_live),
        static_cast<unsigned long long>(point.interner_tombstones),
        static_cast<unsigned long long>(point.compactions),
        static_cast<unsigned long long>(point.compaction_freed),
        static_cast<unsigned long long>(point.resolver_swept),
        static_cast<unsigned long long>(point.zone_swept));
  } else {
    if (!wrote_header_) {
      std::fputs(
          "day,date,listed,apex_https,www_https,apex_https_pct,www_https_pct,"
          "churn_unchanged,churn_changed,churn_entered,churn_left,"
          "seconds,rss_mib,intern_hit_rate,interner_entries,interner_live,"
          "interner_tombstones,compactions,compaction_freed,resolver_swept,"
          "zone_swept\n",
          file_);
      wrote_header_ = true;
    }
    line = util::format(
        "%llu,%s,%llu,%llu,%llu,%.4f,%.4f,%llu,%llu,%llu,%llu,"
        "%.3f,%.1f,%.6f,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
        static_cast<unsigned long long>(point.day_index), point.date.c_str(),
        static_cast<unsigned long long>(point.listed),
        static_cast<unsigned long long>(point.apex_https),
        static_cast<unsigned long long>(point.www_https),
        pct(point.apex_https, point.listed), pct(point.www_https, point.listed),
        static_cast<unsigned long long>(point.churn_unchanged),
        static_cast<unsigned long long>(point.churn_changed),
        static_cast<unsigned long long>(point.churn_entered),
        static_cast<unsigned long long>(point.churn_left), point.seconds,
        point.rss_mib, point.intern_hit_rate,
        static_cast<unsigned long long>(point.interner_entries),
        static_cast<unsigned long long>(point.interner_live),
        static_cast<unsigned long long>(point.interner_tombstones),
        static_cast<unsigned long long>(point.compactions),
        static_cast<unsigned long long>(point.compaction_freed),
        static_cast<unsigned long long>(point.resolver_swept),
        static_cast<unsigned long long>(point.zone_swept));
  }
  std::fputs(line.c_str(), file_);
  std::fflush(file_);
}

}  // namespace httpsrr::scanner
