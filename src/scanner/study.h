#pragma once

// Study — the longitudinal measurement harness: one virtual day at a time,
// it pulls the Tranco list, scans apex + www for every listed domain,
// resolves and attributes the name servers of HTTPS publishers, and hands
// the day's snapshot to registered observers (the analysis layer).
//
// This mirrors the paper's §4.1 pipeline: Google resolver primary,
// Cloudflare backup, daily cadence, NS/WHOIS side-channel, and optional
// extra experiments (hourly ECH scans, connectivity probes) layered on top.

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "ecosystem/internet.h"
#include "resolver/stub.h"
#include "scanner/https_scanner.h"
#include "scanner/observation.h"

namespace httpsrr::scanner {

// Observer interface: receives each day's snapshot (and may inspect the
// Internet for *measurement-accessible* state such as the network for
// connectivity probes — not ground-truth domain flags).
class DailyObserver {
 public:
  virtual ~DailyObserver() = default;
  virtual void on_day(const DailySnapshot& snapshot,
                      const ecosystem::Internet& net) = 0;
};

struct StudyOptions {
  // Scan kicks off at this offset into each day.
  net::Duration scan_time = net::Duration::hours(3);
  bool scan_ns = true;   // resolve + WHOIS-attribute NS hosts
  resolver::ResolverOptions resolver_options;
};

class Study {
 public:
  using Options = StudyOptions;

  Study(ecosystem::Internet& net, Options options = StudyOptions());

  void add_observer(DailyObserver* observer) { observers_.push_back(observer); }

  // Runs daily scans for every day in [from, to] (dates inclusive).
  void run(net::SimTime from, net::SimTime to);

  // Runs a single day and returns the snapshot (used by tests).
  [[nodiscard]] DailySnapshot run_day(net::SimTime day);

  [[nodiscard]] std::uint64_t total_queries() const { return total_queries_; }

 private:
  void scan_name_servers(DailySnapshot& snapshot);

  ecosystem::Internet& net_;
  Options options_;
  std::set<ecosystem::DomainId> https_cohort_;  // ever published HTTPS
  std::unique_ptr<resolver::RecursiveResolver> primary_;
  std::unique_ptr<resolver::RecursiveResolver> backup_;
  std::vector<DailyObserver*> observers_;
  std::uint64_t total_queries_ = 0;
};

}  // namespace httpsrr::scanner
