#pragma once

// Study — the longitudinal measurement harness: one virtual day at a time,
// it pulls the Tranco list, scans apex + www for every listed domain,
// resolves and attributes the name servers of HTTPS publishers, and hands
// the day's snapshot to registered observers (the analysis layer).
//
// This mirrors the paper's §4.1 pipeline: Google resolver primary,
// Cloudflare backup, daily cadence, NS/WHOIS side-channel, and optional
// extra experiments (hourly ECH scans, connectivity probes) layered on top.
//
// Sharded scan engine: each day's list is partitioned into K contiguous
// shards scanned by a std::thread worker pool.  Every shard owns its own
// primary/backup resolver pair (stateful: caches, stats, RNG); the
// simulated Internet underneath is advanced once before the fan-out and
// then shared read-only (see the contracts in ecosystem/internet.h and
// net/time.h).  Per-shard snapshot fragments and the NS side-channel are
// merged back in list order, and because NS selection inside the resolver
// is a pure function of the question (resolver/recursive.h), the merged
// snapshot and the query accounting are byte-identical for every K —
// K=1 reproduces the historical serial output.
//
// Memory model at the million-domain scale: each shard classifies its
// slice in fixed-size blocks of scratch rows and appends them straight
// into a columnar fragment (scanner/columns.h), so peak row storage is
// O(block) per worker, not O(list).  Fragments merge into the day's
// DailySnapshot columns by interner-ref remap — no row rebuilds.  After
// the merge the Study diffs the day against the previous one into
// `snapshot.churn` (universe-indexed fingerprints), which is what lets
// delta-aware observers skip the ~99% of rows that did not move.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "ecosystem/internet.h"
#include "resolver/endpoint.h"
#include "resolver/stub.h"
#include "scanner/https_scanner.h"
#include "scanner/observation.h"

namespace httpsrr::scanner {

// Observer interface: receives each day's snapshot (and may inspect the
// Internet for *measurement-accessible* state such as the network for
// connectivity probes — not ground-truth domain flags).  Observers run on
// the coordinating thread, after the workers have joined.
class DailyObserver {
 public:
  virtual ~DailyObserver() = default;
  virtual void on_day(const DailySnapshot& snapshot,
                      const ecosystem::Internet& net) = 0;
};

struct StudyOptions {
  // Scan kicks off at this offset into each day.
  net::Duration scan_time = net::Duration::hours(3);
  bool scan_ns = true;   // resolve + WHOIS-attribute NS hosts
  // Number of parallel scan shards; 0 = one per hardware thread.  Snapshot
  // contents and total_queries() are invariant across shard counts.
  std::size_t shards = 1;
  // Per-shard resolver configuration.  Note `resolver_options.transport`
  // (+ transport_faults / transport_tcp_only) selects the upstream channel
  // every shard uses: loopback (default — zero-copy shared wire images)
  // or the modelled UDP/TCP datagram transport.
  resolver::ResolverOptions resolver_options;
  // Endpoint seam: when set, each shard's endpoint comes from this factory
  // (shard index + the exact per-shard resolver-pair options the default
  // path would use — a socket factory forwards the index, a local factory
  // builds the pair).  Null = the default in-process EngineEndpoint.
  std::function<std::unique_ptr<resolver::Endpoint>(
      std::size_t shard, const resolver::ResolverOptions& primary,
      const resolver::ResolverOptions& backup)>
      endpoint_factory;
  // Optional progress hook, called after each scan block with (domains
  // scanned so far today, domains listed today).  Invoked from worker
  // threads — the callback must be thread-safe (a stderr write is).
  std::function<void(std::size_t, std::size_t)> progress;

  // ---- Longitudinal retention & interner GC (DESIGN.md) ------------------
  // The Study scans every day into one persistent RrsetInterner and keeps a
  // 2-deep snapshot ring (yesterday's merged columns + the day being
  // built).  Between days it compacts the interner down to the ring's live
  // refs and sweeps resolver/zone caches of entries expiry already made
  // unobservable.  Both switches are behavior-neutral: snapshots, churn,
  // digests, and query accounting are bit-identical with GC forced every
  // day or never (pinned by tests/retention_test.cpp) — only the day-300
  // memory and hashing cost differ.
  bool interner_gc = true;   // compact the shared interner between days
  bool sweep_caches = true;  // day-boundary expired-state sweeps
  // Generations the compactor retains (the snapshot ring is always 2 deep:
  // values below 2 are clamped so the ring can never dangle).
  std::uint32_t retention_days = 2;
};

class Study {
 public:
  using Options = StudyOptions;

  Study(ecosystem::Internet& net, Options options = StudyOptions());

  void add_observer(DailyObserver* observer) { observers_.push_back(observer); }

  // Runs daily scans for every day in [from, to] (dates inclusive).
  void run(net::SimTime from, net::SimTime to);

  // Runs a single day and returns the snapshot (used by tests).
  [[nodiscard]] DailySnapshot run_day(net::SimTime day);

  [[nodiscard]] std::uint64_t total_queries() const { return total_queries_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // Aggregated resolver stats across every shard's endpoint.
  [[nodiscard]] resolver::ResolverStats resolver_stats() const;

  // Day-boundary GC counters, refreshed at the end of every run_day — the
  // longitudinal health line micro_study --days and httpsrr_scan print.
  struct GcStats {
    std::uint64_t interner_entries = 0;  // table entries after the last day
    std::uint64_t live_refs = 0;         // referenced by the retained window
    std::uint64_t tombstones = 0;        // dead weight the next pass frees
    std::uint64_t compactions = 0;       // passes run so far
    std::uint64_t compaction_freed = 0;  // cumulative entries freed
    std::uint64_t resolver_swept = 0;    // cumulative resolver-cache drops
    std::uint64_t zone_swept = 0;        // cumulative stale zone-cache drops
  };
  [[nodiscard]] const GcStats& gc_stats() const { return gc_; }

  // Wall-clock breakdown of the most recent run_day, for the flat-curve
  // work: shows where a steady-state day spends time that day 1 does not.
  struct DayTiming {
    double advance = 0;    // virtual-clock advance + churn application
    double sweep = 0;      // expired-cache sweeps at the day boundary
    double compact = 0;    // interner compaction + ring rebind
    double scan = 0;       // the sharded domain scan itself
    double ns = 0;         // name-server follow-up scan
    double churn = 0;      // fingerprint diff vs the retained ring
    double observers = 0;  // attached analysis observers
  };
  [[nodiscard]] const DayTiming& day_timing() const { return timing_; }
  // Cumulative dedup-path counters of the persistent interner.
  [[nodiscard]] const RrsetInterner::Stats& interner_stats() const {
    return interner_->stats();
  }

  // The retained snapshot ring: yesterday's merged columns, rebound across
  // interner compactions (fingerprints identical before and after — the
  // remap invariant).  Null before the first completed day; valid until the
  // next run_day returns.
  [[nodiscard]] const ObservationColumn* previous_apex() const {
    return have_prev_ ? &prev_apex_ : nullptr;
  }
  [[nodiscard]] const ObservationColumn* previous_www() const {
    return have_prev_ ? &prev_www_ : nullptr;
  }
  [[nodiscard]] net::SimTime previous_day() const { return prev_day_; }

  // The per-shard (primary, backup) resolver options the Study derives
  // from one base configuration: primary seed ^= 0x900913 ("Google"),
  // backup seed ^= 0x1111 ("Cloudflare"), selection seeds defaulted from
  // the post-XOR seeds (shared across shards — which authoritative server
  // answers a question never depends on the asking shard), then the
  // per-shard unobservable seed mixed in.  Exposed so httpsrr_serve can
  // host the exact resolver pairs a K-shard client study addresses.
  struct PairOptions {
    resolver::ResolverOptions primary;
    resolver::ResolverOptions backup;
  };
  [[nodiscard]] static PairOptions shard_pair_options(
      const resolver::ResolverOptions& base, std::size_t shard);

 private:
  // One worker's scanning context: an endpoint whose resolver state (in
  // process or in the serve process) persists across days, like the
  // paper's long-running vantage.
  struct Shard {
    std::unique_ptr<resolver::Endpoint> endpoint;
  };

  // Per-shard fragment of one day: columnar, with apex and www sharing one
  // shard-local interner.  Merged in list order after the join.
  struct ShardScan {
    ShardScan()
        : apex(std::make_shared<RrsetInterner>()), www(apex.interner_ptr()) {}
    ObservationColumn apex;
    ObservationColumn www;
    std::vector<ecosystem::DomainId> joined;  // new HTTPS-cohort entrants
    std::uint64_t queries = 0;
  };

  // Scans list positions [begin, end) with `shard`'s endpoint, feeding
  // the slice through it as fixed-size blocks of
  // waves (HTTPS questions, then follow-ups), classifying each block into
  // reused scratch rows and appending them to `out`'s columns.  Pipeline
  // depth comes from Options::resolver_options.max_in_flight; answers are
  // pure functions of the question at the day's frozen instant, so the
  // block boundaries — like the shard split — are unobservable in the
  // output.
  void scan_range(Shard& shard, const DailySnapshot& snapshot,
                  std::size_t begin, std::size_t end, ShardScan& out);
  void scan_name_servers(DailySnapshot& snapshot);
  // Fills snapshot.churn from the previous day's fingerprints, then rolls
  // the stored state forward to today.
  void compute_churn(DailySnapshot& snapshot);
  // Day-boundary GC, run after advance_to (expiry needs the moved clock)
  // and before the day's scan: cache sweeps + interner compaction with the
  // retained ring rebound through the remap.
  void collect_garbage();

  // Invokes fn(shard_index, begin, end) over `total` items split into
  // contiguous per-shard ranges — on worker threads when more than one
  // shard is configured, inline otherwise.
  void for_each_shard(
      std::size_t total,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  ecosystem::Internet& net_;
  Options options_;
  std::set<ecosystem::DomainId> https_cohort_;  // ever published HTTPS
  std::vector<Shard> shards_;
  // NS side-channel cache, persisted across days: a host probed once with
  // usable addresses is not re-queried; a host whose probe came back
  // empty (all address lookups failed) is re-probed on a later day so a
  // transient outage cannot poison the attribution dataset for good.
  // Hashed (not ordered): it is only ever probed by key — the probe queue
  // is built in list order, so determinism never leans on map iteration.
  std::unordered_map<dns::Name, NsInfo, dns::NameHash> ns_cache_;
  std::vector<DailyObserver*> observers_;
  std::uint64_t total_queries_ = 0;

  // Previous-day churn state, indexed by DomainId (universe index).
  bool churn_valid_ = false;
  std::vector<std::uint64_t> prev_fp_;
  std::vector<std::uint8_t> prev_bits_;
  std::vector<std::uint8_t> prev_member_;
  std::vector<ecosystem::DomainId> prev_list_;

  // Longitudinal retention state: the persistent interner every day's
  // snapshot scans into, the day counter that drives its generations, and
  // the 2-deep ring (yesterday's columns — today's live inside run_day).
  // Assigning the ring each day releases the older day's column fragments
  // and the NS name-pool slab they pinned.
  std::shared_ptr<RrsetInterner> interner_;
  std::uint32_t day_index_ = 0;
  bool have_prev_ = false;
  ObservationColumn prev_apex_;
  ObservationColumn prev_www_;
  net::SimTime prev_day_{};
  GcStats gc_;
  DayTiming timing_;

  // Per-day progress accounting for Options::progress.
  std::atomic<std::size_t> progress_done_{0};
  std::size_t progress_total_ = 0;
};

}  // namespace httpsrr::scanner
