#include "scanner/study.h"

namespace httpsrr::scanner {

using dns::Name;
using dns::RrType;

Study::Study(ecosystem::Internet& net, Options options)
    : net_(net), options_(options) {
  auto primary_options = options_.resolver_options;
  primary_options.seed ^= 0x900913;  // the "Google" resolver
  primary_ = net_.make_resolver(primary_options);
  auto backup_options = options_.resolver_options;
  backup_options.seed ^= 0x1111;  // the "Cloudflare" backup resolver
  backup_ = net_.make_resolver(backup_options);
}

DailySnapshot Study::run_day(net::SimTime day) {
  // Midnight-align, then advance to the scan time.
  net::SimTime at{day.unix_seconds - day.seconds_of_day()};
  net_.advance_to(at + options_.scan_time);

  DailySnapshot snapshot;
  snapshot.day = at;
  snapshot.list = net_.tranco().list_for(at);

  resolver::StubResolver stub(*primary_, backup_.get());
  HttpsScanner scanner(stub);

  snapshot.apex.reserve(snapshot.list.size());
  snapshot.www.reserve(snapshot.list.size());
  for (ecosystem::DomainId id : snapshot.list) {
    const auto& domain = net_.domain(id);
    auto apex_obs = scanner.scan(domain.apex);
    // Domains that ever published HTTPS stay in the NS-tracking cohort
    // even while their record is deactivated (§4.2.3 cross-references the
    // NS dataset to attribute intermittent records).
    if (apex_obs.has_https()) {
      https_cohort_.insert(id);
    } else if (options_.scan_ns && https_cohort_.contains(id) &&
               apex_obs.answered) {
      scanner.fill_follow_ups(domain.apex, apex_obs);
    }
    snapshot.apex.push_back(std::move(apex_obs));
    snapshot.www.push_back(scanner.scan(domain.www));
  }
  total_queries_ += scanner.queries_sent();

  if (options_.scan_ns) scan_name_servers(snapshot);

  for (auto* observer : observers_) observer->on_day(snapshot, net_);
  return snapshot;
}

void Study::scan_name_servers(DailySnapshot& snapshot) {
  resolver::StubResolver stub(*primary_, backup_.get());
  for (std::size_t i = 0; i < snapshot.list.size(); ++i) {
    if (snapshot.apex[i].ns_records.empty()) continue;
    for (const Name& host : snapshot.apex[i].ns_records) {
      if (snapshot.ns_info.contains(host)) continue;
      NsInfo info;
      auto a = stub.query(host, RrType::A);
      total_queries_ += 1;
      for (const auto& rr : a.answers) {
        if (const auto* rec = std::get_if<dns::ARdata>(&rr.rdata)) {
          info.addresses.push_back(net::IpAddr(rec->address));
        }
      }
      auto aaaa = stub.query(host, RrType::AAAA);
      total_queries_ += 1;
      for (const auto& rr : aaaa.answers) {
        if (const auto* rec = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
          info.addresses.push_back(net::IpAddr(rec->address));
        }
      }
      if (!info.addresses.empty()) {
        info.whois_org = net_.whois().lookup(info.addresses.front());
        info.operator_name = net_.whois().attribute(info.addresses.front());
      }
      snapshot.ns_info.emplace(host, std::move(info));
    }
  }
}

void Study::run(net::SimTime from, net::SimTime to) {
  for (net::SimTime day = from; day <= to; day = day + net::Duration::days(1)) {
    (void)run_day(day);
  }
}

}  // namespace httpsrr::scanner
