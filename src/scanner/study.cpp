#include "scanner/study.h"

#include <algorithm>
#include <span>
#include <thread>
#include <utility>

#include "resolver/engine.h"
#include "util/rng.h"

namespace httpsrr::scanner {

using dns::Name;
using dns::RrType;
using resolver::QueryEngine;

namespace {

// One engine wave with the stub's fallback policy, batched: every request
// runs on the primary's engine, and any SERVFAIL answer is re-run on the
// backup (the per-query primary→backup retry StubResolver applies, in the
// same request order).
std::vector<resolver::ResolvedAnswer> run_wave(
    resolver::RecursiveResolver& primary, resolver::RecursiveResolver* backup,
    std::span<const QueryEngine::Request> requests) {
  QueryEngine engine(primary);
  auto answers = engine.run(requests);
  if (backup != nullptr) {
    std::vector<std::size_t> failed;
    for (std::size_t i = 0; i < answers.size(); ++i) {
      if (answers[i].rcode == dns::Rcode::SERVFAIL) failed.push_back(i);
    }
    if (!failed.empty()) {
      std::vector<QueryEngine::Request> retry;
      retry.reserve(failed.size());
      for (std::size_t i : failed) retry.push_back(requests[i]);
      QueryEngine backup_engine(*backup);
      auto retried = backup_engine.run(retry);
      for (std::size_t j = 0; j < failed.size(); ++j) {
        answers[failed[j]] = std::move(retried[j]);
      }
    }
  }
  return answers;
}

}  // namespace

Study::Study(ecosystem::Internet& net, Options options)
    : net_(net), options_(std::move(options)) {
  std::size_t shard_count = options_.shards;
  if (shard_count == 0) {
    shard_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Every shard shares the *selection* seeds — which authoritative server a
  // question lands on never depends on the shard that asked it — while the
  // per-shard `seed` (message-id RNG, unobservable) is perturbed so shards
  // are distinct resolver instances.
  auto primary_base = options_.resolver_options;
  primary_base.seed ^= 0x900913;  // the "Google" resolver
  if (primary_base.selection_seed == 0) {
    primary_base.selection_seed = primary_base.seed;
  }
  auto backup_base = options_.resolver_options;
  backup_base.seed ^= 0x1111;  // the "Cloudflare" backup resolver
  if (backup_base.selection_seed == 0) {
    backup_base.selection_seed = backup_base.seed;
  }
  shards_.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    auto primary_options = primary_base;
    primary_options.seed = util::mix64(primary_base.seed + k);
    auto backup_options = backup_base;
    backup_options.seed = util::mix64(backup_base.seed + k);
    shards_.push_back(Shard{net_.make_resolver(primary_options),
                            net_.make_resolver(backup_options)});
  }
}

void Study::for_each_shard(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  const std::size_t shard_count = shards_.size();
  if (shard_count == 1) {
    fn(0, 0, total);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::size_t begin = total * k / shard_count;
    const std::size_t end = total * (k + 1) / shard_count;
    if (begin == end) continue;
    workers.emplace_back([&fn, k, begin, end] { fn(k, begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

void Study::scan_range(Shard& shard, const DailySnapshot& snapshot,
                       std::size_t begin, std::size_t end, ShardScan& out) {
  // The shard's slice runs as engine waves: first every HTTPS question in
  // list order (apex then www per domain — the serial schedule's order),
  // then every follow-up the HTTPS answers call for.  At max_in_flight = 1
  // each wave degenerates to sequential resolve_shared calls; the whole
  // day runs on one frozen virtual instant, so deeper pipelines and the
  // wave regrouping change scheduling only, never an answer (the resolver
  // determinism contract) — which is what keeps the snapshot digest
  // byte-identical across depths and shard counts.
  const std::size_t n = end - begin;
  out.apex.resize(n);
  out.www.resize(n);

  std::vector<QueryEngine::Request> wave;
  wave.reserve(2 * n);
  for (std::size_t i = begin; i < end; ++i) {
    const auto& domain = net_.domain(snapshot.list[i]);
    wave.push_back({domain.apex, RrType::HTTPS});
    wave.push_back({domain.www, RrType::HTTPS});
  }
  out.queries += wave.size();
  const auto https =
      run_wave(*shard.primary, shard.backup.get(), wave);

  // Classify the HTTPS answers and collect the follow-up wave: one A/AAAA/
  // SOA/NS quartet per host with an HTTPS record — plus the NS-tracking
  // cohort rule.  Domains that ever published HTTPS keep their follow-ups
  // even while the record is deactivated (§4.2.3 cross-references the NS
  // dataset to attribute intermittent records).  The cohort set is frozen
  // during the fan-out; today's entrants land in `joined` and are merged
  // on the coordinating thread after the workers finish.
  std::vector<QueryEngine::Request> follow;
  std::vector<HttpsObservation*> follow_obs;
  const auto queue_follow_ups = [&](const Name& host, HttpsObservation& obs) {
    follow.push_back({host, RrType::A});
    follow.push_back({host, RrType::AAAA});
    follow.push_back({host, RrType::SOA});
    follow.push_back({host, RrType::NS});
    follow_obs.push_back(&obs);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const ecosystem::DomainId id = snapshot.list[begin + i];
    const auto& domain = net_.domain(id);
    HttpsObservation& apex_obs = out.apex[i];
    HttpsScanner::apply_https(apex_obs, https[2 * i]);
    if (apex_obs.has_https()) {
      out.joined.push_back(id);
      queue_follow_ups(domain.apex, apex_obs);
    } else if (options_.scan_ns && https_cohort_.contains(id) &&
               apex_obs.answered) {
      queue_follow_ups(domain.apex, apex_obs);
    }
    HttpsObservation& www_obs = out.www[i];
    HttpsScanner::apply_https(www_obs, https[2 * i + 1]);
    if (www_obs.has_https()) queue_follow_ups(domain.www, www_obs);
  }
  out.queries += follow.size();

  const auto answers =
      run_wave(*shard.primary, shard.backup.get(), follow);
  for (std::size_t j = 0; j < follow_obs.size(); ++j) {
    HttpsScanner::apply_follow_ups(*follow_obs[j], answers[4 * j],
                                   answers[4 * j + 1], answers[4 * j + 2],
                                   answers[4 * j + 3]);
  }
}

DailySnapshot Study::run_day(net::SimTime day) {
  // Midnight-align, then advance to the scan time.  The virtual clock does
  // not move again until the next run_day call: the whole day's scan sees
  // one frozen Internet, which is what makes the shard split invisible.
  net::SimTime at{day.unix_seconds - day.seconds_of_day()};
  net_.advance_to(at + options_.scan_time);

  DailySnapshot snapshot;
  snapshot.day = at;
  snapshot.list = net_.tranco().list_for(at);

  std::vector<ShardScan> fragments(shards_.size());
  for_each_shard(snapshot.list.size(),
                 [&](std::size_t k, std::size_t begin, std::size_t end) {
                   scan_range(shards_[k], snapshot, begin, end, fragments[k]);
                 });

  // Merge fragments in list order; shard boundaries vanish here.
  snapshot.apex.reserve(snapshot.list.size());
  snapshot.www.reserve(snapshot.list.size());
  for (auto& fragment : fragments) {
    for (auto& obs : fragment.apex) snapshot.apex.push_back(std::move(obs));
    for (auto& obs : fragment.www) snapshot.www.push_back(std::move(obs));
    for (ecosystem::DomainId id : fragment.joined) https_cohort_.insert(id);
    total_queries_ += fragment.queries;
  }

  if (options_.scan_ns) scan_name_servers(snapshot);

  for (auto* observer : observers_) observer->on_day(snapshot, net_);
  return snapshot;
}

void Study::scan_name_servers(DailySnapshot& snapshot) {
  // Pass 1 (coordinating thread): walk the day's NS hosts in list order.
  // Hosts probed on an earlier day with usable addresses are served from
  // the cross-day cache; hosts never seen — or whose earlier probe came
  // back empty-handed — are queued for a fresh probe.  The queue is built
  // serially so its order (and therefore the day's query accounting) is
  // identical at every shard count.
  std::vector<Name> to_probe;
  for (std::size_t i = 0; i < snapshot.list.size(); ++i) {
    for (const Name& host : snapshot.apex[i].ns_records) {
      if (snapshot.ns_info.contains(host)) continue;
      auto cached = ns_cache_.find(host);
      if (cached != ns_cache_.end() && !cached->second.addresses.empty()) {
        snapshot.ns_info.emplace(host, cached->second);
        continue;
      }
      // Placeholder so a host shared by several domains is queued once.
      snapshot.ns_info.emplace(host, NsInfo{});
      to_probe.push_back(host);
    }
  }

  // Pass 2: probe the queue across the shards, each shard's slice as one
  // engine wave (A then AAAA per host, in queue order).  Each host costs
  // one A and one AAAA query regardless of which shard — or how deep a
  // pipeline — runs it.
  std::vector<NsInfo> probed(to_probe.size());
  for_each_shard(
      to_probe.size(), [&](std::size_t k, std::size_t begin, std::size_t end) {
        Shard& shard = shards_[k];
        std::vector<QueryEngine::Request> wave;
        wave.reserve(2 * (end - begin));
        for (std::size_t i = begin; i < end; ++i) {
          wave.push_back({to_probe[i], RrType::A});
          wave.push_back({to_probe[i], RrType::AAAA});
        }
        const auto answers =
            run_wave(*shard.primary, shard.backup.get(), wave);
        for (std::size_t i = begin; i < end; ++i) {
          NsInfo& info = probed[i];
          const auto& a = answers[2 * (i - begin)];
          for (const auto& rr : a.answers()) {
            if (const auto* rec = std::get_if<dns::ARdata>(&rr.rdata)) {
              info.addresses.push_back(net::IpAddr(rec->address));
            }
          }
          const auto& aaaa = answers[2 * (i - begin) + 1];
          for (const auto& rr : aaaa.answers()) {
            if (const auto* rec = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
              info.addresses.push_back(net::IpAddr(rec->address));
            }
          }
          if (!info.addresses.empty()) {
            info.whois_org = net_.whois().lookup(info.addresses.front());
            info.operator_name = net_.whois().attribute(info.addresses.front());
          }
        }
      });
  total_queries_ += 2 * to_probe.size();

  for (std::size_t i = 0; i < to_probe.size(); ++i) {
    ns_cache_[to_probe[i]] = probed[i];
    snapshot.ns_info[to_probe[i]] = std::move(probed[i]);
  }
}

resolver::ResolverStats Study::resolver_stats() const {
  resolver::ResolverStats total;
  for (const auto& shard : shards_) {
    total += shard.primary->stats();
    total += shard.backup->stats();
  }
  // Server-side hot-path counters live in the shared infra, not in any
  // single resolver; fold them in once.
  auto hot = net_.infra().hot_path_stats();
  total.auth_cache_hits = hot.response_hits;
  total.sig_cache_hits = hot.signature_hits;
  total.bytes_encoded = hot.bytes_encoded;
  return total;
}

void Study::run(net::SimTime from, net::SimTime to) {
  for (net::SimTime day = from; day <= to; day = day + net::Duration::days(1)) {
    (void)run_day(day);
  }
}

}  // namespace httpsrr::scanner
