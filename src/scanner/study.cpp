#include "scanner/study.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim at the day boundary
#endif

#include "resolver/engine.h"
#include "util/rng.h"

namespace httpsrr::scanner {

using dns::Name;
using dns::RrType;
using resolver::QueryEngine;

namespace {

// Domains classified per scan block: bounds each worker's scratch-row
// storage (and the engine wave length) at the million-domain scale while
// staying large enough to keep pipelines full.  Blocks are unobservable in
// the output — see scan_range.
constexpr std::size_t kScanBlock = 32768;

}  // namespace

Study::PairOptions Study::shard_pair_options(
    const resolver::ResolverOptions& base, std::size_t shard) {
  // Every shard shares the *selection* seeds — which authoritative server a
  // question lands on never depends on the shard that asked it — while the
  // per-shard `seed` (message-id RNG, unobservable) is perturbed so shards
  // are distinct resolver instances.
  PairOptions pair{base, base};
  pair.primary.seed ^= 0x900913;  // the "Google" resolver
  if (pair.primary.selection_seed == 0) {
    pair.primary.selection_seed = pair.primary.seed;
  }
  pair.backup.seed ^= 0x1111;  // the "Cloudflare" backup resolver
  if (pair.backup.selection_seed == 0) {
    pair.backup.selection_seed = pair.backup.seed;
  }
  pair.primary.seed = util::mix64(pair.primary.seed + shard);
  pair.backup.seed = util::mix64(pair.backup.seed + shard);
  return pair;
}

Study::Study(ecosystem::Internet& net, Options options)
    : net_(net),
      options_(std::move(options)),
      interner_(std::make_shared<RrsetInterner>()) {
  std::size_t shard_count = options_.shards;
  if (shard_count == 0) {
    shard_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    const PairOptions pair = shard_pair_options(options_.resolver_options, k);
    if (options_.endpoint_factory) {
      shards_.push_back(
          Shard{options_.endpoint_factory(k, pair.primary, pair.backup)});
    } else {
      shards_.push_back(Shard{std::make_unique<resolver::EngineEndpoint>(
          net_.make_resolver(pair.primary), net_.make_resolver(pair.backup))});
    }
  }
}

void Study::for_each_shard(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  const std::size_t shard_count = shards_.size();
  if (shard_count == 1) {
    fn(0, 0, total);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::size_t begin = total * k / shard_count;
    const std::size_t end = total * (k + 1) / shard_count;
    if (begin == end) continue;
    workers.emplace_back([&fn, k, begin, end] { fn(k, begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

void Study::scan_range(Shard& shard, const DailySnapshot& snapshot,
                       std::size_t begin, std::size_t end, ShardScan& out) {
  // The shard's slice runs block by block; inside a block, engine waves:
  // first every HTTPS question in list order (apex then www per domain —
  // the serial schedule's order), then every follow-up the HTTPS answers
  // call for.  At max_in_flight = 1 each wave degenerates to sequential
  // resolve_shared calls; the whole day runs on one frozen virtual
  // instant, so deeper pipelines, the wave regrouping, and the block
  // boundaries change scheduling only, never an answer (the resolver
  // determinism contract) — which is what keeps the snapshot digest
  // byte-identical across depths, shard counts, and block sizes.  The
  // block cap is what bounds scratch-row memory: classified rows land in
  // the columnar fragment at the end of each block, and the row buffers
  // are recycled.
  out.apex.reserve(end - begin);
  out.www.reserve(end - begin);

  std::vector<HttpsObservation> apex_rows;
  std::vector<HttpsObservation> www_rows;
  std::vector<QueryEngine::Request> wave;
  std::vector<QueryEngine::Request> follow;
  std::vector<HttpsObservation*> follow_obs;

  for (std::size_t block = begin; block < end; block += kScanBlock) {
    const std::size_t block_end = std::min(block + kScanBlock, end);
    const std::size_t n = block_end - block;
    apex_rows.clear();
    apex_rows.resize(n);
    www_rows.clear();
    www_rows.resize(n);

    wave.clear();
    wave.reserve(2 * n);
    for (std::size_t i = block; i < block_end; ++i) {
      const auto& domain = net_.domain(snapshot.list[i]);
      wave.push_back({domain.apex, RrType::HTTPS});
      wave.push_back({domain.www, RrType::HTTPS});
    }
    out.queries += wave.size();
    const auto https = shard.endpoint->run(wave);

    // Classify the HTTPS answers and collect the follow-up wave: one
    // A/AAAA/SOA/NS quartet per host with an HTTPS record — plus the
    // NS-tracking cohort rule.  Domains that ever published HTTPS keep
    // their follow-ups even while the record is deactivated (§4.2.3
    // cross-references the NS dataset to attribute intermittent records).
    // The cohort set is frozen during the fan-out; today's entrants land
    // in `joined` and are merged on the coordinating thread after the
    // workers finish.
    follow.clear();
    follow_obs.clear();
    const auto queue_follow_ups = [&](const Name& host,
                                      HttpsObservation& obs) {
      follow.push_back({host, RrType::A});
      follow.push_back({host, RrType::AAAA});
      follow.push_back({host, RrType::SOA});
      follow.push_back({host, RrType::NS});
      follow_obs.push_back(&obs);
    };
    for (std::size_t i = 0; i < n; ++i) {
      const ecosystem::DomainId id = snapshot.list[block + i];
      const auto& domain = net_.domain(id);
      HttpsObservation& apex_obs = apex_rows[i];
      HttpsScanner::apply_https(apex_obs, https[2 * i]);
      if (apex_obs.has_https()) {
        out.joined.push_back(id);
        queue_follow_ups(domain.apex, apex_obs);
      } else if (options_.scan_ns && https_cohort_.contains(id) &&
                 apex_obs.answered) {
        queue_follow_ups(domain.apex, apex_obs);
      }
      HttpsObservation& www_obs = www_rows[i];
      HttpsScanner::apply_https(www_obs, https[2 * i + 1]);
      if (www_obs.has_https()) queue_follow_ups(domain.www, www_obs);
    }
    out.queries += follow.size();

    const auto answers = shard.endpoint->run(follow);
    for (std::size_t j = 0; j < follow_obs.size(); ++j) {
      HttpsScanner::apply_follow_ups(*follow_obs[j], answers[4 * j],
                                     answers[4 * j + 1], answers[4 * j + 2],
                                     answers[4 * j + 3]);
    }

    // The block's rows are final: fold them into the columnar fragment
    // (interning the shared answer sections) and recycle the buffers.
    for (std::size_t i = 0; i < n; ++i) {
      out.apex.append(apex_rows[i]);
      out.www.append(www_rows[i]);
    }

    if (options_.progress) {
      const auto done = progress_done_.fetch_add(n) + n;
      options_.progress(done, progress_total_);
    }
  }
}

DailySnapshot Study::run_day(net::SimTime day) {
  // Midnight-align, then advance to the scan time.  The virtual clock does
  // not move again until the next run_day call: the whole day's scan sees
  // one frozen Internet, which is what makes the shard split invisible.
  net::SimTime at{day.unix_seconds - day.seconds_of_day()};
  timing_ = DayTiming{};
  const auto clock = [] { return std::chrono::steady_clock::now(); };
  const auto lap = [&clock](std::chrono::steady_clock::time_point& mark) {
    const auto now = clock();
    const double seconds = std::chrono::duration<double>(now - mark).count();
    mark = now;
    return seconds;
  };
  auto mark = clock();
  net_.advance_to(at + options_.scan_time);
  timing_.advance = lap(mark);
  // Socket-backed endpoints carry the day's instant to the serve process in
  // every query's scan-meta option; the in-process default ignores this.
  for (auto& shard : shards_) {
    shard.endpoint->set_virtual_time((at + options_.scan_time).unix_seconds);
  }
  // Day-boundary GC, after the clock moved (expiry checks need today's
  // instant) and before any of today's queries run.
  collect_garbage();
  timing_.compact = lap(mark) - timing_.sweep;
  interner_->begin_generation(day_index_);

  DailySnapshot snapshot(interner_);
  snapshot.day = at;
  net_.tranco().list_for_into(at, snapshot.list);
  progress_done_.store(0);
  progress_total_ = snapshot.list.size();

  mark = clock();
  std::vector<ShardScan> fragments(shards_.size());
  for_each_shard(snapshot.list.size(),
                 [&](std::size_t k, std::size_t begin, std::size_t end) {
                   scan_range(shards_[k], snapshot, begin, end, fragments[k]);
                 });

  // Merge fragments in list order; shard boundaries vanish here.  The
  // append remaps shard-interner refs into the snapshot's interner — the
  // sections are the same shared cache vectors, so this is a pointer-hit
  // walk, not a row rebuild.
  snapshot.apex.reserve(snapshot.list.size());
  snapshot.www.reserve(snapshot.list.size());
  for (auto& fragment : fragments) {
    snapshot.apex.append_column(fragment.apex);
    snapshot.www.append_column(fragment.www);
    for (ecosystem::DomainId id : fragment.joined) https_cohort_.insert(id);
    total_queries_ += fragment.queries;
  }

  timing_.scan = lap(mark);
  if (options_.scan_ns) scan_name_servers(snapshot);
  timing_.ns = lap(mark);
  compute_churn(snapshot);
  timing_.churn = lap(mark);

  for (auto* observer : observers_) observer->on_day(snapshot, net_);
  timing_.observers = lap(mark);

  // Roll the retention ring: yesterday's columns are replaced by today's
  // (releasing the older fragments and their NS name pool), and the day
  // counter moves so the next boundary knows the live generation window.
  prev_apex_ = snapshot.apex;
  prev_www_ = snapshot.www;
  prev_day_ = snapshot.day;
  have_prev_ = true;
  ++day_index_;

  const std::uint32_t window = std::max<std::uint32_t>(options_.retention_days, 2);
  const std::uint32_t min_gen =
      day_index_ >= window ? day_index_ - window + 1 : 0;
  const auto health = interner_->health(min_gen);
  gc_.interner_entries = health.entries;
  gc_.live_refs = health.live;
  gc_.tombstones = health.tombstones;
  gc_.compactions = interner_->stats().compactions;
  gc_.compaction_freed = interner_->stats().compaction_freed;

  return snapshot;
}

void Study::collect_garbage() {
  if (day_index_ == 0) return;  // nothing accreted before the first day
  if (options_.sweep_caches) {
    const auto sweep_start = std::chrono::steady_clock::now();
    for (auto& shard : shards_) {
      gc_.resolver_swept += shard.endpoint->collect_expired();
    }
    gc_.zone_swept += net_.sweep_zone_caches();
    timing_.sweep = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - sweep_start)
                        .count();
  }
  if (options_.interner_gc) {
    // Evict entries no generation in the retained window referenced.  The
    // window is the 2-deep ring: yesterday (generation day_index_ - 1) and
    // the day about to run; a larger retention_days widens it.
    const std::uint32_t window =
        std::max<std::uint32_t>(options_.retention_days, 2);
    const std::uint32_t min_gen =
        day_index_ >= window - 1 ? day_index_ - (window - 1) : 0;
    // A compaction that frees nothing is a pure copy — skip it.  Day 2
    // always lands here (every entry is still inside the window), as does
    // any day after a churn-free one.
    if (interner_->health(min_gen).tombstones != 0) {
      auto compaction = interner_->compact_into(min_gen);
      if (have_prev_) {
        prev_apex_.rebind(compaction);
        prev_www_.rebind(compaction);
      }
      // The swap releases the Study's reference to the pre-compaction
      // interner; snapshots still held by callers keep it — and every
      // Section it pins — alive until they let go.
      interner_ = std::move(compaction.interner);
    }
  }
#if defined(__GLIBC__)
  // A day boundary retires a full day of short-lived state (yesterday's
  // fragments, swept cache nodes, the pre-compaction interner) scattered
  // through the arena.  Hand the freed tail back to the OS so steady-state
  // peak RSS measures live data, not accumulated fragmentation — without
  // this the day-300 footprint ratchets up a little every day.
  if (options_.sweep_caches || options_.interner_gc) malloc_trim(0);
#endif
}

void Study::compute_churn(DailySnapshot& snapshot) {
  const std::size_t universe = net_.domain_count();
  if (prev_fp_.size() < universe) {
    prev_fp_.resize(universe, 0);
    prev_bits_.resize(universe, 0);
    prev_member_.resize(universe, 0);
  }

  const std::size_t n = snapshot.list.size();
  std::vector<std::uint64_t> today_fp(n);
  std::vector<std::uint8_t> today_bits(n);
  ChurnDiff& diff = snapshot.churn;
  diff.valid = churn_valid_;
  for (std::size_t i = 0; i < n; ++i) {
    const ecosystem::DomainId id = snapshot.list[i];
    // One content fingerprint per domain-day, folding both hosts.
    today_fp[i] = util::mix64(snapshot.apex.fingerprint(i) ^
                              util::mix64(snapshot.www.fingerprint(i)));
    today_bits[i] = snapshot.summary_bits(i);
    if (!churn_valid_) continue;
    if (prev_member_[id] != 0) {
      if (prev_fp_[id] == today_fp[i]) {
        ++diff.unchanged;
      } else {
        diff.changed.push_back(static_cast<std::uint32_t>(i));
        diff.changed_prev_bits.push_back(prev_bits_[id]);
      }
      prev_member_[id] = 2;  // seen today too
    } else {
      diff.entered.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (churn_valid_) {
    for (const ecosystem::DomainId id : prev_list_) {
      if (prev_member_[id] == 1) {
        diff.left.push_back(id);
        diff.left_prev_bits.push_back(prev_bits_[id]);
      }
    }
  }

  // Roll the stored state forward to today.
  for (const ecosystem::DomainId id : prev_list_) prev_member_[id] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ecosystem::DomainId id = snapshot.list[i];
    prev_member_[id] = 1;
    prev_fp_[id] = today_fp[i];
    prev_bits_[id] = today_bits[i];
  }
  prev_list_ = snapshot.list;
  churn_valid_ = true;
}

void Study::scan_name_servers(DailySnapshot& snapshot) {
  // Pass 1 (coordinating thread): walk the day's NS hosts in list order.
  // Hosts probed on an earlier day with usable addresses are served from
  // the cross-day cache; hosts never seen — or whose earlier probe came
  // back empty-handed — are queued for a fresh probe.  The queue is built
  // serially so its order (and therefore the day's query accounting) is
  // identical at every shard count.
  std::vector<Name> to_probe;
  for (std::size_t i = 0; i < snapshot.list.size(); ++i) {
    for (const Name& host : snapshot.apex.view(i).ns_records()) {
      if (snapshot.ns_info.contains(host)) continue;
      auto cached = ns_cache_.find(host);
      if (cached != ns_cache_.end() && !cached->second.addresses.empty()) {
        snapshot.ns_info.emplace(host, cached->second);
        continue;
      }
      // Placeholder so a host shared by several domains is queued once.
      snapshot.ns_info.emplace(host, NsInfo{});
      to_probe.push_back(host);
    }
  }

  // Pass 2: probe the queue across the shards, each shard's slice as one
  // engine wave (A then AAAA per host, in queue order).  Each host costs
  // one A and one AAAA query regardless of which shard — or how deep a
  // pipeline — runs it.
  std::vector<NsInfo> probed(to_probe.size());
  for_each_shard(
      to_probe.size(), [&](std::size_t k, std::size_t begin, std::size_t end) {
        Shard& shard = shards_[k];
        std::vector<QueryEngine::Request> wave;
        wave.reserve(2 * (end - begin));
        for (std::size_t i = begin; i < end; ++i) {
          wave.push_back({to_probe[i], RrType::A});
          wave.push_back({to_probe[i], RrType::AAAA});
        }
        const auto answers = shard.endpoint->run(wave);
        for (std::size_t i = begin; i < end; ++i) {
          NsInfo& info = probed[i];
          const auto& a = answers[2 * (i - begin)];
          for (const auto& rr : a.answers()) {
            if (const auto* rec = std::get_if<dns::ARdata>(&rr.rdata)) {
              info.addresses.push_back(net::IpAddr(rec->address));
            }
          }
          const auto& aaaa = answers[2 * (i - begin) + 1];
          for (const auto& rr : aaaa.answers()) {
            if (const auto* rec = std::get_if<dns::AaaaRdata>(&rr.rdata)) {
              info.addresses.push_back(net::IpAddr(rec->address));
            }
          }
          if (!info.addresses.empty()) {
            info.whois_org = net_.whois().lookup(info.addresses.front());
            info.operator_name = net_.whois().attribute(info.addresses.front());
          }
        }
      });
  total_queries_ += 2 * to_probe.size();

  for (std::size_t i = 0; i < to_probe.size(); ++i) {
    // A re-probe that changed a cached entry (an earlier empty-handed day
    // recovering, typically) can alter the attribution of rows whose
    // fingerprints did not move — flag the day for delta observers.
    auto cached = ns_cache_.find(to_probe[i]);
    if (cached != ns_cache_.end() && !(cached->second == probed[i])) {
      snapshot.churn.ns_info_refreshed = true;
    }
    ns_cache_[to_probe[i]] = probed[i];
    snapshot.ns_info[to_probe[i]] = std::move(probed[i]);
  }
}

resolver::ResolverStats Study::resolver_stats() const {
  resolver::ResolverStats total;
  for (const auto& shard : shards_) {
    total += shard.endpoint->stats();
  }
  // Server-side hot-path counters live in the shared infra, not in any
  // single resolver; fold them in once.
  auto hot = net_.infra().hot_path_stats();
  total.auth_cache_hits = hot.response_hits;
  total.sig_cache_hits = hot.signature_hits;
  total.bytes_encoded = hot.bytes_encoded;
  return total;
}

void Study::run(net::SimTime from, net::SimTime to) {
  for (net::SimTime day = from; day <= to; day = day + net::Duration::days(1)) {
    (void)run_day(day);
  }
}

}  // namespace httpsrr::scanner
