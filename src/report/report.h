#pragma once

// Rendering helpers for the bench binaries: fixed-width tables and ASCII
// time-series charts, so each bench prints rows shaped like the paper's
// tables and figures, with a "paper" column next to the measured one.

#include <string>
#include <vector>

#include "analysis/common.h"

namespace httpsrr::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a time series as a compact ASCII chart: one row per `stride`
// days, a bar scaled to [min,max], and the numeric value.
[[nodiscard]] std::string render_series(const std::string& title,
                                        const analysis::TimeSeries& series,
                                        int stride_days = 14, int width = 50);

// Renders several series side by side (same date axis).
struct NamedSeries {
  std::string name;
  const analysis::TimeSeries* series;
};
[[nodiscard]] std::string render_multi_series(const std::string& title,
                                              const std::vector<NamedSeries>& all,
                                              int stride_days = 14,
                                              int width = 40);

// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int decimals = 2);
[[nodiscard]] std::string fmt_pct(double value, int decimals = 2);

// Section header for bench output.
[[nodiscard]] std::string heading(const std::string& text);

}  // namespace httpsrr::report
