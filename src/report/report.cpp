#include "report/report.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string render_series(const std::string& title,
                          const analysis::TimeSeries& series, int stride_days,
                          int width) {
  return render_multi_series(title, {{"", &series}}, stride_days, width);
}

std::string render_multi_series(const std::string& title,
                                const std::vector<NamedSeries>& all,
                                int stride_days, int width) {
  std::string out = title + "\n";
  if (all.empty() || all.front().series->empty()) return out + "  (no data)\n";

  double lo = 1e300, hi = -1e300;
  for (const auto& ns : all) {
    for (const auto& [day, v] : ns.series->points()) {
      (void)day;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  // Legend.
  if (all.size() > 1 || !all.front().name.empty()) {
    out += "  legend:";
    const char* marks = "*o+x#@";
    for (std::size_t i = 0; i < all.size(); ++i) {
      out += util::format(" %c=%s", marks[i % 6], all[i].name.c_str());
    }
    out += util::format("   range [%.2f, %.2f]\n", lo, hi);
  }

  const auto& axis = all.front().series->points();
  std::int64_t next_shown = axis.begin()->first;
  for (const auto& [day_secs, v0] : axis) {
    (void)v0;
    if (day_secs < next_shown) continue;
    next_shown = day_secs + static_cast<std::int64_t>(stride_days) * 86400;
    net::SimTime day{day_secs};
    std::string line(static_cast<std::size_t>(width) + 1, ' ');
    const char* marks = "*o+x#@";
    std::string values;
    for (std::size_t i = 0; i < all.size(); ++i) {
      auto v = all[i].series->at(day);
      if (!v) continue;
      auto pos = static_cast<std::size_t>((*v - lo) / (hi - lo) * width);
      line[std::min(pos, static_cast<std::size_t>(width))] = marks[i % 6];
      values += util::format(" %6.2f", *v);
    }
    out += "  " + day.date().to_string() + " |" + line + "|" + values + "\n";
  }
  return out;
}

std::string fmt(double value, int decimals) {
  return util::format("%.*f", decimals, value);
}

std::string fmt_pct(double value, int decimals) {
  return util::format("%.*f%%", decimals, value);
}

std::string heading(const std::string& text) {
  return "\n=== " + text + " ===\n";
}

}  // namespace httpsrr::report
