#pragma once

// IP address value types.
//
// The library never opens sockets: addresses are identities inside the
// simulated network (src/net/network.h) and payloads of A/AAAA records and
// SVCB ip hints.  Both types parse and format the standard textual forms;
// Ipv6Addr implements RFC 5952 canonical formatting (longest zero run
// compressed, lowercase hex).

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace httpsrr::net {

class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  // Parse dotted-quad notation ("192.0.2.1"). Rejects leading zeros in
  // octets ("01.2.3.4") to match inet_pton behaviour.
  static util::Result<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::array<std::uint8_t, 4> octets() const;
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t bits_ = 0;
};

class Ipv6Addr {
 public:
  constexpr Ipv6Addr() : bytes_{} {}
  explicit Ipv6Addr(const std::array<std::uint8_t, 16>& bytes) : bytes_(bytes) {}

  // Construct from eight 16-bit groups, e.g. Ipv6Addr::from_groups({0x2001,
  // 0xdb8, 0, 0, 0, 0, 0, 1}) == 2001:db8::1.
  static Ipv6Addr from_groups(const std::array<std::uint16_t, 8>& groups);

  // Parse textual IPv6, including "::" compression and embedded IPv4 tail
  // ("::ffff:192.0.2.1"). Zone indices are not supported.
  static util::Result<Ipv6Addr> parse(std::string_view text);

  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }
  [[nodiscard]] std::array<std::uint16_t, 8> groups() const;

  // RFC 5952 canonical text form.
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Ipv6Addr&) const = default;

 private:
  std::array<std::uint8_t, 16> bytes_;
};

// A v4-or-v6 address.
class IpAddr {
 public:
  IpAddr() : is_v6_(false), v4_{}, v6_{} {}
  IpAddr(Ipv4Addr v4) : is_v6_(false), v4_(v4), v6_{} {}  // NOLINT(google-explicit-constructor)
  IpAddr(Ipv6Addr v6) : is_v6_(true), v4_{}, v6_(v6) {}   // NOLINT(google-explicit-constructor)

  // Parses either family (tries IPv4 first, then IPv6).
  static util::Result<IpAddr> parse(std::string_view text);

  [[nodiscard]] bool is_v4() const { return !is_v6_; }
  [[nodiscard]] bool is_v6() const { return is_v6_; }
  [[nodiscard]] const Ipv4Addr& v4() const { return v4_; }
  [[nodiscard]] const Ipv6Addr& v6() const { return v6_; }
  [[nodiscard]] std::string to_string() const {
    return is_v6_ ? v6_.to_string() : v4_.to_string();
  }

  friend bool operator==(const IpAddr& a, const IpAddr& b) {
    if (a.is_v6_ != b.is_v6_) return false;
    return a.is_v6_ ? a.v6_ == b.v6_ : a.v4_ == b.v4_;
  }
  friend auto operator<=>(const IpAddr& a, const IpAddr& b) {
    if (a.is_v6_ != b.is_v6_) return a.is_v6_ <=> b.is_v6_;
    if (a.is_v6_) return a.v6_ <=> b.v6_;
    return a.v4_ <=> b.v4_;
  }

 private:
  bool is_v6_;
  Ipv4Addr v4_;
  Ipv6Addr v6_;
};

}  // namespace httpsrr::net
