#pragma once

// Virtual time for the simulation.
//
// The entire longitudinal study (May 2023 – March 2024) runs on a virtual
// clock: the scanner ticks days, the ECH key manager ticks hours, DNS caches
// expire on TTL boundaries.  SimTime is seconds since the Unix epoch stored
// as int64; CivilDate converts to/from calendar dates (Howard Hinnant's
// algorithms) so event timelines can be written as "2023-10-05".

#include <compare>
#include <cstdint>
#include <string>

namespace httpsrr::net {

// A span of virtual time in seconds.
struct Duration {
  std::int64_t seconds = 0;

  static constexpr Duration secs(std::int64_t s) { return Duration{s}; }
  static constexpr Duration minutes(std::int64_t m) { return Duration{m * 60}; }
  static constexpr Duration hours(std::int64_t h) { return Duration{h * 3600}; }
  static constexpr Duration days(std::int64_t d) { return Duration{d * 86400}; }

  auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{seconds + o.seconds}; }
  constexpr Duration operator-(Duration o) const { return Duration{seconds - o.seconds}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{seconds * k}; }
};

// Calendar date (proleptic Gregorian).
struct CivilDate {
  int year = 1970;
  unsigned month = 1;  // 1..12
  unsigned day = 1;    // 1..31

  auto operator<=>(const CivilDate&) const = default;
  [[nodiscard]] std::string to_string() const;  // "YYYY-MM-DD"
};

// An instant of virtual time, seconds since 1970-01-01T00:00:00Z.
struct SimTime {
  std::int64_t unix_seconds = 0;

  static SimTime from_date(CivilDate d);
  static SimTime from_date(int year, unsigned month, unsigned day) {
    return from_date(CivilDate{year, month, day});
  }
  // Parses "YYYY-MM-DD"; terminates on malformed input (programmer dates).
  static SimTime from_string(const std::string& iso_date);

  [[nodiscard]] CivilDate date() const;
  // Seconds since midnight of the current day.
  [[nodiscard]] std::int64_t seconds_of_day() const;
  [[nodiscard]] std::string to_string() const;  // "YYYY-MM-DD HH:MM:SS"

  auto operator<=>(const SimTime&) const = default;
  SimTime operator+(Duration d) const { return SimTime{unix_seconds + d.seconds}; }
  SimTime operator-(Duration d) const { return SimTime{unix_seconds - d.seconds}; }
  Duration operator-(SimTime o) const { return Duration{unix_seconds - o.unix_seconds}; }
};

// days_from_civil / civil_from_days (public-domain algorithms).
[[nodiscard]] std::int64_t days_from_civil(CivilDate d);
[[nodiscard]] CivilDate civil_from_days(std::int64_t days);

// The simulation clock. Monotonic: advance() only moves forward.
//
// Concurrency contract (the sharded scan relies on this): the clock is
// advanced exactly once per virtual day — by Internet::advance_to, before
// the scan fan-out — and is then read-only while worker threads resolve.
// now() is a plain load of an int64; concurrent readers are safe as long
// as no advance happens during the fan-out.  Callers that advance time
// must do so from a single thread with no concurrent readers.
class SimClock {
 public:
  explicit SimClock(SimTime start) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }
  void advance(Duration d) { now_ = now_ + d; }
  // Jump to an absolute instant (must not move backwards).
  void advance_to(SimTime t);

 private:
  SimTime now_;
};

}  // namespace httpsrr::net
