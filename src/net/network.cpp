#include "net/network.h"

#include "util/strings.h"

namespace httpsrr::net {

std::string Endpoint::to_string() const {
  if (ip.is_v6()) return util::format("[%s]:%u", ip.to_string().c_str(), port);
  return util::format("%s:%u", ip.to_string().c_str(), port);
}

std::string_view to_string(ConnectError e) {
  switch (e) {
    case ConnectError::none: return "ok";
    case ConnectError::unreachable: return "unreachable";
    case ConnectError::refused: return "refused";
    case ConnectError::timeout: return "timeout";
  }
  return "?";
}

std::uint64_t SimNetwork::listen(Endpoint ep) {
  std::uint64_t id = next_service_id_++;
  listeners_[ep] = id;
  return id;
}

void SimNetwork::listen_as(Endpoint ep, std::uint64_t service_id) {
  listeners_[ep] = service_id;
}

void SimNetwork::close(Endpoint ep) { listeners_.erase(ep); }

void SimNetwork::set_host_unreachable(const IpAddr& ip, bool unreachable) {
  if (unreachable) {
    unreachable_hosts_.insert(ip);
  } else {
    unreachable_hosts_.erase(ip);
  }
}

void SimNetwork::set_endpoint_timeout(const Endpoint& ep, bool timeout) {
  if (timeout) {
    timeout_endpoints_.insert(ep);
  } else {
    timeout_endpoints_.erase(ep);
  }
}

bool SimNetwork::host_unreachable(const IpAddr& ip) const {
  return unreachable_hosts_.contains(ip);
}

ConnectResult SimNetwork::connect(const Endpoint& ep) const {
  ConnectResult result;
  if (unreachable_hosts_.contains(ep.ip)) {
    result.error = ConnectError::unreachable;
    result.rtt = base_rtt_;
    return result;
  }
  if (timeout_endpoints_.contains(ep)) {
    result.error = ConnectError::timeout;
    result.rtt = timeout_budget_;
    return result;
  }
  auto it = listeners_.find(ep);
  if (it == listeners_.end()) {
    result.error = ConnectError::refused;
    result.rtt = base_rtt_;
    return result;
  }
  result.error = ConnectError::none;
  result.service_id = it->second;
  result.rtt = base_rtt_;
  return result;
}

std::uint64_t SimNetwork::service_at(const Endpoint& ep) const {
  auto it = listeners_.find(ep);
  return it == listeners_.end() ? 0 : it->second;
}

}  // namespace httpsrr::net
