#include "net/transport.h"

#include <algorithm>
#include <cstddef>
#include <tuple>

#include "dns/message.h"
#include "util/strings.h"

namespace httpsrr::net {

namespace {

// DNS flag byte offsets/masks this channel needs: the TC bit lives in bit
// 1 of the high flags byte (wire offset 2), QDCOUNT..ARCOUNT at offsets
// 4..11.  The transport only frames messages — everything else about the
// payload is the client's and server's business.
constexpr std::size_t kHeaderSize = 12;
constexpr std::uint8_t kTcMask = 0x02;

// Advances `pos` past one wire name without chasing pointers (structural
// skip only, same rules as the dns-layer decoder).  Returns false on a
// malformed/truncated name.
bool skip_wire_name(std::span<const std::uint8_t> data, std::size_t& pos) {
  while (true) {
    if (pos >= data.size()) return false;
    std::uint8_t len = data[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= data.size()) return false;
      pos += 2;
      return true;
    }
    if ((len & 0xc0) != 0) return false;
    if (len == 0) {
      ++pos;
      return true;
    }
    if (pos + 1 + len > data.size()) return false;
    pos += 1 + len;
  }
}

// Echo the query id into a reply buffer, like a real server would (the
// service's shared wire image carries whatever id first rendered it).
void patch_reply_id(WireBytes& reply, std::span<const std::uint8_t> query) {
  if (reply.size() >= 2 && query.size() >= 2) {
    reply[0] = query[0];
    reply[1] = query[1];
  }
}

// Folds an IP address into the 64-bit key the latency model hashes from.
std::uint64_t ip_key(const IpAddr& server) {
  if (!server.is_v6()) return server.v4().bits();
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : server.v6().bytes()) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

WireBytes make_truncated_datagram(const WireBytes& full) {
  std::size_t end = kHeaderSize;
  std::uint16_t qdcount = 0;
  if (full.size() >= kHeaderSize) {
    qdcount = static_cast<std::uint16_t>((full[4] << 8) | full[5]);
    std::size_t pos = kHeaderSize;
    bool ok = true;
    for (std::uint16_t i = 0; i < qdcount && ok; ++i) {
      ok = skip_wire_name(full, pos) && pos + 4 <= full.size();
      if (ok) pos += 4;
    }
    if (ok) end = pos;
    if (!ok) qdcount = 0;
  }
  WireBytes out(full.begin(),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(end, full.size())));
  out.resize(std::max<std::size_t>(out.size(), kHeaderSize), 0);
  out[2] |= kTcMask;
  out[4] = static_cast<std::uint8_t>(qdcount >> 8);
  out[5] = static_cast<std::uint8_t>(qdcount);
  for (std::size_t off = 6; off < kHeaderSize; ++off) out[off] = 0;
  return out;
}

bool reply_matches_query(std::span<const std::uint8_t> reply,
                         std::span<const std::uint8_t> query) {
  if (reply.size() < kHeaderSize || query.size() < kHeaderSize) return false;
  // id echo + QR set: a response to *this* query, not a stray question.
  if (reply[0] != query[0] || reply[1] != query[1]) return false;
  if ((reply[2] & 0x80) == 0) return false;
  const std::uint16_t q_qd =
      static_cast<std::uint16_t>((query[4] << 8) | query[5]);
  const std::uint16_t r_qd =
      static_cast<std::uint16_t>((reply[4] << 8) | reply[5]);
  if (q_qd != r_qd) return false;
  // Question-by-question compare.  Queries emit uncompressed qnames and
  // responses echo the question first, before any compression target
  // exists, so a structural skip sees the full label bytes on both sides.
  std::size_t qp = kHeaderSize;
  std::size_t rp = kHeaderSize;
  for (std::uint16_t i = 0; i < q_qd; ++i) {
    const std::size_t q_start = qp;
    const std::size_t r_start = rp;
    if (!skip_wire_name(query, qp) || !skip_wire_name(reply, rp)) return false;
    if (qp + 4 > query.size() || rp + 4 > reply.size()) return false;
    const std::size_t q_len = qp - q_start;
    if (q_len != rp - r_start) return false;
    for (std::size_t off = 0; off < q_len; ++off) {
      // Case-insensitive qname echo (0x20-style case randomization must
      // still match); length octets are ≤ 63, untouched by the fold.
      if (util::ascii_lower(static_cast<char>(query[q_start + off])) !=
          util::ascii_lower(static_cast<char>(reply[r_start + off]))) {
        return false;
      }
    }
    for (std::size_t off = 0; off < 4; ++off) {  // qtype + qclass, verbatim
      if (query[qp + off] != reply[rp + off]) return false;
    }
    qp += 4;
    rp += 4;
  }
  return true;
}

LatencyModel LatencyModel::lan() {
  LatencyModel m;
  m.enabled = true;
  m.base_min_us = 200;
  m.base_max_us = 900;
  m.jitter_us = 150;
  return m;
}

LatencyModel LatencyModel::wan() {
  LatencyModel m;
  m.enabled = true;
  m.base_min_us = 5'000;
  m.base_max_us = 60'000;
  m.jitter_us = 4'000;
  return m;
}

std::optional<LatencyModel> LatencyModel::from_profile(std::string_view name) {
  if (name == "off" || name == "none") return LatencyModel{};
  if (name == "lan") return lan();
  if (name == "wan") return wan();
  return std::nullopt;
}

void Transport::record_rtt(std::uint64_t rtt_us) {
  ++timing_.exchanges;
  std::size_t bucket = 0;
  while (bucket + 1 < kRttBuckets && rtt_us >= (1ULL << bucket)) ++bucket;
  ++timing_.rtt_hist[bucket];
}

SendToken Transport::send(const IpAddr& server,
                          std::span<const std::uint8_t> query,
                          std::size_t udp_payload_limit) {
  AsyncReply done;
  done.token = next_token_++;
  done.reply = exchange(server, query, udp_payload_limit);
  done.arrival_us = timing_.virtual_us;
  fifo_.push_back(std::move(done));
  return fifo_.back().token;
}

std::optional<AsyncReply> Transport::poll() {
  if (fifo_.empty()) return std::nullopt;
  AsyncReply out = std::move(fifo_.front());
  fifo_.pop_front();
  return out;
}

TransportReply LoopbackTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  record_rtt(0);
  TransportReply reply;
  reply.payload = service_.serve(server, query);
  if (!reply.payload) return reply;  // timeout
  reply.error = ConnectError::none;
  // Truncation is accounted, not performed: the full image is delivered in
  // one hop, flagged as "a real channel would have retried over TCP".
  reply.tcp_retried = reply.payload->size() > udp_payload_limit;
  return reply;
}

bool DatagramTransport::roll(std::uint32_t permille) {
  return permille != 0 && fault_rng_.uniform(1000) < permille;
}

TransportReply DatagramTransport::tcp_exchange(
    const IpAddr& server, std::span<const std::uint8_t> query,
    bool after_truncation) {
  TransportReply reply;
  // Verification loop (RFC 5452 spirit): the TCP answer must echo this
  // query's id and question and must not itself be truncated — a
  // substituted or truncated-then-substituted reply is rejected, counted,
  // and the exchange retried once before giving up.  Without this check a
  // hostile server could force truncation on UDP and then swap in an
  // answer for a different question on the fallback.
  for (int attempt = 0; attempt <= 1; ++attempt) {
    ++stats_.tcp_queries;
    auto full = service_.serve(server, query);
    if (!full) return reply;  // connection never completes
    auto owned = std::make_shared<WireBytes>(*full);
    patch_reply_id(*owned, query);
    const bool tc_set =
        owned->size() > 2 && ((*owned)[2] & kTcMask) != 0;
    if (tc_set || !reply_matches_query(*owned, query)) {
      ++stats_.mismatched_replies;
      continue;
    }
    reply.error = ConnectError::none;
    reply.payload = std::move(owned);
    reply.tcp_retried = after_truncation;
    return reply;
  }
  return reply;  // both attempts hostile: as good as no reply
}

std::uint64_t DatagramTransport::next_rtt(const IpAddr& server) {
  if (!latency_.enabled) return 0;
  const std::uint64_t key = ip_key(server);
  auto [it, fresh] = server_latency_.try_emplace(key);
  ServerLatency& lat = it->second;
  if (fresh) {
    lat.key = key;
    const std::uint64_t span =
        latency_.base_max_us >= latency_.base_min_us
            ? latency_.base_max_us - latency_.base_min_us + 1
            : 1;
    lat.base_us = latency_.base_min_us +
                  static_cast<std::uint32_t>(
                      util::mix64(latency_.seed ^ util::mix64(key)) % span);
  }
  // Jitter is indexed by this server's own exchange counter, so the k-th
  // exchange to a server costs the same no matter how queries from other
  // resolutions interleave — timing stays a function of per-server
  // traffic, not of engine scheduling.
  std::uint64_t jitter = 0;
  if (latency_.jitter_us != 0) {
    jitter = util::mix64(lat.key ^ (0x9e3779b97f4a7c15ULL * ++lat.exchanges)) %
             (static_cast<std::uint64_t>(latency_.jitter_us) + 1);
  }
  return lat.base_us + jitter;
}

TransportReply DatagramTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  // A blocking caller waits out the whole round trip before the next
  // exchange can start: serial resolution pays Σ RTT on the virtual clock.
  const std::uint64_t rtt = next_rtt(server);
  record_rtt(rtt);
  timing_.virtual_us += rtt;
  return exchange_impl(server, query, udp_payload_limit);
}

SendToken DatagramTransport::send(const IpAddr& server,
                                  std::span<const std::uint8_t> query,
                                  std::size_t udp_payload_limit) {
  // The answer is computed now — the SimClock is the same at send and
  // arrival, so serving early cannot change the reply — but it is held
  // until vnow + RTT, which is what lets concurrent sends overlap.
  const std::uint64_t rtt = next_rtt(server);
  record_rtt(rtt);
  Pending p;
  p.arrival_us = timing_.virtual_us + rtt;
  p.token = next_token_++;
  p.reply = exchange_impl(server, query, udp_payload_limit);
  in_flight_.push_back(std::move(p));
  const SendToken token = in_flight_.back().token;
  std::push_heap(in_flight_.begin(), in_flight_.end(),
                 [](const Pending& a, const Pending& b) {
                   return std::tie(a.arrival_us, a.token) >
                          std::tie(b.arrival_us, b.token);
                 });
  return token;
}

std::optional<AsyncReply> DatagramTransport::poll() {
  if (in_flight_.empty()) return std::nullopt;
  std::pop_heap(in_flight_.begin(), in_flight_.end(),
                [](const Pending& a, const Pending& b) {
                  return std::tie(a.arrival_us, a.token) >
                         std::tie(b.arrival_us, b.token);
                });
  Pending p = std::move(in_flight_.back());
  in_flight_.pop_back();

  // The virtual clock jumps to this arrival; an already-passed arrival
  // (reply landed while we were processing a later poll's work) costs
  // nothing extra.
  if (p.arrival_us > timing_.virtual_us) timing_.virtual_us = p.arrival_us;
  if (p.token < max_delivered_) {
    ++timing_.reordered;
  } else {
    max_delivered_ = p.token;
  }

  AsyncReply out;
  out.token = p.token;
  out.reply = std::move(p.reply);
  out.arrival_us = p.arrival_us;
  return out;
}

TransportReply DatagramTransport::exchange_impl(
    const IpAddr& server, std::span<const std::uint8_t> query,
    std::size_t udp_payload_limit) {
  if (tcp_only_) return tcp_exchange(server, query, /*after_truncation=*/false);

  // RFC 6891 clamp on the truncation decision: an advertised limit below
  // 512 is treated as 512, above 4096 as 4096 — same rule the servers
  // apply, so transport-level and serve_wire-level truncation agree.
  const std::size_t limit = dns::clamp_edns_payload(static_cast<std::uint16_t>(
      std::min<std::size_t>(udp_payload_limit, 0xffff)));

  // Bounded retry: a lost datagram is retransmitted at most kMaxRetransmits
  // times before the exchange reports a timeout.  This is the bound that
  // keeps a 100%-loss channel from spinning the blocking resolve loop —
  // the caller sees a clean !ok() reply and degrades to SERVFAIL.
  for (int attempt = 0; attempt <= kMaxRetransmits; ++attempt) {
    if (attempt > 0) ++stats_.retransmits;
    auto reply = udp_attempt(server, query, limit);
    if (reply) return std::move(*reply);
  }
  ++stats_.timeouts;
  return {};
}

std::optional<TransportReply> DatagramTransport::udp_attempt(
    const IpAddr& server, std::span<const std::uint8_t> query,
    std::size_t udp_payload_limit) {
  ++stats_.udp_queries;
  if (roll(faults_.drop_permille)) {
    // The datagram (either direction) evaporated; the client waits in vain.
    ++stats_.dropped;
    return std::nullopt;
  }
  // A mute server is indistinguishable from a drop on the client side, so
  // it too earns the retransmit before the exchange gives up.
  auto full = service_.serve(server, query);
  if (!full) return std::nullopt;

  auto datagram = std::make_shared<WireBytes>();
  if (full->size() > udp_payload_limit) {
    ++stats_.truncated_replies;
    *datagram = make_truncated_datagram(*full);
  } else {
    *datagram = *full;
  }
  patch_reply_id(*datagram, query);
  if (roll(faults_.garbage_permille)) {
    // Trailing junk after the DNS payload — strict clients must reject it.
    ++stats_.garbage_appended;
    std::size_t extra = 4 + fault_rng_.uniform(16);
    for (std::size_t i = 0; i < extra; ++i) {
      datagram->push_back(static_cast<std::uint8_t>(fault_rng_.next_u32()));
    }
  }
  if (roll(faults_.duplicate_permille)) {
    // The network delivered the datagram twice; the client reads one copy
    // and discards the other as a stray — exactly one discard per
    // duplicate, never a second delivery up the stack.
    ++stats_.duplicated;
    ++stats_.stray_replies;
    if (udp_tap_) udp_tap_(*datagram);
  }
  if (udp_tap_) udp_tap_(*datagram);

  // Genuine TC handling: the decision is read from the delivered bytes.
  const bool tc =
      datagram->size() > 2 && ((*datagram)[2] & kTcMask) != 0;
  if (tc) return tcp_exchange(server, query, /*after_truncation=*/true);

  TransportReply reply;
  reply.error = ConnectError::none;
  reply.payload = std::move(datagram);
  return reply;
}

}  // namespace httpsrr::net
