#include "net/transport.h"

#include <algorithm>
#include <cstddef>

namespace httpsrr::net {

namespace {

// DNS flag byte offsets/masks this channel needs: the TC bit lives in bit
// 1 of the high flags byte (wire offset 2), QDCOUNT..ARCOUNT at offsets
// 4..11.  The transport only frames messages — everything else about the
// payload is the client's and server's business.
constexpr std::size_t kHeaderSize = 12;
constexpr std::uint8_t kTcMask = 0x02;

// Advances `pos` past one wire name without chasing pointers (structural
// skip only, same rules as the dns-layer decoder).  Returns false on a
// malformed/truncated name.
bool skip_wire_name(std::span<const std::uint8_t> data, std::size_t& pos) {
  while (true) {
    if (pos >= data.size()) return false;
    std::uint8_t len = data[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= data.size()) return false;
      pos += 2;
      return true;
    }
    if ((len & 0xc0) != 0) return false;
    if (len == 0) {
      ++pos;
      return true;
    }
    if (pos + 1 + len > data.size()) return false;
    pos += 1 + len;
  }
}

// Echo the query id into a reply buffer, like a real server would (the
// service's shared wire image carries whatever id first rendered it).
void patch_reply_id(WireBytes& reply, std::span<const std::uint8_t> query) {
  if (reply.size() >= 2 && query.size() >= 2) {
    reply[0] = query[0];
    reply[1] = query[1];
  }
}

// Builds the datagram a server actually emits when the full response does
// not fit the client's payload limit: header + question echoed, TC=1,
// answer/authority/additional counts zeroed (RFC 2181 §9 minimal style).
WireBytes make_truncated_datagram(const WireBytes& full) {
  std::size_t end = kHeaderSize;
  std::uint16_t qdcount = 0;
  if (full.size() >= kHeaderSize) {
    qdcount = static_cast<std::uint16_t>((full[4] << 8) | full[5]);
    std::size_t pos = kHeaderSize;
    bool ok = true;
    for (std::uint16_t i = 0; i < qdcount && ok; ++i) {
      ok = skip_wire_name(full, pos) && pos + 4 <= full.size();
      if (ok) pos += 4;
    }
    if (ok) end = pos;
    if (!ok) qdcount = 0;
  }
  WireBytes out(full.begin(),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(end, full.size())));
  out.resize(std::max<std::size_t>(out.size(), kHeaderSize), 0);
  out[2] |= kTcMask;
  out[4] = static_cast<std::uint8_t>(qdcount >> 8);
  out[5] = static_cast<std::uint8_t>(qdcount);
  for (std::size_t off = 6; off < kHeaderSize; ++off) out[off] = 0;
  return out;
}

}  // namespace

TransportReply LoopbackTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  TransportReply reply;
  reply.payload = service_.serve(server, query);
  if (!reply.payload) return reply;  // timeout
  reply.error = ConnectError::none;
  // Truncation is accounted, not performed: the full image is delivered in
  // one hop, flagged as "a real channel would have retried over TCP".
  reply.tcp_retried = reply.payload->size() > udp_payload_limit;
  return reply;
}

bool DatagramTransport::roll(std::uint32_t permille) {
  return permille != 0 && fault_rng_.uniform(1000) < permille;
}

TransportReply DatagramTransport::tcp_exchange(
    const IpAddr& server, std::span<const std::uint8_t> query,
    bool after_truncation) {
  TransportReply reply;
  ++stats_.tcp_queries;
  auto full = service_.serve(server, query);
  if (!full) return reply;  // connection never completes
  auto owned = std::make_shared<WireBytes>(*full);
  patch_reply_id(*owned, query);
  reply.error = ConnectError::none;
  reply.payload = std::move(owned);
  reply.tcp_retried = after_truncation;
  return reply;
}

TransportReply DatagramTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  if (tcp_only_) return tcp_exchange(server, query, /*after_truncation=*/false);

  ++stats_.udp_queries;
  if (roll(faults_.drop_permille)) {
    // The datagram (either direction) evaporated; the client times out.
    ++stats_.dropped;
    return {};
  }
  auto full = service_.serve(server, query);
  if (!full) return {};

  auto datagram = std::make_shared<WireBytes>();
  if (full->size() > udp_payload_limit) {
    ++stats_.truncated_replies;
    *datagram = make_truncated_datagram(*full);
  } else {
    *datagram = *full;
  }
  patch_reply_id(*datagram, query);
  if (roll(faults_.garbage_permille)) {
    // Trailing junk after the DNS payload — strict clients must reject it.
    ++stats_.garbage_appended;
    std::size_t extra = 4 + fault_rng_.uniform(16);
    for (std::size_t i = 0; i < extra; ++i) {
      datagram->push_back(static_cast<std::uint8_t>(fault_rng_.next_u32()));
    }
  }
  if (roll(faults_.duplicate_permille)) {
    // The network delivered the datagram twice; the client reads one copy
    // and discards the other, so only the tap ever sees the duplicate.
    ++stats_.duplicated;
    if (udp_tap_) udp_tap_(*datagram);
  }
  if (udp_tap_) udp_tap_(*datagram);

  // Genuine TC handling: the decision is read from the delivered bytes.
  const bool tc =
      datagram->size() > 2 && ((*datagram)[2] & kTcMask) != 0;
  if (tc) return tcp_exchange(server, query, /*after_truncation=*/true);

  TransportReply reply;
  reply.error = ConnectError::none;
  reply.payload = std::move(datagram);
  return reply;
}

}  // namespace httpsrr::net
