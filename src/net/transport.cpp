#include "net/transport.h"

#include <algorithm>
#include <cstddef>
#include <tuple>

namespace httpsrr::net {

namespace {

// DNS flag byte offsets/masks this channel needs: the TC bit lives in bit
// 1 of the high flags byte (wire offset 2), QDCOUNT..ARCOUNT at offsets
// 4..11.  The transport only frames messages — everything else about the
// payload is the client's and server's business.
constexpr std::size_t kHeaderSize = 12;
constexpr std::uint8_t kTcMask = 0x02;

// Advances `pos` past one wire name without chasing pointers (structural
// skip only, same rules as the dns-layer decoder).  Returns false on a
// malformed/truncated name.
bool skip_wire_name(std::span<const std::uint8_t> data, std::size_t& pos) {
  while (true) {
    if (pos >= data.size()) return false;
    std::uint8_t len = data[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= data.size()) return false;
      pos += 2;
      return true;
    }
    if ((len & 0xc0) != 0) return false;
    if (len == 0) {
      ++pos;
      return true;
    }
    if (pos + 1 + len > data.size()) return false;
    pos += 1 + len;
  }
}

// Echo the query id into a reply buffer, like a real server would (the
// service's shared wire image carries whatever id first rendered it).
void patch_reply_id(WireBytes& reply, std::span<const std::uint8_t> query) {
  if (reply.size() >= 2 && query.size() >= 2) {
    reply[0] = query[0];
    reply[1] = query[1];
  }
}

// Builds the datagram a server actually emits when the full response does
// not fit the client's payload limit: header + question echoed, TC=1,
// answer/authority/additional counts zeroed (RFC 2181 §9 minimal style).
WireBytes make_truncated_datagram(const WireBytes& full) {
  std::size_t end = kHeaderSize;
  std::uint16_t qdcount = 0;
  if (full.size() >= kHeaderSize) {
    qdcount = static_cast<std::uint16_t>((full[4] << 8) | full[5]);
    std::size_t pos = kHeaderSize;
    bool ok = true;
    for (std::uint16_t i = 0; i < qdcount && ok; ++i) {
      ok = skip_wire_name(full, pos) && pos + 4 <= full.size();
      if (ok) pos += 4;
    }
    if (ok) end = pos;
    if (!ok) qdcount = 0;
  }
  WireBytes out(full.begin(),
                full.begin() + static_cast<std::ptrdiff_t>(
                                   std::min(end, full.size())));
  out.resize(std::max<std::size_t>(out.size(), kHeaderSize), 0);
  out[2] |= kTcMask;
  out[4] = static_cast<std::uint8_t>(qdcount >> 8);
  out[5] = static_cast<std::uint8_t>(qdcount);
  for (std::size_t off = 6; off < kHeaderSize; ++off) out[off] = 0;
  return out;
}

// Folds an IP address into the 64-bit key the latency model hashes from.
std::uint64_t ip_key(const IpAddr& server) {
  if (!server.is_v6()) return server.v4().bits();
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : server.v6().bytes()) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LatencyModel LatencyModel::lan() {
  LatencyModel m;
  m.enabled = true;
  m.base_min_us = 200;
  m.base_max_us = 900;
  m.jitter_us = 150;
  return m;
}

LatencyModel LatencyModel::wan() {
  LatencyModel m;
  m.enabled = true;
  m.base_min_us = 5'000;
  m.base_max_us = 60'000;
  m.jitter_us = 4'000;
  return m;
}

std::optional<LatencyModel> LatencyModel::from_profile(std::string_view name) {
  if (name == "off" || name == "none") return LatencyModel{};
  if (name == "lan") return lan();
  if (name == "wan") return wan();
  return std::nullopt;
}

void Transport::record_rtt(std::uint64_t rtt_us) {
  ++timing_.exchanges;
  std::size_t bucket = 0;
  while (bucket + 1 < kRttBuckets && rtt_us >= (1ULL << bucket)) ++bucket;
  ++timing_.rtt_hist[bucket];
}

SendToken Transport::send(const IpAddr& server,
                          std::span<const std::uint8_t> query,
                          std::size_t udp_payload_limit) {
  AsyncReply done;
  done.token = next_token_++;
  done.reply = exchange(server, query, udp_payload_limit);
  done.arrival_us = timing_.virtual_us;
  fifo_.push_back(std::move(done));
  return fifo_.back().token;
}

std::optional<AsyncReply> Transport::poll() {
  if (fifo_.empty()) return std::nullopt;
  AsyncReply out = std::move(fifo_.front());
  fifo_.pop_front();
  return out;
}

TransportReply LoopbackTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  record_rtt(0);
  TransportReply reply;
  reply.payload = service_.serve(server, query);
  if (!reply.payload) return reply;  // timeout
  reply.error = ConnectError::none;
  // Truncation is accounted, not performed: the full image is delivered in
  // one hop, flagged as "a real channel would have retried over TCP".
  reply.tcp_retried = reply.payload->size() > udp_payload_limit;
  return reply;
}

bool DatagramTransport::roll(std::uint32_t permille) {
  return permille != 0 && fault_rng_.uniform(1000) < permille;
}

TransportReply DatagramTransport::tcp_exchange(
    const IpAddr& server, std::span<const std::uint8_t> query,
    bool after_truncation) {
  TransportReply reply;
  ++stats_.tcp_queries;
  auto full = service_.serve(server, query);
  if (!full) return reply;  // connection never completes
  auto owned = std::make_shared<WireBytes>(*full);
  patch_reply_id(*owned, query);
  reply.error = ConnectError::none;
  reply.payload = std::move(owned);
  reply.tcp_retried = after_truncation;
  return reply;
}

std::uint64_t DatagramTransport::next_rtt(const IpAddr& server) {
  if (!latency_.enabled) return 0;
  const std::uint64_t key = ip_key(server);
  auto [it, fresh] = server_latency_.try_emplace(key);
  ServerLatency& lat = it->second;
  if (fresh) {
    lat.key = key;
    const std::uint64_t span =
        latency_.base_max_us >= latency_.base_min_us
            ? latency_.base_max_us - latency_.base_min_us + 1
            : 1;
    lat.base_us = latency_.base_min_us +
                  static_cast<std::uint32_t>(
                      util::mix64(latency_.seed ^ util::mix64(key)) % span);
  }
  // Jitter is indexed by this server's own exchange counter, so the k-th
  // exchange to a server costs the same no matter how queries from other
  // resolutions interleave — timing stays a function of per-server
  // traffic, not of engine scheduling.
  std::uint64_t jitter = 0;
  if (latency_.jitter_us != 0) {
    jitter = util::mix64(lat.key ^ (0x9e3779b97f4a7c15ULL * ++lat.exchanges)) %
             (static_cast<std::uint64_t>(latency_.jitter_us) + 1);
  }
  return lat.base_us + jitter;
}

TransportReply DatagramTransport::exchange(const IpAddr& server,
                                           std::span<const std::uint8_t> query,
                                           std::size_t udp_payload_limit) {
  // A blocking caller waits out the whole round trip before the next
  // exchange can start: serial resolution pays Σ RTT on the virtual clock.
  const std::uint64_t rtt = next_rtt(server);
  record_rtt(rtt);
  timing_.virtual_us += rtt;
  return exchange_impl(server, query, udp_payload_limit);
}

SendToken DatagramTransport::send(const IpAddr& server,
                                  std::span<const std::uint8_t> query,
                                  std::size_t udp_payload_limit) {
  // The answer is computed now — the SimClock is the same at send and
  // arrival, so serving early cannot change the reply — but it is held
  // until vnow + RTT, which is what lets concurrent sends overlap.
  const std::uint64_t rtt = next_rtt(server);
  record_rtt(rtt);
  Pending p;
  p.arrival_us = timing_.virtual_us + rtt;
  p.token = next_token_++;
  p.reply = exchange_impl(server, query, udp_payload_limit);
  in_flight_.push_back(std::move(p));
  const SendToken token = in_flight_.back().token;
  std::push_heap(in_flight_.begin(), in_flight_.end(),
                 [](const Pending& a, const Pending& b) {
                   return std::tie(a.arrival_us, a.token) >
                          std::tie(b.arrival_us, b.token);
                 });
  return token;
}

std::optional<AsyncReply> DatagramTransport::poll() {
  if (in_flight_.empty()) return std::nullopt;
  std::pop_heap(in_flight_.begin(), in_flight_.end(),
                [](const Pending& a, const Pending& b) {
                  return std::tie(a.arrival_us, a.token) >
                         std::tie(b.arrival_us, b.token);
                });
  Pending p = std::move(in_flight_.back());
  in_flight_.pop_back();

  // The virtual clock jumps to this arrival; an already-passed arrival
  // (reply landed while we were processing a later poll's work) costs
  // nothing extra.
  if (p.arrival_us > timing_.virtual_us) timing_.virtual_us = p.arrival_us;
  if (p.token < max_delivered_) {
    ++timing_.reordered;
  } else {
    max_delivered_ = p.token;
  }

  AsyncReply out;
  out.token = p.token;
  out.reply = std::move(p.reply);
  out.arrival_us = p.arrival_us;
  return out;
}

TransportReply DatagramTransport::exchange_impl(
    const IpAddr& server, std::span<const std::uint8_t> query,
    std::size_t udp_payload_limit) {
  if (tcp_only_) return tcp_exchange(server, query, /*after_truncation=*/false);

  ++stats_.udp_queries;
  if (roll(faults_.drop_permille)) {
    // The datagram (either direction) evaporated; the client times out.
    ++stats_.dropped;
    return {};
  }
  auto full = service_.serve(server, query);
  if (!full) return {};

  auto datagram = std::make_shared<WireBytes>();
  if (full->size() > udp_payload_limit) {
    ++stats_.truncated_replies;
    *datagram = make_truncated_datagram(*full);
  } else {
    *datagram = *full;
  }
  patch_reply_id(*datagram, query);
  if (roll(faults_.garbage_permille)) {
    // Trailing junk after the DNS payload — strict clients must reject it.
    ++stats_.garbage_appended;
    std::size_t extra = 4 + fault_rng_.uniform(16);
    for (std::size_t i = 0; i < extra; ++i) {
      datagram->push_back(static_cast<std::uint8_t>(fault_rng_.next_u32()));
    }
  }
  if (roll(faults_.duplicate_permille)) {
    // The network delivered the datagram twice; the client reads one copy
    // and discards the other, so only the tap ever sees the duplicate.
    ++stats_.duplicated;
    if (udp_tap_) udp_tap_(*datagram);
  }
  if (udp_tap_) udp_tap_(*datagram);

  // Genuine TC handling: the decision is read from the delivered bytes.
  const bool tc =
      datagram->size() > 2 && ((*datagram)[2] & kTcMask) != 0;
  if (tc) return tcp_exchange(server, query, /*after_truncation=*/true);

  TransportReply reply;
  reply.error = ConnectError::none;
  reply.payload = std::move(datagram);
  return reply;
}

}  // namespace httpsrr::net
