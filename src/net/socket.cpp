#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace httpsrr::net {

namespace {

struct SockAddr {
  sockaddr_storage ss{};
  socklen_t len = 0;
  int family = AF_UNSPEC;
};

std::optional<SockAddr> to_sockaddr(const SocketEndpoint& endpoint) {
  SockAddr out;
  if (endpoint.is_v6()) {
    auto* sin6 = reinterpret_cast<sockaddr_in6*>(&out.ss);
    sin6->sin6_family = AF_INET6;
    sin6->sin6_port = htons(endpoint.port);
    if (inet_pton(AF_INET6, endpoint.host.c_str(), &sin6->sin6_addr) != 1) {
      return std::nullopt;
    }
    out.len = sizeof(sockaddr_in6);
    out.family = AF_INET6;
  } else {
    auto* sin = reinterpret_cast<sockaddr_in*>(&out.ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(endpoint.port);
    if (inet_pton(AF_INET, endpoint.host.c_str(), &sin->sin_addr) != 1) {
      return std::nullopt;
    }
    out.len = sizeof(sockaddr_in);
    out.family = AF_INET;
  }
  return out;
}

bool set_nonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_timeouts(int fd, std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  return setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<SocketEndpoint> SocketEndpoint::parse(std::string_view text) {
  SocketEndpoint out;
  std::string_view host;
  std::string_view port;
  if (!text.empty() && text.front() == '[') {
    // "[v6]:port"
    const std::size_t close = text.find(']');
    if (close == std::string_view::npos || close + 2 > text.size() ||
        text[close + 1] != ':') {
      return std::nullopt;
    }
    host = text.substr(1, close - 1);
    port = text.substr(close + 2);
  } else {
    const std::size_t colon = text.rfind(':');
    if (colon == std::string_view::npos) return std::nullopt;
    host = text.substr(0, colon);
    port = text.substr(colon + 1);
    if (host.find(':') != std::string_view::npos) {
      return std::nullopt;  // bare v6 needs brackets
    }
  }
  if (host.empty() || port.empty()) return std::nullopt;
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(port.data(), port.data() + port.size(),
                                   value);
  if (ec != std::errc{} || ptr != port.data() + port.size() || value > 65535) {
    return std::nullopt;
  }
  out.host = std::string(host);
  out.port = static_cast<std::uint16_t>(value);
  if (!to_sockaddr(out)) return std::nullopt;  // literal addresses only
  return out;
}

std::string SocketEndpoint::to_string() const {
  if (is_v6()) return "[" + host + "]:" + std::to_string(port);
  return host + ":" + std::to_string(port);
}

Fd udp_socket_bound(const SocketEndpoint& endpoint) {
  auto addr = to_sockaddr(endpoint);
  if (!addr) return Fd{};
  Fd fd(::socket(addr->family, SOCK_DGRAM, 0));
  if (!fd.valid() || !set_nonblocking(fd.get())) return Fd{};
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr->ss),
             addr->len) != 0) {
    return Fd{};
  }
  return fd;
}

Fd udp_socket_connected(const SocketEndpoint& endpoint) {
  auto addr = to_sockaddr(endpoint);
  if (!addr) return Fd{};
  Fd fd(::socket(addr->family, SOCK_DGRAM, 0));
  if (!fd.valid() || !set_nonblocking(fd.get())) return Fd{};
  // A connected UDP socket only accepts datagrams from the peer — the
  // kernel already rejects off-path sources, the transport still rejects
  // on-path strays by id/question.
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr->ss),
                addr->len) != 0) {
    return Fd{};
  }
  return fd;
}

Fd tcp_listener(const SocketEndpoint& endpoint, int backlog) {
  auto addr = to_sockaddr(endpoint);
  if (!addr) return Fd{};
  Fd fd(::socket(addr->family, SOCK_STREAM, 0));
  if (!fd.valid() || !set_nonblocking(fd.get())) return Fd{};
  int one = 1;
  setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr->ss),
             addr->len) != 0 ||
      ::listen(fd.get(), backlog) != 0) {
    return Fd{};
  }
  return fd;
}

Fd tcp_connect(const SocketEndpoint& endpoint, std::uint32_t timeout_ms) {
  auto addr = to_sockaddr(endpoint);
  if (!addr) return Fd{};
  Fd fd(::socket(addr->family, SOCK_STREAM, 0));
  if (!fd.valid() || !set_timeouts(fd.get(), timeout_ms)) return Fd{};
  int one = 1;
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr->ss),
                addr->len) != 0) {
    return Fd{};
  }
  return fd;
}

Fd tcp_connect_nonblocking(const SocketEndpoint& endpoint) {
  auto addr = to_sockaddr(endpoint);
  if (!addr) return Fd{};
  Fd fd(::socket(addr->family, SOCK_STREAM, 0));
  if (!fd.valid() || !set_nonblocking(fd.get())) return Fd{};
  int one = 1;
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr->ss),
                addr->len) != 0 &&
      errno != EINPROGRESS) {
    return Fd{};
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) return 0;
  if (ss.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
}

bool write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // error or send timeout
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::span<std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::recv(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // error, EOF, or receive timeout
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000ULL;
}

}  // namespace httpsrr::net
