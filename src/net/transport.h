#pragma once

// net::Transport — the channel every resolver↔authoritative exchange
// travels over.  The resolver encodes its query into wire bytes, hands
// them to a Transport, and reads the reply bytes back through
// dns::MessageView; no in-memory Message crosses the client/server
// boundary on this path.
//
// Two implementations:
//   * LoopbackTransport — zero-copy: the reply is the server's shared
//     immutable wire image itself (an aliasing shared_ptr, no buffer copy,
//     no allocation).  Truncation is modelled, not performed: a reply wider
//     than the UDP payload limit is delivered whole with `tcp_retried`
//     set, exactly reproducing the pre-transport resolver's accounting.
//     This is the default transport and the scan hot path.
//   * DatagramTransport — a real UDP/TCP channel model: the UDP leg
//     enforces the payload limit by synthesising a genuine truncated
//     datagram (TC=1, sections dropped), the client-visible TC bit is
//     decoded from the delivered bytes, and a truncated reply triggers a
//     TCP re-send of the same query.  Opt-in fault hooks (drop, duplicate,
//     trailing garbage) model a hostile/lossy path for robustness tests.
//
// Ownership/lifetime rule: TransportReply::payload owns (or shares) the
// reply buffer.  A dns::MessageView parsed from TransportReply::bytes()
// borrows that buffer — keep the TransportReply alive for as long as any
// view into it, and assume nothing about the buffer after the next
// exchange() on the same transport.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/ip.h"
#include "net/network.h"
#include "util/rng.h"

namespace httpsrr::net {

using WireBytes = std::vector<std::uint8_t>;

// Server side of a transport: something that can answer one DNS query
// addressed to an IP.  The returned buffer is the *full* (TCP-size)
// response wire image, shared and immutable — transports decide what the
// client actually sees of it (truncation, copies, faults).  nullptr means
// nothing answered at that address: the client observes a timeout.
class WireService {
 public:
  virtual ~WireService() = default;
  [[nodiscard]] virtual std::shared_ptr<const WireBytes> serve(
      const IpAddr& server, std::span<const std::uint8_t> query) const = 0;
};

struct TransportReply {
  ConnectError error = ConnectError::timeout;
  // Owns or shares the reply buffer; null unless ok().
  std::shared_ptr<const WireBytes> payload;
  // The UDP reply came back TC=1 and the query was re-sent over TCP;
  // `payload` holds the TCP answer.
  bool tcp_retried = false;

  [[nodiscard]] bool ok() const {
    return error == ConnectError::none && payload != nullptr;
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return payload ? std::span<const std::uint8_t>(*payload)
                   : std::span<const std::uint8_t>{};
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one encoded query to `server` and returns the reply bytes.
  // `udp_payload_limit` is the client's advertised EDNS payload size (512
  // without EDNS) — the channel, not the caller, handles truncation.
  [[nodiscard]] virtual TransportReply exchange(
      const IpAddr& server, std::span<const std::uint8_t> query,
      std::size_t udp_payload_limit) = 0;
};

// Zero-copy in-process channel over the service's shared wire images.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(const WireService& service) : service_(service) {}

  [[nodiscard]] TransportReply exchange(const IpAddr& server,
                                        std::span<const std::uint8_t> query,
                                        std::size_t udp_payload_limit) override;

 private:
  const WireService& service_;
};

// Opt-in fault injection for DatagramTransport's UDP leg, rates in
// permille (0..1000) drawn from a deterministic per-transport stream.
// TCP is modelled as reliable: faults only ever hit datagrams.
struct TransportFaults {
  std::uint32_t drop_permille = 0;       // datagram silently lost → timeout
  std::uint32_t duplicate_permille = 0;  // reply delivered twice
  std::uint32_t garbage_permille = 0;    // trailing junk appended to reply
  std::uint64_t seed = 0xfa017;

  [[nodiscard]] bool any() const {
    return drop_permille != 0 || duplicate_permille != 0 ||
           garbage_permille != 0;
  }
};

struct DatagramStats {
  std::uint64_t udp_queries = 0;
  std::uint64_t tcp_queries = 0;
  std::uint64_t truncated_replies = 0;  // TC=1 datagrams synthesised
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t garbage_appended = 0;
};

// UDP-with-TCP-fallback channel model.  Every reply is a fresh owned
// buffer (a real socket read), the reply id is patched to the query's (a
// real server echoes it), and truncation produces an actual TC=1 datagram
// that the client-side TC check decodes from the bytes.
class DatagramTransport final : public Transport {
 public:
  explicit DatagramTransport(const WireService& service,
                             TransportFaults faults = {})
      : service_(service), faults_(faults), fault_rng_(faults.seed) {}

  [[nodiscard]] TransportReply exchange(const IpAddr& server,
                                        std::span<const std::uint8_t> query,
                                        std::size_t udp_payload_limit) override;

  // Skip the UDP leg entirely (dig's --tcp).
  void set_tcp_only(bool tcp_only) { tcp_only_ = tcp_only; }

  // Observes every UDP datagram as delivered to the client (after
  // truncation, id patching and faults) — lets tests assert on the actual
  // bytes, e.g. that the TC bit really was set on the wire.
  using UdpTap = std::function<void(std::span<const std::uint8_t>)>;
  void set_udp_tap(UdpTap tap) { udp_tap_ = std::move(tap); }

  [[nodiscard]] const DatagramStats& stats() const { return stats_; }

 private:
  [[nodiscard]] TransportReply tcp_exchange(
      const IpAddr& server, std::span<const std::uint8_t> query,
      bool after_truncation);
  [[nodiscard]] bool roll(std::uint32_t permille);

  const WireService& service_;
  TransportFaults faults_;
  util::Pcg32 fault_rng_;
  bool tcp_only_ = false;
  UdpTap udp_tap_;
  DatagramStats stats_;
};

}  // namespace httpsrr::net
