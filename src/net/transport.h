#pragma once

// net::Transport — the channel every resolver↔authoritative exchange
// travels over.  The resolver encodes its query into wire bytes, hands
// them to a Transport, and reads the reply bytes back through
// dns::MessageView; no in-memory Message crosses the client/server
// boundary on this path.
//
// Two implementations:
//   * LoopbackTransport — zero-copy: the reply is the server's shared
//     immutable wire image itself (an aliasing shared_ptr, no buffer copy,
//     no allocation).  Truncation is modelled, not performed: a reply wider
//     than the UDP payload limit is delivered whole with `tcp_retried`
//     set, exactly reproducing the pre-transport resolver's accounting.
//     This is the default transport and the scan hot path.
//   * DatagramTransport — a real UDP/TCP channel model: the UDP leg
//     enforces the payload limit by synthesising a genuine truncated
//     datagram (TC=1, sections dropped), the client-visible TC bit is
//     decoded from the delivered bytes, and a truncated reply triggers a
//     TCP re-send of the same query.  Opt-in fault hooks (drop, duplicate,
//     trailing garbage) model a hostile/lossy path for robustness tests.
//
// Ownership/lifetime rule: TransportReply::payload owns (or shares) the
// reply buffer.  A dns::MessageView parsed from TransportReply::bytes()
// borrows that buffer — keep the TransportReply alive for as long as any
// view into it, and assume nothing about the buffer after the next
// exchange() on the same transport.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/network.h"
#include "util/rng.h"

namespace httpsrr::net {

using WireBytes = std::vector<std::uint8_t>;

// Server side of a transport: something that can answer one DNS query
// addressed to an IP.  The returned buffer is the *full* (TCP-size)
// response wire image, shared and immutable — transports decide what the
// client actually sees of it (truncation, copies, faults).  nullptr means
// nothing answered at that address: the client observes a timeout.
class WireService {
 public:
  virtual ~WireService() = default;
  [[nodiscard]] virtual std::shared_ptr<const WireBytes> serve(
      const IpAddr& server, std::span<const std::uint8_t> query) const = 0;
};

// ---- Wire-frame helpers (shared by the modelled channel, the real-socket
// transport, and the socket server) ---------------------------------------

// Builds the datagram a server actually emits when the full response does
// not fit the client's payload limit: header + question echoed, TC=1,
// answer/authority/additional counts zeroed (RFC 2181 §9 minimal style).
[[nodiscard]] WireBytes make_truncated_datagram(const WireBytes& full);

// Client-side reply acceptance check: the reply's id must echo the query's,
// QR must be set, and the question section must match the query's byte for
// byte (case-folded qname, same qtype/qclass).  This is what rejects a
// substituted answer on the TCP fallback path and stray/late datagrams on a
// real socket — an off-path reply that guesses the id still has to echo the
// exact question.
[[nodiscard]] bool reply_matches_query(std::span<const std::uint8_t> reply,
                                       std::span<const std::uint8_t> query);

struct TransportReply {
  ConnectError error = ConnectError::timeout;
  // Owns or shares the reply buffer; null unless ok().
  std::shared_ptr<const WireBytes> payload;
  // The UDP reply came back TC=1 and the query was re-sent over TCP;
  // `payload` holds the TCP answer.
  bool tcp_retried = false;

  [[nodiscard]] bool ok() const {
    return error == ConnectError::none && payload != nullptr;
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return payload ? std::span<const std::uint8_t>(*payload)
                   : std::span<const std::uint8_t>{};
  }
};

// ---- Async surface -----------------------------------------------------

// Identifies one in-flight send() on a transport; strictly increasing in
// send order, never zero.
using SendToken = std::uint64_t;

struct AsyncReply {
  SendToken token = 0;
  TransportReply reply;
  // Virtual time (µs since the transport was created) the reply landed.
  std::uint64_t arrival_us = 0;
};

// Power-of-two RTT buckets: bucket i counts exchanges with RTT in
// [2^(i-1), 2^i) µs, bucket 0 counts zero-latency exchanges.
inline constexpr std::size_t kRttBuckets = 24;

struct TransportTiming {
  // The transport's own virtual clock.  It never touches the SimClock —
  // advancing wall time would perturb TTL decay and the frozen scan epoch
  // — it only measures how long the channel made clients wait.
  std::uint64_t virtual_us = 0;
  std::uint64_t exchanges = 0;
  // Replies delivered after a later-sent reply (latency inversion).
  std::uint64_t reordered = 0;
  std::array<std::uint64_t, kRttBuckets> rtt_hist{};
};

// Deterministic virtual-latency model for DatagramTransport.  Each server
// gets a base RTT drawn once from hash(server address, seed), and each
// exchange adds per-server jitter from a counter-indexed hash — so a
// server's k-th exchange always costs the same regardless of how queries
// from different resolutions interleave.  Latency shapes *timing only*:
// answers are served at send time on the frozen SimClock, so enabling the
// model can never change what a resolver learns, only when.
struct LatencyModel {
  bool enabled = false;
  std::uint32_t base_min_us = 0;   // per-server base RTT range
  std::uint32_t base_max_us = 0;
  std::uint32_t jitter_us = 0;     // per-exchange jitter in [0, jitter_us]
  std::uint64_t seed = 0x1a7e;

  // Same-rack authoritatives: sub-millisecond, mild jitter.
  [[nodiscard]] static LatencyModel lan();
  // Cross-continent mix: 5–60 ms base, heavy jitter — the regime where
  // pipelining pays.
  [[nodiscard]] static LatencyModel wan();
  // Parses "off" / "lan" / "wan" (CLI --latency-profile); nullopt on
  // anything else.
  [[nodiscard]] static std::optional<LatencyModel> from_profile(
      std::string_view name);
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one encoded query to `server` and returns the reply bytes.
  // `udp_payload_limit` is the client's advertised EDNS payload size (512
  // without EDNS) — the channel, not the caller, handles truncation.
  [[nodiscard]] virtual TransportReply exchange(
      const IpAddr& server, std::span<const std::uint8_t> query,
      std::size_t udp_payload_limit) = 0;

  // Async surface: send() enqueues one exchange and returns immediately;
  // poll() yields the next completed reply in channel-arrival order, or
  // nullopt when nothing is in flight.  The reply buffer contract matches
  // exchange(): each AsyncReply owns (or shares) its payload.
  //
  // The base implementation resolves the exchange synchronously and
  // completes FIFO at zero latency — correct for any in-process channel
  // (loopback), and exactly equivalent to calling exchange() directly.
  [[nodiscard]] virtual SendToken send(const IpAddr& server,
                                       std::span<const std::uint8_t> query,
                                       std::size_t udp_payload_limit);
  [[nodiscard]] virtual std::optional<AsyncReply> poll();

  [[nodiscard]] const TransportTiming& timing() const { return timing_; }

 protected:
  // Accounts one exchange of `rtt_us` on the shared timing block without
  // advancing the virtual clock (arrival bookkeeping is the subclass's).
  void record_rtt(std::uint64_t rtt_us);

  TransportTiming timing_;
  SendToken next_token_ = 1;

 private:
  std::deque<AsyncReply> fifo_;  // base-class synchronous completions
};

// Zero-copy in-process channel over the service's shared wire images.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(const WireService& service) : service_(service) {}

  [[nodiscard]] TransportReply exchange(const IpAddr& server,
                                        std::span<const std::uint8_t> query,
                                        std::size_t udp_payload_limit) override;

 private:
  const WireService& service_;
};

// Opt-in fault injection for DatagramTransport's UDP leg, rates in
// permille (0..1000) drawn from a deterministic per-transport stream.
// TCP is modelled as reliable: faults only ever hit datagrams.
struct TransportFaults {
  std::uint32_t drop_permille = 0;       // datagram silently lost → timeout
  std::uint32_t duplicate_permille = 0;  // reply delivered twice
  std::uint32_t garbage_permille = 0;    // trailing junk appended to reply
  std::uint64_t seed = 0xfa017;

  [[nodiscard]] bool any() const {
    return drop_permille != 0 || duplicate_permille != 0 ||
           garbage_permille != 0;
  }
};

struct DatagramStats {
  std::uint64_t udp_queries = 0;
  std::uint64_t tcp_queries = 0;
  std::uint64_t truncated_replies = 0;  // TC=1 datagrams synthesised
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t garbage_appended = 0;
  // Bounded-retry accounting: a lost datagram is re-sent once; losing both
  // the original and the retransmit is a timeout the caller sees (and the
  // resolver eventually surfaces as SERVFAIL) — never a hang.
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  // Client-side discards: the second copy of a duplicated reply (already
  // answered, dropped as stray) and TCP-fallback replies whose id/question
  // failed verification (rejected, retried once, then given up on).
  std::uint64_t stray_replies = 0;
  std::uint64_t mismatched_replies = 0;
};

// UDP-with-TCP-fallback channel model.  Every reply is a fresh owned
// buffer (a real socket read), the reply id is patched to the query's (a
// real server echoes it), and truncation produces an actual TC=1 datagram
// that the client-side TC check decodes from the bytes.
class DatagramTransport final : public Transport {
 public:
  explicit DatagramTransport(const WireService& service,
                             TransportFaults faults = {},
                             LatencyModel latency = {})
      : service_(service),
        faults_(faults),
        latency_(latency),
        fault_rng_(faults.seed) {}

  // Blocking exchange: with latency enabled, the virtual clock advances by
  // the full RTT before the reply is returned — a serial caller pays
  // Σ RTT, which is exactly the baseline the async engine is measured
  // against.
  [[nodiscard]] TransportReply exchange(const IpAddr& server,
                                        std::span<const std::uint8_t> query,
                                        std::size_t udp_payload_limit) override;

  // Async exchange: the reply is computed at send time (answers never
  // depend on the latency model) but arrives at vnow + RTT.  poll() pops
  // the earliest arrival, so concurrent sends overlap their waits and
  // replies can come back out of send order.
  [[nodiscard]] SendToken send(const IpAddr& server,
                               std::span<const std::uint8_t> query,
                               std::size_t udp_payload_limit) override;
  [[nodiscard]] std::optional<AsyncReply> poll() override;

  // Skip the UDP leg entirely (dig's --tcp).
  void set_tcp_only(bool tcp_only) { tcp_only_ = tcp_only; }

  // Observes every UDP datagram as delivered to the client (after
  // truncation, id patching and faults) — lets tests assert on the actual
  // bytes, e.g. that the TC bit really was set on the wire.
  using UdpTap = std::function<void(std::span<const std::uint8_t>)>;
  void set_udp_tap(UdpTap tap) { udp_tap_ = std::move(tap); }

  [[nodiscard]] const DatagramStats& stats() const { return stats_; }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }

 private:
  struct Pending {
    std::uint64_t arrival_us = 0;
    SendToken token = 0;
    TransportReply reply;
  };

  // The full UDP/TCP fault-model exchange, no timing side effects.  The
  // UDP leg retries a lost datagram at most kMaxRetransmits times before
  // reporting a timeout — the bound that keeps a 100%-loss channel from
  // spinning the blocking resolve loop forever.
  static constexpr int kMaxRetransmits = 1;
  [[nodiscard]] TransportReply exchange_impl(
      const IpAddr& server, std::span<const std::uint8_t> query,
      std::size_t udp_payload_limit);
  // One UDP attempt (fault rolls, truncation, TC fallback); nullopt means
  // the datagram was lost and the caller may retransmit.
  [[nodiscard]] std::optional<TransportReply> udp_attempt(
      const IpAddr& server, std::span<const std::uint8_t> query,
      std::size_t udp_payload_limit);
  [[nodiscard]] TransportReply tcp_exchange(
      const IpAddr& server, std::span<const std::uint8_t> query,
      bool after_truncation);
  [[nodiscard]] bool roll(std::uint32_t permille);
  // RTT of the next exchange to `server` under the latency model (0 when
  // disabled): cached per-server base + counter-indexed jitter.
  [[nodiscard]] std::uint64_t next_rtt(const IpAddr& server);

  const WireService& service_;
  TransportFaults faults_;
  LatencyModel latency_;
  util::Pcg32 fault_rng_;
  bool tcp_only_ = false;
  UdpTap udp_tap_;
  DatagramStats stats_;

  struct ServerLatency {
    std::uint64_t key = 0;       // hash of the server address
    std::uint32_t base_us = 0;
    std::uint64_t exchanges = 0; // jitter counter
  };
  std::unordered_map<std::uint64_t, ServerLatency> server_latency_;
  // Min-heap on (arrival_us, token) maintained with std::push_heap /
  // std::pop_heap so completed entries can be moved out.
  std::vector<Pending> in_flight_;
  SendToken max_delivered_ = 0;
};

}  // namespace httpsrr::net
