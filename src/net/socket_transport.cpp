#include "net/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace httpsrr::net {

namespace {

constexpr std::size_t kMaxDatagram = 65535;
constexpr std::uint8_t kTcMask = 0x02;

bool tc_set(std::span<const std::uint8_t> reply) {
  return reply.size() > 2 && (reply[2] & kTcMask) != 0;
}

bool id_matches(std::span<const std::uint8_t> reply,
                std::span<const std::uint8_t> query) {
  return reply.size() >= 2 && query.size() >= 2 && reply[0] == query[0] &&
         reply[1] == query[1];
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)),
      udp_(udp_socket_connected(options_.server)),
      epoch_us_(monotonic_us()),
      recv_buffer_(kMaxDatagram) {}

TransportReply SocketTransport::exchange(const IpAddr& server,
                                         std::span<const std::uint8_t> query,
                                         std::size_t udp_payload_limit) {
  const SendToken token = send(server, query, udp_payload_limit);
  // Drain completions until ours lands; replies for other callers stay
  // queued for their poll()s.
  while (true) {
    auto it = std::find_if(completed_.begin(), completed_.end(),
                           [&](const AsyncReply& r) { return r.token == token; });
    if (it != completed_.end()) {
      TransportReply reply = std::move(it->reply);
      completed_.erase(it);
      return reply;
    }
    if (pending_.empty()) return {};  // token lost — treat as timeout
    pump();
  }
}

SendToken SocketTransport::send(const IpAddr& /*server*/,
                                std::span<const std::uint8_t> query,
                                std::size_t /*udp_payload_limit*/) {
  // Truncation is the server's decision, driven by the advertised EDNS
  // payload inside the query bytes — the limit parameter has no client-side
  // role on a real socket.
  PendingQuery pending;
  pending.token = next_token_++;
  pending.query.assign(query.begin(), query.end());
  pending.retransmits_left = options_.retransmits;
  const SendToken token = pending.token;

  if (!udp_.valid()) {
    // Socket never came up: complete immediately as a timeout.
    ++stats_.timeouts;
    AsyncReply done;
    done.token = token;
    done.arrival_us = monotonic_us() - epoch_us_;
    completed_.push_back(std::move(done));
    return token;
  }
  if (options_.tcp_only) {
    AsyncReply done;
    done.token = token;
    done.reply = tcp_exchange(pending.query, /*after_truncation=*/false);
    if (!done.reply.ok()) ++stats_.timeouts;
    done.arrival_us = monotonic_us() - epoch_us_;
    record_rtt(done.arrival_us >= pending.sent_us
                   ? done.arrival_us - pending.sent_us
                   : 0);
    completed_.push_back(std::move(done));
    return token;
  }

  pending_.push_back(std::move(pending));
  transmit(pending_.back());
  return token;
}

std::optional<AsyncReply> SocketTransport::poll() {
  while (completed_.empty() && !pending_.empty()) pump();
  if (completed_.empty()) return std::nullopt;
  AsyncReply out = std::move(completed_.front());
  completed_.pop_front();
  return out;
}

void SocketTransport::transmit(PendingQuery& pending) {
  ++stats_.udp_queries;
  const std::uint64_t now = monotonic_us();
  if (pending.sent_us == 0) pending.sent_us = now - epoch_us_;
  pending.deadline_us =
      now + static_cast<std::uint64_t>(options_.timeout_ms) * 1000ULL;
  // A send failure (full buffer, peer gone) is indistinguishable from a
  // lost datagram: the deadline machinery below turns it into a
  // retransmit, then a timeout.
  (void)::send(udp_.get(), pending.query.data(), pending.query.size(),
               MSG_NOSIGNAL);
}

void SocketTransport::pump() {
  if (pending_.empty()) return;
  const std::size_t completed_before = completed_.size();
  while (completed_.size() == completed_before && !pending_.empty()) {
    const std::uint64_t now = monotonic_us();
    // Expire attempts first: retransmit if allowed, else complete as a
    // clean timeout — poll() must always make progress.
    for (std::size_t i = 0; i < pending_.size();) {
      if (pending_[i].deadline_us > now) {
        ++i;
        continue;
      }
      if (pending_[i].retransmits_left > 0) {
        --pending_[i].retransmits_left;
        ++stats_.retransmits;
        transmit(pending_[i]);
        ++i;
        continue;
      }
      ++stats_.timeouts;
      complete(i, TransportReply{});  // default reply: ConnectError::timeout
    }
    if (completed_.size() != completed_before || pending_.empty()) return;

    std::uint64_t nearest = pending_.front().deadline_us;
    for (const PendingQuery& p : pending_) {
      nearest = std::min(nearest, p.deadline_us);
    }
    const int wait_ms = nearest > now
                            ? static_cast<int>(
                                  std::min<std::uint64_t>(
                                      (nearest - now + 999) / 1000, 60'000))
                            : 0;
    pollfd pfd{udp_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0 && errno != EINTR) {
      // Socket broke: fail everything in flight rather than spin.
      while (!pending_.empty()) {
        ++stats_.timeouts;
        complete(0, TransportReply{});
      }
      return;
    }
    if (ready <= 0) continue;  // deadline pass handles expiry next loop
    while (true) {
      const ssize_t n =
          ::recv(udp_.get(), recv_buffer_.data(), recv_buffer_.size(), 0);
      if (n <= 0) break;  // EAGAIN — drained
      deliver_datagram(
          std::span<const std::uint8_t>(recv_buffer_.data(),
                                        static_cast<std::size_t>(n)));
    }
  }
}

void SocketTransport::deliver_datagram(
    std::span<const std::uint8_t> datagram) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!id_matches(datagram, pending_[i].query)) continue;
    if (!reply_matches_query(datagram, pending_[i].query)) {
      // Right id, wrong question (or not even a response): an off-path
      // guess or a confused server — never accepted.
      ++stats_.mismatched_replies;
      return;
    }
    if (tc_set(datagram)) {
      ++stats_.tcp_fallbacks;
      TransportReply reply =
          tcp_exchange(pending_[i].query, /*after_truncation=*/true);
      if (!reply.ok()) ++stats_.timeouts;
      complete(i, std::move(reply));
      return;
    }
    TransportReply reply;
    reply.error = ConnectError::none;
    reply.payload = std::make_shared<WireBytes>(datagram.begin(),
                                                datagram.end());
    complete(i, std::move(reply));
    return;
  }
  // No in-flight query wears this id: a late reply to an already-answered
  // (or timed-out) query, or noise.  Dropped, counted, never delivered.
  ++stats_.stray_replies;
}

void SocketTransport::complete(std::size_t pending_index,
                               TransportReply reply) {
  PendingQuery pending = std::move(pending_[pending_index]);
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(pending_index));
  AsyncReply done;
  done.token = pending.token;
  done.reply = std::move(reply);
  done.arrival_us = monotonic_us() - epoch_us_;
  const std::uint64_t rtt = done.arrival_us >= pending.sent_us
                                ? done.arrival_us - pending.sent_us
                                : 0;
  record_rtt(rtt);
  if (done.arrival_us > timing_.virtual_us) {
    timing_.virtual_us = done.arrival_us;  // wall-clock µs since creation
  }
  if (pending.token < /*max delivered so far*/ max_token_seen_) {
    ++timing_.reordered;
  } else {
    max_token_seen_ = pending.token;
  }
  completed_.push_back(std::move(done));
}

TransportReply SocketTransport::tcp_exchange(
    std::span<const std::uint8_t> query, bool after_truncation) {
  TransportReply reply;
  if (query.size() > 0xffff) return reply;
  // Same acceptance rule as the modelled channel: the answer must echo id
  // and question and must not be truncated; one verification retry.
  for (int attempt = 0; attempt <= 1; ++attempt) {
    ++stats_.tcp_queries;
    Fd fd = tcp_connect(options_.server, options_.timeout_ms);
    if (!fd.valid()) continue;
    std::uint8_t frame[2] = {
        static_cast<std::uint8_t>(query.size() >> 8),
        static_cast<std::uint8_t>(query.size() & 0xff)};
    if (!write_all(fd.get(), frame) || !write_all(fd.get(), query)) continue;
    std::uint8_t len_buf[2];
    if (!read_all(fd.get(), len_buf)) continue;
    const std::size_t len =
        (static_cast<std::size_t>(len_buf[0]) << 8) | len_buf[1];
    auto payload = std::make_shared<WireBytes>(len);
    if (len > 0 && !read_all(fd.get(), *payload)) continue;
    if (tc_set(*payload) || !reply_matches_query(*payload, query)) {
      ++stats_.mismatched_replies;
      continue;
    }
    reply.error = ConnectError::none;
    reply.payload = std::move(payload);
    reply.tcp_retried = after_truncation;
    return reply;
  }
  return reply;
}

}  // namespace httpsrr::net
