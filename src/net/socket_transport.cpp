#include "net/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace httpsrr::net {

namespace {

constexpr std::size_t kMaxDatagram = 65535;
constexpr std::uint8_t kTcMask = 0x02;

bool tc_set(std::span<const std::uint8_t> reply) {
  return reply.size() > 2 && (reply[2] & kTcMask) != 0;
}

bool id_matches(std::span<const std::uint8_t> reply,
                std::span<const std::uint8_t> query) {
  return reply.size() >= 2 && query.size() >= 2 && reply[0] == query[0] &&
         reply[1] == query[1];
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)),
      udp_(udp_socket_connected(options_.server)),
      epoch_us_(monotonic_us()),
      recv_buffer_(kMaxDatagram) {}

TransportReply SocketTransport::exchange(const IpAddr& server,
                                         std::span<const std::uint8_t> query,
                                         std::size_t udp_payload_limit) {
  const SendToken token = send(server, query, udp_payload_limit);
  // Drain completions until ours lands; replies for other callers stay
  // queued for their poll()s.
  while (true) {
    auto it = std::find_if(completed_.begin(), completed_.end(),
                           [&](const AsyncReply& r) { return r.token == token; });
    if (it != completed_.end()) {
      TransportReply reply = std::move(it->reply);
      completed_.erase(it);
      return reply;
    }
    if (pending_.empty()) return {};  // token lost — treat as timeout
    pump();
  }
}

SendToken SocketTransport::send(const IpAddr& /*server*/,
                                std::span<const std::uint8_t> query,
                                std::size_t /*udp_payload_limit*/) {
  // Truncation is the server's decision, driven by the advertised EDNS
  // payload inside the query bytes — the limit parameter has no client-side
  // role on a real socket.
  PendingQuery pending;
  pending.token = next_token_++;
  pending.query.assign(query.begin(), query.end());
  pending.retransmits_left = options_.retransmits;
  const SendToken token = pending.token;

  if (!udp_.valid()) {
    // Socket never came up: complete immediately as a timeout.
    ++stats_.timeouts;
    AsyncReply done;
    done.token = token;
    done.arrival_us = monotonic_us() - epoch_us_;
    completed_.push_back(std::move(done));
    return token;
  }
  if (options_.tcp_only) {
    // Straight onto the TCP state machine — no UDP leg.  The connect is
    // nonblocking like the TC=1 fallback's, so even tcp_only queries
    // pipeline across independent connections.
    pending_.push_back(std::move(pending));
    start_tcp(pending_.size() - 1, /*after_truncation=*/false);
    return token;
  }

  pending_.push_back(std::move(pending));
  transmit(pending_.back());
  return token;
}

std::optional<AsyncReply> SocketTransport::poll() {
  while (completed_.empty() && !pending_.empty()) pump();
  if (completed_.empty()) return std::nullopt;
  AsyncReply out = std::move(completed_.front());
  completed_.pop_front();
  return out;
}

void SocketTransport::transmit(PendingQuery& pending) {
  ++stats_.udp_queries;
  const std::uint64_t now = monotonic_us();
  if (pending.sent_us == 0) pending.sent_us = now - epoch_us_;
  pending.deadline_us =
      now + static_cast<std::uint64_t>(options_.timeout_ms) * 1000ULL;
  // A send failure (full buffer, peer gone) is indistinguishable from a
  // lost datagram: the deadline machinery below turns it into a
  // retransmit, then a timeout.
  (void)::send(udp_.get(), pending.query.data(), pending.query.size(),
               MSG_NOSIGNAL);
}

void SocketTransport::pump() {
  if (pending_.empty()) return;
  const std::size_t completed_before = completed_.size();
  while (completed_.size() == completed_before && !pending_.empty()) {
    const std::uint64_t now = monotonic_us();
    // Expire attempts first: retransmit (UDP) or reconnect (TCP) if
    // allowed, else complete as a clean timeout — poll() must always make
    // progress.
    for (std::size_t i = 0; i < pending_.size();) {
      if (pending_[i].deadline_us > now) {
        ++i;
        continue;
      }
      if (pending_[i].tcp_stage != TcpStage::kNone) {
        const SendToken token = pending_[i].token;
        tcp_fail(i);  // fresh connection if attempts remain, else timeout
        if (i < pending_.size() && pending_[i].token == token) ++i;
        continue;
      }
      if (pending_[i].retransmits_left > 0) {
        --pending_[i].retransmits_left;
        ++stats_.retransmits;
        transmit(pending_[i]);
        ++i;
        continue;
      }
      ++stats_.timeouts;
      complete(i, TransportReply{});  // default reply: ConnectError::timeout
    }
    if (completed_.size() != completed_before || pending_.empty()) return;

    std::uint64_t nearest = pending_.front().deadline_us;
    for (const PendingQuery& p : pending_) {
      nearest = std::min(nearest, p.deadline_us);
    }
    const int wait_ms = nearest > now
                            ? static_cast<int>(
                                  std::min<std::uint64_t>(
                                      (nearest - now + 999) / 1000, 60'000))
                            : 0;
    // One poll set: the shared UDP socket plus every in-flight TCP leg's
    // own fd (connecting/sending legs wait for writability, reading legs
    // for data) — progress on any of them wakes the loop.
    std::vector<pollfd> pfds;
    std::vector<SendToken> tcp_tokens;
    pfds.push_back(pollfd{udp_.get(), POLLIN, 0});
    for (const PendingQuery& p : pending_) {
      if (p.tcp_stage == TcpStage::kNone) continue;
      const short events =
          p.tcp_stage == TcpStage::kReading ? POLLIN : POLLOUT;
      pfds.push_back(pollfd{p.tcp_fd.get(), events, 0});
      tcp_tokens.push_back(p.token);
    }
    const int ready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), wait_ms);
    if (ready < 0 && errno != EINTR) {
      // Poll itself broke: fail everything in flight rather than spin.
      while (!pending_.empty()) {
        ++stats_.timeouts;
        complete(0, TransportReply{});
      }
      return;
    }
    if (ready <= 0) continue;  // deadline pass handles expiry next loop
    // Advance TCP legs first, re-finding each by token: a step can
    // complete (erasing a pending) or reconnect, so raw indices from the
    // poll set would go stale.
    for (std::size_t j = 1; j < pfds.size(); ++j) {
      if (pfds[j].revents == 0) continue;
      const std::size_t i = pending_index_of(tcp_tokens[j - 1]);
      if (i != pending_.size()) tcp_step(i, pfds[j].revents);
    }
    if (pfds[0].revents != 0) {
      while (true) {
        const ssize_t n =
            ::recv(udp_.get(), recv_buffer_.data(), recv_buffer_.size(), 0);
        if (n <= 0) break;  // EAGAIN — drained
        deliver_datagram(
            std::span<const std::uint8_t>(recv_buffer_.data(),
                                          static_cast<std::size_t>(n)));
      }
    }
  }
}

std::size_t SocketTransport::pending_index_of(SendToken token) const {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].token == token) return i;
  }
  return pending_.size();
}

void SocketTransport::deliver_datagram(
    std::span<const std::uint8_t> datagram) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!id_matches(datagram, pending_[i].query)) continue;
    if (!reply_matches_query(datagram, pending_[i].query)) {
      // Right id, wrong question (or not even a response): an off-path
      // guess or a confused server — never accepted.
      ++stats_.mismatched_replies;
      return;
    }
    if (tc_set(datagram)) {
      // Truncated: hand the query to the nonblocking TCP state machine
      // and keep pumping — other in-flight queries are not held up.
      ++stats_.tcp_fallbacks;
      start_tcp(i, /*after_truncation=*/true);
      return;
    }
    TransportReply reply;
    reply.error = ConnectError::none;
    reply.payload = std::make_shared<WireBytes>(datagram.begin(),
                                                datagram.end());
    complete(i, std::move(reply));
    return;
  }
  // No in-flight query wears this id: a late reply to an already-answered
  // (or timed-out) query, or noise.  Dropped, counted, never delivered.
  ++stats_.stray_replies;
}

void SocketTransport::complete(std::size_t pending_index,
                               TransportReply reply) {
  PendingQuery pending = std::move(pending_[pending_index]);
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(pending_index));
  AsyncReply done;
  done.token = pending.token;
  done.reply = std::move(reply);
  done.arrival_us = monotonic_us() - epoch_us_;
  const std::uint64_t rtt = done.arrival_us >= pending.sent_us
                                ? done.arrival_us - pending.sent_us
                                : 0;
  record_rtt(rtt);
  if (done.arrival_us > timing_.virtual_us) {
    timing_.virtual_us = done.arrival_us;  // wall-clock µs since creation
  }
  if (pending.token < /*max delivered so far*/ max_token_seen_) {
    ++timing_.reordered;
  } else {
    max_token_seen_ = pending.token;
  }
  completed_.push_back(std::move(done));
}

void SocketTransport::start_tcp(std::size_t index, bool after_truncation) {
  PendingQuery& p = pending_[index];
  if (p.query.size() > 0xffff) {
    ++stats_.timeouts;
    complete(index, TransportReply{});
    return;
  }
  p.tcp_after_truncation = after_truncation;
  p.tcp_attempts_left = 1;  // one fresh-connection retry, as before
  if (p.sent_us == 0) p.sent_us = monotonic_us() - epoch_us_;
  p.tcp_out.clear();
  p.tcp_out.reserve(p.query.size() + 2);
  p.tcp_out.push_back(static_cast<std::uint8_t>(p.query.size() >> 8));
  p.tcp_out.push_back(static_cast<std::uint8_t>(p.query.size() & 0xff));
  p.tcp_out.insert(p.tcp_out.end(), p.query.begin(), p.query.end());
  tcp_attempt(index);
}

void SocketTransport::tcp_attempt(std::size_t index) {
  PendingQuery& p = pending_[index];
  ++stats_.tcp_queries;
  p.tcp_out_off = 0;
  p.tcp_in.clear();
  p.deadline_us = monotonic_us() +
                  static_cast<std::uint64_t>(options_.timeout_ms) * 1000ULL;
  p.tcp_fd = tcp_connect_nonblocking(options_.server);
  if (!p.tcp_fd.valid()) {
    tcp_fail(index);
    return;
  }
  p.tcp_stage = TcpStage::kConnecting;
}

void SocketTransport::tcp_fail(std::size_t index) {
  PendingQuery& p = pending_[index];
  p.tcp_fd.reset();
  p.tcp_stage = TcpStage::kNone;
  if (p.tcp_attempts_left > 0) {
    --p.tcp_attempts_left;
    tcp_attempt(index);
    return;
  }
  ++stats_.timeouts;
  complete(index, TransportReply{});
}

void SocketTransport::tcp_step(std::size_t index, short revents) {
  PendingQuery& p = pending_[index];
  if (p.tcp_stage == TcpStage::kConnecting) {
    // Writability (or an error event) means the connect resolved.
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(p.tcp_fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) !=
            0 ||
        so_error != 0) {
      tcp_fail(index);
      return;
    }
    p.tcp_stage = TcpStage::kSending;
    // Fall through: the socket is writable right now.
  }
  if (p.tcp_stage == TcpStage::kSending) {
    while (p.tcp_out_off < p.tcp_out.size()) {
      const ssize_t n =
          ::send(p.tcp_fd.get(), p.tcp_out.data() + p.tcp_out_off,
                 p.tcp_out.size() - p.tcp_out_off, MSG_NOSIGNAL);
      if (n > 0) {
        p.tcp_out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      tcp_fail(index);
      return;
    }
    p.tcp_stage = TcpStage::kReading;
    return;  // wait for POLLIN
  }
  if ((revents & POLLIN) == 0 && (revents & (POLLERR | POLLHUP)) != 0) {
    tcp_fail(index);  // peer vanished with nothing readable
    return;
  }
  // kReading: accumulate the 2-byte frame, then the framed reply.
  while (true) {
    const ssize_t n = ::recv(p.tcp_fd.get(), recv_buffer_.data(),
                             recv_buffer_.size(), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      tcp_fail(index);  // error, or EOF before the full frame
      return;
    }
    p.tcp_in.insert(p.tcp_in.end(), recv_buffer_.data(),
                    recv_buffer_.data() + n);
    if (p.tcp_in.size() < 2) continue;
    const std::size_t frame_len =
        (static_cast<std::size_t>(p.tcp_in[0]) << 8) | p.tcp_in[1];
    if (p.tcp_in.size() < 2 + frame_len) continue;
    // Same acceptance rule as the modelled channel: the answer must echo
    // id and question and must not be truncated; one verification retry
    // on a fresh connection.
    const std::span<const std::uint8_t> payload_bytes(p.tcp_in.data() + 2,
                                                      frame_len);
    if (tc_set(payload_bytes) ||
        !reply_matches_query(payload_bytes, p.query)) {
      ++stats_.mismatched_replies;
      tcp_fail(index);
      return;
    }
    TransportReply reply;
    reply.error = ConnectError::none;
    reply.payload = std::make_shared<WireBytes>(payload_bytes.begin(),
                                                payload_bytes.end());
    reply.tcp_retried = p.tcp_after_truncation;
    complete(index, std::move(reply));
    return;
  }
}

}  // namespace httpsrr::net
