#include "net/time.h"

#include <cassert>
#include <cstdlib>

#include "util/strings.h"

namespace httpsrr::net {

std::int64_t days_from_civil(CivilDate d) {
  // Howard Hinnant's days_from_civil, valid for all representable dates.
  std::int64_t y = d.year;
  unsigned m = d.month;
  unsigned day = d.day;
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;                     // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                            // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), m, day};
}

std::string CivilDate::to_string() const {
  return util::format("%04d-%02u-%02u", year, month, day);
}

SimTime SimTime::from_date(CivilDate d) {
  return SimTime{days_from_civil(d) * 86400};
}

SimTime SimTime::from_string(const std::string& iso_date) {
  auto parts = util::split(iso_date, '-');
  std::uint64_t y = 0, m = 0, d = 0;
  bool ok = parts.size() == 3 && util::parse_u64(parts[0], y, 9999) &&
            util::parse_u64(parts[1], m, 12) && util::parse_u64(parts[2], d, 31) &&
            m >= 1 && d >= 1;
  if (!ok) {
    assert(false && "malformed ISO date literal");
    std::abort();
  }
  return from_date(CivilDate{static_cast<int>(y), static_cast<unsigned>(m),
                             static_cast<unsigned>(d)});
}

CivilDate SimTime::date() const {
  std::int64_t days = unix_seconds / 86400;
  if (unix_seconds < 0 && unix_seconds % 86400 != 0) --days;
  return civil_from_days(days);
}

std::int64_t SimTime::seconds_of_day() const {
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) rem += 86400;
  return rem;
}

std::string SimTime::to_string() const {
  std::int64_t sod = seconds_of_day();
  return util::format("%s %02lld:%02lld:%02lld", date().to_string().c_str(),
                      static_cast<long long>(sod / 3600),
                      static_cast<long long>((sod / 60) % 60),
                      static_cast<long long>(sod % 60));
}

void SimClock::advance_to(SimTime t) {
  assert(t >= now_ && "SimClock must not move backwards");
  if (t > now_) now_ = t;
}

}  // namespace httpsrr::net
