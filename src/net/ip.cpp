#include "net/ip.h"

#include "util/strings.h"

namespace httpsrr::net {

using util::Error;
using util::Result;

Result<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  // Manual octet walk: this runs on hint-validation hot paths, so it must
  // not allocate (util::split builds a string vector).
  std::uint32_t bits = 0;
  std::size_t start = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const bool last = octet == 3;
    std::size_t dot = last ? std::string_view::npos : text.find('.', start);
    if (!last && dot == std::string_view::npos) {
      return Error{"IPv4 address must have four octets"};
    }
    std::string_view part = text.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    if (last && part.find('.') != std::string_view::npos) {
      return Error{"IPv4 address must have four octets"};
    }
    if (part.empty() || part.size() > 3) return Error{"bad IPv4 octet"};
    if (part.size() > 1 && part[0] == '0') return Error{"IPv4 octet has leading zero"};
    std::uint64_t v = 0;
    if (!util::parse_u64(part, v, 255)) return Error{"IPv4 octet out of range"};
    bits = (bits << 8) | static_cast<std::uint32_t>(v);
    start = dot + 1;
  }
  return Ipv4Addr(bits);
}

std::array<std::uint8_t, 4> Ipv4Addr::octets() const {
  return {static_cast<std::uint8_t>(bits_ >> 24),
          static_cast<std::uint8_t>(bits_ >> 16),
          static_cast<std::uint8_t>(bits_ >> 8),
          static_cast<std::uint8_t>(bits_)};
}

std::string Ipv4Addr::to_string() const {
  auto o = octets();
  return util::format("%u.%u.%u.%u", o[0], o[1], o[2], o[3]);
}

Ipv6Addr Ipv6Addr::from_groups(const std::array<std::uint16_t, 8>& groups) {
  std::array<std::uint8_t, 16> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(groups[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(groups[i]);
  }
  return Ipv6Addr(bytes);
}

std::array<std::uint16_t, 8> Ipv6Addr::groups() const {
  std::array<std::uint16_t, 8> groups;
  for (int i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(bytes_[i * 2]) << 8) | bytes_[i * 2 + 1]);
  }
  return groups;
}

namespace {

// Parses one hex group (1..4 hex digits). Returns -1 on failure.
int parse_hex_group(std::string_view s) {
  if (s.empty() || s.size() > 4) return -1;
  int v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return -1;
    v = (v << 4) | digit;
  }
  return v;
}

}  // namespace

Result<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  if (text.empty()) return Error{"empty IPv6 address"};

  // Split on "::" (at most one occurrence allowed).
  std::size_t dcolon = text.find("::");
  std::string_view head = text;
  std::string_view tail;
  bool has_compression = dcolon != std::string_view::npos;
  if (has_compression) {
    head = text.substr(0, dcolon);
    tail = text.substr(dcolon + 2);
    if (tail.find("::") != std::string_view::npos) {
      return Error{"multiple '::' in IPv6 address"};
    }
  }

  // Each side holds at most eight groups, so fixed arrays suffice — the
  // parse is allocation-free on every path (hot in hint validation).
  auto parse_side = [](std::string_view side, std::array<std::uint16_t, 9>& groups,
                       std::size_t& count) -> Result<void> {
    count = 0;
    if (side.empty()) return {};
    std::size_t start = 0;
    while (true) {
      std::size_t colon = side.find(':', start);
      const bool last = colon == std::string_view::npos;
      std::string_view p = side.substr(
          start, last ? std::string_view::npos : colon - start);
      if (count >= 8) return Error{"IPv6 address must have eight groups"};
      if (p.find('.') != std::string_view::npos) {
        // Embedded IPv4 — only valid as the final two groups.
        if (!last) return Error{"embedded IPv4 must be last"};
        auto v4 = Ipv4Addr::parse(p);
        if (!v4) return Error{v4.error()};
        std::uint32_t bits = v4->bits();
        groups[count++] = static_cast<std::uint16_t>(bits >> 16);
        groups[count++] = static_cast<std::uint16_t>(bits & 0xffff);
        return {};
      }
      int g = parse_hex_group(p);
      if (g < 0) return Error{"bad IPv6 group"};
      groups[count++] = static_cast<std::uint16_t>(g);
      if (last) return {};
      start = colon + 1;
    }
  };

  std::array<std::uint16_t, 9> head_groups;  // one slot of slack: v4 is 2 wide
  std::array<std::uint16_t, 9> tail_groups;
  std::size_t head_count = 0, tail_count = 0;
  if (auto r = parse_side(head, head_groups, head_count); !r) return Error{r.error()};
  if (auto r = parse_side(tail, tail_groups, tail_count); !r) return Error{r.error()};

  std::array<std::uint16_t, 8> groups{};
  std::size_t total = head_count + tail_count;
  if (has_compression) {
    if (total >= 8) return Error{"'::' must compress at least one group"};
    for (std::size_t i = 0; i < head_count; ++i) groups[i] = head_groups[i];
    for (std::size_t i = 0; i < tail_count; ++i) {
      groups[8 - tail_count + i] = tail_groups[i];
    }
  } else {
    if (total != 8) return Error{"IPv6 address must have eight groups"};
    for (std::size_t i = 0; i < 8; ++i) groups[i] = head_groups[i];
  }
  return from_groups(groups);
}

std::string Ipv6Addr::to_string() const {
  auto groups = this->groups();

  // RFC 5952: find the longest run of zero groups (length >= 2) to compress;
  // ties go to the first run.
  int best_start = -1;
  int best_len = 0;
  int run_start = -1;
  int run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (groups[i] == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) break;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    out += util::format("%x", groups[i]);
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

Result<IpAddr> IpAddr::parse(std::string_view text) {
  if (auto v4 = Ipv4Addr::parse(text)) return IpAddr(*v4);
  if (auto v6 = Ipv6Addr::parse(text)) return IpAddr(*v6);
  return Error{"unparseable IP address"};
}

}  // namespace httpsrr::net
