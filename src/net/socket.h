#pragma once

// Thin POSIX socket helpers for the real-socket transport and server
// (net::SocketTransport, resolver::SocketServer).  Everything else in
// src/net models the network; this file is the one place that actually
// opens file descriptors.  Helpers return an invalid Fd (or false) on
// failure instead of throwing — callers surface errors their own way.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace httpsrr::net {

// RAII file descriptor: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

// A textual socket address: "127.0.0.1:5353", "[::1]:5353".  Only literal
// addresses — this layer never resolves hostnames (it *is* the DNS).
struct SocketEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = let the kernel pick (servers)

  [[nodiscard]] static std::optional<SocketEndpoint> parse(
      std::string_view text);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_v6() const {
    return host.find(':') != std::string::npos;
  }
};

// Socket constructors.  All sockets are created nonblocking except
// tcp_connect's, which blocks with send/receive timeouts (simple
// synchronous TCP with a deadline, for scripted one-shot exchanges).
// tcp_connect_nonblocking starts a connect-in-progress instead: the fd
// comes back immediately and the caller tracks completion via poll()'s
// POLLOUT + SO_ERROR — the transport's pipelined TCP-fallback path.
[[nodiscard]] Fd udp_socket_bound(const SocketEndpoint& endpoint);
[[nodiscard]] Fd udp_socket_connected(const SocketEndpoint& endpoint);
[[nodiscard]] Fd tcp_listener(const SocketEndpoint& endpoint,
                              int backlog = 16);
[[nodiscard]] Fd tcp_connect(const SocketEndpoint& endpoint,
                             std::uint32_t timeout_ms);
[[nodiscard]] Fd tcp_connect_nonblocking(const SocketEndpoint& endpoint);

// The port a bound socket actually landed on (resolves port 0).
[[nodiscard]] std::uint16_t local_port(int fd);

// Blocking whole-buffer I/O on a socket with SO_SNDTIMEO/SO_RCVTIMEO set
// (tcp_connect's).  False on error, EOF, or timeout.
[[nodiscard]] bool write_all(int fd, std::span<const std::uint8_t> data);
[[nodiscard]] bool read_all(int fd, std::span<std::uint8_t> data);

// Monotonic wall-clock microseconds (CLOCK_MONOTONIC) — the time base for
// socket timeouts and measured RTTs.  Unrelated to SimTime: real sockets
// wait in real time.
[[nodiscard]] std::uint64_t monotonic_us();

}  // namespace httpsrr::net
