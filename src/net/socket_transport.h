#pragma once

// net::SocketTransport — the Transport contract over real nonblocking
// UDP/TCP sockets.  Where LoopbackTransport and DatagramTransport model a
// channel in-process on a virtual clock, this one puts DNS bytes on
// 127.0.0.1 (or any reachable endpoint) and waits in wall-clock time.
//
// Addressing: the transport is constructed with ONE endpoint and sends
// every query there regardless of the per-call `server` address — the
// remote process (resolver::SocketServer) hosts the simulated Internet
// behind a single front, either as a recursive resolver (clients act as
// stubs, one hop per resolution) or as one authoritative server.  The
// per-call IpAddr still exists in the Transport signature; it is simply
// not routable on a real wire and is ignored.
//
// Client-side robustness (the contract the modelled DatagramTransport
// pins in virtual time, honored here in real time):
//   * query-id + question matching — a datagram whose id is unknown is a
//     stray; id known but question mismatched is counted and dropped
//     (reply_matches_query, shared with the channel model);
//   * per-query timeout with bounded retransmits (default: one);
//   * TC=1 → nonblocking TCP fallback with 2-byte length framing, the
//     TCP reply verified against the original query before acceptance.
//     The TCP leg is a per-query state machine (connect-in-progress →
//     send → read) advanced by the same poll() loop that watches the UDP
//     socket, so one truncated reply never serializes a pipelined shard:
//     other in-flight UDP queries keep completing while the TCP
//     connection makes progress, and several TCP fallbacks can be in
//     flight at once on independent fds.
//
// send()/poll() keep the Transport async contract QueryEngine relies on:
// poll() blocks until SOME in-flight send completes (possibly as a clean
// timeout reply) — it never returns empty while sends are outstanding.

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/socket.h"
#include "net/transport.h"

namespace httpsrr::net {

struct SocketTransportOptions {
  SocketEndpoint server;           // where every query is sent
  std::uint32_t timeout_ms = 500;  // per-attempt UDP wait, TCP I/O deadline
  int retransmits = 1;             // extra UDP sends after a silent timeout
  bool tcp_only = false;           // skip the UDP leg (dig --tcp)
};

struct SocketStats {
  std::uint64_t udp_queries = 0;   // datagrams actually sent (incl. resends)
  std::uint64_t tcp_queries = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;          // queries that exhausted every attempt
  std::uint64_t tcp_fallbacks = 0;     // TC=1 replies retried over TCP
  std::uint64_t stray_replies = 0;     // datagrams matching no in-flight id
  std::uint64_t mismatched_replies = 0;  // id hit, question/flags mismatch
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options);

  // False when the UDP socket could not be created/connected; every
  // exchange on a !ok() transport reports a timeout.
  [[nodiscard]] bool ok() const { return udp_.valid(); }

  [[nodiscard]] TransportReply exchange(const IpAddr& server,
                                        std::span<const std::uint8_t> query,
                                        std::size_t udp_payload_limit) override;
  [[nodiscard]] SendToken send(const IpAddr& server,
                               std::span<const std::uint8_t> query,
                               std::size_t udp_payload_limit) override;
  [[nodiscard]] std::optional<AsyncReply> poll() override;

  [[nodiscard]] const SocketStats& stats() const { return stats_; }
  [[nodiscard]] const SocketEndpoint& endpoint() const {
    return options_.server;
  }

 private:
  // The nonblocking TCP leg's stage, per pending query.  kNone = the
  // query lives on the UDP socket; anything else = it owns a TCP fd that
  // pump() watches alongside UDP.
  enum class TcpStage : std::uint8_t {
    kNone,
    kConnecting,  // connect() in progress — waiting for POLLOUT
    kSending,     // writing frame + query
    kReading,     // reading length prefix, then the framed reply
  };

  struct PendingQuery {
    SendToken token = 0;
    WireBytes query;          // owned copy: retransmits + reply verification
    std::uint64_t sent_us = 0;      // first transmit (RTT measurement)
    std::uint64_t deadline_us = 0;  // current attempt's expiry
    int retransmits_left = 0;
    // TCP fallback state machine (TC=1 retries and tcp_only queries).
    TcpStage tcp_stage = TcpStage::kNone;
    Fd tcp_fd;
    WireBytes tcp_out;             // 2-byte frame + query
    std::size_t tcp_out_off = 0;   // bytes of tcp_out already written
    WireBytes tcp_in;              // accumulated frame + reply bytes
    int tcp_attempts_left = 0;     // fresh-connection retries remaining
    bool tcp_after_truncation = false;
  };

  // Runs the socket loop until at least one pending query completes (or
  // none are left).  Completions land on completed_ in completion order.
  void pump();
  // Transmits (or re-transmits) a pending query's datagram.
  void transmit(PendingQuery& pending);
  // Delivers one received datagram: match → complete (or TC fallback →
  // TCP state machine), no match → stray/mismatch accounting.
  void deliver_datagram(std::span<const std::uint8_t> datagram);
  void complete(std::size_t pending_index, TransportReply reply);
  // TCP state machine.  start_tcp enters it (TC=1 or tcp_only);
  // tcp_attempt opens a fresh nonblocking connection; tcp_step advances
  // one pending on poll() readiness; tcp_fail retries on a fresh
  // connection or completes the query as a timeout.  Any of these may
  // erase the pending at `index`.
  void start_tcp(std::size_t index, bool after_truncation);
  void tcp_attempt(std::size_t index);
  void tcp_step(std::size_t index, short revents);
  void tcp_fail(std::size_t index);
  // Index of the in-flight query wearing `token`, or npos.
  [[nodiscard]] std::size_t pending_index_of(SendToken token) const;

  SocketTransportOptions options_;
  Fd udp_;
  std::uint64_t epoch_us_ = 0;  // transport creation, arrival_us time base
  std::vector<PendingQuery> pending_;
  std::deque<AsyncReply> completed_;
  std::vector<std::uint8_t> recv_buffer_;
  SendToken max_token_seen_ = 0;  // reordered-reply accounting
  SocketStats stats_;
};

}  // namespace httpsrr::net
