#pragma once

// SimNetwork: the transport substrate of the simulated Internet.
//
// The network models exactly what the paper's experiments observe at the
// transport layer: whether a TCP connection to ip:port succeeds, and with
// which failure mode when it does not ("unreachable network error" is the
// most common failure in the paper's §4.3.5 connectivity experiment).
//
// Design: the network knows *who is listening* ((ip, port) -> opaque
// service id) and *what is reachable* (per-IP block list, per-endpoint
// refusal).  Protocol state lives above: the TLS layer maps service ids to
// TlsServer objects, the DNS layer maps them to authoritative servers.
// This keeps the transport free of protocol dependencies.

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "net/ip.h"
#include "net/time.h"

namespace httpsrr::net {

// A transport endpoint.
struct Endpoint {
  IpAddr ip;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string to_string() const;
};

enum class ConnectError : std::uint8_t {
  none,
  unreachable,  // no route to host / network unreachable
  refused,      // host up, nothing listening on the port
  timeout,      // packets silently dropped
};

[[nodiscard]] std::string_view to_string(ConnectError e);

// Result of a simulated TCP connect.
struct ConnectResult {
  ConnectError error = ConnectError::unreachable;
  std::uint64_t service_id = 0;  // valid only when error == none
  Duration rtt;                  // round-trip estimate for the attempt

  [[nodiscard]] bool ok() const { return error == ConnectError::none; }
};

class SimNetwork {
 public:
  SimNetwork() = default;

  // Registers a listener. Returns the service id to be resolved by the
  // protocol layer. Re-binding an endpoint replaces the previous listener.
  std::uint64_t listen(Endpoint ep);
  // Registers a listener with a caller-chosen id (ids must stay unique).
  void listen_as(Endpoint ep, std::uint64_t service_id);
  void close(Endpoint ep);

  // Reachability control (failure injection).
  void set_host_unreachable(const IpAddr& ip, bool unreachable);
  void set_endpoint_timeout(const Endpoint& ep, bool timeout);
  [[nodiscard]] bool host_unreachable(const IpAddr& ip) const;

  // Base RTT applied to every successful or refused connection attempt.
  void set_base_rtt(Duration rtt) { base_rtt_ = rtt; }
  [[nodiscard]] Duration base_rtt() const { return base_rtt_; }
  // Timeout budget a client burns waiting on a silent endpoint.
  void set_timeout_budget(Duration d) { timeout_budget_ = d; }

  // Attempt a TCP connection.
  [[nodiscard]] ConnectResult connect(const Endpoint& ep) const;

  // Looks up the service listening on `ep`; 0 when nothing is bound.
  [[nodiscard]] std::uint64_t service_at(const Endpoint& ep) const;

  [[nodiscard]] std::size_t listener_count() const { return listeners_.size(); }

 private:
  std::map<Endpoint, std::uint64_t> listeners_;
  std::set<IpAddr> unreachable_hosts_;
  std::set<Endpoint> timeout_endpoints_;
  std::uint64_t next_service_id_ = 1;
  Duration base_rtt_ = Duration::secs(0);
  Duration timeout_budget_ = Duration::secs(30);
};

}  // namespace httpsrr::net
