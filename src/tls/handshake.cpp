#include "tls/handshake.h"

#include <cstdint>

#include "dns/wire.h"
#include "util/strings.h"

namespace httpsrr::tls {

using util::Error;
using util::Result;

ech::Bytes InnerHello::serialize() const {
  dns::WireWriter w;
  w.u8(static_cast<std::uint8_t>(sni.size()));
  w.raw_string(sni);
  w.u8(static_cast<std::uint8_t>(alpn.size()));
  for (const auto& protocol : alpn) {
    w.u8(static_cast<std::uint8_t>(protocol.size()));
    w.raw_string(protocol);
  }
  return std::move(w).take();
}

Result<InnerHello> InnerHello::parse(const ech::Bytes& wire) {
  dns::WireReader r(wire);
  InnerHello out;
  auto sni_len = r.u8();
  if (!sni_len) return Error{sni_len.error()};
  auto sni = r.bytes(*sni_len);
  if (!sni) return Error{sni.error()};
  out.sni.assign(sni->begin(), sni->end());
  auto count = r.u8();
  if (!count) return Error{count.error()};
  for (unsigned i = 0; i < *count; ++i) {
    auto len = r.u8();
    if (!len) return Error{len.error()};
    auto protocol = r.bytes(*len);
    if (!protocol) return Error{protocol.error()};
    out.alpn.emplace_back(protocol->begin(), protocol->end());
  }
  if (!r.at_end()) return Error{"trailing bytes in inner hello"};
  return out;
}

ClientHello ClientHello::plain(std::string sni, std::vector<std::string> alpn) {
  ClientHello hello;
  hello.sni = std::move(sni);
  hello.alpn = std::move(alpn);
  return hello;
}

ClientHello ClientHello::with_ech(const ech::EchConfig& config,
                                  std::string inner_sni,
                                  std::vector<std::string> alpn) {
  ClientHello hello;
  hello.sni = config.public_name;  // outer SNI hides the real target
  hello.alpn = alpn;

  InnerHello inner;
  inner.sni = std::move(inner_sni);
  inner.alpn = std::move(alpn);

  EchExtension ext;
  ext.config_id = config.config_id;
  ech::Bytes aad = {config.config_id};
  ext.payload = ech::hpke_seal(config.public_key, aad, inner.serialize());
  hello.ech = std::move(ext);
  return hello;
}

ClientHello ClientHello::with_grease_ech(std::string sni,
                                         std::vector<std::string> alpn,
                                         std::uint64_t entropy) {
  ClientHello hello;
  hello.sni = std::move(sni);
  hello.alpn = std::move(alpn);

  EchExtension ext;
  ext.config_id = static_cast<std::uint8_t>(entropy);
  ext.payload.resize(32 + (entropy % 32));
  std::uint64_t state = entropy ^ 0x9e3779b97f4a7c15ULL;
  for (auto& b : ext.payload) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    b = static_cast<std::uint8_t>(state >> 56);
  }
  hello.ech = std::move(ext);
  return hello;
}

std::string_view to_string(TlsAlert a) {
  switch (a) {
    case TlsAlert::none: return "none";
    case TlsAlert::unrecognized_name: return "unrecognized_name";
    case TlsAlert::no_application_protocol: return "no_application_protocol";
  }
  return "?";
}

std::string TlsServer::normalize(std::string_view host) {
  std::string folded = util::to_lower(host);
  if (!folded.empty() && folded.back() == '.') folded.pop_back();
  return folded;
}

void TlsServer::add_site(std::string_view hostname, Site site) {
  std::string key = normalize(hostname);
  if (sites_.empty() && default_site_.empty()) default_site_ = key;
  sites_[std::move(key)] = std::move(site);
}

void TlsServer::remove_site(std::string_view hostname) {
  sites_.erase(normalize(hostname));
}

const TlsServer::Site* TlsServer::find_site(std::string_view hostname) const {
  auto it = sites_.find(normalize(hostname));
  return it == sites_.end() ? nullptr : &it->second;
}

void TlsServer::set_backend_route(std::string_view inner_host, TlsServer* backend) {
  backend_routes_[normalize(inner_host)] = backend;
}

HandshakeResult TlsServer::serve_plain(const std::string& sni,
                                       const std::vector<std::string>& alpn,
                                       bool ech_attempted) const {
  HandshakeResult result;
  result.transport_ok = true;
  result.transport_error = net::ConnectError::none;
  result.ech_attempted = ech_attempted;

  const Site* site = find_site(sni);
  if (site == nullptr && !default_site_.empty()) {
    auto it = sites_.find(default_site_);
    if (it != sites_.end()) site = &it->second;
  }
  if (site == nullptr) {
    result.alert = TlsAlert::unrecognized_name;
    return result;
  }
  result.certificate = site->certificate;

  // ALPN: first client preference the server supports. An empty client
  // list negotiates nothing but is not fatal (HTTP/1.1 fallback).
  if (!alpn.empty()) {
    for (const auto& protocol : alpn) {
      if (site->alpn.contains(protocol)) {
        result.negotiated_alpn = protocol;
        break;
      }
    }
    if (!result.negotiated_alpn) {
      result.alert = TlsAlert::no_application_protocol;
      return result;
    }
  }

  result.tls_ok = true;
  result.served_site = sites_.count(normalize(sni)) != 0 ? normalize(sni)
                                                         : default_site_;
  return result;
}

HandshakeResult TlsServer::serve(const ClientHello& hello) const {
  // No ECH in the hello, or a server that has never heard of ECH: plain
  // handshake with the (outer) SNI.  A server without keys *ignores* the
  // extension (the unilateral-ECH case of §5.3.1).
  if (!hello.ech.has_value() || ech_keys_ == nullptr) {
    return serve_plain(hello.sni, hello.alpn, hello.ech.has_value());
  }

  // ECH-terminating server: try to open the inner hello.
  ech::Bytes aad = {hello.ech->config_id};
  auto opened = ech_keys_->open(hello.ech->config_id, aad, hello.ech->payload);
  if (!opened.has_value()) {
    // Stale or unknown key: complete the handshake for the public name and
    // (per draft §6.1.6) hand the client fresh retry configurations.
    HandshakeResult result = serve_plain(hello.sni, hello.alpn, true);
    if (send_retry_configs_) {
      result.retry_configs = ech_keys_->current_config_wire();
    }
    return result;
  }

  auto inner = InnerHello::parse(*opened);
  if (!inner.ok()) {
    HandshakeResult result = serve_plain(hello.sni, hello.alpn, true);
    if (send_retry_configs_) {
      result.retry_configs = ech_keys_->current_config_wire();
    }
    return result;
  }

  // Inner hello decrypted: route to the named site, locally or via a
  // split-mode backend.
  if (find_site(inner->sni) == nullptr) {
    auto route = backend_routes_.find(normalize(inner->sni));
    if (route != backend_routes_.end() && route->second != nullptr) {
      ClientHello forwarded = ClientHello::plain(inner->sni, inner->alpn);
      HandshakeResult result = route->second->serve(forwarded);
      result.ech_attempted = true;
      result.ech_accepted = result.tls_ok;
      return result;
    }
  }
  HandshakeResult result = serve_plain(inner->sni, inner->alpn, true);
  result.ech_accepted = result.tls_ok;
  return result;
}

void TlsDirectory::bind(net::SimNetwork& network, const net::Endpoint& ep,
                        TlsServer* server) {
  std::uint64_t id = network.listen(ep);
  by_service_[id] = server;
  by_endpoint_[ep] = id;
}

void TlsDirectory::unbind(net::SimNetwork& network, const net::Endpoint& ep) {
  auto it = by_endpoint_.find(ep);
  if (it == by_endpoint_.end()) return;
  by_service_.erase(it->second);
  by_endpoint_.erase(it);
  network.close(ep);
}

TlsServer* TlsDirectory::at(std::uint64_t service_id) const {
  auto it = by_service_.find(service_id);
  return it == by_service_.end() ? nullptr : it->second;
}

HandshakeResult tls_connect(const net::SimNetwork& network,
                            const TlsDirectory& directory,
                            const net::Endpoint& ep, const ClientHello& hello) {
  HandshakeResult result;
  auto connect = network.connect(ep);
  if (!connect.ok()) {
    result.transport_error = connect.error;
    result.ech_attempted = hello.ech.has_value();
    return result;
  }
  TlsServer* server = directory.at(connect.service_id);
  if (server == nullptr) {
    // Something non-TLS is listening (e.g. plain HTTP on port 80).
    result.transport_ok = true;
    result.transport_error = net::ConnectError::none;
    result.ech_attempted = hello.ech.has_value();
    return result;
  }
  return server->serve(hello);
}

}  // namespace httpsrr::tls
