#include "tls/cert.h"

#include "util/strings.h"

namespace httpsrr::tls {

namespace {

// Strips one trailing dot so zone-file spellings compare equal to URLs.
std::string_view strip_dot(std::string_view s) {
  if (!s.empty() && s.back() == '.') s.remove_suffix(1);
  return s;
}

}  // namespace

bool Certificate::matches(std::string_view host) const {
  std::string_view target = strip_dot(host);
  for (const auto& raw : names_) {
    std::string_view name = strip_dot(raw);
    if (util::iequals(name, target)) return true;
    if (util::starts_with(name, "*.")) {
      std::string_view suffix = name.substr(1);  // ".example.com"
      auto first_dot = target.find('.');
      if (first_dot != std::string_view::npos &&
          util::iequals(target.substr(first_dot), suffix)) {
        return true;
      }
    }
  }
  return false;
}

std::string Certificate::to_string() const {
  return "CN={" + util::join(names_, ",") + "}";
}

}  // namespace httpsrr::tls
