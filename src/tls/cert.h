#pragma once

// Certificate — the slice of X.509 the study's experiments observe: the
// set of DNS names a server certificate covers, with wildcard matching.
// Browsers in the testbed fail connections on name mismatch (e.g. the
// "ERR_ECH_FALLBACK_CERTIFICATE_INVALID" outcome of §5.3.2).

#include <string>
#include <string_view>
#include <vector>

namespace httpsrr::tls {

class Certificate {
 public:
  Certificate() = default;
  explicit Certificate(std::vector<std::string> names)
      : names_(std::move(names)) {}

  // Single-name convenience.
  static Certificate for_name(std::string_view name) {
    return Certificate({std::string(name)});
  }

  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }
  [[nodiscard]] bool empty() const { return names_.empty(); }

  // RFC 6125-style match: exact (case-insensitive) or a "*.example.com"
  // wildcard covering exactly one left-most label.
  [[nodiscard]] bool matches(std::string_view host) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> names_;
};

}  // namespace httpsrr::tls
