#pragma once

// TLS handshake model: ClientHello (SNI, ALPN, ECH extension), server
// behaviour (certificate selection, ALPN negotiation, ECH accept / reject /
// retry / ignore), and the handshake engine that drives a hello against a
// server found through the simulated network.
//
// Abstraction level: exactly what the paper's packet captures distinguish —
// which SNI went on the wire, whether the inner hello decrypted, which
// certificate came back, which ALPN was negotiated, and whether the server
// offered retry configurations.  Record-layer bytes and key schedules are
// out of scope (DESIGN.md substitution table).

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ech/config.h"
#include "ech/hpke.h"
#include "ech/key_manager.h"
#include "net/network.h"
#include "tls/cert.h"
#include "util/result.h"

namespace httpsrr::tls {

// The encrypted inner hello: what ECH actually protects.
struct InnerHello {
  std::string sni;
  std::vector<std::string> alpn;

  [[nodiscard]] ech::Bytes serialize() const;
  static util::Result<InnerHello> parse(const ech::Bytes& wire);

  friend bool operator==(const InnerHello&, const InnerHello&) = default;
};

// The ECH extension carried in the outer ClientHello.
struct EchExtension {
  std::uint8_t config_id = 0;
  ech::Bytes payload;  // sealed InnerHello
};

struct ClientHello {
  std::string sni;                    // outer SNI (public name when ECH used)
  std::vector<std::string> alpn;      // offered protocols, most preferred first
  std::optional<EchExtension> ech;    // present when the client attempts ECH

  // Builds a plain hello.
  static ClientHello plain(std::string sni, std::vector<std::string> alpn);

  // Builds an ECH hello from a configuration: outer SNI = public_name,
  // inner hello sealed to the config's public key.
  static ClientHello with_ech(const ech::EchConfig& config,
                              std::string inner_sni,
                              std::vector<std::string> alpn);

  // Builds a GREASE ECH hello (draft §6.2): a random, undecryptable ECH
  // extension with the *real* SNI in the outer hello. Chromium sends this
  // on every connection without a real config, so servers cannot ossify
  // on the extension's absence.
  static ClientHello with_grease_ech(std::string sni,
                                     std::vector<std::string> alpn,
                                     std::uint64_t entropy);
};

enum class TlsAlert : std::uint8_t {
  none,
  unrecognized_name,   // no site and no default certificate for the SNI
  no_application_protocol,  // ALPN intersection empty
};

[[nodiscard]] std::string_view to_string(TlsAlert a);

// What the client observes at the end of the handshake.
struct HandshakeResult {
  bool transport_ok = false;
  net::ConnectError transport_error = net::ConnectError::unreachable;

  bool tls_ok = false;
  TlsAlert alert = TlsAlert::none;
  Certificate certificate;                 // as presented by the server
  std::optional<std::string> negotiated_alpn;

  bool ech_attempted = false;
  bool ech_accepted = false;               // inner hello decrypted and routed
  ech::Bytes retry_configs;                // non-empty => server offered retry
  std::string served_site;                 // hostname whose content was served
};

// A TLS endpoint: one or more named sites behind a set of listening ports.
class TlsServer {
 public:
  struct Site {
    Certificate certificate;
    std::set<std::string> alpn{"http/1.1", "h2"};
  };

  explicit TlsServer(std::string description) : description_(std::move(description)) {}

  [[nodiscard]] const std::string& description() const { return description_; }

  // Site management (hostnames are case-insensitive, stored folded).
  void add_site(std::string_view hostname, Site site);
  void remove_site(std::string_view hostname);
  [[nodiscard]] const Site* find_site(std::string_view hostname) const;
  // Served when the SNI matches nothing (empty = alert unrecognized_name).
  void set_default_site(std::string_view hostname) {
    default_site_ = normalize(hostname);
  }

  // ECH (shared mode): this server terminates ECH with these keys.
  void enable_ech(std::shared_ptr<ech::EchKeyManager> keys) {
    ech_keys_ = std::move(keys);
  }
  void disable_ech() { ech_keys_.reset(); }
  [[nodiscard]] bool ech_enabled() const { return ech_keys_ != nullptr; }
  // ECH retry behaviour (spec-discouraged switch; kept for experiments).
  void set_send_retry_configs(bool send) { send_retry_configs_ = send; }

  // Split mode: route decrypted inner SNIs we do not host to a backend
  // server (the client-facing role of Fig. 7).
  void set_backend_route(std::string_view inner_host, TlsServer* backend);

  // Server side of the handshake.
  [[nodiscard]] HandshakeResult serve(const ClientHello& hello) const;

 private:
  static std::string normalize(std::string_view host);
  [[nodiscard]] HandshakeResult serve_plain(const std::string& sni,
                                            const std::vector<std::string>& alpn,
                                            bool ech_attempted) const;

  std::string description_;
  std::map<std::string, Site> sites_;
  std::string default_site_;
  std::shared_ptr<ech::EchKeyManager> ech_keys_;
  bool send_retry_configs_ = true;
  std::map<std::string, TlsServer*> backend_routes_;
};

// Directory mapping SimNetwork service ids to TLS servers.
class TlsDirectory {
 public:
  // Binds `server` at `ep` in `network`, recording the service id.
  void bind(net::SimNetwork& network, const net::Endpoint& ep, TlsServer* server);
  void unbind(net::SimNetwork& network, const net::Endpoint& ep);

  [[nodiscard]] TlsServer* at(std::uint64_t service_id) const;

 private:
  std::map<std::uint64_t, TlsServer*> by_service_;
  std::map<net::Endpoint, std::uint64_t> by_endpoint_;
};

// Drives a full connect + handshake against whatever listens at `ep`.
[[nodiscard]] HandshakeResult tls_connect(const net::SimNetwork& network,
                                          const TlsDirectory& directory,
                                          const net::Endpoint& ep,
                                          const ClientHello& hello);

}  // namespace httpsrr::tls
