#include "dns/rr.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::dns {

std::string Rr::to_string() const {
  return util::format("%s %u IN %s %s", owner.to_string().c_str(), ttl,
                      type_to_string(type).c_str(),
                      rdata_to_presentation(type, rdata).c_str());
}

Rr make_a(const Name& owner, std::uint32_t ttl, net::Ipv4Addr addr) {
  return Rr{owner, RrType::A, RrClass::IN, ttl, ARdata{addr}};
}

Rr make_aaaa(const Name& owner, std::uint32_t ttl, net::Ipv6Addr addr) {
  return Rr{owner, RrType::AAAA, RrClass::IN, ttl, AaaaRdata{addr}};
}

Rr make_cname(const Name& owner, std::uint32_t ttl, Name target) {
  return Rr{owner, RrType::CNAME, RrClass::IN, ttl, CnameRdata{std::move(target)}};
}

Rr make_ns(const Name& owner, std::uint32_t ttl, Name nsdname) {
  return Rr{owner, RrType::NS, RrClass::IN, ttl, NsRdata{std::move(nsdname)}};
}

Rr make_soa(const Name& owner, std::uint32_t ttl, SoaRdata soa) {
  return Rr{owner, RrType::SOA, RrClass::IN, ttl, std::move(soa)};
}

Rr make_https(const Name& owner, std::uint32_t ttl, SvcbRdata rdata) {
  return Rr{owner, RrType::HTTPS, RrClass::IN, ttl, std::move(rdata)};
}

Rr make_svcb(const Name& owner, std::uint32_t ttl, SvcbRdata rdata) {
  return Rr{owner, RrType::SVCB, RrClass::IN, ttl, std::move(rdata)};
}

void RrSet::add(Rr rr) {
  if (records_.empty()) {
    owner_ = rr.owner;
    type_ = rr.type;
    ttl_ = rr.ttl;
  } else {
    ttl_ = std::min(ttl_, rr.ttl);
  }
  records_.push_back(std::move(rr));
}

Bytes RrSet::canonical_form(std::uint32_t original_ttl) const {
  // Encode each record's (owner | type | class | TTL | RDLENGTH | RDATA)
  // with a case-folded owner, then sort the encodings bytewise.
  std::vector<Bytes> encodings;
  encodings.reserve(records_.size());

  Name folded_owner = owner_.case_folded();

  for (const auto& rr : records_) {
    WireWriter w;
    w.name(folded_owner);
    w.u16(static_cast<std::uint16_t>(rr.type));
    w.u16(static_cast<std::uint16_t>(rr.klass));
    w.u32(original_ttl);
    WireWriter rdata_writer;
    encode_rdata(rr.rdata, rdata_writer);
    w.u16(static_cast<std::uint16_t>(rdata_writer.size()));
    w.bytes(rdata_writer.data());
    encodings.push_back(std::move(w).take());
  }
  std::sort(encodings.begin(), encodings.end());

  Bytes out;
  for (const auto& e : encodings) out.insert(out.end(), e.begin(), e.end());
  return out;
}

}  // namespace httpsrr::dns
