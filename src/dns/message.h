#pragma once

// DNS message: header, question, answer/authority/additional sections,
// with full wire encode/decode (including name compression on encode and
// pointer chasing on decode).  The AD bit is first-class because the study
// uses it to classify DNSSEC-validated HTTPS responses (§4.5).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"
#include "dns/wire.h"
#include "util/result.h"

namespace httpsrr::dns {

struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  Opcode opcode = Opcode::QUERY;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = true;   // recursion desired
  bool ra = false;  // recursion available
  bool ad = false;  // authentic data (DNSSEC validated)
  bool cd = false;  // checking disabled
  Rcode rcode = Rcode::NOERROR;

  friend bool operator==(const Header&, const Header&) = default;
};

// EDNS(0) pseudo-record state (RFC 6891). Carried in the additional
// section as an OPT RR on the wire; surfaced as a typed field here.
struct Edns {
  std::uint16_t udp_payload_size = 1232;  // the modern DNS-flag-day default
  bool dnssec_ok = false;                 // DO bit: send RRSIGs in answers
  // Upper 8 bits of the 12-bit extended RCODE (RFC 6891 §6.1.3), from the
  // OPT TTL.  Header::rcode stays the low nibble; combine the two when the
  // full value matters (MessageView::extended_rcode does).
  std::uint8_t extended_rcode = 0;

  friend bool operator==(const Edns&, const Edns&) = default;
};

// RFC 6891 §6.2.3-6.2.5 bounds on the advertised UDP payload size: values
// below 512 are formally errors ("values lower than 512 MUST be treated as
// equal to 512"), and anything above 4096 buys nothing but fragmentation
// risk, so both the resolver's OPT emission and every server-side
// truncation decision clamp through here.  An advertised 511 truncates
// exactly like 512; an advertised 65535 truncates exactly like 4096.
inline constexpr std::uint16_t kEdnsPayloadFloor = 512;
inline constexpr std::uint16_t kEdnsPayloadCeiling = 4096;
[[nodiscard]] constexpr std::uint16_t clamp_edns_payload(std::uint16_t v) {
  if (v < kEdnsPayloadFloor) return kEdnsPayloadFloor;
  if (v > kEdnsPayloadCeiling) return kEdnsPayloadCeiling;
  return v;
}

struct Question {
  Name qname;
  RrType qtype = RrType::A;
  RrClass qclass = RrClass::IN;

  friend bool operator==(const Question&, const Question&) = default;
};

struct Message {
  Header header;
  std::optional<Edns> edns;
  std::vector<Question> questions;
  std::vector<Rr> answers;
  std::vector<Rr> authorities;
  std::vector<Rr> additionals;

  // Builds a standard recursive query for (qname, qtype).
  static Message make_query(std::uint16_t id, Name qname, RrType qtype,
                            bool dnssec_ok = true);

  // Builds a response skeleton mirroring `query` (id, question, RD).
  static Message make_response(const Message& query);

  [[nodiscard]] Bytes encode() const;

  // Encodes into a caller-owned writer (cleared first, capacity kept and
  // pre-reserved from a section-size estimate). Reusing one writer across
  // messages makes steady-state encoding allocation-free.
  void encode_into(WireWriter& w) const;

  static util::Result<Message> decode(std::span<const std::uint8_t> wire);

  // All answer records of the given type (e.g. pull HTTPS out of a mixed
  // CNAME+HTTPS answer section).
  [[nodiscard]] std::vector<Rr> answers_of_type(RrType t) const;

  // Human-readable multi-line dump (dig-like), for examples and debugging.
  [[nodiscard]] std::string to_string() const;
};

// Wire-level building blocks, shared with callers that assemble messages
// directly into a WireWriter (RecursiveResolver::resolve_wire) instead of
// round-tripping through a Message.
[[nodiscard]] std::uint16_t pack_flags(const Header& h);
void encode_rr(const Rr& rr, WireWriter& w);

}  // namespace httpsrr::dns
