#include "dns/name.h"

#include <cassert>
#include <cstdlib>

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

namespace {

constexpr std::size_t kMaxLabelLen = 63;
constexpr std::size_t kMaxWireLen = 255;
// Flat buffer excludes the root octet, so its cap is one below the wire cap.
constexpr std::size_t kMaxFlatLen = kMaxWireLen - 1;
// 254 flat octets / 2 octets per minimal label = 127 labels, so any valid
// name's label-offset array fits in uint8_t[128].
constexpr std::size_t kMaxLabels = 127;

inline std::uint8_t len_at(std::string_view flat, std::size_t pos) {
  return static_cast<std::uint8_t>(flat[pos]);
}

// Fills offsets[0..count] with the start position of each label in `flat`
// (offsets[count] == flat.size() as a sentinel) and returns the label count.
// Offsets fit in uint8_t because flat <= 254 octets.
inline std::size_t collect_offsets(std::string_view flat,
                                   std::uint8_t offsets[kMaxLabels + 1]) {
  std::size_t n = 0;
  std::size_t pos = 0;
  while (pos < flat.size()) {
    offsets[n++] = static_cast<std::uint8_t>(pos);
    pos += 1 + len_at(flat, pos);
  }
  offsets[n] = static_cast<std::uint8_t>(flat.size());
  return n;
}

bool needs_escape(char c) {
  return c == '.' || c == '\\' || c == '"' || c == ';' || c == '(' ||
         c == ')' || c == '@' || c == '$' ||
         static_cast<unsigned char>(c) < 0x21 ||
         static_cast<unsigned char>(c) > 0x7e;
}

}  // namespace

Result<Name> Name::parse(std::string_view text) {
  if (text.empty()) return Error{"empty name"};
  if (text == ".") return Name();

  std::string flat;
  flat.reserve(text.size() + 1);
  std::size_t count = 0;
  // Index of the current label's length octet; npos between labels.
  std::size_t len_pos = std::string::npos;

  auto begin_label = [&] {
    if (len_pos == std::string::npos) {
      len_pos = flat.size();
      flat.push_back('\0');
    }
  };
  auto end_label = [&]() -> Result<void> {
    if (len_pos == std::string::npos) return Error{"empty label"};
    std::size_t len = flat.size() - len_pos - 1;
    if (len > kMaxLabelLen) return Error{"label exceeds 63 octets"};
    flat[len_pos] = static_cast<char>(len);
    len_pos = std::string::npos;
    ++count;
    return {};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) return Error{"dangling escape"};
      char next = text[i + 1];
      begin_label();
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size()) return Error{"truncated \\DDD escape"};
        std::uint64_t code = 0;
        if (!util::parse_u64(text.substr(i + 1, 3), code, 255)) {
          return Error{"bad \\DDD escape"};
        }
        flat.push_back(static_cast<char>(code));
        i += 3;
      } else {
        flat.push_back(next);
        i += 1;
      }
      continue;
    }
    if (c == '.') {
      if (auto r = end_label(); !r) return Error{r.error()};
      continue;
    }
    begin_label();
    flat.push_back(c);
  }
  if (len_pos != std::string::npos) {
    if (auto r = end_label(); !r) return Error{r.error()};
  }

  if (flat.size() > kMaxFlatLen) return Error{"name exceeds 255 octets"};
  return Name(std::move(flat), static_cast<std::uint8_t>(count));
}

Result<Name> Name::from_labels(const std::vector<std::string>& labels) {
  std::string flat;
  std::size_t total = 0;
  for (const auto& label : labels) total += 1 + label.size();
  flat.reserve(total);
  for (const auto& label : labels) {
    if (label.empty()) return Error{"empty label"};
    if (label.size() > kMaxLabelLen) return Error{"label exceeds 63 octets"};
    flat.push_back(static_cast<char>(label.size()));
    flat.append(label);
  }
  if (flat.size() > kMaxFlatLen) return Error{"name exceeds 255 octets"};
  return Name(std::move(flat), static_cast<std::uint8_t>(labels.size()));
}

Result<Name> Name::from_flat(std::string flat) {
  if (flat.size() > kMaxFlatLen) return Error{"name exceeds 255 octets"};
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < flat.size()) {
    std::size_t len = len_at(flat, pos);
    if (len == 0 || len > kMaxLabelLen) return Error{"bad label length"};
    if (pos + 1 + len > flat.size()) return Error{"truncated flat name"};
    pos += 1 + len;
    ++count;
  }
  return Name(std::move(flat), static_cast<std::uint8_t>(count));
}

std::string_view Name::label(std::size_t i) const {
  assert(i < count_);
  std::size_t pos = 0;
  for (std::size_t k = 0; k < i; ++k) pos += 1 + len_at(flat_, pos);
  return std::string_view(flat_).substr(pos + 1, len_at(flat_, pos));
}

std::vector<std::string> Name::labels() const {
  std::vector<std::string> out;
  out.reserve(count_);
  std::size_t pos = 0;
  while (pos < flat_.size()) {
    std::size_t len = len_at(flat_, pos);
    out.emplace_back(flat_, pos + 1, len);
    pos += 1 + len;
  }
  return out;
}

std::string Name::to_string() const {
  if (flat_.empty()) return ".";
  std::string out;
  out.reserve(flat_.size() + 1);
  std::size_t pos = 0;
  while (pos < flat_.size()) {
    std::size_t len = len_at(flat_, pos);
    for (std::size_t i = pos + 1; i <= pos + len; ++i) {
      char c = flat_[i];
      if (needs_escape(c)) {
        if (c == '.' || c == '\\' || c == '"' || c == ';' || c == '(' ||
            c == ')' || c == '@' || c == '$') {
          out.push_back('\\');
          out.push_back(c);
        } else {
          out += util::format("\\%03u", static_cast<unsigned char>(c));
        }
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
    pos += 1 + len;
  }
  return out;
}

bool Name::is_subdomain_of(const Name& other) const {
  if (other.flat_.size() > flat_.size()) return false;
  std::size_t off = flat_.size() - other.flat_.size();
  // `off` must land on a label boundary of this name.
  std::size_t pos = 0;
  while (pos < off) pos += 1 + len_at(flat_, pos);
  if (pos != off) return false;
  return util::iequals(std::string_view(flat_).substr(off), other.flat_);
}

Name Name::parent() const {
  if (flat_.empty()) return Name();
  std::size_t skip = 1 + len_at(flat_, 0);
  return Name(flat_.substr(skip), static_cast<std::uint8_t>(count_ - 1));
}

Name Name::suffix(std::size_t count) const {
  if (count >= count_) return *this;
  std::size_t pos = 0;
  for (std::size_t drop = count_ - count; drop > 0; --drop) {
    pos += 1 + len_at(flat_, pos);
  }
  return Name(flat_.substr(pos), static_cast<std::uint8_t>(count));
}

Name Name::case_folded() const {
  // Length octets are 1..63 — never ASCII uppercase — so folding every
  // byte of the flat buffer lowercases exactly the label bytes.
  std::string folded = flat_;
  for (char& c : folded) c = util::ascii_lower(c);
  return Name(std::move(folded), count_);
}

Result<Name> Name::prepend(std::string_view label) const {
  if (label.empty()) return Error{"empty label"};
  if (label.size() > kMaxLabelLen) return Error{"label exceeds 63 octets"};
  if (1 + label.size() + flat_.size() > kMaxFlatLen) {
    return Error{"name exceeds 255 octets"};
  }
  std::string flat;
  flat.reserve(1 + label.size() + flat_.size());
  flat.push_back(static_cast<char>(label.size()));
  flat.append(label);
  flat.append(flat_);
  return Name(std::move(flat), static_cast<std::uint8_t>(count_ + 1));
}

bool operator==(const Name& a, const Name& b) {
  // Length octets are 1..63 — never ASCII letters — so a case-folded
  // bytewise comparison of the flat buffers compares structure and label
  // bytes in one pass.
  return util::iequals(a.flat_, b.flat_);
}

std::strong_ordering operator<=>(const Name& a, const Name& b) {
  // Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
  // right-to-left, case-folded, shorter sequence first on prefix match.
  std::uint8_t offs_a[kMaxLabels + 1];
  std::uint8_t offs_b[kMaxLabels + 1];
  std::size_t na = collect_offsets(a.flat_, offs_a);
  std::size_t nb = collect_offsets(b.flat_, offs_b);
  std::size_t common = na < nb ? na : nb;
  for (std::size_t i = 1; i <= common; ++i) {
    std::size_t pa = offs_a[na - i];
    std::size_t pb = offs_b[nb - i];
    std::size_t la = len_at(a.flat_, pa);
    std::size_t lb = len_at(b.flat_, pb);
    std::size_t len = la < lb ? la : lb;
    for (std::size_t j = 1; j <= len; ++j) {
      auto ca = static_cast<unsigned char>(util::ascii_lower(a.flat_[pa + j]));
      auto cb = static_cast<unsigned char>(util::ascii_lower(b.flat_[pb + j]));
      if (ca != cb) return ca <=> cb;
    }
    if (la != lb) return la <=> lb;
  }
  return na <=> nb;
}

std::size_t Name::hash() const {
  // FNV-1a over the case-folded flat buffer. Length octets are included:
  // they can't collide with letters, and they delimit labels exactly the
  // way the old per-label separator did.
  std::size_t h = 1469598103934665603ULL;
  for (char c : flat_) {
    h ^= static_cast<unsigned char>(util::ascii_lower(c));
    h *= 1099511628211ULL;
  }
  return h;
}

Name name_of(std::string_view text) {
  auto r = Name::parse(text);
  if (!r) {
    assert(false && "name_of: malformed name literal");
    std::abort();
  }
  return std::move(r).take();
}

}  // namespace httpsrr::dns
