#include "dns/name.h"

#include <cassert>
#include <cstdlib>

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

namespace {

constexpr std::size_t kMaxLabelLen = 63;
constexpr std::size_t kMaxWireLen = 255;

Result<void> validate_labels(const std::vector<std::string>& labels) {
  std::size_t wire = 1;  // root octet
  for (const auto& label : labels) {
    if (label.empty()) return Error{"empty label"};
    if (label.size() > kMaxLabelLen) return Error{"label exceeds 63 octets"};
    wire += 1 + label.size();
  }
  if (wire > kMaxWireLen) return Error{"name exceeds 255 octets"};
  return {};
}

bool needs_escape(char c) {
  return c == '.' || c == '\\' || c == '"' || c == ';' || c == '(' ||
         c == ')' || c == '@' || c == '$' ||
         static_cast<unsigned char>(c) < 0x21 ||
         static_cast<unsigned char>(c) > 0x7e;
}

}  // namespace

Result<Name> Name::parse(std::string_view text) {
  if (text.empty()) return Error{"empty name"};
  if (text == ".") return Name();

  std::vector<std::string> labels;
  std::string current;
  bool saw_char_in_label = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\\') {
      if (i + 1 >= text.size()) return Error{"dangling escape"};
      char next = text[i + 1];
      if (next >= '0' && next <= '9') {
        if (i + 3 >= text.size()) return Error{"truncated \\DDD escape"};
        std::uint64_t code = 0;
        if (!util::parse_u64(text.substr(i + 1, 3), code, 255)) {
          return Error{"bad \\DDD escape"};
        }
        current.push_back(static_cast<char>(code));
        i += 3;
      } else {
        current.push_back(next);
        i += 1;
      }
      saw_char_in_label = true;
      continue;
    }
    if (c == '.') {
      if (!saw_char_in_label) return Error{"empty label"};
      labels.push_back(std::move(current));
      current.clear();
      saw_char_in_label = false;
      continue;
    }
    current.push_back(c);
    saw_char_in_label = true;
  }
  if (saw_char_in_label) labels.push_back(std::move(current));

  if (auto r = validate_labels(labels); !r) return Error{r.error()};
  return Name(std::move(labels));
}

Result<Name> Name::from_labels(std::vector<std::string> labels) {
  if (auto r = validate_labels(labels); !r) return Error{r.error()};
  return Name(std::move(labels));
}

std::size_t Name::wire_length() const {
  std::size_t len = 1;
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    for (char c : label) {
      if (needs_escape(c)) {
        if (c == '.' || c == '\\' || c == '"' || c == ';' || c == '(' ||
            c == ')' || c == '@' || c == '$') {
          out.push_back('\\');
          out.push_back(c);
        } else {
          out += util::format("\\%03u", static_cast<unsigned char>(c));
        }
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
  }
  return out;
}

bool Name::is_subdomain_of(const Name& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  std::size_t offset = labels_.size() - other.labels_.size();
  for (std::size_t i = 0; i < other.labels_.size(); ++i) {
    if (!util::iequals(labels_[offset + i], other.labels_[i])) return false;
  }
  return true;
}

Name Name::parent() const {
  if (labels_.empty()) return Name();
  return Name(std::vector<std::string>(labels_.begin() + 1, labels_.end()));
}

Result<Name> Name::prepend(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

bool operator==(const Name& a, const Name& b) {
  if (a.labels_.size() != b.labels_.size()) return false;
  for (std::size_t i = 0; i < a.labels_.size(); ++i) {
    if (!util::iequals(a.labels_[i], b.labels_[i])) return false;
  }
  return true;
}

std::strong_ordering operator<=>(const Name& a, const Name& b) {
  // Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
  // right-to-left, case-folded, shorter sequence first on prefix match.
  std::size_t na = a.labels_.size();
  std::size_t nb = b.labels_.size();
  std::size_t common = std::min(na, nb);
  for (std::size_t i = 1; i <= common; ++i) {
    const std::string& la = a.labels_[na - i];
    const std::string& lb = b.labels_[nb - i];
    std::size_t len = std::min(la.size(), lb.size());
    for (std::size_t j = 0; j < len; ++j) {
      auto ca = static_cast<unsigned char>(util::ascii_lower(la[j]));
      auto cb = static_cast<unsigned char>(util::ascii_lower(lb[j]));
      if (ca != cb) return ca <=> cb;
    }
    if (la.size() != lb.size()) return la.size() <=> lb.size();
  }
  return na <=> nb;
}

std::size_t Name::hash() const {
  // FNV-1a over case-folded labels with separators.
  std::size_t h = 1469598103934665603ULL;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  };
  for (const auto& label : labels_) {
    for (char c : label) mix(static_cast<unsigned char>(util::ascii_lower(c)));
    mix(0);
  }
  return h;
}

Name name_of(std::string_view text) {
  auto r = Name::parse(text);
  if (!r) {
    assert(false && "name_of: malformed name literal");
    std::abort();
  }
  return std::move(r).take();
}

}  // namespace httpsrr::dns
