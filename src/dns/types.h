#pragma once

// DNS enumerations: record types, classes, response codes, opcode.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace httpsrr::dns {

enum class RrType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  DS = 43,
  NSEC = 47,
  RRSIG = 46,
  DNSKEY = 48,
  DNAME = 39,
  OPT = 41,
  SVCB = 64,
  HTTPS = 65,
};

enum class RrClass : std::uint16_t {
  IN = 1,
  CH = 3,
  ANY = 255,
};

enum class Rcode : std::uint8_t {
  NOERROR = 0,
  FORMERR = 1,
  SERVFAIL = 2,
  NXDOMAIN = 3,
  NOTIMP = 4,
  REFUSED = 5,
};

enum class Opcode : std::uint8_t {
  QUERY = 0,
};

// Mnemonic <-> value conversions. Unknown types round-trip via the RFC 3597
// "TYPE####" form.
[[nodiscard]] std::string type_to_string(RrType t);
[[nodiscard]] util::Result<RrType> type_from_string(std::string_view s);
[[nodiscard]] std::string_view rcode_to_string(Rcode r);

}  // namespace httpsrr::dns
