#include "dns/wire.h"

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

void WireWriter::name(const Name& n) {
  for (const auto& label : n.labels()) {
    u8(static_cast<std::uint8_t>(label.size()));
    raw_string(label);
  }
  u8(0);
}

void WireWriter::name_compressed(const Name& n,
                                 std::map<std::string, std::uint16_t>& offsets) {
  // Walk suffixes left to right; when a suffix has been emitted before (and
  // its offset fits in 14 bits) emit a pointer and stop.
  const auto& labels = n.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Key: case-folded presentation of the suffix starting at label i.
    std::string key;
    for (std::size_t j = i; j < labels.size(); ++j) {
      key += util::to_lower(labels[j]);
      key += '.';
    }
    auto it = offsets.find(key);
    if (it != offsets.end()) {
      u16(static_cast<std::uint16_t>(0xc000 | it->second));
      return;
    }
    if (buf_.size() <= 0x3fff) {
      offsets.emplace(std::move(key), static_cast<std::uint16_t>(buf_.size()));
    }
    u8(static_cast<std::uint8_t>(labels[i].size()));
    raw_string(labels[i]);
  }
  u8(0);
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

Result<std::uint8_t> WireReader::u8() {
  if (remaining() < 1) return Error{"truncated: u8"};
  return data_[pos_++];
}

Result<std::uint16_t> WireReader::u16() {
  if (remaining() < 2) return Error{"truncated: u16"};
  auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> WireReader::u32() {
  if (remaining() < 4) return Error{"truncated: u32"};
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<Bytes> WireReader::bytes(std::size_t count) {
  if (remaining() < count) return Error{"truncated: bytes"};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

namespace {

// Shared name-decoding core. When `allow_pointers` is false, any pointer
// label is rejected.
Result<Name> read_name(std::span<const std::uint8_t> data, std::size_t& pos,
                       bool allow_pointers) {
  std::vector<std::string> labels;
  std::size_t cursor = pos;
  bool jumped = false;
  std::size_t end_pos = pos;  // cursor position after the first encoding
  int hops = 0;
  constexpr int kMaxHops = 128;  // generous loop guard

  while (true) {
    if (cursor >= data.size()) return Error{"truncated name"};
    std::uint8_t len = data[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (!allow_pointers) return Error{"compression pointer not allowed"};
      if (cursor + 1 >= data.size()) return Error{"truncated pointer"};
      std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | data[cursor + 1];
      if (!jumped) end_pos = cursor + 2;
      jumped = true;
      if (++hops > kMaxHops) return Error{"compression pointer loop"};
      if (target >= cursor) {
        // Forward pointers are invalid and a common loop vector.
        return Error{"forward compression pointer"};
      }
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) return Error{"reserved label type"};
    if (len == 0) {
      if (!jumped) end_pos = cursor + 1;
      break;
    }
    if (cursor + 1 + len > data.size()) return Error{"truncated label"};
    labels.emplace_back(reinterpret_cast<const char*>(data.data()) + cursor + 1,
                        len);
    cursor += 1 + len;
  }

  auto name = Name::from_labels(std::move(labels));
  if (!name) return Error{name.error()};
  pos = end_pos;
  return std::move(name).take();
}

}  // namespace

Result<Name> WireReader::name() { return read_name(data_, pos_, true); }

Result<Name> WireReader::name_uncompressed() {
  return read_name(data_, pos_, false);
}

}  // namespace httpsrr::dns
