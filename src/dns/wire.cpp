#include "dns/wire.h"

#include <cstring>

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

namespace {

// FNV-1a over case-folded bytes. Length octets pass through the fold
// unchanged (1..63 is never an ASCII letter), so two suffixes hash equal
// exactly when their label sequences match ignoring case.
std::uint64_t fold_hash(std::string_view flat) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : flat) {
    h ^= static_cast<unsigned char>(util::ascii_lower(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void WireWriter::clear() {
  buf_.clear();
  entries_ = 0;
  if (++generation_ == 0) {
    // Generation counter wrapped (after ~4 billion clears): stale stamps
    // could alias, so wipe the table once and restart at 1.
    std::memset(slots_, 0, sizeof(slots_));
    generation_ = 1;
  }
}

void WireWriter::name(const Name& n) {
  raw_string(n.flat());
  u8(0);
}

bool WireWriter::suffix_matches(std::size_t offset,
                                std::string_view flat) const {
  std::size_t cursor = offset;
  std::size_t fpos = 0;
  std::size_t hops = 0;
  while (true) {
    if (cursor >= buf_.size()) return false;
    std::uint8_t len = buf_[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= buf_.size()) return false;
      if (++hops > buf_.size()) return false;
      cursor = (static_cast<std::size_t>(len & 0x3f) << 8) | buf_[cursor + 1];
      continue;
    }
    if (len == 0) return fpos == flat.size();
    if (fpos >= flat.size()) return false;
    if (static_cast<std::uint8_t>(flat[fpos]) != len) return false;
    if (cursor + 1 + len > buf_.size()) return false;
    for (std::size_t j = 1; j <= len; ++j) {
      if (util::ascii_lower(static_cast<char>(buf_[cursor + j])) !=
          util::ascii_lower(flat[fpos + j])) {
        return false;
      }
    }
    cursor += 1 + len;
    fpos += 1 + len;
  }
}

void WireWriter::name_compressed(const Name& n) {
  // Walk suffixes left to right; when a suffix was emitted before (and its
  // offset fits in 14 bits) emit a pointer and stop.  Candidates are found
  // through the open-addressed table; a 16-bit hash tag prunes collisions
  // and an exact case-folded comparison against the already-written wire
  // bytes confirms the match, so output never depends on hash luck.
  std::string_view flat = n.flat();
  std::size_t pos = 0;
  while (pos < flat.size()) {
    std::string_view suffix = flat.substr(pos);
    std::uint64_t h = fold_hash(suffix);
    auto tag = static_cast<std::uint16_t>(h);
    std::size_t idx = h & (kSlots - 1);
    bool matched = false;
    while (slots_[idx].generation == generation_) {
      if (slots_[idx].tag == tag && suffix_matches(slots_[idx].offset, suffix)) {
        u16(static_cast<std::uint16_t>(0xc000 | slots_[idx].offset));
        matched = true;
        break;
      }
      idx = (idx + 1) & (kSlots - 1);
    }
    if (matched) return;
    // First occurrence: remember it as a pointer target when representable
    // (14-bit offset) and the table still has room — entries_ < kMaxEntries
    // keeps at least half the slots dead so probes always terminate.
    if (buf_.size() <= 0x3fff && entries_ < kMaxEntries) {
      slots_[idx] = Slot{generation_, static_cast<std::uint16_t>(buf_.size()),
                         tag};
      ++entries_;
    }
    std::size_t len = static_cast<std::uint8_t>(flat[pos]);
    raw_string(flat.substr(pos, 1 + len));
    pos += 1 + len;
  }
  u8(0);
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}




Result<Bytes> WireReader::bytes(std::size_t count) {
  if (remaining() < count) return Error{"truncated: bytes"};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

namespace {

// Shared name-decoding core. When `allow_pointers` is false, any pointer
// label is rejected. Builds the flat label buffer directly; two caps bound
// hostile inputs: the accumulated name may not exceed 254 flat octets
// (RFC 1035 §3.1), and the pointer chase may not exceed the message length
// — with the strictly-backward rule each hop lands on a fresh earlier
// offset, so a longer chain is provably a loop.
Result<Name> read_name(std::span<const std::uint8_t> data, std::size_t& pos,
                       bool allow_pointers) {
  constexpr std::size_t kMaxFlatLen = 254;
  std::string flat;
  std::size_t cursor = pos;
  bool jumped = false;
  std::size_t end_pos = pos;  // cursor position after the first encoding
  std::size_t hops = 0;
  const std::size_t max_hops = data.size();

  while (true) {
    if (cursor >= data.size()) return Error{"truncated name"};
    std::uint8_t len = data[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (!allow_pointers) return Error{"compression pointer not allowed"};
      if (cursor + 1 >= data.size()) return Error{"truncated pointer"};
      std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | data[cursor + 1];
      if (!jumped) end_pos = cursor + 2;
      jumped = true;
      if (++hops > max_hops) return Error{"compression pointer loop"};
      if (target >= cursor) {
        // Forward pointers are invalid and a common loop vector.
        return Error{"forward compression pointer"};
      }
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) return Error{"reserved label type"};
    if (len == 0) {
      if (!jumped) end_pos = cursor + 1;
      break;
    }
    if (cursor + 1 + len > data.size()) return Error{"truncated label"};
    if (flat.size() + 1 + len > kMaxFlatLen) {
      return Error{"name exceeds 255 octets"};
    }
    flat.append(reinterpret_cast<const char*>(data.data()) + cursor, 1 + len);
    cursor += 1 + len;
  }

  auto name = Name::from_flat(std::move(flat));
  if (!name) return Error{name.error()};
  pos = end_pos;
  return std::move(name).take();
}

}  // namespace

Result<Name> WireReader::name() { return read_name(data_, pos_, true); }

Result<Name> WireReader::name_uncompressed() {
  return read_name(data_, pos_, false);
}

}  // namespace httpsrr::dns
