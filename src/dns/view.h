#pragma once

// MessageView / RecordView — a non-owning lazy decoder over one DNS
// message's wire bytes.
//
// MessageView::parse reads the header and walks the sections once, indexing
// each question and record (owner offset, type, class, TTL, RDATA span)
// without materializing names or RDATA.  Callers then pull out exactly what
// they need: the zero-alloc typed accessors (a_addr, aaaa_addr,
// name_target) cover the response hot path, rdata()/materialize() decode a
// single record on demand, and to_message() produces the fully owned
// dns::Message (Message::decode delegates here).
//
// The record index lives inline in the view for typical response sizes, so
// steady-state parsing never touches the heap; only messages with many
// records spill to an overflow vector.
//
// Lifetime rule: a MessageView and every RecordView/QuestionView obtained
// from it borrow the wire buffer passed to parse().  None of them may
// outlive that buffer, and RecordView/QuestionView must not outlive (or be
// used across a move of) the MessageView they came from.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.h"
#include "dns/rdata.h"
#include "dns/rr.h"
#include "dns/types.h"
#include "net/ip.h"
#include "util/result.h"

namespace httpsrr::dns {

namespace detail {

// Inline-first index storage: elements live in the fixed array until it
// fills, then everything moves to a heap vector.  No iterator or reference
// stability is promised across push_back; reads after parsing are stable.
template <typename T, std::size_t N>
class SmallIndex {
 public:
  void push_back(const T& v) {
    if (overflow_.empty()) {
      if (size_ < N) {
        inline_[size_++] = v;
        return;
      }
      overflow_.reserve(2 * N);
      overflow_.assign(inline_.begin(), inline_.end());
    }
    overflow_.push_back(v);
    ++size_;
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return overflow_.empty() ? inline_[i] : overflow_[i];
  }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
  std::array<T, N> inline_{};
  std::vector<T> overflow_;
};

}  // namespace detail

class MessageView;

// One indexed resource record.  All accessors re-read the wire lazily;
// names inside RDATA may be compression pointers into the whole message,
// which is why every accessor keeps the full buffer in scope.
class RecordView {
 public:
  [[nodiscard]] RrType type() const;
  [[nodiscard]] RrClass klass() const;
  [[nodiscard]] std::uint32_t ttl() const;

  // Owner name, materialized (SSO keeps short names heap-free).
  [[nodiscard]] util::Result<Name> owner() const;

  // The raw RDATA octets.  Beware: name fields inside may contain
  // compression pointers that only resolve against the full message.
  [[nodiscard]] std::span<const std::uint8_t> rdata_wire() const;

  // Decodes the RDATA into its typed variant (allocates as the type needs).
  [[nodiscard]] util::Result<Rdata> rdata() const;

  // Full owned record: owner + typed RDATA.
  [[nodiscard]] util::Result<Rr> materialize() const;

  // Zero-alloc typed accessors for the response hot path.  Each returns
  // nullopt/error unless the record is of the matching type and well-formed.
  [[nodiscard]] std::optional<net::Ipv4Addr> a_addr() const;
  [[nodiscard]] std::optional<net::Ipv6Addr> aaaa_addr() const;
  // Target name of a CNAME/DNAME/NS/PTR record.
  [[nodiscard]] util::Result<Name> name_target() const;

  // Zero-alloc wire-name comparisons (case-insensitive, compression
  // pointers resolved in place).  Malformed names compare unequal.
  [[nodiscard]] bool owner_equals(const Name& n) const;
  // True when this record's owner equals the target name in `other`'s
  // RDATA (the referral glue test: A/AAAA owner vs NS nsdname).  `other`
  // must carry a name-valued RDATA (CNAME/DNAME/NS/PTR).
  [[nodiscard]] bool owner_equals_target_of(const RecordView& other) const;

 private:
  friend class MessageView;
  struct Ref {
    std::uint32_t owner_off = 0;
    std::uint32_t rdata_off = 0;
    std::uint32_t ttl = 0;
    std::uint16_t rdata_len = 0;
    std::uint16_t type = 0;
    std::uint16_t klass = 0;
  };
  RecordView(const MessageView* msg, const Ref* ref) : msg_(msg), ref_(ref) {}

  const MessageView* msg_;
  const Ref* ref_;
};

class QuestionView {
 public:
  [[nodiscard]] util::Result<Name> qname() const;
  [[nodiscard]] RrType qtype() const { return static_cast<RrType>(ref_->qtype); }
  [[nodiscard]] RrClass qclass() const {
    return static_cast<RrClass>(ref_->qclass);
  }

 private:
  friend class MessageView;
  struct Ref {
    std::uint32_t off = 0;
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
  };
  QuestionView(const MessageView* msg, const Ref* ref) : msg_(msg), ref_(ref) {}

  const MessageView* msg_;
  const Ref* ref_;
};

class MessageView {
 public:
  // Indexes the message structure (header, section cursors, RDATA bounds).
  // Name *content* is validated lazily by the accessors — a structurally
  // sound message with a hostile compression chain parses here and fails
  // when the poisoned name is materialized (to_message rejects it, exactly
  // like the eager decoder did).
  static util::Result<MessageView> parse(std::span<const std::uint8_t> wire);

  [[nodiscard]] const Header& header() const { return header_; }
  [[nodiscard]] const std::optional<Edns>& edns() const { return edns_; }
  [[nodiscard]] std::span<const std::uint8_t> wire() const { return wire_; }

  // The 12-bit RCODE: header low nibble combined with the OPT TTL's upper
  // 8 bits (zero without EDNS).  Returned as the raw value, not Rcode —
  // extended values have no enum name.
  [[nodiscard]] std::uint16_t extended_rcode() const {
    const std::uint16_t hi = edns_ ? edns_->extended_rcode : 0;
    return static_cast<std::uint16_t>((hi << 4) |
                                      static_cast<std::uint8_t>(header_.rcode));
  }

  // Raw RDATA of the lifted OPT pseudo-RR — the EDNS option sequence
  // (empty span when there is no OPT or it carried no options).  Feed to
  // dns::parse_scan_meta.
  [[nodiscard]] std::span<const std::uint8_t> opt_rdata() const {
    return wire_.subspan(opt_rdata_off_, opt_rdata_len_);
  }

  // Octets past the last indexed record.  A well-formed message has none;
  // strict readers (the resolver) reject replies with trailing garbage.
  [[nodiscard]] std::size_t trailing_bytes() const {
    return wire_.size() - parsed_size_;
  }

  [[nodiscard]] std::size_t question_count() const { return questions_.size(); }
  [[nodiscard]] std::size_t answer_count() const { return an_; }
  [[nodiscard]] std::size_t authority_count() const { return ns_; }
  [[nodiscard]] std::size_t additional_count() const {
    return records_.size() - an_ - ns_;
  }

  [[nodiscard]] QuestionView question(std::size_t i) const {
    return QuestionView(this, &questions_[i]);
  }
  [[nodiscard]] RecordView answer(std::size_t i) const {
    return RecordView(this, &records_[i]);
  }
  [[nodiscard]] RecordView authority(std::size_t i) const {
    return RecordView(this, &records_[an_ + i]);
  }
  [[nodiscard]] RecordView additional(std::size_t i) const {
    return RecordView(this, &records_[an_ + ns_ + i]);
  }

  // Materializes the whole message (every name and RDATA validated).
  // `include_questions = false` skips the question section (no qname
  // allocation) for callers that overwrite it with their own copy anyway —
  // the authoritative personalize path echoes the query's spelling.
  [[nodiscard]] util::Result<Message> to_message(
      bool include_questions = true) const;

 private:
  friend class RecordView;
  friend class QuestionView;

  // Typical responses: one question, a handful of records per message
  // (answer + RRSIG + referral NS/glue + OPT).  Sized so the daily scan's
  // entire decode path stays inside the view object.
  static constexpr std::size_t kInlineQuestions = 2;
  static constexpr std::size_t kInlineRecords = 16;

  std::span<const std::uint8_t> wire_;
  Header header_;
  std::optional<Edns> edns_;
  std::uint32_t opt_rdata_off_ = 0;  // lifted OPT RDATA bounds (0/0 if none)
  std::uint16_t opt_rdata_len_ = 0;
  std::size_t parsed_size_ = 0;  // wire offset just past the last record
  std::size_t an_ = 0;  // indexed answer count
  std::size_t ns_ = 0;  // indexed authority count
  detail::SmallIndex<QuestionView::Ref, kInlineQuestions> questions_;
  detail::SmallIndex<RecordView::Ref, kInlineRecords> records_;
};

}  // namespace httpsrr::dns
