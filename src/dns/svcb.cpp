#include "dns/svcb.h"

#include <algorithm>
#include <cctype>
#include <span>

#include "util/base64.h"
#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

std::string svc_param_key_to_string(std::uint16_t key) {
  switch (static_cast<SvcParamKey>(key)) {
    case SvcParamKey::mandatory: return "mandatory";
    case SvcParamKey::alpn: return "alpn";
    case SvcParamKey::no_default_alpn: return "no-default-alpn";
    case SvcParamKey::port: return "port";
    case SvcParamKey::ipv4hint: return "ipv4hint";
    case SvcParamKey::ech: return "ech";
    case SvcParamKey::ipv6hint: return "ipv6hint";
  }
  return util::format("key%u", key);
}

Result<std::uint16_t> svc_param_key_from_string(std::string_view s) {
  static constexpr std::pair<std::string_view, SvcParamKey> kNames[] = {
      {"mandatory", SvcParamKey::mandatory},
      {"alpn", SvcParamKey::alpn},
      {"no-default-alpn", SvcParamKey::no_default_alpn},
      {"port", SvcParamKey::port},
      {"ipv4hint", SvcParamKey::ipv4hint},
      {"ech", SvcParamKey::ech},
      {"ipv6hint", SvcParamKey::ipv6hint},
  };
  for (const auto& [name, key] : kNames) {
    if (s == name) return static_cast<std::uint16_t>(key);
  }
  if (util::starts_with(s, "key")) {
    std::uint64_t v = 0;
    if (util::parse_u64(s.substr(3), v, 65535)) {
      return static_cast<std::uint16_t>(v);
    }
  }
  return Error{"unknown SvcParamKey: " + std::string(s)};
}

// ---------------------------------------------------------------- setters

void SvcParams::set_mandatory(std::vector<std::uint16_t> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  WireWriter w;
  for (auto k : keys) w.u16(k);
  params_[static_cast<std::uint16_t>(SvcParamKey::mandatory)] = std::move(w).take();
}

void SvcParams::set_alpn(const std::vector<std::string>& protocols) {
  WireWriter w;
  for (const auto& p : protocols) {
    w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(p.size(), 255)));
    w.raw_string(std::string_view(p).substr(0, 255));
  }
  params_[static_cast<std::uint16_t>(SvcParamKey::alpn)] = std::move(w).take();
}

void SvcParams::set_no_default_alpn() {
  params_[static_cast<std::uint16_t>(SvcParamKey::no_default_alpn)] = {};
}

void SvcParams::set_port(std::uint16_t port) {
  WireWriter w;
  w.u16(port);
  params_[static_cast<std::uint16_t>(SvcParamKey::port)] = std::move(w).take();
}

void SvcParams::set_ipv4hint(const std::vector<net::Ipv4Addr>& addrs) {
  WireWriter w;
  for (const auto& a : addrs) w.u32(a.bits());
  params_[static_cast<std::uint16_t>(SvcParamKey::ipv4hint)] = std::move(w).take();
}

void SvcParams::set_ipv6hint(const std::vector<net::Ipv6Addr>& addrs) {
  WireWriter w;
  for (const auto& a : addrs) {
    w.bytes(std::span<const std::uint8_t>(a.bytes().data(), 16));
  }
  params_[static_cast<std::uint16_t>(SvcParamKey::ipv6hint)] = std::move(w).take();
}

void SvcParams::set_ech(Bytes config_list) {
  params_[static_cast<std::uint16_t>(SvcParamKey::ech)] = std::move(config_list);
}

void SvcParams::set_raw(std::uint16_t key, Bytes value) {
  params_[key] = std::move(value);
}

void SvcParams::remove(std::uint16_t key) { params_.erase(key); }

// ---------------------------------------------------------------- getters

bool SvcParams::has(std::uint16_t key) const { return params_.contains(key); }

const Bytes* SvcParams::raw(std::uint16_t key) const {
  auto it = params_.find(key);
  return it == params_.end() ? nullptr : &it->second;
}

std::optional<std::vector<std::uint16_t>> SvcParams::mandatory() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::mandatory));
  if (!v) return std::nullopt;
  std::vector<std::uint16_t> keys;
  if (v->size() % 2 != 0) return keys;  // malformed: surfaced by validate()
  for (std::size_t i = 0; i + 1 < v->size(); i += 2) {
    keys.push_back(static_cast<std::uint16_t>(((*v)[i] << 8) | (*v)[i + 1]));
  }
  return keys;
}

std::optional<std::vector<std::string>> SvcParams::alpn() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::alpn));
  if (!v) return std::nullopt;
  std::vector<std::string> protocols;
  std::size_t i = 0;
  while (i < v->size()) {
    std::size_t len = (*v)[i];
    if (i + 1 + len > v->size()) break;  // malformed tail ignored here
    protocols.emplace_back(reinterpret_cast<const char*>(v->data()) + i + 1, len);
    i += 1 + len;
  }
  return protocols;
}

bool SvcParams::no_default_alpn() const {
  return has(SvcParamKey::no_default_alpn);
}

std::optional<std::uint16_t> SvcParams::port() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::port));
  if (!v || v->size() != 2) return std::nullopt;
  return static_cast<std::uint16_t>(((*v)[0] << 8) | (*v)[1]);
}

std::optional<std::vector<net::Ipv4Addr>> SvcParams::ipv4hint() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::ipv4hint));
  if (!v) return std::nullopt;
  std::vector<net::Ipv4Addr> addrs;
  for (std::size_t i = 0; i + 4 <= v->size(); i += 4) {
    std::uint32_t bits = (static_cast<std::uint32_t>((*v)[i]) << 24) |
                         (static_cast<std::uint32_t>((*v)[i + 1]) << 16) |
                         (static_cast<std::uint32_t>((*v)[i + 2]) << 8) |
                         static_cast<std::uint32_t>((*v)[i + 3]);
    addrs.emplace_back(bits);
  }
  return addrs;
}

std::optional<std::vector<net::Ipv6Addr>> SvcParams::ipv6hint() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::ipv6hint));
  if (!v) return std::nullopt;
  std::vector<net::Ipv6Addr> addrs;
  for (std::size_t i = 0; i + 16 <= v->size(); i += 16) {
    std::array<std::uint8_t, 16> bytes;
    std::copy_n(v->begin() + static_cast<std::ptrdiff_t>(i), 16, bytes.begin());
    addrs.emplace_back(bytes);
  }
  return addrs;
}

std::optional<Bytes> SvcParams::ech() const {
  const Bytes* v = raw(static_cast<std::uint16_t>(SvcParamKey::ech));
  if (!v) return std::nullopt;
  return *v;
}

// ------------------------------------------------------------------ wire

void SvcParams::encode(WireWriter& w) const {
  // std::map iteration is ascending by key — exactly the canonical order.
  for (const auto& [key, value] : params_) {
    w.u16(key);
    w.u16(static_cast<std::uint16_t>(value.size()));
    w.bytes(value);
  }
}

Result<SvcParams> SvcParams::decode(WireReader& r, std::size_t end) {
  SvcParams out;
  int last_key = -1;
  while (r.pos() < end) {
    auto key = r.u16();
    if (!key) return Error{key.error()};
    if (static_cast<int>(*key) <= last_key) {
      return Error{"SvcParams keys not in strictly ascending order"};
    }
    last_key = *key;
    auto len = r.u16();
    if (!len) return Error{len.error()};
    if (r.pos() + *len > end) return Error{"SvcParam value overruns RDATA"};
    auto value = r.bytes(*len);
    if (!value) return Error{value.error()};
    out.params_.emplace(*key, std::move(*value));
  }
  if (r.pos() != end) return Error{"SvcParams misaligned with RDATA end"};
  return out;
}

// --------------------------------------------------------- presentation

namespace {

// Escapes a value for presentation output: wraps in quotes when it contains
// whitespace; backslash-escapes commas inside list items.
std::string escape_list_item(std::string_view item) {
  std::string out;
  for (char c : item) {
    if (c == ',' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Extracts the next whitespace-delimited token of `text` starting at `pos`
// as a view into it; false once the input is exhausted.
bool next_token(std::string_view text, std::size_t& pos, std::string_view& tok) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos >= text.size()) return false;
  std::size_t start = pos;
  while (pos < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  tok = text.substr(start, pos - start);
  return true;
}

// Walks the items of a comma-separated presentation value, splitting on
// unescaped commas.  Escape-free items (the overwhelmingly common case) are
// handed to `fn` as views into `value`; an item containing backslash
// escapes is resolved into `scratch` first.  `fn` returns false to abort,
// and the abort is propagated.
template <typename Fn>
bool for_each_list_item(std::string_view value, std::string& scratch, Fn&& fn) {
  std::size_t start = 0;
  while (true) {
    bool has_escape = false;
    std::size_t i = start;
    while (i < value.size() && value[i] != ',') {
      if (value[i] == '\\' && i + 1 < value.size()) {
        has_escape = true;
        ++i;
      }
      ++i;
    }
    std::string_view item = value.substr(start, i - start);
    if (has_escape) {
      scratch.clear();
      for (std::size_t j = 0; j < item.size(); ++j) {
        if (item[j] == '\\' && j + 1 < item.size()) ++j;
        scratch.push_back(item[j]);
      }
      item = scratch;
    }
    if (!fn(item)) return false;
    if (i >= value.size()) return true;
    start = i + 1;
  }
}

}  // namespace

std::string SvcParams::to_presentation() const {
  std::vector<std::string> tokens;
  for (const auto& [key, value] : params_) {
    std::string name = svc_param_key_to_string(key);
    switch (static_cast<SvcParamKey>(key)) {
      case SvcParamKey::mandatory: {
        auto keys = mandatory().value_or(std::vector<std::uint16_t>{});
        std::vector<std::string> names;
        names.reserve(keys.size());
        for (auto k : keys) names.push_back(svc_param_key_to_string(k));
        tokens.push_back(name + "=" + util::join(names, ","));
        break;
      }
      case SvcParamKey::alpn: {
        auto protocols = alpn().value_or(std::vector<std::string>{});
        std::vector<std::string> escaped;
        escaped.reserve(protocols.size());
        for (const auto& p : protocols) escaped.push_back(escape_list_item(p));
        tokens.push_back(name + "=" + util::join(escaped, ","));
        break;
      }
      case SvcParamKey::no_default_alpn:
        tokens.push_back(name);
        break;
      case SvcParamKey::port:
        tokens.push_back(name + "=" + util::format("%u", port().value_or(0)));
        break;
      case SvcParamKey::ipv4hint: {
        auto addrs = ipv4hint().value_or(std::vector<net::Ipv4Addr>{});
        std::vector<std::string> strs;
        strs.reserve(addrs.size());
        for (const auto& a : addrs) strs.push_back(a.to_string());
        tokens.push_back(name + "=" + util::join(strs, ","));
        break;
      }
      case SvcParamKey::ipv6hint: {
        auto addrs = ipv6hint().value_or(std::vector<net::Ipv6Addr>{});
        std::vector<std::string> strs;
        strs.reserve(addrs.size());
        for (const auto& a : addrs) strs.push_back(a.to_string());
        tokens.push_back(name + "=" + util::join(strs, ","));
        break;
      }
      case SvcParamKey::ech:
        // RFC 9460 presents ech values in base64.
        tokens.push_back(name + "=" + util::base64_encode(value));
        break;
      default:
        // Unknown keys: hex-encoded opaque value.
        if (value.empty()) {
          tokens.push_back(name);
        } else {
          tokens.push_back(name + "=" + util::hex_encode(value));
        }
        break;
    }
  }
  return util::join(tokens, " ");
}

// --------------------------------------------------------------- SvcbRdata

Name SvcbRdata::effective_target(const Name& owner) const {
  return target.is_root() ? owner : target;
}

void SvcbRdata::encode(WireWriter& w) const {
  w.u16(priority);
  w.name(target);  // never compressed in RDATA (RFC 9460 §2.2)
  params.encode(w);
}

Result<SvcbRdata> SvcbRdata::decode(WireReader& r, std::size_t rdata_len) {
  std::size_t end = r.pos() + rdata_len;
  SvcbRdata out;
  auto priority = r.u16();
  if (!priority) return Error{priority.error()};
  out.priority = *priority;
  auto target = r.name_uncompressed();
  if (!target) return Error{target.error()};
  out.target = std::move(*target);
  auto params = SvcParams::decode(r, end);
  if (!params) return Error{params.error()};
  out.params = std::move(*params);
  return out;
}

std::string SvcbRdata::to_presentation() const {
  std::string out = util::format("%u %s", priority, target.to_string().c_str());
  std::string p = params.to_presentation();
  if (!p.empty()) {
    out.push_back(' ');
    out += p;
  }
  return out;
}

Result<SvcbRdata> SvcbRdata::parse_presentation(std::string_view text) {
  // A single pass over the text: every token and list item is scanned as a
  // view into the input, so a typical record parses without intermediate
  // string vectors.  Only escape resolution (rare) and the final wire
  // values allocate.
  std::size_t pos = 0;
  std::string_view tok;

  if (!next_token(text, pos, tok)) {
    return Error{"SVCB rdata needs priority and target"};
  }
  SvcbRdata out;
  std::uint64_t priority = 0;
  if (!util::parse_u64(tok, priority, 65535)) {
    return Error{"bad SvcPriority"};
  }
  out.priority = static_cast<std::uint16_t>(priority);

  if (!next_token(text, pos, tok)) {
    return Error{"SVCB rdata needs priority and target"};
  }
  auto target = Name::parse(tok);
  if (!target) return Error{"bad TargetName: " + target.error()};
  out.target = std::move(*target);

  std::string scratch;  // escape-resolution buffer, reused across items
  WireWriter w;         // wire-value staging buffer, reused across params
  w.reserve(64);
  // Snapshots the staged bytes as an exact-size value (the writer keeps
  // its capacity for the next param).
  auto staged = [&w] { return Bytes(w.data().begin(), w.data().end()); };
  while (next_token(text, pos, tok)) {
    std::string_view key_str = tok;
    std::string_view value;
    bool has_value = false;
    if (std::size_t eq = tok.find('='); eq != std::string_view::npos) {
      key_str = tok.substr(0, eq);
      value = tok.substr(eq + 1);
      has_value = true;
      // Strip one level of quoting.
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
    }

    auto key = svc_param_key_from_string(key_str);
    if (!key) return Error{key.error()};
    if (out.params.has(*key)) {
      return Error{"duplicate SvcParamKey: " + std::string(key_str)};
    }

    switch (static_cast<SvcParamKey>(*key)) {
      case SvcParamKey::mandatory: {
        if (!has_value || value.empty()) return Error{"mandatory needs a value"};
        std::vector<std::uint16_t> keys;
        Error err;
        bool ok = for_each_list_item(value, scratch, [&](std::string_view item) {
          auto k = svc_param_key_from_string(item);
          if (!k) {
            err = Error{k.error()};
            return false;
          }
          keys.push_back(*k);
          return true;
        });
        if (!ok) return err;
        out.params.set_mandatory(std::move(keys));
        break;
      }
      case SvcParamKey::alpn: {
        if (!has_value || value.empty()) return Error{"alpn needs a value"};
        // Build the wire image directly: length-prefixed protocol ids
        // (what set_alpn would produce from a string vector).
        w.clear();
        (void)for_each_list_item(value, scratch, [&](std::string_view item) {
          item = item.substr(0, 255);
          w.u8(static_cast<std::uint8_t>(item.size()));
          w.raw_string(item);
          return true;
        });
        out.params.set_raw(static_cast<std::uint16_t>(SvcParamKey::alpn),
                           staged());
        break;
      }
      case SvcParamKey::no_default_alpn: {
        if (has_value) return Error{"no-default-alpn takes no value"};
        out.params.set_no_default_alpn();
        break;
      }
      case SvcParamKey::port: {
        std::uint64_t port = 0;
        if (!has_value || !util::parse_u64(value, port, 65535)) {
          return Error{"bad port value"};
        }
        out.params.set_port(static_cast<std::uint16_t>(port));
        break;
      }
      case SvcParamKey::ipv4hint: {
        if (!has_value || value.empty()) return Error{"ipv4hint needs a value"};
        w.clear();
        Error err;
        bool ok = for_each_list_item(value, scratch, [&](std::string_view item) {
          auto a = net::Ipv4Addr::parse(item);
          if (!a) {
            err = Error{"bad ipv4hint: " + a.error()};
            return false;
          }
          w.u32(a->bits());
          return true;
        });
        if (!ok) return err;
        out.params.set_raw(static_cast<std::uint16_t>(SvcParamKey::ipv4hint),
                           staged());
        break;
      }
      case SvcParamKey::ipv6hint: {
        if (!has_value || value.empty()) return Error{"ipv6hint needs a value"};
        w.clear();
        Error err;
        bool ok = for_each_list_item(value, scratch, [&](std::string_view item) {
          auto a = net::Ipv6Addr::parse(item);
          if (!a) {
            err = Error{"bad ipv6hint: " + a.error()};
            return false;
          }
          w.bytes(std::span<const std::uint8_t>(a->bytes().data(), 16));
          return true;
        });
        if (!ok) return err;
        out.params.set_raw(static_cast<std::uint16_t>(SvcParamKey::ipv6hint),
                           staged());
        break;
      }
      case SvcParamKey::ech: {
        if (!has_value || value.empty()) return Error{"ech needs a value"};
        // Zone files use base64 (RFC 9460); hex is accepted as a
        // convenience for hand-written test fixtures.
        Bytes blob;
        if (!util::base64_decode(value, blob) &&
            !util::hex_decode(value, blob)) {
          return Error{"ech value must be base64 (or hex)"};
        }
        out.params.set_ech(std::move(blob));
        break;
      }
      default: {
        Bytes blob;
        if (has_value && !value.empty()) {
          if (!util::hex_decode(value, blob)) {
            // Treat as raw ASCII when not hex.
            blob.assign(value.begin(), value.end());
          }
        }
        out.params.set_raw(*key, std::move(blob));
        break;
      }
    }
  }
  return out;
}

Result<void> SvcbRdata::validate() const {
  if (is_alias_mode()) {
    if (!params.empty()) {
      return Error{"AliasMode record must not carry SvcParams"};
    }
    return {};
  }
  if (auto mandatory = params.mandatory()) {
    int prev = -1;
    for (auto key : *mandatory) {
      if (key == static_cast<std::uint16_t>(SvcParamKey::mandatory)) {
        return Error{"mandatory must not list itself"};
      }
      if (static_cast<int>(key) <= prev) {
        return Error{"mandatory keys must be sorted and unique"};
      }
      prev = key;
      if (!params.has(key)) {
        return Error{"mandatory references absent key " +
                     svc_param_key_to_string(key)};
      }
    }
    const Bytes* raw = params.raw(static_cast<std::uint16_t>(SvcParamKey::mandatory));
    if (raw->empty() || raw->size() % 2 != 0) {
      return Error{"malformed mandatory value"};
    }
  }
  if (params.no_default_alpn() && !params.has(SvcParamKey::alpn)) {
    return Error{"no-default-alpn requires alpn"};
  }
  if (const Bytes* v = params.raw(static_cast<std::uint16_t>(SvcParamKey::port));
      v && v->size() != 2) {
    return Error{"port value must be 2 octets"};
  }
  if (const Bytes* v = params.raw(static_cast<std::uint16_t>(SvcParamKey::ipv4hint));
      v && (v->empty() || v->size() % 4 != 0)) {
    return Error{"ipv4hint length must be a positive multiple of 4"};
  }
  if (const Bytes* v = params.raw(static_cast<std::uint16_t>(SvcParamKey::ipv6hint));
      v && (v->empty() || v->size() % 16 != 0)) {
    return Error{"ipv6hint length must be a positive multiple of 16"};
  }
  if (auto protocols = params.alpn(); protocols && protocols->empty()) {
    return Error{"alpn must list at least one protocol"};
  }
  return {};
}

}  // namespace httpsrr::dns
