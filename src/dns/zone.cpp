#include "dns/zone.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

Result<void> Zone::add(Rr rr, bool allow_cname_conflicts) {
  if (!rr.owner.is_subdomain_of(origin_)) {
    return Error{"owner " + rr.owner.to_string() + " not within zone " +
                 origin_.to_string()};
  }
  auto& types = nodes_[rr.owner];
  if (!allow_cname_conflicts) {
    bool adding_cname = rr.type == RrType::CNAME;
    bool has_cname = types.contains(RrType::CNAME);
    bool has_other = std::any_of(types.begin(), types.end(), [](const auto& kv) {
      return kv.first != RrType::CNAME && kv.first != RrType::RRSIG;
    });
    if ((adding_cname && has_other) || (!adding_cname && has_cname &&
                                        rr.type != RrType::RRSIG)) {
      return Error{"CNAME cannot coexist with other data at " +
                   rr.owner.to_string()};
    }
  }
  types[rr.type].push_back(std::move(rr));
  return {};
}

std::size_t Zone::remove(const Name& owner, RrType type) {
  auto it = nodes_.find(owner);
  if (it == nodes_.end()) return 0;
  auto tit = it->second.find(type);
  if (tit == it->second.end()) return 0;
  std::size_t n = tit->second.size();
  it->second.erase(tit);
  if (it->second.empty()) nodes_.erase(it);
  return n;
}

void Zone::clear() { nodes_.clear(); }

LookupResult Zone::lookup(const Name& qname, RrType qtype) const {
  LookupResult result;
  if (!qname.is_subdomain_of(origin_)) {
    result.status = LookupStatus::not_in_zone;
    return result;
  }

  auto it = nodes_.find(qname);
  if (it != nodes_.end()) {
    const auto& types = it->second;
    if (auto tit = types.find(qtype); tit != types.end()) {
      result.status = LookupStatus::success;
      result.records = tit->second;
      // Attach covering RRSIGs (the scanner collects them with the answer).
      if (auto sit = types.find(RrType::RRSIG); sit != types.end()) {
        for (const auto& sig : sit->second) {
          const auto* rrsig = std::get_if<RrsigRdata>(&sig.rdata);
          if (rrsig && rrsig->type_covered == qtype) {
            result.records.push_back(sig);
          }
        }
      }
      return result;
    }
    if (qtype != RrType::CNAME) {
      if (auto cit = types.find(RrType::CNAME); cit != types.end()) {
        result.status = LookupStatus::cname;
        result.records = cit->second;
        return result;
      }
    }
    result.status = LookupStatus::nodata;
    return result;
  }

  // DNAME: look for a DNAME at any ancestor between qname and origin.
  for (Name ancestor = qname.parent();; ancestor = ancestor.parent()) {
    if (auto ait = nodes_.find(ancestor); ait != nodes_.end()) {
      if (auto dit = ait->second.find(RrType::DNAME); dit != ait->second.end()) {
        const auto& dname_rr = dit->second.front();
        const auto& dname = std::get<DnameRdata>(dname_rr.rdata);
        // Synthesize qname -> (qname - ancestor) + dname.target.
        std::vector<std::string> labels = qname.labels();
        std::size_t strip = ancestor.label_count();
        labels.resize(labels.size() - strip);
        std::vector<std::string> target_labels = labels;
        for (const auto& l : dname.target.labels()) target_labels.push_back(l);
        if (auto synth_name = Name::from_labels(std::move(target_labels))) {
          result.status = LookupStatus::dname;
          result.records = dit->second;
          result.synthesized.push_back(
              make_cname(qname, dname_rr.ttl, std::move(*synth_name)));
          return result;
        }
      }
    }
    if (ancestor == origin_ || ancestor.is_root()) break;
  }

  // Empty non-terminal check: qname exists implicitly if any stored owner
  // is beneath it.  Canonical ordering places subdomains of qname directly
  // after qname, so a single lower_bound suffices.
  auto next = nodes_.lower_bound(qname);
  if (next != nodes_.end() && next->first.is_subdomain_of(qname)) {
    result.status = LookupStatus::nodata;
    return result;
  }
  result.status = LookupStatus::nxdomain;
  return result;
}

std::optional<Rr> Zone::nsec_for(const Name& qname, std::uint32_t ttl) const {
  if (nodes_.empty() || !qname.is_subdomain_of(origin_)) return std::nullopt;

  auto successor_of = [this](std::map<Name, std::map<RrType, std::vector<Rr>>>::
                                 const_iterator it) -> const Name& {
    auto next = std::next(it);
    // The chain wraps from the last owner back to the first (the apex in a
    // well-formed zone).
    return next == nodes_.end() ? nodes_.begin()->first : next->first;
  };

  auto exact = nodes_.find(qname);
  if (exact != nodes_.end()) {
    // NODATA proof: NSEC at qname enumerating the types that do exist.
    NsecRdata nsec;
    nsec.next = successor_of(exact);
    for (const auto& [type, records] : exact->second) {
      (void)records;
      nsec.types.push_back(type);
    }
    nsec.types.push_back(RrType::NSEC);
    nsec.types.push_back(RrType::RRSIG);
    std::sort(nsec.types.begin(), nsec.types.end());
    nsec.types.erase(std::unique(nsec.types.begin(), nsec.types.end()),
                     nsec.types.end());
    return Rr{qname, RrType::NSEC, RrClass::IN, ttl, std::move(nsec)};
  }

  // NXDOMAIN proof: the gap (predecessor, successor) covering qname.
  auto after = nodes_.lower_bound(qname);
  auto owner_it = after == nodes_.begin() ? std::prev(nodes_.end())
                                          : std::prev(after);
  NsecRdata nsec;
  nsec.next = after == nodes_.end() ? nodes_.begin()->first : after->first;
  for (const auto& [type, records] : owner_it->second) {
    (void)records;
    nsec.types.push_back(type);
  }
  nsec.types.push_back(RrType::NSEC);
  nsec.types.push_back(RrType::RRSIG);
  std::sort(nsec.types.begin(), nsec.types.end());
  nsec.types.erase(std::unique(nsec.types.begin(), nsec.types.end()),
                   nsec.types.end());
  return Rr{owner_it->first, RrType::NSEC, RrClass::IN, ttl, std::move(nsec)};
}

std::vector<Rr> Zone::records_at(const Name& owner) const {
  std::vector<Rr> out;
  auto it = nodes_.find(owner);
  if (it == nodes_.end()) return out;
  for (const auto& [type, records] : it->second) {
    (void)type;
    out.insert(out.end(), records.begin(), records.end());
  }
  return out;
}

std::vector<Rr> Zone::records_at(const Name& owner, RrType type) const {
  auto it = nodes_.find(owner);
  if (it == nodes_.end()) return {};
  auto tit = it->second.find(type);
  if (tit == it->second.end()) return {};
  return tit->second;
}

std::vector<RrSet> Zone::all_rrsets() const {
  std::vector<RrSet> out;
  for (const auto& [owner, types] : nodes_) {
    (void)owner;
    for (const auto& [type, records] : types) {
      (void)type;
      RrSet set;
      for (const auto& rr : records) set.add(rr);
      out.push_back(std::move(set));
    }
  }
  return out;
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [owner, types] : nodes_) {
    (void)owner;
    for (const auto& [type, records] : types) {
      (void)type;
      n += records.size();
    }
  }
  return n;
}

namespace {

// Parses a TTL field: plain seconds or BIND-style unit suffixes
// (e.g. "1h30m", "2d", "1w"). Returns false when `s` is not a TTL.
bool parse_ttl(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint64_t total = 0;
  std::uint64_t current = 0;
  bool any_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > UINT32_MAX) return false;
      any_digit = true;
      continue;
    }
    std::uint64_t unit;
    switch (util::ascii_lower(c)) {
      case 's': unit = 1; break;
      case 'm': unit = 60; break;
      case 'h': unit = 3600; break;
      case 'd': unit = 86400; break;
      case 'w': unit = 604800; break;
      default: return false;
    }
    if (!any_digit) return false;
    total += current * unit;
    current = 0;
    any_digit = false;
    if (total > UINT32_MAX) return false;
  }
  total += current;  // trailing bare number is seconds
  if (total > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(total);
  return true;
}

// Master-file preprocessing: strips comments (respecting quoted strings)
// and joins lines grouped by parentheses (RFC 1035 §5.1), so multi-line
// SOA records parse as one logical line.
std::vector<std::string> logical_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  int paren_depth = 0;
  bool in_quotes = false;

  auto flush = [&]() {
    lines.push_back(current);
    current.clear();
  };

  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '"') {
      in_quotes = !in_quotes;
      current.push_back(c);
    } else if (!in_quotes && c == ';') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    } else if (!in_quotes && c == '(') {
      ++paren_depth;
      current.push_back(' ');
    } else if (!in_quotes && c == ')') {
      if (paren_depth > 0) --paren_depth;
      current.push_back(' ');
    } else if (c == '\n') {
      if (paren_depth > 0) {
        current.push_back(' ');  // continuation inside parentheses
      } else {
        flush();
      }
    } else {
      current.push_back(c);
    }
    ++i;
  }
  flush();
  return lines;
}

}  // namespace

Result<Zone> Zone::parse(const Name& origin, std::string_view text,
                         std::uint32_t default_ttl) {
  Zone zone(origin);
  Name current_origin = origin;
  std::uint32_t ttl = default_ttl;

  std::size_t line_no = 0;
  for (const auto& raw_line : logical_lines(text)) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty()) continue;

    auto tokens = util::split_ws(line);
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2) return Error{"bad $ORIGIN"};
      auto n = Name::parse(tokens[1]);
      if (!n) return Error{"bad $ORIGIN name: " + n.error()};
      current_origin = std::move(*n);
      continue;
    }
    if (tokens[0] == "$TTL") {
      std::uint32_t v = 0;
      if (tokens.size() != 2 || !parse_ttl(tokens[1], v)) {
        return Error{"bad $TTL"};
      }
      ttl = v;
      continue;
    }

    // owner [ttl] [IN] TYPE rdata...
    std::size_t idx = 0;
    std::string owner_text = tokens[idx++];
    Name owner;
    if (owner_text == "@") {
      owner = current_origin;
    } else {
      auto n = Name::parse(owner_text);
      if (!n) return Error{util::format("line %zu: bad owner: ", line_no) + n.error()};
      owner = std::move(*n);
      if (!util::ends_with(owner_text, ".")) {
        // Relative name: append the origin.
        std::vector<std::string> labels = owner.labels();
        for (const auto& l : current_origin.labels()) labels.push_back(l);
        auto abs = Name::from_labels(std::move(labels));
        if (!abs) return Error{util::format("line %zu: name too long", line_no)};
        owner = std::move(*abs);
      }
    }

    std::uint32_t rr_ttl = ttl;
    if (idx < tokens.size()) {
      // A TTL token is numeric or unit-suffixed; but a record-type mnemonic
      // like "A" must not be mistaken for a TTL, so require a digit first.
      std::uint32_t v = 0;
      if (!tokens[idx].empty() && tokens[idx][0] >= '0' &&
          tokens[idx][0] <= '9' && parse_ttl(tokens[idx], v)) {
        rr_ttl = v;
        ++idx;
      }
    }
    if (idx < tokens.size() && util::iequals(tokens[idx], "IN")) ++idx;
    if (idx >= tokens.size()) {
      return Error{util::format("line %zu: missing RR type", line_no)};
    }
    auto type = type_from_string(tokens[idx++]);
    if (!type) return Error{util::format("line %zu: ", line_no) + type.error()};

    std::vector<std::string> rest(tokens.begin() + static_cast<std::ptrdiff_t>(idx),
                                  tokens.end());
    auto rdata = rdata_from_presentation(*type, util::join(rest, " "));
    if (!rdata) return Error{util::format("line %zu: ", line_no) + rdata.error()};

    Rr rr{std::move(owner), *type, RrClass::IN, rr_ttl, std::move(*rdata)};
    // Master files may deliberately model broken setups (apex CNAME);
    // surface genuine placement errors but allow CNAME conflicts.
    if (auto a = zone.add(std::move(rr), /*allow_cname_conflicts=*/true); !a) {
      return Error{util::format("line %zu: ", line_no) + a.error()};
    }
  }
  return zone;
}

std::string Zone::to_text() const {
  std::string out;
  for (const auto& [owner, types] : nodes_) {
    (void)owner;
    for (const auto& [type, records] : types) {
      (void)type;
      for (const auto& rr : records) out += rr.to_string() + "\n";
    }
  }
  return out;
}

}  // namespace httpsrr::dns
