#include "dns/edns.h"

namespace httpsrr::dns {

void append_scan_meta(WireWriter& w, const ScanMeta& meta) {
  std::uint8_t flags = 0;
  if (meta.backup) flags |= kScanMetaFlagBackup;
  if (meta.virtual_time) flags |= kScanMetaFlagTime;
  if (meta.shard) flags |= kScanMetaFlagShard;
  const std::uint16_t payload_len = static_cast<std::uint16_t>(
      2 + (meta.virtual_time ? 8 : 0) + (meta.shard ? 2 : 0));
  w.u16(kScanMetaOptionCode);
  w.u16(payload_len);
  w.u8(kScanMetaVersion);
  w.u8(flags);
  if (meta.virtual_time) {
    const std::uint64_t t = *meta.virtual_time;
    w.u32(static_cast<std::uint32_t>(t >> 32));
    w.u32(static_cast<std::uint32_t>(t & 0xffffffffu));
  }
  if (meta.shard) w.u16(*meta.shard);
}

std::size_t scan_meta_wire_size(const ScanMeta& meta) {
  return 4 + 2 + (meta.virtual_time ? 8 : 0) + (meta.shard ? 2 : 0);
}

ScanMetaStatus parse_scan_meta(std::span<const std::uint8_t> opt_rdata,
                               ScanMeta& out) {
  bool seen = false;
  std::size_t pos = 0;
  while (pos < opt_rdata.size()) {
    // Option header: u16 code, u16 length.  A dangling partial header is
    // malformed no matter whose option it would have been.
    if (pos + 4 > opt_rdata.size()) return ScanMetaStatus::kMalformed;
    const std::uint16_t code =
        static_cast<std::uint16_t>((opt_rdata[pos] << 8) | opt_rdata[pos + 1]);
    const std::uint16_t len = static_cast<std::uint16_t>(
        (opt_rdata[pos + 2] << 8) | opt_rdata[pos + 3]);
    pos += 4;
    if (pos + len > opt_rdata.size()) return ScanMetaStatus::kMalformed;
    const std::span<const std::uint8_t> payload = opt_rdata.subspan(pos, len);
    pos += len;

    if (code != kScanMetaOptionCode) continue;  // foreign option: skip

    if (seen) return ScanMetaStatus::kMalformed;  // duplicated scan-meta
    seen = true;

    if (payload.size() < 2) return ScanMetaStatus::kMalformed;
    if (payload[0] != kScanMetaVersion) return ScanMetaStatus::kMalformed;
    const std::uint8_t flags = payload[1];
    if ((flags & ~kScanMetaKnownFlags) != 0) return ScanMetaStatus::kMalformed;
    const std::size_t want = 2 + ((flags & kScanMetaFlagTime) ? 8 : 0) +
                             ((flags & kScanMetaFlagShard) ? 2 : 0);
    if (payload.size() != want) return ScanMetaStatus::kMalformed;

    ScanMeta meta;
    meta.backup = (flags & kScanMetaFlagBackup) != 0;
    std::size_t at = 2;
    if (flags & kScanMetaFlagTime) {
      std::uint64_t t = 0;
      for (int i = 0; i < 8; ++i) t = (t << 8) | payload[at + i];
      meta.virtual_time = t;
      at += 8;
    }
    if (flags & kScanMetaFlagShard) {
      meta.shard =
          static_cast<std::uint16_t>((payload[at] << 8) | payload[at + 1]);
    }
    out = meta;
  }
  return seen ? ScanMetaStatus::kOk : ScanMetaStatus::kAbsent;
}

}  // namespace httpsrr::dns
