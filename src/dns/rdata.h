#pragma once

// Typed RDATA for every record type the study touches, as a closed variant.
//
// Each alternative carries exactly the RFC-defined fields, encodes/decodes
// itself and round-trips through presentation format.  Unknown types are
// preserved verbatim as OpaqueRdata (RFC 3597).

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/svcb.h"
#include "dns/types.h"
#include "dns/wire.h"
#include "net/ip.h"
#include "util/result.h"

namespace httpsrr::dns {

struct ARdata {
  net::Ipv4Addr address;
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

struct AaaaRdata {
  net::Ipv6Addr address;
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};

struct CnameRdata {
  Name target;
  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

struct DnameRdata {
  Name target;
  friend bool operator==(const DnameRdata&, const DnameRdata&) = default;
};

struct NsRdata {
  Name nsdname;
  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

struct PtrRdata {
  Name target;
  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

struct MxRdata {
  std::uint16_t preference = 0;
  Name exchange;
  friend bool operator==(const MxRdata&, const MxRdata&) = default;
};

struct TxtRdata {
  std::vector<std::string> strings;  // each <= 255 octets on the wire
  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

struct SoaRdata {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

struct DnskeyRdata {
  std::uint16_t flags = 256;     // 256 = ZSK, 257 = KSK (SEP bit)
  std::uint8_t protocol = 3;     // always 3 (RFC 4034)
  std::uint8_t algorithm = 253;  // we use PRIVATEDNS for the simulated signer
  Bytes public_key;
  friend bool operator==(const DnskeyRdata&, const DnskeyRdata&) = default;

  // RFC 4034 Appendix B key tag over the RDATA.
  [[nodiscard]] std::uint16_t key_tag() const;
  [[nodiscard]] bool is_ksk() const { return (flags & 0x0001) != 0; }
};

struct RrsigRdata {
  RrType type_covered = RrType::A;
  std::uint8_t algorithm = 253;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // unix seconds
  std::uint32_t inception = 0;   // unix seconds
  std::uint16_t key_tag = 0;
  Name signer;
  Bytes signature;
  friend bool operator==(const RrsigRdata&, const RrsigRdata&) = default;
};

struct DsRdata {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 253;
  std::uint8_t digest_type = 2;  // SHA-256
  Bytes digest;
  friend bool operator==(const DsRdata&, const DsRdata&) = default;
};

// NSEC (RFC 4034 §4): authenticated denial of existence. `types` is kept
// as a sorted list in memory; the wire codec packs/unpacks the windowed
// type bitmap.
struct NsecRdata {
  Name next;
  std::vector<RrType> types;  // sorted ascending, unique
  friend bool operator==(const NsecRdata&, const NsecRdata&) = default;
};

struct OpaqueRdata {
  Bytes data;
  friend bool operator==(const OpaqueRdata&, const OpaqueRdata&) = default;
};

// HTTPS records share the SvcbRdata structure; RrType distinguishes them.
using Rdata = std::variant<ARdata, AaaaRdata, CnameRdata, DnameRdata, NsRdata,
                           PtrRdata, MxRdata, TxtRdata, SoaRdata, DnskeyRdata,
                           RrsigRdata, DsRdata, NsecRdata, SvcbRdata,
                           OpaqueRdata>;

// Encodes `rdata` (without the RDLENGTH prefix).
void encode_rdata(const Rdata& rdata, WireWriter& w);

// Decodes an RDATA of `type` spanning `rdata_len` octets from `r`.
// Unrecognised types yield OpaqueRdata.
[[nodiscard]] util::Result<Rdata> decode_rdata(RrType type, WireReader& r,
                                               std::size_t rdata_len);

// Zone-file presentation of the RDATA.
[[nodiscard]] std::string rdata_to_presentation(RrType type, const Rdata& rdata);

// Parses zone-file RDATA text for `type`.
[[nodiscard]] util::Result<Rdata> rdata_from_presentation(RrType type,
                                                          std::string_view text);

}  // namespace httpsrr::dns
