#pragma once

// Zone: the authoritative data for one DNS zone, with the lookup semantics
// an authoritative server needs (exact RRset match, CNAME at the owner,
// DNAME subtree redirection, NXDOMAIN vs NODATA distinction, wildcard-free
// — the study never needs wildcards).
//
// Zones also parse from a simple master-file dialect: one record per line,
//   owner [ttl] [IN] TYPE rdata
// with $ORIGIN and relative owner names, '@' for the origin, and ';'
// comments.  This powers the client-side Lab (§5) where experiments are
// written as literal zone snippets exactly like the paper's figures.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"
#include "util/result.h"

namespace httpsrr::dns {

// Outcome kinds of a zone lookup.
enum class LookupStatus : std::uint8_t {
  success,   // RRset present in `records`
  cname,     // owner exists with a CNAME; `records` holds the CNAME RRset
  dname,     // covered by a DNAME; `records` holds the DNAME, `synthesized`
             // holds the synthesized CNAME for the query name
  nodata,    // owner exists but not this type
  nxdomain,  // owner does not exist
  not_in_zone,
};

struct LookupResult {
  LookupStatus status = LookupStatus::nxdomain;
  std::vector<Rr> records;
  std::vector<Rr> synthesized;  // DNAME-synthesized CNAME
};

class Zone {
 public:
  explicit Zone(Name origin) : origin_(std::move(origin)) {}

  [[nodiscard]] const Name& origin() const { return origin_; }

  // Adds a record. Fails if the owner is outside the zone, or on a
  // CNAME-and-other-data conflict at the same owner (RFC 1034 §3.6.2) —
  // except that the conflict can be deliberately allowed to model the
  // misconfigured apex-CNAME servers the paper scans through (§4.1 fn. 3).
  util::Result<void> add(Rr rr, bool allow_cname_conflicts = false);

  // Removes all records of `type` at `owner`. Returns count removed.
  std::size_t remove(const Name& owner, RrType type);
  void clear();

  // Authoritative lookup per RFC 1034 §4.3.2 (restricted to in-zone data).
  [[nodiscard]] LookupResult lookup(const Name& qname, RrType qtype) const;

  // Builds the NSEC record proving the denial of `qname` (RFC 4034 §4):
  // for an existing owner it lists the types present (NODATA proof); for a
  // missing one it spans the canonical-order gap covering qname (NXDOMAIN
  // proof, wrapping through the apex). nullopt for an empty zone or a
  // qname outside it.
  [[nodiscard]] std::optional<Rr> nsec_for(const Name& qname,
                                           std::uint32_t ttl) const;

  // All RRsets at an owner (empty when the name does not exist).
  [[nodiscard]] std::vector<Rr> records_at(const Name& owner) const;
  [[nodiscard]] std::vector<Rr> records_at(const Name& owner, RrType type) const;

  // Iteration for the signer: every (owner, type) RRset in canonical order.
  [[nodiscard]] std::vector<RrSet> all_rrsets() const;

  [[nodiscard]] std::size_t record_count() const;

  // Parses master-file text into a new zone rooted at `origin`.
  static util::Result<Zone> parse(const Name& origin, std::string_view text,
                                  std::uint32_t default_ttl = 300);

  // Serialises the zone back to master-file text (absolute names).
  [[nodiscard]] std::string to_text() const;

 private:
  Name origin_;
  // owner -> type -> records. std::map of Name uses canonical DNS ordering.
  std::map<Name, std::map<RrType, std::vector<Rr>>> nodes_;
};

}  // namespace httpsrr::dns
