#include "dns/rdata.h"

#include <algorithm>

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

std::uint16_t DnskeyRdata::key_tag() const {
  // RFC 4034 Appendix B: ones-complement-style checksum over the RDATA.
  WireWriter w;
  w.u16(flags);
  w.u8(protocol);
  w.u8(algorithm);
  w.bytes(public_key);
  const Bytes& rdata = w.data();

  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < rdata.size(); ++i) {
    acc += (i & 1) ? rdata[i] : static_cast<std::uint32_t>(rdata[i]) << 8;
  }
  acc += (acc >> 16) & 0xffff;
  return static_cast<std::uint16_t>(acc & 0xffff);
}

void encode_rdata(const Rdata& rdata, WireWriter& w) {
  std::visit(
      [&w](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(r.address.bits());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          w.bytes(std::span<const std::uint8_t>(r.address.bytes().data(), 16));
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          w.name(r.target);
        } else if constexpr (std::is_same_v<T, DnameRdata>) {
          w.name(r.target);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          w.name(r.nsdname);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          w.name(r.target);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(r.preference);
          w.name(r.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : r.strings) {
            w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(s.size(), 255)));
            w.raw_string(std::string_view(s).substr(0, 255));
          }
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(r.mname);
          w.name(r.rname);
          w.u32(r.serial);
          w.u32(r.refresh);
          w.u32(r.retry);
          w.u32(r.expire);
          w.u32(r.minimum);
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          w.u16(r.flags);
          w.u8(r.protocol);
          w.u8(r.algorithm);
          w.bytes(r.public_key);
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          w.u16(static_cast<std::uint16_t>(r.type_covered));
          w.u8(r.algorithm);
          w.u8(r.labels);
          w.u32(r.original_ttl);
          w.u32(r.expiration);
          w.u32(r.inception);
          w.u16(r.key_tag);
          w.name(r.signer);
          w.bytes(r.signature);
        } else if constexpr (std::is_same_v<T, DsRdata>) {
          w.u16(r.key_tag);
          w.u8(r.algorithm);
          w.u8(r.digest_type);
          w.bytes(r.digest);
        } else if constexpr (std::is_same_v<T, NsecRdata>) {
          w.name(r.next);
          // Windowed type bitmap (RFC 4034 §4.1.2): one block per 256
          // types, each block emitting only the octets it needs.
          int current_window = -1;
          std::array<std::uint8_t, 32> bitmap{};
          int max_octet = -1;
          auto flush = [&] {
            if (current_window < 0 || max_octet < 0) return;
            w.u8(static_cast<std::uint8_t>(current_window));
            w.u8(static_cast<std::uint8_t>(max_octet + 1));
            for (int i = 0; i <= max_octet; ++i) w.u8(bitmap[static_cast<std::size_t>(i)]);
          };
          for (RrType t : r.types) {
            auto value = static_cast<std::uint16_t>(t);
            int window = value >> 8;
            if (window != current_window) {
              flush();
              current_window = window;
              bitmap.fill(0);
              max_octet = -1;
            }
            int low = value & 0xff;
            bitmap[static_cast<std::size_t>(low >> 3)] |=
                static_cast<std::uint8_t>(0x80 >> (low & 7));
            max_octet = std::max(max_octet, low >> 3);
          }
          flush();
        } else if constexpr (std::is_same_v<T, SvcbRdata>) {
          r.encode(w);
        } else if constexpr (std::is_same_v<T, OpaqueRdata>) {
          w.bytes(r.data);
        }
      },
      rdata);
}

Result<Rdata> decode_rdata(RrType type, WireReader& r, std::size_t rdata_len) {
  const std::size_t end = r.pos() + rdata_len;
  auto check_end = [&](Rdata value) -> Result<Rdata> {
    if (r.pos() != end) return Error{"trailing bytes in RDATA"};
    return value;
  };

  switch (type) {
    case RrType::A: {
      auto bits = r.u32();
      if (!bits) return Error{bits.error()};
      return check_end(ARdata{net::Ipv4Addr(*bits)});
    }
    case RrType::AAAA: {
      auto bytes = r.bytes(16);
      if (!bytes) return Error{bytes.error()};
      std::array<std::uint8_t, 16> arr;
      std::copy_n(bytes->begin(), 16, arr.begin());
      return check_end(AaaaRdata{net::Ipv6Addr(arr)});
    }
    case RrType::CNAME: {
      auto n = r.name();
      if (!n) return Error{n.error()};
      return check_end(CnameRdata{std::move(*n)});
    }
    case RrType::DNAME: {
      auto n = r.name_uncompressed();
      if (!n) return Error{n.error()};
      return check_end(DnameRdata{std::move(*n)});
    }
    case RrType::NS: {
      auto n = r.name();
      if (!n) return Error{n.error()};
      return check_end(NsRdata{std::move(*n)});
    }
    case RrType::PTR: {
      auto n = r.name();
      if (!n) return Error{n.error()};
      return check_end(PtrRdata{std::move(*n)});
    }
    case RrType::MX: {
      auto pref = r.u16();
      if (!pref) return Error{pref.error()};
      auto n = r.name();
      if (!n) return Error{n.error()};
      return check_end(MxRdata{*pref, std::move(*n)});
    }
    case RrType::TXT: {
      TxtRdata txt;
      while (r.pos() < end) {
        auto len = r.u8();
        if (!len) return Error{len.error()};
        if (r.pos() + *len > end) return Error{"TXT string overruns RDATA"};
        auto bytes = r.bytes(*len);
        if (!bytes) return Error{bytes.error()};
        txt.strings.emplace_back(bytes->begin(), bytes->end());
      }
      return check_end(std::move(txt));
    }
    case RrType::SOA: {
      SoaRdata soa;
      auto mname = r.name();
      if (!mname) return Error{mname.error()};
      soa.mname = std::move(*mname);
      auto rname = r.name();
      if (!rname) return Error{rname.error()};
      soa.rname = std::move(*rname);
      auto serial = r.u32();
      auto refresh = r.u32();
      auto retry = r.u32();
      auto expire = r.u32();
      auto minimum = r.u32();
      if (!serial || !refresh || !retry || !expire || !minimum) {
        return Error{"truncated SOA"};
      }
      soa.serial = *serial;
      soa.refresh = *refresh;
      soa.retry = *retry;
      soa.expire = *expire;
      soa.minimum = *minimum;
      return check_end(std::move(soa));
    }
    case RrType::DNSKEY: {
      DnskeyRdata key;
      auto flags = r.u16();
      auto protocol = r.u8();
      auto algorithm = r.u8();
      if (!flags || !protocol || !algorithm) return Error{"truncated DNSKEY"};
      key.flags = *flags;
      key.protocol = *protocol;
      key.algorithm = *algorithm;
      if (end < r.pos()) return Error{"bad DNSKEY length"};
      auto pub = r.bytes(end - r.pos());
      if (!pub) return Error{pub.error()};
      key.public_key = std::move(*pub);
      return check_end(std::move(key));
    }
    case RrType::RRSIG: {
      RrsigRdata sig;
      auto covered = r.u16();
      auto algorithm = r.u8();
      auto labels = r.u8();
      auto ttl = r.u32();
      auto expiration = r.u32();
      auto inception = r.u32();
      auto key_tag = r.u16();
      if (!covered || !algorithm || !labels || !ttl || !expiration ||
          !inception || !key_tag) {
        return Error{"truncated RRSIG"};
      }
      sig.type_covered = static_cast<RrType>(*covered);
      sig.algorithm = *algorithm;
      sig.labels = *labels;
      sig.original_ttl = *ttl;
      sig.expiration = *expiration;
      sig.inception = *inception;
      sig.key_tag = *key_tag;
      auto signer = r.name_uncompressed();
      if (!signer) return Error{signer.error()};
      sig.signer = std::move(*signer);
      if (end < r.pos()) return Error{"bad RRSIG length"};
      auto blob = r.bytes(end - r.pos());
      if (!blob) return Error{blob.error()};
      sig.signature = std::move(*blob);
      return check_end(std::move(sig));
    }
    case RrType::DS: {
      DsRdata ds;
      auto key_tag = r.u16();
      auto algorithm = r.u8();
      auto digest_type = r.u8();
      if (!key_tag || !algorithm || !digest_type) return Error{"truncated DS"};
      ds.key_tag = *key_tag;
      ds.algorithm = *algorithm;
      ds.digest_type = *digest_type;
      if (end < r.pos()) return Error{"bad DS length"};
      auto digest = r.bytes(end - r.pos());
      if (!digest) return Error{digest.error()};
      ds.digest = std::move(*digest);
      return check_end(std::move(ds));
    }
    case RrType::NSEC: {
      NsecRdata nsec;
      auto next = r.name_uncompressed();
      if (!next) return Error{next.error()};
      nsec.next = std::move(*next);
      while (r.pos() < end) {
        auto window = r.u8();
        auto length = r.u8();
        if (!window || !length) return Error{"truncated NSEC bitmap"};
        if (*length == 0 || *length > 32) return Error{"bad NSEC bitmap length"};
        auto block = r.bytes(*length);
        if (!block) return Error{block.error()};
        for (std::size_t octet = 0; octet < block->size(); ++octet) {
          for (int bit = 0; bit < 8; ++bit) {
            if ((*block)[octet] & (0x80 >> bit)) {
              nsec.types.push_back(static_cast<RrType>(
                  (static_cast<int>(*window) << 8) |
                  (static_cast<int>(octet) << 3) | bit));
            }
          }
        }
      }
      return check_end(std::move(nsec));
    }
    case RrType::SVCB:
    case RrType::HTTPS: {
      auto svcb = SvcbRdata::decode(r, rdata_len);
      if (!svcb) return Error{svcb.error()};
      return check_end(std::move(*svcb));
    }
    default: {
      auto blob = r.bytes(rdata_len);
      if (!blob) return Error{blob.error()};
      return check_end(OpaqueRdata{std::move(*blob)});
    }
  }
}

std::string rdata_to_presentation(RrType type, const Rdata& rdata) {
  (void)type;
  return std::visit(
      [](const auto& r) -> std::string {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, DnameRdata>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return r.nsdname.to_string();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return util::format("%u %s", r.preference,
                              r.exchange.to_string().c_str());
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          std::vector<std::string> quoted;
          quoted.reserve(r.strings.size());
          for (const auto& s : r.strings) quoted.push_back("\"" + s + "\"");
          return util::join(quoted, " ");
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          return util::format("%s %s %u %u %u %u %u",
                              r.mname.to_string().c_str(),
                              r.rname.to_string().c_str(), r.serial, r.refresh,
                              r.retry, r.expire, r.minimum);
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          return util::format("%u %u %u %s", r.flags, r.protocol, r.algorithm,
                              util::hex_encode(r.public_key).c_str());
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          return util::format(
              "%s %u %u %u %u %u %u %s %s",
              type_to_string(r.type_covered).c_str(), r.algorithm, r.labels,
              r.original_ttl, r.expiration, r.inception, r.key_tag,
              r.signer.to_string().c_str(),
              util::hex_encode(r.signature).c_str());
        } else if constexpr (std::is_same_v<T, DsRdata>) {
          return util::format("%u %u %u %s", r.key_tag, r.algorithm,
                              r.digest_type, util::hex_encode(r.digest).c_str());
        } else if constexpr (std::is_same_v<T, NsecRdata>) {
          std::string out = r.next.to_string();
          for (RrType t : r.types) out += " " + type_to_string(t);
          return out;
        } else if constexpr (std::is_same_v<T, SvcbRdata>) {
          return r.to_presentation();
        } else {
          return "\\# " + util::format("%zu ", r.data.size()) +
                 util::hex_encode(r.data);
        }
      },
      rdata);
}

Result<Rdata> rdata_from_presentation(RrType type, std::string_view text) {
  auto tokens = util::split_ws(text);
  auto need = [&](std::size_t n) -> Result<void> {
    if (tokens.size() != n) {
      return Error{util::format("expected %zu fields, got %zu", n, tokens.size())};
    }
    return {};
  };

  switch (type) {
    case RrType::A: {
      if (auto r = need(1); !r) return Error{r.error()};
      auto a = net::Ipv4Addr::parse(tokens[0]);
      if (!a) return Error{a.error()};
      return Rdata{ARdata{*a}};
    }
    case RrType::AAAA: {
      if (auto r = need(1); !r) return Error{r.error()};
      auto a = net::Ipv6Addr::parse(tokens[0]);
      if (!a) return Error{a.error()};
      return Rdata{AaaaRdata{*a}};
    }
    case RrType::CNAME:
    case RrType::DNAME:
    case RrType::NS:
    case RrType::PTR: {
      if (auto r = need(1); !r) return Error{r.error()};
      auto n = Name::parse(tokens[0]);
      if (!n) return Error{n.error()};
      if (type == RrType::CNAME) return Rdata{CnameRdata{std::move(*n)}};
      if (type == RrType::DNAME) return Rdata{DnameRdata{std::move(*n)}};
      if (type == RrType::NS) return Rdata{NsRdata{std::move(*n)}};
      return Rdata{PtrRdata{std::move(*n)}};
    }
    case RrType::MX: {
      if (auto r = need(2); !r) return Error{r.error()};
      std::uint64_t pref = 0;
      if (!util::parse_u64(tokens[0], pref, 65535)) return Error{"bad MX preference"};
      auto n = Name::parse(tokens[1]);
      if (!n) return Error{n.error()};
      return Rdata{MxRdata{static_cast<std::uint16_t>(pref), std::move(*n)}};
    }
    case RrType::TXT: {
      TxtRdata txt;
      for (auto& t : tokens) {
        std::string s = t;
        if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
          s = s.substr(1, s.size() - 2);
        }
        txt.strings.push_back(std::move(s));
      }
      return Rdata{std::move(txt)};
    }
    case RrType::SOA: {
      if (auto r = need(7); !r) return Error{r.error()};
      SoaRdata soa;
      auto mname = Name::parse(tokens[0]);
      auto rname = Name::parse(tokens[1]);
      if (!mname || !rname) return Error{"bad SOA names"};
      soa.mname = std::move(*mname);
      soa.rname = std::move(*rname);
      std::uint64_t v[5];
      for (int i = 0; i < 5; ++i) {
        if (!util::parse_u64(tokens[2 + i], v[i], UINT32_MAX)) {
          return Error{"bad SOA integer"};
        }
      }
      soa.serial = static_cast<std::uint32_t>(v[0]);
      soa.refresh = static_cast<std::uint32_t>(v[1]);
      soa.retry = static_cast<std::uint32_t>(v[2]);
      soa.expire = static_cast<std::uint32_t>(v[3]);
      soa.minimum = static_cast<std::uint32_t>(v[4]);
      return Rdata{std::move(soa)};
    }
    case RrType::DS: {
      if (auto r = need(4); !r) return Error{r.error()};
      DsRdata ds;
      std::uint64_t tag = 0, alg = 0, dt = 0;
      if (!util::parse_u64(tokens[0], tag, 65535) ||
          !util::parse_u64(tokens[1], alg, 255) ||
          !util::parse_u64(tokens[2], dt, 255)) {
        return Error{"bad DS integers"};
      }
      ds.key_tag = static_cast<std::uint16_t>(tag);
      ds.algorithm = static_cast<std::uint8_t>(alg);
      ds.digest_type = static_cast<std::uint8_t>(dt);
      if (!util::hex_decode(tokens[3], ds.digest)) return Error{"bad DS digest"};
      return Rdata{std::move(ds)};
    }
    case RrType::DNSKEY: {
      if (auto r = need(4); !r) return Error{r.error()};
      DnskeyRdata key;
      std::uint64_t flags = 0, protocol = 0, alg = 0;
      if (!util::parse_u64(tokens[0], flags, 65535) ||
          !util::parse_u64(tokens[1], protocol, 255) ||
          !util::parse_u64(tokens[2], alg, 255)) {
        return Error{"bad DNSKEY integers"};
      }
      key.flags = static_cast<std::uint16_t>(flags);
      key.protocol = static_cast<std::uint8_t>(protocol);
      key.algorithm = static_cast<std::uint8_t>(alg);
      if (!util::hex_decode(tokens[3], key.public_key)) {
        return Error{"bad DNSKEY public key"};
      }
      return Rdata{std::move(key)};
    }
    case RrType::NSEC: {
      if (tokens.empty()) return Error{"NSEC needs a next-domain field"};
      NsecRdata nsec;
      auto next = Name::parse(tokens[0]);
      if (!next) return Error{next.error()};
      nsec.next = std::move(*next);
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        auto t = type_from_string(tokens[i]);
        if (!t) return Error{t.error()};
        nsec.types.push_back(*t);
      }
      std::sort(nsec.types.begin(), nsec.types.end());
      return Rdata{std::move(nsec)};
    }
    case RrType::SVCB:
    case RrType::HTTPS: {
      auto svcb = SvcbRdata::parse_presentation(text);
      if (!svcb) return Error{svcb.error()};
      return Rdata{std::move(*svcb)};
    }
    default:
      return Error{"presentation parsing unsupported for " + type_to_string(type)};
  }
}

}  // namespace httpsrr::dns
