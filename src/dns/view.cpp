#include "dns/view.h"

#include "dns/wire.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

namespace {

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = flags & 0x8000;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0x0f);
  h.aa = flags & 0x0400;
  h.tc = flags & 0x0200;
  h.rd = flags & 0x0100;
  h.ra = flags & 0x0080;
  h.ad = flags & 0x0020;
  h.cd = flags & 0x0010;
  h.rcode = static_cast<Rcode>(flags & 0x0f);
  return h;
}

// Advances `pos` past one (possibly compressed) name without following
// pointers or materializing labels.  Structural checks only — label-type
// and truncation errors match the eager decoder's; pointer-target validity
// and the 255-octet cap are enforced when the name is materialized.
Result<void> skip_name(std::span<const std::uint8_t> data, std::size_t& pos) {
  std::size_t cursor = pos;
  while (true) {
    if (cursor >= data.size()) return Error{"truncated name"};
    std::uint8_t len = data[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= data.size()) return Error{"truncated pointer"};
      pos = cursor + 2;
      return {};
    }
    if ((len & 0xc0) != 0) return Error{"reserved label type"};
    if (len == 0) {
      pos = cursor + 1;
      return {};
    }
    if (cursor + 1 + len > data.size()) return Error{"truncated label"};
    cursor += 1 + len;
  }
}

Result<Name> name_at(std::span<const std::uint8_t> wire, std::size_t offset) {
  WireReader r(wire);
  r.seek(offset);
  return r.name();
}

constexpr std::uint8_t fold(std::uint8_t c) {
  return c >= 'A' && c <= 'Z' ? static_cast<std::uint8_t>(c + 32) : c;
}

// Yields the next label of the wire name at `pos` (resolving compression
// pointers in place), advancing `pos`.  An empty span is the root/end
// marker; nullopt is a malformed name.  `jumps` caps pointer chasing.
std::optional<std::span<const std::uint8_t>> next_wire_label(
    std::span<const std::uint8_t> wire, std::size_t& pos, int& jumps) {
  while (true) {
    if (pos >= wire.size()) return std::nullopt;
    std::uint8_t len = wire[pos];
    if ((len & 0xc0) == 0xc0) {
      if (pos + 1 >= wire.size() || ++jumps > 127) return std::nullopt;
      pos = static_cast<std::size_t>((len & 0x3f) << 8) | wire[pos + 1];
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;
    if (len == 0) return std::span<const std::uint8_t>{};
    if (pos + 1 + len > wire.size()) return std::nullopt;
    auto label = wire.subspan(pos + 1, len);
    pos += 1 + len;
    return label;
  }
}

// Case-insensitive equality of the (possibly compressed) wire name at
// `offset` against a Name's flat buffer, without materializing anything.
bool wire_name_equals(std::span<const std::uint8_t> wire, std::size_t offset,
                      const Name& n) {
  std::string_view flat = n.flat();
  std::size_t pos = offset;
  std::size_t fpos = 0;
  int jumps = 0;
  while (true) {
    auto label = next_wire_label(wire, pos, jumps);
    if (!label) return false;
    if (label->empty()) return fpos == flat.size();  // both must end here
    if (fpos >= flat.size()) return false;
    std::size_t flen = static_cast<std::uint8_t>(flat[fpos]);
    if (flen != label->size() || fpos + 1 + flen > flat.size()) return false;
    for (std::size_t i = 0; i < flen; ++i) {
      if (fold((*label)[i]) !=
          fold(static_cast<std::uint8_t>(flat[fpos + 1 + i]))) {
        return false;
      }
    }
    fpos += 1 + flen;
  }
}

// Case-insensitive equality of two wire names, each resolved against its
// own message buffer (they are usually, but not necessarily, the same).
bool wire_names_equal(std::span<const std::uint8_t> wire_a, std::size_t a,
                      std::span<const std::uint8_t> wire_b, std::size_t b) {
  std::size_t pa = a;
  std::size_t pb = b;
  int jumps_a = 0;
  int jumps_b = 0;
  while (true) {
    auto la = next_wire_label(wire_a, pa, jumps_a);
    auto lb = next_wire_label(wire_b, pb, jumps_b);
    if (!la || !lb) return false;
    if (la->empty() || lb->empty()) return la->empty() && lb->empty();
    if (la->size() != lb->size()) return false;
    for (std::size_t i = 0; i < la->size(); ++i) {
      if (fold((*la)[i]) != fold((*lb)[i])) return false;
    }
  }
}

}  // namespace

// ------------------------------------------------------------- RecordView

RrType RecordView::type() const { return static_cast<RrType>(ref_->type); }
RrClass RecordView::klass() const { return static_cast<RrClass>(ref_->klass); }
std::uint32_t RecordView::ttl() const { return ref_->ttl; }

Result<Name> RecordView::owner() const {
  return name_at(msg_->wire_, ref_->owner_off);
}

std::span<const std::uint8_t> RecordView::rdata_wire() const {
  return msg_->wire_.subspan(ref_->rdata_off, ref_->rdata_len);
}

Result<Rdata> RecordView::rdata() const {
  WireReader r(msg_->wire_);
  r.seek(ref_->rdata_off);
  return decode_rdata(type(), r, ref_->rdata_len);
}

Result<Rr> RecordView::materialize() const {
  Rr rr;
  auto name = owner();
  if (!name) return Error{name.error()};
  rr.owner = std::move(*name);
  rr.type = type();
  rr.klass = klass();
  rr.ttl = ref_->ttl;
  auto rd = rdata();
  if (!rd) return Error{rd.error()};
  rr.rdata = std::move(*rd);
  return rr;
}

std::optional<net::Ipv4Addr> RecordView::a_addr() const {
  if (type() != RrType::A || ref_->rdata_len != 4) return std::nullopt;
  auto d = rdata_wire();
  std::uint32_t bits = (static_cast<std::uint32_t>(d[0]) << 24) |
                       (static_cast<std::uint32_t>(d[1]) << 16) |
                       (static_cast<std::uint32_t>(d[2]) << 8) |
                       static_cast<std::uint32_t>(d[3]);
  return net::Ipv4Addr(bits);
}

std::optional<net::Ipv6Addr> RecordView::aaaa_addr() const {
  if (type() != RrType::AAAA || ref_->rdata_len != 16) return std::nullopt;
  auto d = rdata_wire();
  std::array<std::uint8_t, 16> bytes;
  std::copy(d.begin(), d.end(), bytes.begin());
  return net::Ipv6Addr(bytes);
}

Result<Name> RecordView::name_target() const {
  switch (type()) {
    case RrType::CNAME:
    case RrType::DNAME:
    case RrType::NS:
    case RrType::PTR:
      return name_at(msg_->wire_, ref_->rdata_off);
    default:
      return Error{"record type carries no target name"};
  }
}

bool RecordView::owner_equals(const Name& n) const {
  return wire_name_equals(msg_->wire_, ref_->owner_off, n);
}

bool RecordView::owner_equals_target_of(const RecordView& other) const {
  switch (other.type()) {
    case RrType::CNAME:
    case RrType::DNAME:
    case RrType::NS:
    case RrType::PTR:
      break;
    default:
      return false;
  }
  return wire_names_equal(msg_->wire_, ref_->owner_off, other.msg_->wire_,
                          other.ref_->rdata_off);
}

// ----------------------------------------------------------- QuestionView

Result<Name> QuestionView::qname() const {
  return name_at(msg_->wire_, ref_->off);
}

// ------------------------------------------------------------ MessageView

Result<MessageView> MessageView::parse(std::span<const std::uint8_t> wire) {
  MessageView v;
  v.wire_ = wire;

  WireReader r(wire);
  auto id = r.u16();
  auto flags = r.u16();
  auto qdcount = r.u16();
  auto ancount = r.u16();
  auto nscount = r.u16();
  auto arcount = r.u16();
  if (!id || !flags || !qdcount || !ancount || !nscount || !arcount) {
    return Error{"truncated header"};
  }
  v.header_ = unpack_flags(*id, *flags);

  std::size_t pos = r.pos();
  for (unsigned i = 0; i < *qdcount; ++i) {
    QuestionView::Ref q;
    q.off = static_cast<std::uint32_t>(pos);
    if (auto s = skip_name(wire, pos); !s) return Error{s.error()};
    if (pos + 4 > wire.size()) return Error{"truncated question"};
    q.qtype = static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
    q.qclass = static_cast<std::uint16_t>((wire[pos + 2] << 8) | wire[pos + 3]);
    pos += 4;
    v.questions_.push_back(q);
  }

  // Walk the three record sections.  The first OPT pseudo-RR in the
  // additional section is lifted into `edns_` instead of being indexed
  // (mirroring the eager decoder); any further OPT stays a plain record.
  const unsigned counts[3] = {*ancount, *nscount, *arcount};
  for (int section = 0; section < 3; ++section) {
    for (unsigned i = 0; i < counts[section]; ++i) {
      RecordView::Ref ref;
      ref.owner_off = static_cast<std::uint32_t>(pos);
      if (auto s = skip_name(wire, pos); !s) return Error{s.error()};
      if (pos + 10 > wire.size()) return Error{"truncated RR header"};
      ref.type = static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
      ref.klass =
          static_cast<std::uint16_t>((wire[pos + 2] << 8) | wire[pos + 3]);
      ref.ttl = (static_cast<std::uint32_t>(wire[pos + 4]) << 24) |
                (static_cast<std::uint32_t>(wire[pos + 5]) << 16) |
                (static_cast<std::uint32_t>(wire[pos + 6]) << 8) |
                static_cast<std::uint32_t>(wire[pos + 7]);
      ref.rdata_len =
          static_cast<std::uint16_t>((wire[pos + 8] << 8) | wire[pos + 9]);
      pos += 10;
      if (pos + ref.rdata_len > wire.size()) return Error{"truncated RDATA"};
      ref.rdata_off = static_cast<std::uint32_t>(pos);
      pos += ref.rdata_len;

      if (section == 2 && static_cast<RrType>(ref.type) == RrType::OPT &&
          !v.edns_) {
        Edns edns;
        edns.udp_payload_size = ref.klass;
        edns.dnssec_ok = (ref.ttl & 0x00008000u) != 0;
        edns.extended_rcode = static_cast<std::uint8_t>(ref.ttl >> 24);
        v.edns_ = edns;
        v.opt_rdata_off_ = ref.rdata_off;
        v.opt_rdata_len_ = ref.rdata_len;
        continue;
      }
      v.records_.push_back(ref);
      if (section == 0) ++v.an_;
      if (section == 1) ++v.ns_;
    }
  }
  v.parsed_size_ = pos;
  return v;
}

Result<Message> MessageView::to_message(bool include_questions) const {
  Message m;
  m.header = header_;
  m.edns = edns_;

  if (include_questions) {
    m.questions.reserve(questions_.size());
    for (std::size_t i = 0; i < questions_.size(); ++i) {
      QuestionView q = question(i);
      auto qname = q.qname();
      if (!qname) return Error{qname.error()};
      m.questions.push_back(
          Question{std::move(*qname), q.qtype(), q.qclass()});
    }
  }

  auto fill = [this](std::size_t begin, std::size_t count,
                     std::vector<Rr>& out) -> Result<void> {
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto rr = RecordView(this, &records_[begin + i]).materialize();
      if (!rr) return Error{rr.error()};
      out.push_back(std::move(*rr));
    }
    return {};
  };
  if (auto s = fill(0, an_, m.answers); !s) return Error{s.error()};
  if (auto s = fill(an_, ns_, m.authorities); !s) return Error{s.error()};
  if (auto s = fill(an_ + ns_, records_.size() - an_ - ns_, m.additionals); !s) {
    return Error{s.error()};
  }
  return m;
}

}  // namespace httpsrr::dns
