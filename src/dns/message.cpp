#include "dns/message.h"

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

Message Message::make_query(std::uint16_t id, Name qname, RrType qtype,
                            bool dnssec_ok) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.edns = Edns{};
  m.edns->dnssec_ok = dnssec_ok;
  m.questions.push_back(Question{std::move(qname), qtype, RrClass::IN});
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = true;
  m.edns = query.edns;  // responders echo EDNS when the query carried it
  m.questions = query.questions;
  return m;
}

namespace {

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.opcode) & 0x0f)
           << 11;
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  if (h.ad) flags |= 0x0020;
  if (h.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.rcode) & 0x0f);
  return flags;
}

Header unpack_flags(std::uint16_t id, std::uint16_t flags) {
  Header h;
  h.id = id;
  h.qr = flags & 0x8000;
  h.opcode = static_cast<Opcode>((flags >> 11) & 0x0f);
  h.aa = flags & 0x0400;
  h.tc = flags & 0x0200;
  h.rd = flags & 0x0100;
  h.ra = flags & 0x0080;
  h.ad = flags & 0x0020;
  h.cd = flags & 0x0010;
  h.rcode = static_cast<Rcode>(flags & 0x0f);
  return h;
}

void encode_rr(const Rr& rr, WireWriter& w) {
  w.name_compressed(rr.owner);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.klass));
  w.u32(rr.ttl);
  std::size_t len_pos = w.size();
  w.u16(0);  // RDLENGTH placeholder
  std::size_t rdata_start = w.size();
  encode_rdata(rr.rdata, w);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - rdata_start));
}

Result<Rr> decode_rr(WireReader& r) {
  Rr rr;
  auto owner = r.name();
  if (!owner) return Error{owner.error()};
  rr.owner = std::move(*owner);
  auto type = r.u16();
  auto klass = r.u16();
  auto ttl = r.u32();
  auto rdlen = r.u16();
  if (!type || !klass || !ttl || !rdlen) return Error{"truncated RR header"};
  rr.type = static_cast<RrType>(*type);
  rr.klass = static_cast<RrClass>(*klass);
  rr.ttl = *ttl;
  auto rdata = decode_rdata(rr.type, r, *rdlen);
  if (!rdata) return Error{rdata.error()};
  rr.rdata = std::move(*rdata);
  return rr;
}

}  // namespace

Bytes Message::encode() const {
  WireWriter w;
  encode_into(w);
  return std::move(w).take();
}

void Message::encode_into(WireWriter& w) const {
  w.clear();
  // Pre-reserve: header + questions + OPT, plus a per-RR estimate (owner
  // uncompressed + 10 fixed octets + typical rdata) so the buffer doesn't
  // grow from empty on every message.
  std::size_t estimate = 12 + (edns ? 11 : 0);
  for (const auto& q : questions) estimate += q.qname.wire_length() + 4;
  estimate +=
      48 * (answers.size() + authorities.size() + additionals.size());
  w.reserve(estimate);

  w.u16(header.id);
  w.u16(pack_flags(header));
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));

  for (const auto& q : questions) {
    w.name_compressed(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : answers) encode_rr(rr, w);
  for (const auto& rr : authorities) encode_rr(rr, w);
  for (const auto& rr : additionals) encode_rr(rr, w);
  if (edns) {
    // OPT pseudo-RR (RFC 6891 §6.1): root owner, CLASS = payload size,
    // TTL = extended flags (DO is bit 15 of the high 16 TTL bits).
    w.u8(0);  // root name
    w.u16(static_cast<std::uint16_t>(RrType::OPT));
    w.u16(edns->udp_payload_size);
    w.u32(edns->dnssec_ok ? 0x00008000u : 0u);
    w.u16(0);  // empty RDATA
  }
}

Result<Message> Message::decode(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  auto id = r.u16();
  auto flags = r.u16();
  auto qdcount = r.u16();
  auto ancount = r.u16();
  auto nscount = r.u16();
  auto arcount = r.u16();
  if (!id || !flags || !qdcount || !ancount || !nscount || !arcount) {
    return Error{"truncated header"};
  }

  Message m;
  m.header = unpack_flags(*id, *flags);

  for (unsigned i = 0; i < *qdcount; ++i) {
    auto qname = r.name();
    if (!qname) return Error{qname.error()};
    auto qtype = r.u16();
    auto qclass = r.u16();
    if (!qtype || !qclass) return Error{"truncated question"};
    m.questions.push_back(Question{std::move(*qname),
                                   static_cast<RrType>(*qtype),
                                   static_cast<RrClass>(*qclass)});
  }
  auto read_section = [&r](unsigned count,
                           std::vector<Rr>& out) -> Result<void> {
    for (unsigned i = 0; i < count; ++i) {
      auto rr = decode_rr(r);
      if (!rr) return Error{rr.error()};
      out.push_back(std::move(*rr));
    }
    return {};
  };
  if (auto s = read_section(*ancount, m.answers); !s) return Error{s.error()};
  if (auto s = read_section(*nscount, m.authorities); !s) return Error{s.error()};
  if (auto s = read_section(*arcount, m.additionals); !s) return Error{s.error()};

  // Lift an OPT pseudo-RR out of the additional section into `edns`.
  for (auto it = m.additionals.begin(); it != m.additionals.end(); ++it) {
    if (it->type != RrType::OPT) continue;
    Edns edns;
    edns.udp_payload_size = static_cast<std::uint16_t>(it->klass);
    edns.dnssec_ok = (it->ttl & 0x00008000u) != 0;
    m.edns = edns;
    m.additionals.erase(it);
    break;
  }
  return m;
}

std::vector<Rr> Message::answers_of_type(RrType t) const {
  std::vector<Rr> out;
  for (const auto& rr : answers) {
    if (rr.type == t) out.push_back(rr);
  }
  return out;
}

std::string Message::to_string() const {
  std::string out;
  out += util::format(";; id %u, %s, %s%s%s%s%s rcode=%s\n", header.id,
                      header.qr ? "response" : "query", header.aa ? "aa " : "",
                      header.tc ? "tc " : "", header.rd ? "rd " : "",
                      header.ra ? "ra " : "", header.ad ? "ad " : "",
                      std::string(rcode_to_string(header.rcode)).c_str());
  out += ";; QUESTION\n";
  for (const auto& q : questions) {
    out += util::format(";  %s %s\n", q.qname.to_string().c_str(),
                        type_to_string(q.qtype).c_str());
  }
  auto dump = [&out](std::string_view title, const std::vector<Rr>& section) {
    if (section.empty()) return;
    out += util::format(";; %s\n", std::string(title).c_str());
    for (const auto& rr : section) out += rr.to_string() + "\n";
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authorities);
  dump("ADDITIONAL", additionals);
  return out;
}

}  // namespace httpsrr::dns
