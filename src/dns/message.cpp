#include "dns/message.h"

#include "dns/view.h"
#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

Message Message::make_query(std::uint16_t id, Name qname, RrType qtype,
                            bool dnssec_ok) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.edns = Edns{};
  m.edns->dnssec_ok = dnssec_ok;
  m.questions.push_back(Question{std::move(qname), qtype, RrClass::IN});
  return m;
}

Message Message::make_response(const Message& query) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = true;
  m.edns = query.edns;  // responders echo EDNS when the query carried it
  m.questions = query.questions;
  return m;
}

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.opcode) & 0x0f)
           << 11;
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  if (h.ad) flags |= 0x0020;
  if (h.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(h.rcode) & 0x0f);
  return flags;
}

void encode_rr(const Rr& rr, WireWriter& w) {
  w.name_compressed(rr.owner);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.klass));
  w.u32(rr.ttl);
  std::size_t len_pos = w.size();
  w.u16(0);  // RDLENGTH placeholder
  std::size_t rdata_start = w.size();
  encode_rdata(rr.rdata, w);
  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - rdata_start));
}

Bytes Message::encode() const {
  WireWriter w;
  encode_into(w);
  return std::move(w).take();
}

void Message::encode_into(WireWriter& w) const {
  w.clear();
  // Pre-reserve: header + questions + OPT, plus a per-RR estimate (owner
  // uncompressed + 10 fixed octets + typical rdata) so the buffer doesn't
  // grow from empty on every message.
  std::size_t estimate = 12 + (edns ? 11 : 0);
  for (const auto& q : questions) estimate += q.qname.wire_length() + 4;
  estimate +=
      48 * (answers.size() + authorities.size() + additionals.size());
  w.reserve(estimate);

  w.u16(header.id);
  w.u16(pack_flags(header));
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns ? 1 : 0)));

  for (const auto& q : questions) {
    w.name_compressed(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : answers) encode_rr(rr, w);
  for (const auto& rr : authorities) encode_rr(rr, w);
  for (const auto& rr : additionals) encode_rr(rr, w);
  if (edns) {
    // OPT pseudo-RR (RFC 6891 §6.1): root owner, CLASS = payload size,
    // TTL = [extended-rcode:8][version:8][DO:1][Z:15].
    w.u8(0);  // root name
    w.u16(static_cast<std::uint16_t>(RrType::OPT));
    w.u16(edns->udp_payload_size);
    w.u32((static_cast<std::uint32_t>(edns->extended_rcode) << 24) |
          (edns->dnssec_ok ? 0x00008000u : 0u));
    w.u16(0);  // empty RDATA
  }
}

Result<Message> Message::decode(std::span<const std::uint8_t> wire) {
  // Decoding is a structural index pass (MessageView::parse) plus full
  // materialization — callers that only need a few fields use the view
  // directly and skip the materialization cost entirely.
  auto view = MessageView::parse(wire);
  if (!view) return Error{view.error()};
  return view->to_message();
}

std::vector<Rr> Message::answers_of_type(RrType t) const {
  std::vector<Rr> out;
  for (const auto& rr : answers) {
    if (rr.type == t) out.push_back(rr);
  }
  return out;
}

std::string Message::to_string() const {
  std::string out;
  out += util::format(";; id %u, %s, %s%s%s%s%s rcode=%s\n", header.id,
                      header.qr ? "response" : "query", header.aa ? "aa " : "",
                      header.tc ? "tc " : "", header.rd ? "rd " : "",
                      header.ra ? "ra " : "", header.ad ? "ad " : "",
                      std::string(rcode_to_string(header.rcode)).c_str());
  out += ";; QUESTION\n";
  for (const auto& q : questions) {
    out += util::format(";  %s %s\n", q.qname.to_string().c_str(),
                        type_to_string(q.qtype).c_str());
  }
  auto dump = [&out](std::string_view title, const std::vector<Rr>& section) {
    if (section.empty()) return;
    out += util::format(";; %s\n", std::string(title).c_str());
    for (const auto& rr : section) out += rr.to_string() + "\n";
  };
  dump("ANSWER", answers);
  dump("AUTHORITY", authorities);
  dump("ADDITIONAL", additionals);
  return out;
}

}  // namespace httpsrr::dns
