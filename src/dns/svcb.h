#pragma once

// RFC 9460 — Service Binding records (SVCB / HTTPS).
//
// This module implements the complete SvcParams model:
//   * the seven IANA-defined keys (mandatory, alpn, no-default-alpn, port,
//     ipv4hint, ech, ipv6hint) with typed accessors;
//   * unknown keys via the "keyNNNNN" generic form (values kept opaque);
//   * wire format: strictly ascending key order, no duplicates (§2.2);
//   * presentation format incl. quoted values, escaped commas in value
//     lists, and the error cases of Appendix A;
//   * semantic validation: AliasMode carries no parameters, "mandatory"
//     must not list itself, must be sorted/unique, and every listed key
//     must be present (§8).
//
// AliasMode (SvcPriority == 0) vs ServiceMode (> 0) semantics live in
// SvcbRdata; the HTTPS record is the same structure with RrType::HTTPS.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/wire.h"
#include "net/ip.h"
#include "util/result.h"

namespace httpsrr::dns {

enum class SvcParamKey : std::uint16_t {
  mandatory = 0,
  alpn = 1,
  no_default_alpn = 2,
  port = 3,
  ipv4hint = 4,
  ech = 5,
  ipv6hint = 6,
};

[[nodiscard]] std::string svc_param_key_to_string(std::uint16_t key);
[[nodiscard]] util::Result<std::uint16_t> svc_param_key_from_string(
    std::string_view s);

// Well-known ALPN protocol ids used throughout the study.
namespace alpn_id {
inline constexpr std::string_view kHttp11 = "http/1.1";
inline constexpr std::string_view kH2 = "h2";
inline constexpr std::string_view kH3 = "h3";
inline constexpr std::string_view kH3Draft29 = "h3-29";
inline constexpr std::string_view kH3Draft27 = "h3-27";
}  // namespace alpn_id

// An ordered set of SvcParams (key -> wire value).
class SvcParams {
 public:
  SvcParams() = default;

  // ---- typed setters (overwrite existing value for the key) ----
  void set_mandatory(std::vector<std::uint16_t> keys);
  void set_alpn(const std::vector<std::string>& protocols);
  void set_no_default_alpn();
  void set_port(std::uint16_t port);
  void set_ipv4hint(const std::vector<net::Ipv4Addr>& addrs);
  void set_ipv6hint(const std::vector<net::Ipv6Addr>& addrs);
  void set_ech(Bytes config_list);
  void set_raw(std::uint16_t key, Bytes value);
  void remove(std::uint16_t key);

  // ---- typed getters (nullopt when key absent; Result when the stored
  //      wire value itself may be malformed) ----
  [[nodiscard]] bool has(std::uint16_t key) const;
  [[nodiscard]] bool has(SvcParamKey key) const {
    return has(static_cast<std::uint16_t>(key));
  }
  [[nodiscard]] std::optional<std::vector<std::uint16_t>> mandatory() const;
  [[nodiscard]] std::optional<std::vector<std::string>> alpn() const;
  [[nodiscard]] bool no_default_alpn() const;
  [[nodiscard]] std::optional<std::uint16_t> port() const;
  [[nodiscard]] std::optional<std::vector<net::Ipv4Addr>> ipv4hint() const;
  [[nodiscard]] std::optional<std::vector<net::Ipv6Addr>> ipv6hint() const;
  [[nodiscard]] std::optional<Bytes> ech() const;
  [[nodiscard]] const Bytes* raw(std::uint16_t key) const;

  [[nodiscard]] bool empty() const { return params_.empty(); }
  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] const std::map<std::uint16_t, Bytes>& entries() const {
    return params_;
  }

  // Wire format.
  void encode(WireWriter& w) const;
  // Decodes params until `end` (absolute reader offset). Enforces strictly
  // ascending keys and value-length bounds.
  static util::Result<SvcParams> decode(WireReader& r, std::size_t end);

  // Presentation format: returns the params as zone-file tokens
  // ("alpn=h2,h3 port=8443"). Empty string when no params.
  [[nodiscard]] std::string to_presentation() const;

  friend bool operator==(const SvcParams&, const SvcParams&) = default;

 private:
  std::map<std::uint16_t, Bytes> params_;  // ordered => canonical wire order
};

// SVCB/HTTPS RDATA.
struct SvcbRdata {
  std::uint16_t priority = 0;  // 0 = AliasMode, >0 = ServiceMode
  Name target;                 // "." (root) = owner name itself in ServiceMode
  SvcParams params;

  [[nodiscard]] bool is_alias_mode() const { return priority == 0; }
  [[nodiscard]] bool is_service_mode() const { return priority != 0; }

  // Effective endpoint name for a record owned by `owner`: TargetName, or
  // the owner itself when TargetName is "." (§2.5).
  [[nodiscard]] Name effective_target(const Name& owner) const;

  void encode(WireWriter& w) const;
  static util::Result<SvcbRdata> decode(WireReader& r, std::size_t rdata_len);

  // "1 . alpn=h2,h3 ipv4hint=1.2.3.4"
  [[nodiscard]] std::string to_presentation() const;
  // Parses whitespace-separated presentation tokens.
  static util::Result<SvcbRdata> parse_presentation(std::string_view text);

  // Semantic validation per RFC 9460 §2.4.3/§8:
  //   * AliasMode SHOULD NOT carry params — we treat it as an error;
  //   * mandatory must not contain key 0, must reference present keys;
  //   * no-default-alpn requires alpn.
  [[nodiscard]] util::Result<void> validate() const;

  friend bool operator==(const SvcbRdata&, const SvcbRdata&) = default;
};

}  // namespace httpsrr::dns
