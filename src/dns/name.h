#pragma once

// dns::Name — a fully-qualified DNS domain name.
//
// Invariants (enforced by the factory functions):
//   * at most 127 labels, each 1..63 octets;
//   * total wire length (labels + length octets + root) <= 255;
//   * comparisons and hashing are ASCII case-insensitive (RFC 1035 §2.3.3)
//     while the original spelling is preserved for display.
//
// Representation: one contiguous case-preserved buffer in uncompressed wire
// format without the terminating root octet ("\3www\7example\3com"), plus a
// label count.  A name is therefore a single std::string — short names
// (flat form <= 15 octets, e.g. "www.d00042.com") live entirely in the SSO
// buffer with zero heap allocations — and equality/hash/ordering are
// allocation-free scans.  The key trick: length octets are 1..63, which can
// never be an ASCII uppercase letter (65..90), so a bytewise case-folded
// comparison of two flat buffers is exactly a case-insensitive comparison of
// the label sequences, length octets included.
//
// Presentation format supports \DDD and \X escapes; wire format supports
// RFC 1035 compression pointers on decode (with loop protection) and plain
// encoding on write (message-level compression lives in dns::WireWriter).

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace httpsrr::dns {

class Name {
 public:
  // The root name ".".
  Name() = default;

  // Parses presentation format ("www.example.com", trailing dot optional,
  // "." is the root). Handles \DDD decimal and \X character escapes.
  static util::Result<Name> parse(std::string_view text);

  // Builds from raw labels (no escape processing). Validates lengths.
  static util::Result<Name> from_labels(const std::vector<std::string>& labels);

  // Builds from a flat buffer in the internal format: length-prefixed labels,
  // no root octet ("\3www\3com"). Validates structure and lengths.
  static util::Result<Name> from_flat(std::string flat);

  [[nodiscard]] bool is_root() const { return flat_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return count_; }

  // Label `i` (leftmost = 0) as a view into the flat buffer.
  [[nodiscard]] std::string_view label(std::size_t i) const;

  // Materializes the labels (cold paths only — this allocates).
  [[nodiscard]] std::vector<std::string> labels() const;

  // The flat buffer: length-prefixed labels, no root octet. This is the
  // uncompressed wire encoding minus its final 0x00.
  [[nodiscard]] std::string_view flat() const { return flat_; }

  // Wire-format length including the terminating root octet.
  [[nodiscard]] std::size_t wire_length() const { return flat_.size() + 1; }

  // Presentation format with a trailing dot ("www.example.com.", "." for
  // root). Special characters are escaped.
  [[nodiscard]] std::string to_string() const;

  // True if this name equals `other` or is underneath it.
  // ("www.a.com" is_subdomain_of "a.com" and "com" and ".").
  [[nodiscard]] bool is_subdomain_of(const Name& other) const;

  // The name with the leftmost label removed; root stays root.
  [[nodiscard]] Name parent() const;

  // The rightmost `count` labels ("www.a.com".suffix(2) -> "a.com");
  // count >= label_count() returns the whole name. Never allocates beyond
  // one (usually SSO) string copy.
  [[nodiscard]] Name suffix(std::size_t count) const;

  // Prepends a label ("www" + "a.com" -> "www.a.com"). Fails on length
  // overflow or a bad label.
  [[nodiscard]] util::Result<Name> prepend(std::string_view label) const;

  // The name with every label lowercased — the RFC 4034 §6.2 canonical
  // owner form.  Anything hashed or signed over a name (DS digests, RRSIG
  // canonical RRsets) must use this, or a query's preserved spelling
  // ("WWW.D00001.COM") leaks into the digest and breaks validation.
  [[nodiscard]] Name case_folded() const;

  // Case-insensitive equality / ordering (canonical DNS ordering:
  // reversed label sequence, case-folded, per RFC 4034 §6.1).
  friend bool operator==(const Name& a, const Name& b);
  friend std::strong_ordering operator<=>(const Name& a, const Name& b);

  // Case-insensitive hash (for unordered containers).
  [[nodiscard]] std::size_t hash() const;

 private:
  Name(std::string flat, std::uint8_t count)
      : flat_(std::move(flat)), count_(count) {}

  std::string flat_;          // [len][label bytes]... , no root octet
  std::uint8_t count_ = 0;    // number of labels (<= 127)
};

// Convenience for literal names in tests and internal tables: terminates on
// parse failure, so only use with known-good constants.
[[nodiscard]] Name name_of(std::string_view text);

struct NameHash {
  std::size_t operator()(const Name& n) const { return n.hash(); }
};

}  // namespace httpsrr::dns
