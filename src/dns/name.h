#pragma once

// dns::Name — a fully-qualified DNS domain name.
//
// Invariants (enforced by the factory functions):
//   * at most 127 labels, each 1..63 octets;
//   * total wire length (labels + length octets + root) <= 255;
//   * comparisons and hashing are ASCII case-insensitive (RFC 1035 §2.3.3)
//     while the original spelling is preserved for display.
//
// Presentation format supports \DDD and \X escapes; wire format supports
// RFC 1035 compression pointers on decode (with loop protection) and plain
// encoding on write (message-level compression lives in dns::WireWriter).

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace httpsrr::dns {

class Name {
 public:
  // The root name ".".
  Name() = default;

  // Parses presentation format ("www.example.com", trailing dot optional,
  // "." is the root). Handles \DDD decimal and \X character escapes.
  static util::Result<Name> parse(std::string_view text);

  // Builds from raw labels (no escape processing). Validates lengths.
  static util::Result<Name> from_labels(std::vector<std::string> labels);

  [[nodiscard]] bool is_root() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }
  [[nodiscard]] const std::vector<std::string>& labels() const { return labels_; }

  // Wire-format length including the terminating root octet.
  [[nodiscard]] std::size_t wire_length() const;

  // Presentation format with a trailing dot ("www.example.com.", "." for
  // root). Special characters are escaped.
  [[nodiscard]] std::string to_string() const;

  // True if this name equals `other` or is underneath it.
  // ("www.a.com" is_subdomain_of "a.com" and "com" and ".").
  [[nodiscard]] bool is_subdomain_of(const Name& other) const;

  // The name with the leftmost label removed; root stays root.
  [[nodiscard]] Name parent() const;

  // Prepends a label ("www" + "a.com" -> "www.a.com"). Fails on length
  // overflow or a bad label.
  [[nodiscard]] util::Result<Name> prepend(std::string_view label) const;

  // Case-insensitive equality / ordering (canonical DNS ordering:
  // reversed label sequence, case-folded, per RFC 4034 §6.1).
  friend bool operator==(const Name& a, const Name& b);
  friend std::strong_ordering operator<=>(const Name& a, const Name& b);

  // Case-insensitive hash (for unordered containers).
  [[nodiscard]] std::size_t hash() const;

 private:
  explicit Name(std::vector<std::string> labels) : labels_(std::move(labels)) {}

  std::vector<std::string> labels_;  // leftmost label first, no root entry
};

// Convenience for literal names in tests and internal tables: terminates on
// parse failure, so only use with known-good constants.
[[nodiscard]] Name name_of(std::string_view text);

struct NameHash {
  std::size_t operator()(const Name& n) const { return n.hash(); }
};

}  // namespace httpsrr::dns
