#include "dns/types.h"

#include "util/strings.h"

namespace httpsrr::dns {

using util::Error;
using util::Result;

namespace {
struct TypeEntry {
  RrType type;
  std::string_view mnemonic;
};

constexpr TypeEntry kTypes[] = {
    {RrType::A, "A"},         {RrType::NS, "NS"},
    {RrType::CNAME, "CNAME"}, {RrType::SOA, "SOA"},
    {RrType::PTR, "PTR"},     {RrType::MX, "MX"},
    {RrType::TXT, "TXT"},     {RrType::AAAA, "AAAA"},
    {RrType::SRV, "SRV"},     {RrType::DS, "DS"},     {RrType::NSEC, "NSEC"},
    {RrType::RRSIG, "RRSIG"}, {RrType::DNSKEY, "DNSKEY"},
    {RrType::DNAME, "DNAME"}, {RrType::OPT, "OPT"},
    {RrType::SVCB, "SVCB"},   {RrType::HTTPS, "HTTPS"},
};
}  // namespace

std::string type_to_string(RrType t) {
  for (const auto& e : kTypes) {
    if (e.type == t) return std::string(e.mnemonic);
  }
  return util::format("TYPE%u", static_cast<unsigned>(t));
}

Result<RrType> type_from_string(std::string_view s) {
  for (const auto& e : kTypes) {
    if (util::iequals(s, e.mnemonic)) return e.type;
  }
  if (util::starts_with(s, "TYPE") || util::starts_with(s, "type")) {
    std::uint64_t v = 0;
    if (util::parse_u64(s.substr(4), v, 65535)) {
      return static_cast<RrType>(v);
    }
  }
  return Error{"unknown RR type mnemonic: " + std::string(s)};
}

std::string_view rcode_to_string(Rcode r) {
  switch (r) {
    case Rcode::NOERROR: return "NOERROR";
    case Rcode::FORMERR: return "FORMERR";
    case Rcode::SERVFAIL: return "SERVFAIL";
    case Rcode::NXDOMAIN: return "NXDOMAIN";
    case Rcode::NOTIMP: return "NOTIMP";
    case Rcode::REFUSED: return "REFUSED";
  }
  return "?";
}

}  // namespace httpsrr::dns
