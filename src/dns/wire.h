#pragma once

// Bounds-checked big-endian wire codec for DNS messages and record data.
//
// WireWriter appends network-byte-order integers, length-prefixed blobs and
// (optionally compressed) names into a growing buffer.  WireReader walks an
// immutable span and returns Result<> on any out-of-bounds read — truncated
// and hostile inputs must never crash the scanner.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "util/result.h"

namespace httpsrr::dns {

using Bytes = std::vector<std::uint8_t>;

class WireWriter {
 public:
  WireWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void bytes(const Bytes& data) { bytes(std::span<const std::uint8_t>(data)); }
  void raw_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Uncompressed name encoding (used inside RDATA, where RFC 3597 forbids
  // compression for unknown types and RFC 9460 forbids it for SVCB).
  void name(const Name& n);

  // Compressed name encoding for message sections. Remembers suffix offsets
  // in `offsets` so later occurrences emit 2-byte pointers.
  void name_compressed(const Name& n, std::map<std::string, std::uint16_t>& offsets);

  // Patches a previously written 16-bit field (e.g. RDLENGTH back-fill).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  void seek(std::size_t pos) { pos_ = pos; }

  util::Result<std::uint8_t> u8();
  util::Result<std::uint16_t> u16();
  util::Result<std::uint32_t> u32();
  util::Result<Bytes> bytes(std::size_t count);

  // Reads a possibly-compressed name starting at the current position;
  // follows pointers with loop protection; leaves the cursor just past the
  // name's first encoding (not past pointer targets).
  util::Result<Name> name();

  // Reads an uncompressed name; any compression pointer is an error
  // (RDATA of SVCB/HTTPS and unknown types must not be compressed).
  util::Result<Name> name_uncompressed();

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace httpsrr::dns
