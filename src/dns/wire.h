#pragma once

// Bounds-checked big-endian wire codec for DNS messages and record data.
//
// WireWriter appends network-byte-order integers, length-prefixed blobs and
// (optionally compressed) names into a growing buffer.  The compression
// state lives inside the writer as a small generation-stamped open-addressed
// table keyed by case-folded suffix hash — clear() resets both buffer and
// table without touching their capacity, so one writer can encode a stream
// of messages with zero steady-state allocations (Message::encode_into).
//
// WireReader walks an immutable span and returns Result<> on any
// out-of-bounds read — truncated and hostile inputs must never crash the
// scanner.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "util/result.h"

namespace httpsrr::dns {

using Bytes = std::vector<std::uint8_t>;

class WireWriter {
 public:
  WireWriter() = default;

  // Resets buffer and compression table for a fresh message; allocated
  // buffer capacity is kept (the reuse hook behind Message::encode_into).
  void clear();

  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void bytes(const Bytes& data) { bytes(std::span<const std::uint8_t>(data)); }
  void raw_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  // Uncompressed name encoding (used inside RDATA, where RFC 3597 forbids
  // compression for unknown types and RFC 9460 forbids it for SVCB).
  void name(const Name& n);

  // Compressed name encoding for message sections. Suffixes already emitted
  // through this method become 2-byte pointers; matching is ASCII
  // case-insensitive on the wire labels (RFC 1035 §4.1.4) and emitted bytes
  // are deterministic.
  void name_compressed(const Name& n);

  // Patches a previously written 16-bit field (e.g. RDLENGTH back-fill).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  // One compression-table slot. A slot is live only when its generation
  // stamp matches the writer's — clear() just bumps the generation instead
  // of wiping the table.
  struct Slot {
    std::uint32_t generation = 0;
    std::uint16_t offset = 0;  // buffer offset of the stored suffix
    std::uint16_t tag = 0;     // low 16 hash bits, cuts false verifications
  };
  static constexpr std::size_t kSlots = 256;              // power of two
  static constexpr std::size_t kMaxEntries = kSlots / 2;  // probe-length cap

  // True if the name encoded at buf_[offset] (possibly ending in another
  // pointer) equals `flat` (a Name suffix in flat form), ignoring case.
  [[nodiscard]] bool suffix_matches(std::size_t offset,
                                    std::string_view flat) const;

  Bytes buf_;
  Slot slots_[kSlots] = {};
  std::uint32_t generation_ = 1;
  std::size_t entries_ = 0;  // live slots in the current generation
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  void seek(std::size_t pos) { pos_ = pos; }

  // The fixed-width readers are defined inline: they run once per header
  // word and RDATA field on the wire-true hot path, where an out-of-line
  // call per two octets dominates the decode cost.
  util::Result<std::uint8_t> u8() {
    if (remaining() < 1) return util::Error{"truncated: u8"};
    return data_[pos_++];
  }
  util::Result<std::uint16_t> u16() {
    if (remaining() < 2) return util::Error{"truncated: u16"};
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  util::Result<std::uint32_t> u32() {
    if (remaining() < 4) return util::Error{"truncated: u32"};
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  util::Result<Bytes> bytes(std::size_t count);

  // Reads a possibly-compressed name starting at the current position;
  // follows pointers with loop protection (the chase is capped by the
  // message length — every hop must land strictly earlier); leaves the
  // cursor just past the name's first encoding (not past pointer targets).
  util::Result<Name> name();

  // Reads an uncompressed name; any compression pointer is an error
  // (RDATA of SVCB/HTTPS and unknown types must not be compressed).
  util::Result<Name> name_uncompressed();

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace httpsrr::dns
