#pragma once

// Rr: one resource record. RrSet: all records sharing (owner, type, class).

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/types.h"

namespace httpsrr::dns {

struct Rr {
  Name owner;
  RrType type = RrType::A;
  RrClass klass = RrClass::IN;
  std::uint32_t ttl = 0;
  Rdata rdata;

  // "owner. ttl IN TYPE rdata"
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Rr&, const Rr&) = default;
};

// Convenience constructors for the record shapes the study manipulates.
[[nodiscard]] Rr make_a(const Name& owner, std::uint32_t ttl, net::Ipv4Addr addr);
[[nodiscard]] Rr make_aaaa(const Name& owner, std::uint32_t ttl, net::Ipv6Addr addr);
[[nodiscard]] Rr make_cname(const Name& owner, std::uint32_t ttl, Name target);
[[nodiscard]] Rr make_ns(const Name& owner, std::uint32_t ttl, Name nsdname);
[[nodiscard]] Rr make_soa(const Name& owner, std::uint32_t ttl, SoaRdata soa);
[[nodiscard]] Rr make_https(const Name& owner, std::uint32_t ttl, SvcbRdata rdata);
[[nodiscard]] Rr make_svcb(const Name& owner, std::uint32_t ttl, SvcbRdata rdata);

// An RRset: records with identical owner/type/class. The TTL of the set is
// the minimum member TTL (RFC 2181 §5.2 requires them equal; we normalise).
class RrSet {
 public:
  RrSet() = default;
  RrSet(Name owner, RrType type) : owner_(std::move(owner)), type_(type) {}

  void add(Rr rr);

  [[nodiscard]] const Name& owner() const { return owner_; }
  [[nodiscard]] RrType type() const { return type_; }
  [[nodiscard]] std::uint32_t ttl() const { return ttl_; }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<Rr>& records() const { return records_; }

  // Canonical wire form of the whole set for signing (RFC 4034 §3.1.8.1):
  // records sorted by RDATA, owner case-folded, TTL replaced by original.
  [[nodiscard]] Bytes canonical_form(std::uint32_t original_ttl) const;

 private:
  Name owner_;
  RrType type_ = RrType::A;
  std::uint32_t ttl_ = 0;
  std::vector<Rr> records_;
};

}  // namespace httpsrr::dns
